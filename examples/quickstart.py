"""Quickstart: factor and solve a circuit matrix with Basker.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import Basker, KLU, SANDY_BRIDGE, XEON_PHI, solve_residual
from repro.matrices import btf_composite, thick_ladder

# ----------------------------------------------------------------------
# 1. Build a circuit-like matrix: one large irreducible bus network
#    plus a collection of small independent subcircuits (the structure
#    Basker's hierarchical BTF + ND layout is designed for).
# ----------------------------------------------------------------------
rng = np.random.default_rng(42)
A = btf_composite(
    small_block_sizes=[3] * 25,
    big_block=thick_ladder(134, 6, rng=rng),
    coupling_per_block=1.0,
    rng=rng,
)
print(f"matrix: n={A.n_rows}, nnz={A.nnz}")

# ----------------------------------------------------------------------
# 2. Analyze once (orderings + symbolic), factor, and solve.
# ----------------------------------------------------------------------
solver = Basker(n_threads=8)
symbolic = solver.analyze(A)
print(symbolic.describe())

numeric = solver.factor(A, symbolic)
b = rng.standard_normal(A.n_rows)
x = solver.solve(numeric, b)
print(f"solve residual: {solve_residual(A, x, b):.2e}")
print(f"factor nnz |L+U|: {numeric.factor_nnz} (fill density {numeric.factor_nnz / A.nnz:.2f})")

# ----------------------------------------------------------------------
# 3. Performance model: the same factorization priced on the paper's
#    two testbeds, against serial KLU.
# ----------------------------------------------------------------------
klu_numeric = KLU().factor(A)
for machine in (SANDY_BRIDGE, XEON_PHI):
    t_klu = klu_numeric.factor_seconds(machine)
    t_basker = numeric.factor_seconds(machine)
    sched = numeric.schedule(machine)
    print(
        f"{machine.name:12s}: KLU serial {t_klu:.3e} s, "
        f"Basker x8 {t_basker:.3e} s -> speedup {t_klu / t_basker:.2f}x "
        f"(parallel efficiency {sched.parallel_efficiency:.0%}, "
        f"sync overhead {sched.sync_fraction:.1%})"
    )

# ----------------------------------------------------------------------
# 4. Refactorization: new values, same pattern (the circuit-simulation
#    hot path) reuses the entire analysis.
# ----------------------------------------------------------------------
A2 = A.copy()
A2.data *= rng.uniform(0.5, 2.0, A2.nnz)
numeric2 = solver.refactor(A2, numeric)
x2 = solver.solve(numeric2, b)
print(f"refactor residual: {solve_residual(A2, x2, b):.2e}")
