"""Inside the performance model: ledgers, machines, schedules, traces.

The reproduction's parallel numbers come from an explicit, inspectable
model (DESIGN.md §2).  This example opens the hood: what a cost ledger
contains, how the two machine models price it, what the simulated
schedule looks like, and how to export a Perfetto-loadable trace of
Basker's factorization.

Run:  python examples/machine_models.py
"""

import json
from pathlib import Path

import numpy as np

from repro import Basker, SANDY_BRIDGE, XEON_PHI
from repro.matrices import grid2d

rng = np.random.default_rng(5)
A = grid2d(26, rng=rng)
print(f"matrix: n={A.n_rows}, nnz={A.nnz}")

bk = Basker(n_threads=8)
num = bk.factor(A)

# ----------------------------------------------------------------------
# 1. The ledger: what the factorization actually did.
# ----------------------------------------------------------------------
led = num.ledger
print("\n--- cost ledger (exact operation counts) ---")
print(f"sparse flops : {led.sparse_flops:12.0f}")
print(f"dense flops  : {led.dense_flops:12.0f}")
print(f"DFS steps    : {led.dfs_steps:12.0f}")
print(f"memory words : {led.mem_words:12.0f}")
print(f"columns      : {led.columns:12.0f}")

# ----------------------------------------------------------------------
# 2. Pricing on the two testbeds.
# ----------------------------------------------------------------------
print("\n--- machine pricing ---")
for m in (SANDY_BRIDGE, XEON_PHI):
    serial = m.seconds(led)
    sched = num.schedule(m)
    print(f"{m.name:12s}: serial-equivalent {serial:.3e} s, "
          f"8-thread makespan {sched.makespan:.3e} s, "
          f"efficiency {sched.parallel_efficiency:.0%}, "
          f"sync {sched.sync_fraction:.1%}")
print(f"sparse:dense flop price ratio — SB "
      f"{SANDY_BRIDGE.t_sparse_flop / SANDY_BRIDGE.t_dense_flop:.1f}:1, "
      f"Phi {XEON_PHI.t_sparse_flop / XEON_PHI.t_dense_flop:.1f}:1")

# ----------------------------------------------------------------------
# 3. Cache model: the same work with growing working sets.
# ----------------------------------------------------------------------
print("\n--- cache factor vs working set ---")
for kb in (64, 512, 4096, 65536):
    ws = kb * 1024
    print(f"{kb:8d} KiB: SB x{SANDY_BRIDGE.cache_factor(ws):.2f}  "
          f"Phi x{XEON_PHI.cache_factor(ws):.2f}   (Phi has no shared L3)")

# ----------------------------------------------------------------------
# 4. The schedule itself: Gantt lines and a Perfetto trace.
# ----------------------------------------------------------------------
sched = num.schedule(SANDY_BRIDGE)
print("\n--- first schedule lines (thread [start .. end] task) ---")
for line in sched.gantt(num.task_labels).splitlines()[:8]:
    print("  " + line)

trace_path = Path("basker_trace.json")
trace_path.write_text(json.dumps(sched.to_chrome_trace(num.task_labels)))
print(f"\nwrote {trace_path} — open in https://ui.perfetto.dev "
      f"({len(sched.start)} tasks across {sched.n_threads} lanes)")

# ----------------------------------------------------------------------
# 5. Barrier vs point-to-point, priced on the identical DAG (paper §IV).
# ----------------------------------------------------------------------
print("\n--- sync pricing (same task DAG) ---")
for mode in ("p2p", "barrier"):
    s = num.schedule(SANDY_BRIDGE, sync_mode=mode)
    print(f"{mode:8s}: makespan {s.makespan:.3e} s, sync share {s.sync_fraction:.1%}")
