"""Transient circuit simulation with Basker as the linear solver.

Reproduces the paper's §V-F workload in miniature: a SPICE-style
backward-Euler transient of a nonlinear circuit generates a sequence of
same-pattern Jacobians; the direct solver's refactorization path
dominates simulation time.

Run:  python examples/circuit_transient.py
"""

import numpy as np

from repro import Basker, KLU, SANDY_BRIDGE
from repro.xyce import matrix_sequence, run_transient, xyce1_analog

# ----------------------------------------------------------------------
# 1. Build the circuit and run a short transient to see the physics.
# ----------------------------------------------------------------------
ckt = xyce1_analog(n_core=60, n_subckts=15)
print(f"circuit: {ckt.n_unknowns} unknowns, {len(ckt.devices)} devices")

result = run_transient(ckt, t_end=1e-3, dt=2e-5)
print(f"transient: {len(result.times) - 1} steps, converged={result.converged}, "
      f"avg Newton iters {np.mean(result.newton_iters):.1f}")

# ASCII waveform of one core node voltage.
v = result.states[:, 4]
lo, hi = float(v.min()), float(v.max())
span = max(hi - lo, 1e-12)
print(f"\nnode-5 voltage over time  [{lo:.3f} V .. {hi:.3f} V]")
for k in range(0, len(v), max(1, len(v) // 24)):
    bar = int(50 * (v[k] - lo) / span)
    print(f"  t={result.times[k] * 1e3:6.3f} ms |{'#' * bar}")

# ----------------------------------------------------------------------
# 2. The matrix-sequence experiment: refactor every Jacobian with
#    Basker vs KLU, reusing one symbolic analysis (paper §V-F).
#    A larger circuit here: parallel speedup needs work to chew on.
# ----------------------------------------------------------------------
N = 60
seq = matrix_sequence(xyce1_analog(), n_matrices=N)
print(f"\nsequence: {N} Jacobians, n={seq[0].n_rows}, nnz={seq[0].nnz}")

klu = KLU()
knum = klu.factor(seq[0])
t_klu = sum(klu.refactor(A, knum).factor_seconds(SANDY_BRIDGE) for A in seq)

basker = Basker(n_threads=8)
bnum = basker.factor(seq[0])
t_basker = 0.0
for A in seq:
    bnum = basker.refactor(A, bnum)
    t_basker += bnum.factor_seconds(SANDY_BRIDGE)

print(f"KLU    (serial): {t_klu:.4f} modelled s")
print(f"Basker (8 thr):  {t_basker:.4f} modelled s")
print(f"sequence speedup: {t_klu / t_basker:.2f}x  (paper reports ~5.2x over 1000 matrices)")
