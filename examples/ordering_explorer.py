"""Explore the orderings that build Basker's hierarchical structure.

Walks through the three reordering stages on a circuit matrix — MWCM,
BTF, nested dissection with per-node AMD — and shows what each buys:
diagonal quality, factored-region shrinkage, separator sizes, fill.

Run:  python examples/ordering_explorer.py
"""

import numpy as np

from repro.graph import mwcm
from repro.matrices import btf_composite, thick_ladder
from repro.ordering import amd_order, btf, nested_dissection
from repro.solvers import gp_factor
from repro.sparse import CSC

rng = np.random.default_rng(11)
A = btf_composite(
    small_block_sizes=(1 + rng.poisson(2.0, size=40)).tolist(),
    big_block=thick_ladder(80, 6, rng=rng),
    coupling_per_block=1.0,
    rng=rng,
)
print(f"matrix: n={A.n_rows}, nnz={A.nnz}")

# ----------------------------------------------------------------------
# 1. MWCM: bottleneck matching pushes large entries onto the diagonal.
# ----------------------------------------------------------------------
match_col, bottleneck = mwcm(A)
diag_before = np.abs(A.diagonal())
print("\n--- MWCM ---")
print(f"matched columns: {(match_col >= 0).sum()}/{A.n_cols}")
print(f"bottleneck (smallest matched |a_ij|): {bottleneck:.3f}")
print(f"smallest original |diagonal|: {diag_before.min():.3f}")

# ----------------------------------------------------------------------
# 2. BTF: the coarse structure. Only diagonal blocks factor.
# ----------------------------------------------------------------------
res = btf(A)
sizes = res.block_sizes()
diag_area = int((sizes.astype(np.int64) ** 2).sum())
print("\n--- BTF ---")
print(f"blocks: {res.n_blocks} (largest {res.largest_block}); "
      f"{res.btf_percent(96):.0f}% of rows in small blocks")
print(f"factored region: {diag_area} of {A.n_rows**2} matrix positions "
      f"({100 * diag_area / A.n_rows**2:.1f}%)")

# ----------------------------------------------------------------------
# 3. ND on the big block: the fine 2-D structure for the 2-D algorithm.
# ----------------------------------------------------------------------
B = A.permute(res.row_perm, res.col_perm)
big = int(np.argmax(sizes))
lo, hi = int(res.block_splits[big]), int(res.block_splits[big + 1])
D = B.submatrix(lo, hi, lo, hi)
for p in (2, 4, 8):
    nd = nested_dissection(D, nleaves=p)
    leaf_sizes = [nd.nodes[t].size for t in nd.leaves()]
    sep_sizes = [nd.nodes[t].size for t in range(nd.n_nodes) if not nd.nodes[t].is_leaf]
    print(f"ND p={p}: leaves {leaf_sizes}, separators {sep_sizes}")
nd = nested_dissection(D, nleaves=4)
nd.check_separator_property(D)
print("separator property verified: no edges between sibling subtrees")

# ----------------------------------------------------------------------
# 4. Fill under different orderings of the big block.
# ----------------------------------------------------------------------
print("\n--- fill-in of the big block under different orderings ---")
natural = gp_factor(D, pivot_tol=0.001)
p_amd = amd_order(D)
amd_lu = gp_factor(D.permute(p_amd, p_amd), pivot_tol=0.001)
q = nd.perm
nd_lu = gp_factor(D.permute(q, q), pivot_tol=0.001)
print(f"natural order: |L+U| = {natural.factor_nnz}")
print(f"AMD:           |L+U| = {amd_lu.factor_nnz}")
print(f"ND(4 leaves):  |L+U| = {nd_lu.factor_nnz}  "
      "(slightly more fill, bought back as parallelism)")
