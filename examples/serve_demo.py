"""Serving demo: admission control, deadlines, retries, circuit breaking.

Drives an in-process :class:`repro.serve.SolverService` through the
failure modes a production solve service must survive — overload,
tight deadlines, mid-flight cache invalidation, and a tenant whose
matrix is numerically singular — and shows that every outcome is
either a *verified* answer or a *typed* error.

Run:  python examples/serve_demo.py
"""

import numpy as np

from repro.errors import DeadlineExceededError, RecoveryExhaustedError, ReproError
from repro.serve import ServeClient, ServeConfig, SolverService, pattern_key
from repro.xyce.circuits import rc_ladder
from repro.xyce.transient import matrix_sequence

# ----------------------------------------------------------------------
# 1. One service, one tenant, a Xyce-shaped traffic stream: the same
#    sparsity pattern resubmitted with new values each timestep.  The
#    first request pays symbolic + numeric factorization; every later
#    one is a values-only replay against the shared pattern cache.
# ----------------------------------------------------------------------
service = SolverService(ServeConfig(seed=7))
client = ServeClient(service, tenant="transient")

mats = matrix_sequence(rc_ladder(12), 8)
rng = np.random.default_rng(7)
for step, A in enumerate(mats):
    resp = client.solve(A, rng.standard_normal(A.n_rows), arrival_s=1e-3 * step)
    print(f"step {step}: rung={resp.succeeded_rung:8s} "
          f"cache_hit={resp.cache_hit!s:5s} "
          f"modeled latency={resp.latency_s:.3e}s "
          f"berr={resp.backward_error:.2e}")

# ----------------------------------------------------------------------
# 2. Deadlines run on the modeled clock.  An impossible budget is
#    rejected at admission — after symbolic analysis, before any
#    numeric factorization is attempted.
# ----------------------------------------------------------------------
A = mats[0]
try:
    client.solve(A, rng.standard_normal(A.n_rows), arrival_s=1.0,
                 deadline_s=1e-12)
except DeadlineExceededError as exc:
    print(f"\ndeadline: {exc}")

# ----------------------------------------------------------------------
# 3. A numerically singular pattern exhausts the recovery ladder;
#    enough consecutive escalations trip that pattern's circuit
#    breaker.  Other patterns are unaffected.
# ----------------------------------------------------------------------
n = 4
rr, cc = np.indices((n, n))
from repro.sparse import CSC  # noqa: E402

singular = CSC.from_coo(rr.ravel(), cc.ravel(), np.ones(n * n), shape=(n, n))
for k in range(3):
    try:
        client.solve(singular, np.ones(n), arrival_s=2.0 + k)
    except RecoveryExhaustedError:
        pass
state = service.breaker_state(pattern_key(singular))
print(f"breaker after 3 exhausted ladders: {state['state']} "
      f"(trips={state['trips']})")

# ----------------------------------------------------------------------
# 4. The invariant everything above illustrates: submit anything, and
#    the outcome is a verified answer or a typed ReproError.
# ----------------------------------------------------------------------
ok = typed = 0
for k in range(20):
    A = mats[k % len(mats)]
    try:
        client.solve(A, rng.standard_normal(A.n_rows), arrival_s=10.0 + 1e-4 * k)
        ok += 1
    except ReproError:
        typed += 1
print(f"\n20 more requests: {ok} verified answers, {typed} typed errors, "
      f"0 untyped escapes")
print(f"service snapshot: queue peak depth "
      f"{service.snapshot()['queue']['peak_depth']}, "
      f"cache size {service.snapshot()['cache']['size']}")
