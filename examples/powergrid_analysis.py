"""Power-grid matrix analysis: BTF structure and solver comparison.

Power-grid matrices (the ``+`` entries of the paper's Table I) are
Basker's best case: 100 % BTF coverage means the whole factorization is
an embarrassingly parallel sweep over small independent blocks, and a
supernodal solver that cannot exploit BTF wastes an order of magnitude
of memory and time.

Run:  python examples/powergrid_analysis.py
"""

import numpy as np

from repro import Basker, KLU, SANDY_BRIDGE, SupernodalLU, solve_residual
from repro.matrices import meshed_area_grid, reduced_system
from repro.ordering import btf

rng = np.random.default_rng(7)

for label, A in (
    ("reduced system (RS class)", reduced_system(100, block_size_mean=10.0, rng=rng)),
    ("meshed areas (hvdc class)", meshed_area_grid(16, 50, rng=rng)),
):
    print(f"\n=== {label}: n={A.n_rows}, nnz={A.nnz} ===")

    # Structure: the block triangular form.
    res = btf(A)
    sizes = res.block_sizes()
    print(
        f"BTF: {res.n_blocks} blocks, largest {res.largest_block}, "
        f"{res.btf_percent(96):.0f}% of rows in small blocks"
    )
    print(f"block-size histogram: 1: {(sizes == 1).sum()}, "
          f"2-10: {((sizes > 1) & (sizes <= 10)).sum()}, "
          f">10: {(sizes > 10).sum()}")

    # Solvers: memory and modelled time.
    b = rng.standard_normal(A.n_rows)
    klu_num = KLU().factor(A)
    t_klu = klu_num.factor_seconds(SANDY_BRIDGE)

    pmkl = SupernodalLU()
    pmkl_num = pmkl.factor(A)
    t_pmkl = pmkl_num.factor_seconds(SANDY_BRIDGE, n_threads=16)

    basker = Basker(n_threads=16)
    bask_num = basker.factor(A)
    t_bask = bask_num.factor_seconds(SANDY_BRIDGE)
    resid = solve_residual(A, basker.solve(bask_num, b), b)

    print(f"{'solver':8s} {'|L+U|':>10s} {'time(16c) s':>12s} {'vs KLU':>8s}")
    print(f"{'KLU':8s} {klu_num.factor_nnz:>10d} {t_klu:>12.3e} {1.0:>8.2f}")
    print(f"{'PMKL':8s} {pmkl_num.factor_nnz:>10d} {t_pmkl:>12.3e} {t_klu / t_pmkl:>8.2f}")
    print(f"{'Basker':8s} {bask_num.factor_nnz:>10d} {t_bask:>12.3e} {t_klu / t_bask:>8.2f}")
    print(f"Basker solve residual: {resid:.2e}")
    print(f"memory ratio PMKL/Basker: {pmkl_num.factor_nnz / bask_num.factor_nnz:.1f}x")
