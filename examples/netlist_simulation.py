"""Simulate a SPICE netlist end to end with Basker as the solver.

A five-transistor-stage ring-style NMOS amplifier chain written as a
plain SPICE deck: parse it, find the DC operating point, run the
transient (adaptive steps), then replay the Jacobian sequence through
Basker's refactorization path — the complete circuit-simulation flow
the paper targets.

Run:  python examples/netlist_simulation.py
"""

import numpy as np

from repro import Basker, KLU, SANDY_BRIDGE
from repro.xyce import dc_operating_point, parse_netlist, run_transient_adaptive

DECK = """
* two-stage NMOS common-source amplifier with biased RC coupling
V1  vdd 0   DC 5
Vin in  0   SIN(1.2 0.2 2000)

R1  vdd n1  10k
M1  n1  in  0  k=1m vt=0.7
C1  n1  g2  100n
Rb1 vdd g2  390k
Rb2 g2  0   120k

R3  vdd n2  10k
M2  n2  g2  0  k=1m vt=0.7
C2  n2  out 100n
Rl  out 0   100k

.tran 5u 2m
.end
"""

deck = parse_netlist(DECK)
ckt = deck.circuit
print(f"parsed: {len(ckt.devices)} devices, {ckt.n_unknowns} unknowns, "
      f"nodes: {sorted(deck.node_names)}")

# ----------------------------------------------------------------------
# DC operating point.
# ----------------------------------------------------------------------
x0 = dc_operating_point(ckt)
for node in ("n1", "g2", "n2"):
    print(f"  V({node}) = {x0[deck.node(node) - 1]:.3f} V")

# ----------------------------------------------------------------------
# Transient with adaptive steps.
# ----------------------------------------------------------------------
res = run_transient_adaptive(ckt, t_end=deck.tran[1], dt0=deck.tran[0], x0=x0)
print(f"\ntransient: {len(res.times) - 1} accepted steps, "
      f"{len(res.matrices)} Jacobians, converged={res.converged}")
v_out = res.states[:, deck.node("out") - 1]
print(f"output swing: {v_out.min():.3f} .. {v_out.max():.3f} V")

# ----------------------------------------------------------------------
# The solver view: one analysis, many refactorizations.
# ----------------------------------------------------------------------
seq = res.matrices[: min(len(res.matrices), 200)]
klu = KLU()
knum = klu.factor(seq[0])
t_klu = sum(klu.refactor(A, knum).factor_seconds(SANDY_BRIDGE) for A in seq)

basker = Basker(n_threads=8)
bnum = basker.factor(seq[0])
t_basker = 0.0
for A in seq:
    bnum = basker.refactor(A, bnum)
    t_basker += bnum.factor_seconds(SANDY_BRIDGE)

print(f"\nsolver totals over {len(seq)} Jacobians (modelled):")
print(f"  KLU    (serial): {t_klu:.4e} s")
print(f"  Basker (8 thr):  {t_basker:.4e} s  ({t_klu / t_basker:.2f}x)")
