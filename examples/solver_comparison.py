"""Direct vs iterative, and the parallel solve phase.

Two follow-ons to the factorization story:

1. why circuit simulators use *direct* solvers at all (the paper's
   ref. [21] premise): ILU-preconditioned GMRES is fragile and
   expensive on circuit Jacobians;
2. what the solve phase looks like when parallelized with level
   scheduling (the paper's ref. [18] technique).

Run:  python examples/solver_comparison.py
"""

import numpy as np

from repro import DirectSolver, SANDY_BRIDGE, available_solvers, solve_residual
from repro.core import level_schedule, parallel_lower_solve
from repro.errors import SingularMatrixError
from repro.graph.matching import mwcm_row_permutation
from repro.iterative import ILU0Preconditioner, gmres
from repro.xyce import matrix_sequence, xyce1_analog

# ----------------------------------------------------------------------
# 1. One Jacobian from the transient, through every direct solver.
# ----------------------------------------------------------------------
ckt = xyce1_analog(n_core=200, n_subckts=60)
A = matrix_sequence(ckt, n_matrices=1)[0]
rng = np.random.default_rng(0)
b = rng.standard_normal(A.n_rows)
print(f"Jacobian: n={A.n_rows}, nnz={A.nnz}\n")

print(f"{'solver':12s} {'|L+U|':>8s} {'time(8c) s':>12s} {'residual':>10s}")
for name in available_solvers():
    try:
        s = DirectSolver(name, n_threads=8).numeric_factorization(A)
        x = s.solve(b)
        print(f"{name:12s} {s.factor_nnz:>8d} {s.factor_seconds(SANDY_BRIDGE, 8):>12.3e} "
              f"{solve_residual(A, x, b):>10.1e}")
    except Exception as exc:  # noqa: BLE001 - show solver failures honestly
        print(f"{name:12s} FAILED: {type(exc).__name__}: {exc}")

# ----------------------------------------------------------------------
# 2. The iterative alternative.
# ----------------------------------------------------------------------
print("\n--- preconditioned iterative (the road not taken) ---")
try:
    ILU0Preconditioner(A)
except SingularMatrixError as exc:
    print(f"ILU(0) on the raw Jacobian: FAILS ({exc})")
pm = mwcm_row_permutation(A)
Ap = A.permute(row_perm=pm)
M = ILU0Preconditioner(Ap)
res = gmres(Ap, b[pm], M=M.apply, tol=1e-10, restart=40, maxiter=600)
direct_flops = DirectSolver("klu").numeric_factorization(A)._numeric.ledger.sparse_flops
print(f"MWCM + ILU(0) + GMRES: {res.iterations} iterations, "
      f"{res.ledger.sparse_flops + M.ledger.sparse_flops:.3g} flops "
      f"(direct refactor: {direct_flops:.3g} flops)")

# ----------------------------------------------------------------------
# 3. Parallel triangular solve on the factors.
# ----------------------------------------------------------------------
print("\n--- level-scheduled parallel solve (ref. [18]) ---")
klu = DirectSolver("klu").numeric_factorization(A)
L = klu._numeric.block_lu[-1].L if klu._numeric.block_lu else None
big = max(klu._numeric.block_lu, key=lambda lu: lu.L.n_rows)
L = big.L
tl = level_schedule(L, lower=True)
print(f"largest block L: n={L.n_rows}, nnz={L.nnz}")
print(f"levels: {tl.n_levels}, average parallelism {tl.average_parallelism:.1f}, "
      f"max {tl.max_parallelism:.0f}")
rhs = rng.standard_normal(L.n_rows)
_, s1 = parallel_lower_solve(L, rhs, n_threads=1, machine=SANDY_BRIDGE, levels=tl)
_, s8 = parallel_lower_solve(L, rhs, n_threads=8, machine=SANDY_BRIDGE, levels=tl)
print(f"solve makespan: 1 thread {s1.makespan:.3e} s -> 8 threads {s8.makespan:.3e} s "
      f"({s1.makespan / s8.makespan:.2f}x)")
