"""Command-line interface: ``python -m repro <command>``.

Small utilities a downstream user reaches for first:

* ``info <matrix.mtx>`` — structural report: size, BTF decomposition,
  fill estimates, structural symmetry.
* ``spy <matrix.mtx>`` — ASCII density plot of the pattern (optionally
  after the BTF or Basker ordering).
* ``solve <matrix.mtx>`` — factor + solve against a random RHS with a
  chosen solver, print residual, |L+U| and modelled times.
* ``suite`` — list the built-in Table I / Table II suite; ``--emit``
  writes a suite matrix to a MatrixMarket file.
* ``analyze hazards|conservation|lint|domains|effects|shapes|all`` —
  the verification layer: happens-before race detection on the emitted
  task DAG, ledger/schedule conservation checks, the repo's AST lint,
  the index-domain checker that tracks permutation spaces through the
  solver, the interprocedural effect checker that verifies declared
  task read/write sets and process-safety, and the symbolic
  shape/bounds/dtype checker over the vectorized kernels; ``all`` runs
  every checker in one pass with a unified report (``--plans`` additionally
  audits compiled gather/scatter schedules for same-level write
  disjointness).  All subcommands accept ``--format json`` for machine
  consumption and exit nonzero on findings; ``--baseline FILE``
  suppresses fingerprinted legacy findings so only regressions fail
  (the CI gate), ``--write-baseline FILE`` freezes the current
  findings.
* ``bench`` — wall-clock microbenchmarks (factor/refactor/solve/reach
  plus the Xyce refactorization sequence), written to
  ``BENCH_wallclock.json``; ``--check`` gates speedup ratios against
  the committed baseline.
* ``serve`` — deterministic multi-tenant soak of the fault-tolerant
  solve service (bounded admission, token-bucket rate limits, modeled
  deadlines, seeded retries, shared pattern cache with leases,
  per-pattern circuit breakers, degradation tiers), writing
  ``SERVE_report.json``; ``--check-golden`` gates byte-identity against
  the committed golden report.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from .core import Basker
from .matrices import TABLE1, TABLE2, get_matrix
from .ordering import btf
from .parallel import SANDY_BRIDGE, XEON_PHI
from .solvers import KLU, SupernodalLU
from .sparse import CSC, read_matrix_market, solve_residual, write_matrix_market

__all__ = ["main"]


def _load(path: str) -> CSC:
    if path in {s.name for s in TABLE1 + TABLE2}:
        return get_matrix(path)
    return read_matrix_market(path)


def _cmd_info(args) -> int:
    from .sparse import matrix_stats

    A = _load(args.matrix)
    print(f"matrix: {args.matrix}")
    stats = matrix_stats(A, with_btf=True, with_fill=args.fill)
    for line in stats.describe().splitlines():
        print("  " + line)
    return 0


def _cmd_spy(args) -> int:
    A = _load(args.matrix)
    if args.order == "btf":
        res = btf(A)
        A = A.permute(res.row_perm, res.col_perm)
    elif args.order == "basker":
        sym = Basker(n_threads=args.threads).analyze(A)
        A = A.permute(sym.row_perm_pre, sym.col_perm)
    size = args.size
    n = A.n_rows
    grid = np.zeros((size, size), dtype=np.int64)
    col_of = np.repeat(np.arange(A.n_cols), np.diff(A.indptr))
    ri = (A.indices * size) // max(n, 1)
    ci = (col_of * size) // max(A.n_cols, 1)
    np.add.at(grid, (np.minimum(ri, size - 1), np.minimum(ci, size - 1)), 1)
    shades = " .:+*#@"
    mx = grid.max() or 1
    for r in range(size):
        line = "".join(
            shades[min(len(shades) - 1, int(np.ceil(len(shades) * grid[r, c] / mx)) - (0 if grid[r, c] else 1))]
            if grid[r, c] else " "
            for c in range(size)
        )
        print("|" + line + "|")
    return 0


def _cmd_solve(args) -> int:
    A = _load(args.matrix)
    rng = np.random.default_rng(args.seed)
    b = rng.standard_normal(A.n_rows)
    if args.solver == "klu":
        solver = KLU()
        num = solver.factor(A)
        t_sb = num.factor_seconds(SANDY_BRIDGE)
        t_phi = num.factor_seconds(XEON_PHI)
    elif args.solver == "pmkl":
        solver = SupernodalLU()
        num = solver.factor(A)
        t_sb = num.factor_seconds(SANDY_BRIDGE, args.threads)
        t_phi = num.factor_seconds(XEON_PHI, args.threads)
    else:
        solver = Basker(n_threads=args.threads)
        num = solver.factor(A)
        t_sb = num.factor_seconds(SANDY_BRIDGE)
        t_phi = num.factor_seconds(XEON_PHI)
    x = solver.solve(num, b)
    print(f"solver: {args.solver} (threads={args.threads})")
    print(f"  |L+U| = {num.factor_nnz} (fill {num.factor_nnz / A.nnz:.2f})")
    print(f"  scaled residual = {solve_residual(A, x, b):.3e}")
    print(f"  modelled factor time: SandyBridge {t_sb:.3e} s, XeonPhi {t_phi:.3e} s")
    return 0


def _cmd_suite(args) -> int:
    for spec in TABLE1 + TABLE2:
        marker = "high-fill" if spec.high_fill else "low-fill"
        print(f"{spec.name:16s} {spec.kind:10s} {marker:10s} "
              f"paper: n={spec.paper.n:.1e} fill={spec.paper.fill_density:.1f} "
              f"btf%={spec.paper.btf_pct:.0f}")
    if args.emit:
        A = get_matrix(args.emit)
        out = args.output or (args.emit.replace("*", "").replace("+", "") + ".mtx")
        write_matrix_market(A, out, comment=f"repro suite analog of {args.emit}")
        print(f"wrote {out} (n={A.n_rows}, nnz={A.nnz})")
    return 0


def _analysis_matrices(args):
    from .matrices.suite import suite_names

    names = args.matrix or (suite_names(1) + suite_names(2))
    for name in names:
        yield name, _load(name)


def _plan_audit_findings(args):
    """``analyze effects --plans``: symbolic disjointness audits of the
    compiled triangular/refactor schedules for the selected matrices."""
    from .analysis import audit_refactor_schedule, audit_triangular_schedule
    from .solvers.gp import ensure_refactor_schedule, gp_factor
    from .sparse.schedule import compile_triangular_schedule

    findings = []
    for name, A in _analysis_matrices(args):
        res = gp_factor(A)
        findings.extend(audit_triangular_schedule(
            compile_triangular_schedule(res.L, "lower"), label=f"{name}:L"))
        findings.extend(audit_triangular_schedule(
            compile_triangular_schedule(res.U, "upper"), label=f"{name}:U"))
        findings.extend(audit_refactor_schedule(
            ensure_refactor_schedule(res, A), label=f"{name}:refactor"))
    return findings


def _shape_plan_findings(args):
    """``analyze shapes --plans``: concrete buffer-bounds audits of the
    compiled triangular/refactor schedules for the selected matrices."""
    from .analysis import audit_schedule_buffers
    from .solvers.gp import ensure_refactor_schedule, gp_factor
    from .sparse.schedule import compile_triangular_schedule

    findings = []
    for name, A in _analysis_matrices(args):
        res = gp_factor(A)
        findings.extend(audit_schedule_buffers(
            compile_triangular_schedule(res.L, "lower"), label=f"{name}:L"))
        findings.extend(audit_schedule_buffers(
            compile_triangular_schedule(res.U, "upper"), label=f"{name}:U"))
        findings.extend(audit_schedule_buffers(
            ensure_refactor_schedule(res, A), label=f"{name}:refactor"))
    return findings


def _tree_findings(checker: str, args):
    """Finding dicts of one file-tree checker (lint/domains/effects/shapes)."""
    import dataclasses

    from .analysis import (
        check_domains_paths,
        check_domains_tree,
        check_effects_paths,
        check_effects_tree,
        check_shapes_paths,
        check_shapes_tree,
        lint_tree,
    )

    if checker == "lint":
        findings = lint_tree()
    elif checker == "domains":
        findings = check_domains_paths(args.path) if args.path \
            else check_domains_tree()
    elif checker == "effects":
        findings = check_effects_paths(args.path) if args.path \
            else check_effects_tree()
        if args.plans:
            findings = list(findings) + _plan_audit_findings(args)
    else:  # shapes
        findings = check_shapes_paths(args.path) if args.path \
            else check_shapes_tree()
        if args.plans:
            findings = list(findings) + _shape_plan_findings(args)
    return [dataclasses.asdict(f) for f in findings]


def _analyze_all(args, base_fps) -> int:
    """``analyze all``: every checker in one pass, one report, one exit
    code.  File-tree checkers run over the whole tree; hazards and
    conservation share one factorization per (matrix, threads) pair."""
    import json

    from .analysis import (
        apply_baseline,
        check_conservation,
        check_hazards,
        check_schedule,
        write_baseline_many,
    )

    as_json = args.format == "json"
    sections = {}
    all_docs = {}
    for checker in ("lint", "domains", "effects", "shapes"):
        docs = _tree_findings(checker, args)
        new, suppressed = apply_baseline(checker, docs, base_fps)
        sections[checker] = {"ok": not new, "findings": new,
                             "suppressed": suppressed}
        all_docs[checker] = docs

    hz_docs, cons_docs, configs = [], [], []
    for name, A in _analysis_matrices(args):
        for p in args.threads:
            solver = Basker(n_threads=p, pipeline_columns=args.pipeline)
            num = solver.factor(A)
            rep = check_hazards(num.tasks)
            hz_docs.extend(
                {"matrix": name, "threads": p, "kind": h.kind,
                 "message": h.message}
                for h in rep.hazards
            )
            sched = num.schedule(SANDY_BRIDGE)
            rep1 = check_conservation(num.tasks, num.ledger, num.overhead_ledger)
            rep2 = check_schedule(num.tasks, sched)
            cons_docs.extend(
                {"matrix": name, "threads": p, "kind": "conservation",
                 "message": str(f)}
                for f in list(rep1.findings) + list(rep2.findings)
            )
            configs.append({"matrix": name, "threads": p,
                            "tasks": len(num.tasks)})
    for checker, docs in (("hazards", hz_docs), ("conservation", cons_docs)):
        new, suppressed = apply_baseline(checker, docs, base_fps)
        sections[checker] = {"ok": not new, "findings": new,
                             "suppressed": suppressed}
        all_docs[checker] = docs

    if args.write_baseline:
        n = write_baseline_many(args.write_baseline, all_docs)
        print(f"wrote baseline {args.write_baseline} ({n} fingerprint(s))",
              file=sys.stderr)
    ok = all(sec["ok"] for sec in sections.values())
    if as_json:
        print(json.dumps({
            "checker": "all",
            "ok": ok,
            "checkers": sections,
            "configs": configs,
        }, indent=2))
    else:
        for checker, sec in sections.items():
            tail = f", {len(sec['suppressed'])} suppressed" if args.baseline else ""
            print(f"{checker}: {len(sec['findings'])} finding(s){tail}")
            for d in sec["findings"]:
                code = d.get("code") or d.get("rule") or d.get("kind") or ""
                where = d.get("path", d.get("matrix", ""))
                line = d.get("line")
                loc = f"{where}:{line}" if line is not None else str(where)
                print(f"    {loc} {code} {d['message']}")
        print(f"analyze all: {'OK' if ok else 'FAILED'} "
              f"({len(configs)} simulated configuration(s))")
    return 0 if ok else 1


def _cmd_analyze(args) -> int:
    import json

    from .analysis import (
        apply_baseline,
        check_conservation,
        check_hazards,
        check_schedule,
        load_baseline,
        write_baseline,
    )

    as_json = args.format == "json"
    base_fps = load_baseline(args.baseline) if args.baseline else set()

    if args.checker == "all":
        return _analyze_all(args, base_fps)

    if args.checker in ("lint", "domains", "effects", "shapes"):
        docs = _tree_findings(args.checker, args)
        new, suppressed = apply_baseline(args.checker, docs, base_fps)
        if args.write_baseline:
            n = write_baseline(args.write_baseline, args.checker, docs)
            print(f"wrote baseline {args.write_baseline} ({n} fingerprint(s))",
                  file=sys.stderr)
        if as_json:
            print(json.dumps({
                "checker": args.checker,
                "ok": not new,
                "findings": new,
                "suppressed": suppressed,
            }, indent=2))
        else:
            for d in new:
                code = d.get("code") or d.get("rule") or ""
                print(f"{d['path']}:{d['line']} {code} {d['message']}")
            tail = f", {len(suppressed)} suppressed" if args.baseline else ""
            print(f"{args.checker}: {len(new)} finding(s){tail}")
        return 1 if new else 0

    failures = 0
    configs = []
    all_docs = []
    for name, A in _analysis_matrices(args):
        for p in args.threads:
            solver = Basker(n_threads=p, pipeline_columns=args.pipeline)
            num = solver.factor(A)
            if args.checker == "hazards":
                rep = check_hazards(num.tasks)
                docs = [
                    {"matrix": name, "threads": p, "kind": h.kind,
                     "message": h.message}
                    for h in rep.hazards
                ]
                new, suppressed = apply_baseline(args.checker, docs, base_fps)
                all_docs.extend(docs)
                if as_json:
                    configs.append({
                        "matrix": name, "threads": p,
                        "tasks": len(num.tasks),
                        "pairs_checked": rep.n_pairs_checked,
                        "ok": not new,
                        "findings": new,
                        "suppressed": suppressed,
                    })
                else:
                    status = "OK" if not new else f"{len(new)} HAZARD(S)"
                    if suppressed:
                        status += f" (+{len(suppressed)} suppressed)"
                    print(f"{name:16s} p={p:<3d} {len(num.tasks):5d} tasks, "
                          f"{rep.n_pairs_checked:6d} pairs: {status}")
                    for d in new:
                        print(f"    [{d['kind']}] {d['message']}")
                failures += bool(new)
            else:
                sched = num.schedule(SANDY_BRIDGE)
                rep1 = check_conservation(num.tasks, num.ledger, num.overhead_ledger)
                rep2 = check_schedule(num.tasks, sched)
                docs = [
                    {"matrix": name, "threads": p, "kind": "conservation",
                     "message": str(f)}
                    for f in list(rep1.findings) + list(rep2.findings)
                ]
                new, suppressed = apply_baseline(args.checker, docs, base_fps)
                all_docs.extend(docs)
                if as_json:
                    configs.append({
                        "matrix": name, "threads": p,
                        "tasks": len(num.tasks),
                        "ok": not new,
                        "findings": new,
                        "suppressed": suppressed,
                    })
                else:
                    status = "OK" if not new else f"{len(new)} FINDING(S)"
                    if suppressed:
                        status += f" (+{len(suppressed)} suppressed)"
                    print(f"{name:16s} p={p:<3d} {len(num.tasks):5d} tasks: "
                          f"{status}")
                    for d in new:
                        print(f"    {d['message']}")
                failures += bool(new)
    if args.write_baseline:
        n = write_baseline(args.write_baseline, args.checker, all_docs)
        print(f"wrote baseline {args.write_baseline} ({n} fingerprint(s))",
              file=sys.stderr)
    if as_json:
        print(json.dumps({
            "checker": args.checker,
            "ok": failures == 0,
            "configs": configs,
        }, indent=2))
    else:
        print(f"analyze {args.checker}: {failures} failing configuration(s)")
    return 1 if failures else 0


def _cmd_trace(args) -> int:
    import json
    import time

    from .obs import (
        Tracer,
        check_ledger_tree,
        span_tree,
        to_jsonl,
        to_perfetto,
        top_spans,
        tracing,
        validate_perfetto,
    )

    A = _load(args.matrix)
    machine = XEON_PHI if args.machine == "xeonphi" else SANDY_BRIDGE
    rng = np.random.default_rng(args.seed)
    b = rng.standard_normal(A.n_rows)

    tracer = Tracer(wall_clock=time.perf_counter if args.wall else None)
    pipeline = None
    schedule = None
    sched_tasks = None
    sched_labels = None
    with tracing(tracer):
        with tracer.span("solve") as root:
            root.set(matrix=args.matrix, solver=args.solver, n=A.n_rows, nnz=A.nnz)
            if args.solver == "klu":
                solver = KLU()
            else:
                solver = Basker(n_threads=args.threads)
            sym = solver.analyze(A)
            num = solver.factor(A, symbolic=sym)
            num_factor = num  # keeps the task DAG; refactors drop it
            pipeline = sym.ledger.copy()
            pipeline.add(num.ledger)
            A_cur = A
            for k in range(args.refactor):
                A_cur = CSC(A.n_rows, A.n_cols, A.indptr, A.indices,
                            A.data * (1.0 + 0.01 * (k + 1)))
                num = solver.refactor_fast(A_cur, num)
                pipeline.add(num.ledger)
            if args.fault:
                # Inject one deterministic fault and trace the recovery
                # ladder; rung spans land under this root with their
                # ledgers attached, so conservation still checks out.
                from .resilience.chaos import _site_for
                from .resilience.faults import FaultPlan, FaultSpec, fault_matrix
                from .resilience.recovery import run_ladder

                site = _site_for(args.fault, args.solver, warm=True)
                with FaultPlan([FaultSpec(site=site, kind=args.fault)],
                               label=f"trace:{args.fault}"):
                    A_cur = CSC(A.n_rows, A.n_cols, A.indptr, A.indices,
                                A.data * 1.05)
                    A_cur = fault_matrix("sequence.matrix", A_cur)
                    prior = num if np.array_equal(A_cur.indices, A.indices) else None
                    x, num, report = run_ladder(
                        solver, A_cur, b, symbolic=sym, prior=prior,
                        label=args.matrix,
                    )
                pipeline.add(report.ledger)
                root.set(fault=args.fault, fault_site=site,
                         recovered_by=report.succeeded)
            else:
                x = solver.solve(num, b)
            root.attach(pipeline)
            if args.solver == "basker":
                schedule = num_factor.schedule(machine)
                sched_tasks = num_factor.tasks
                sched_labels = num_factor.task_labels
    residual = solve_residual(A_cur, x, b)

    ledger_problems = check_ledger_tree(tracer)
    doc = to_perfetto(tracer, machine, schedule=schedule,
                      schedule_tasks=sched_tasks, schedule_labels=sched_labels)
    perfetto_problems = validate_perfetto(doc)
    jsonl = to_jsonl(tracer, machine)
    tree = span_tree(tracer, machine)

    base = args.output
    if base is None:
        safe = "".join(c if c.isalnum() or c in "-._" else "_" for c in args.matrix)
        base = f"TRACE_{safe}_{args.solver}"
    perfetto_path = f"{base}.perfetto.json"
    jsonl_path = f"{base}.jsonl"
    with open(perfetto_path, "w") as fh:
        json.dump(doc, fh)
    with open(jsonl_path, "w") as fh:
        fh.write(jsonl)

    ok = not ledger_problems and not perfetto_problems
    snap = tracer.metrics.snapshot()
    top = top_spans(tracer, machine, args.top) if args.top else None
    if args.format == "json":
        print(json.dumps({
            "matrix": args.matrix,
            "solver": args.solver,
            "threads": args.threads,
            "machine": machine.name,
            "ok": ok,
            "ledger_problems": ledger_problems,
            "perfetto_problems": perfetto_problems,
            "n_spans": len(tracer.spans),
            "span_names": sorted({s.name for s in tracer.spans}),
            "tree": tree.splitlines(),
            "top": top,
            "metrics": snap,
            "residual": residual,
            "outputs": {"perfetto": perfetto_path, "jsonl": jsonl_path},
        }, indent=2))
    else:
        print(f"trace: {args.matrix} via {args.solver} "
              f"(threads={args.threads}, machine={machine.name})")
        print(tree)
        if top is not None:
            from .bench.report import format_table

            print(format_table(
                ["span", "count", "modeled_s", "% of root"],
                [[r["name"], r["count"], r["modeled_s"],
                  f"{r['pct_of_root']:.1f}"] for r in top],
                title=f"top {len(top)} span name(s) by total modeled time",
            ))
        if snap["counters"]:
            print("counters:")
            for k, v in snap["counters"].items():
                print(f"  {k} = {v:g}")
        if snap["gauges"]:
            print("gauges:")
            for k, v in snap["gauges"].items():
                print(f"  {k} = {v:g}")
        print(f"scaled residual = {residual:.3e}")
        for prob in ledger_problems:
            print(f"LEDGER: {prob}")
        for prob in perfetto_problems:
            print(f"PERFETTO: {prob}")
        print(f"wrote {perfetto_path}")
        print(f"wrote {jsonl_path}")
        print(f"ledger consistency: {'OK' if ok else 'FAIL'}")
    return 0 if ok else 1


def _cmd_chaos(args) -> int:
    import json

    from .resilience.chaos import run_chaos
    from .resilience.faults import FAULT_KINDS

    kinds = args.kind or list(FAULT_KINDS)
    doc = run_chaos(
        names=args.matrix or None,
        kinds=kinds,
        solver=args.solver,
        steps=args.steps,
        tol=args.tol,
        warm=not args.cold,
    )
    if args.output:
        with open(args.output, "w") as fh:
            json.dump(doc, fh, indent=2)
    failures = doc["failures"]
    if args.format == "json":
        print(json.dumps(doc, indent=2))
    else:
        for case in doc["cases"]:
            rungs = [s.get("rung") for s in case["steps"] if s.get("rung")]
            print(f"{case['matrix']:16s} {case['kind']:13s} "
                  f"{case['classification']:15s} events={case['events']} "
                  f"rungs={rungs}")
        print(f"chaos: {len(doc['cases'])} case(s), "
              f"summary={doc['summary']}, {len(failures)} failure(s)")
        for f in failures:
            print(f"FAILURE: {f['matrix']} x {f['kind']}: {f['classification']}")
    if args.output:
        print(f"wrote {args.output}", file=sys.stderr)
    return 1 if failures else 0


def _fmt_q(snapshot, key) -> str:
    if snapshot is None:
        return "-"
    v = snapshot.get(key)
    return "-" if v is None else f"{v:.3e}"


def _cmd_profile(args) -> int:
    """``repro profile``: continuous-profiling run over a same-pattern
    solve sequence (the Xyce transient traffic shape, or jittered
    sequences of suite matrices), producing PROFILE.json + dashboard."""
    import json
    import time

    from .bench.report import format_table
    from .obs import run_profile
    from .obs.calibrate import fit_machine_model
    from .parallel.ledger import CostLedger

    machine = XEON_PHI if args.machine == "xeonphi" else SANDY_BRIDGE
    wall = None if args.no_wall else time.perf_counter
    if args.calibrate and wall is None:
        print("profile: --calibrate needs wall capture; drop --no-wall",
              file=sys.stderr)
        return 2

    runs = {}
    if args.matrix:
        # Suite mode: each matrix becomes its own same-pattern sequence
        # (deterministic value jitter), profiled independently so the
        # drift detectors never see a pattern switch as an anomaly.
        for name in args.matrix:
            A = _load(name)
            rng = np.random.default_rng(args.seed)
            seq = [
                CSC(A.n_rows, A.n_cols, A.indptr, A.indices,
                    A.data * (1.0 + 0.01 * rng.standard_normal(A.nnz)))
                for _ in range(args.steps)
            ]
            runs[name] = run_profile(
                matrices=seq, solver=args.solver, machine=machine,
                wall_clock=wall, fault_seed=args.fault,
            )
    else:
        runs["xyce1_analog"] = run_profile(
            steps=args.steps, solver=args.solver, machine=machine,
            wall_clock=wall, fault_seed=args.fault,
        )

    anomalies = [
        {"run": label, **event}
        for label in sorted(runs)
        for event in runs[label]["anomalies"]
    ]

    calibration = None
    if args.calibrate:
        samples = [
            (name, CostLedger(**led), wall_s)
            for label in sorted(runs)
            for name, led, wall_s in runs[label]["samples"]
        ]
        calibration = fit_machine_model(samples, base=machine).to_dict()

    doc = {
        "schema": "repro.profile.v1",
        "machine": machine.name,
        "solver": args.solver,
        "steps": args.steps,
        "fault_seed": args.fault,
        "runs": runs,
        "anomalies": anomalies,
        "calibration": calibration,
    }
    with open(args.output, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")

    faulted = args.fault is not None
    ok = bool(anomalies) if faulted else not anomalies

    if args.format == "json":
        print(json.dumps({**doc, "ok": ok}, indent=2, sort_keys=True))
    else:
        for label in sorted(runs):
            prof = runs[label]
            rows = []
            for phase in sorted(prof["phases"]):
                m = prof["phases"][phase]["modeled"]
                w = prof["phases"][phase]["wall"]
                rows.append([
                    phase, m["count"],
                    _fmt_q(m, "p50"), _fmt_q(m, "p95"), _fmt_q(m, "p99"),
                    _fmt_q(m, "max"),
                    _fmt_q(w, "p50"), _fmt_q(w, "p95"), _fmt_q(w, "p99"),
                ])
            print(format_table(
                ["phase", "count", "model p50", "model p95", "model p99",
                 "model max", "wall p50", "wall p95", "wall p99"],
                rows,
                title=f"{label}: {prof['steps']} step(s), n={prof['n']}, "
                      f"solver={prof['solver']}, machine={prof['machine']}",
            ))
            print()
        if anomalies:
            print(f"{len(anomalies)} anomaly event(s):")
            for e in anomalies:
                detail = {k: v for k, v in e.items()
                          if k not in ("run", "event", "step")}
                print(f"  [{e['run']}] step {e['step']} {e['event']} {detail}")
        else:
            print("no anomaly events")
        if calibration is not None:
            rows = [
                [kind, r["count"], f"{r['wall_s']:.3e}",
                 f"{r['modeled_default_s']:.3e}", f"{r['modeled_fitted_s']:.3e}",
                 "-" if r["ratio_fitted"] is None else f"{r['ratio_fitted']:.2f}",
                 "FLAG" if r["flagged"] else ""]
                for kind, r in sorted(calibration["residuals"].items())
            ]
            print()
            print(format_table(
                ["span kind", "count", "wall_s", "model default",
                 "model fitted", "fit ratio", ""],
                rows,
                title=f"calibration: {calibration['n_samples']} sample(s), "
                      f"r2={calibration['r2']:.3f}, "
                      f"fitted {', '.join(calibration['fitted'])}",
            ))
        print(f"wrote {args.output}")
        verdict = ("expected >=1 anomaly on the faulted run"
                   if faulted else "expected 0 anomalies on the clean run")
        print(f"profile: {'OK' if ok else 'FAIL'} ({verdict}; "
              f"got {len(anomalies)})")
    return 0 if ok else 1


def _cmd_serve(args) -> int:
    """``repro serve``: deterministic multi-tenant soak of the solve
    service — admission control, deadlines, retries, cache eviction,
    circuit breaking, degradation tiers — writing SERVE_report.json and
    gating on the report's invariants (and optionally a golden copy)."""
    import json

    from .bench.report import format_table
    from .serve.sim import default_tenants, run_soak, report_to_json

    specs = default_tenants(args.requests)
    if args.tenants < len(specs):
        specs = specs[: args.tenants]
    report = run_soak(specs=specs, seed=args.seed, n_faults=args.faults)
    text = report_to_json(report)

    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(text)
    if args.write_golden:
        with open(args.write_golden, "w", encoding="utf-8") as fh:
            fh.write(text)
        print(f"wrote golden {args.write_golden}", file=sys.stderr)

    golden_ok = True
    if args.check_golden:
        with open(args.check_golden, "r", encoding="utf-8") as fh:
            golden_ok = fh.read() == text
    ok = bool(report["ok"]) and golden_ok

    if args.format == "json":
        print(json.dumps({**report, "golden_ok": golden_ok, "ok": ok},
                         indent=2, sort_keys=True))
    else:
        rows = [
            [name, acct["accepted"], acct["rejected"],
             _fmt_q(acct["latency"], "p50"), _fmt_q(acct["latency"], "p95"),
             _fmt_q(acct["latency"], "p99"),
             f"{acct['modeled_seconds']:.3e}"]
            for name, acct in sorted(report["per_tenant"].items())
        ]
        print(format_table(
            ["tenant", "accepted", "rejected", "lat p50", "lat p95",
             "lat p99", "modeled_s"],
            rows,
            title=f"serve soak: {report['n_requests']} request(s), "
                  f"seed={report['seed']}, "
                  f"{len(report['tenants'])} tenant(s)"))
        print(f"rejects: " + (", ".join(
            f"{k}={v}" for k, v in report["reject_reasons"].items()) or "none"))
        print(f"shed={report['shed_total']:g} retries={report['retries']:g} "
              f"breaker trips/resets/reopens="
              f"{report['breaker_totals']['trips']}/"
              f"{report['breaker_totals']['resets']}/"
              f"{report['breaker_totals']['reopens']}")
        inv = report["invariants"]
        print(f"invariants: untyped={len(inv['untyped_escapes'])} "
              f"unverified={len(inv['unverified_answers'])} "
              f"queue_bound={'OK' if inv['queue_bound_respected'] else 'FAIL'}")
        if args.check_golden:
            print(f"golden vs {args.check_golden}: "
                  f"{'OK' if golden_ok else 'MISMATCH'}")
        if args.output:
            print(f"wrote {args.output}")
        print(f"serve: {'OK' if ok else 'FAIL'}")
    return 0 if ok else 1


def _cmd_bench(args) -> int:
    from .bench.wallclock import (
        SPEEDUP_FLOORS,
        check_regression,
        load_json,
        run_wallclock,
        save_json,
    )

    doc = run_wallclock(
        matrices=args.matrix or None,
        xyce_matrices=args.xyce,
        repeats=args.repeats,
        quick=args.quick,
        seed=args.seed,
    )
    for key in sorted(doc["cases"]):
        case = doc["cases"][key]
        if "speedup" in case:
            print(f"{key:28s} ref {case['reference_s']:.4f}s  "
                  f"vec {case['vectorized_s']:.4f}s  "
                  f"speedup {case['speedup']:.2f}x")
        else:
            print(f"{key:28s} {case['seconds']:.4f}s")
    s = doc["summary"]
    print(f"xyce sequence speedup: {s['xyce_refactor_speedup']:.2f}x   "
          f"min refactor: {s['min_refactor_speedup']:.2f}x   "
          f"min solve: {s['min_solve_speedup']:.2f}x   "
          f"min factor_blocked: {s['min_factor_blocked_speedup']:.2f}x")
    save_json(doc, args.output)
    print(f"wrote {args.output}")
    if args.baseline_out:
        baseline = dict(doc)
        baseline["floors"] = dict(SPEEDUP_FLOORS)
        save_json(baseline, args.baseline_out)
        print(f"wrote baseline {args.baseline_out}")
    if args.check:
        baseline = load_json(args.baseline)
        failures = check_regression(doc, baseline, tolerance=args.tolerance)
        for f in failures:
            print(f"REGRESSION: {f}")
        print(f"bench check vs {args.baseline}: "
              f"{'FAIL' if failures else 'OK'} ({len(failures)} failure(s))")
        return 1 if failures else 0
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("info", help="structural report for a matrix")
    p.add_argument("matrix", help="MatrixMarket path or a built-in suite name")
    p.add_argument("--fill", action="store_true", help="also factor with KLU for fill density")
    p.set_defaults(fn=_cmd_info)

    p = sub.add_parser("spy", help="ASCII pattern plot")
    p.add_argument("matrix")
    p.add_argument("--order", choices=["natural", "btf", "basker"], default="natural")
    p.add_argument("--size", type=int, default=48)
    p.add_argument("--threads", type=int, default=4)
    p.set_defaults(fn=_cmd_spy)

    p = sub.add_parser("solve", help="factor + solve with a chosen solver")
    p.add_argument("matrix")
    p.add_argument("--solver", choices=["basker", "klu", "pmkl"], default="basker")
    p.add_argument("--threads", type=int, default=8)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(fn=_cmd_solve)

    p = sub.add_parser("suite", help="list/emit the built-in matrix suite")
    p.add_argument("--emit", help="suite matrix name to write as MatrixMarket")
    p.add_argument("--output", help="output path for --emit")
    p.set_defaults(fn=_cmd_suite)

    p = sub.add_parser("analyze",
                       help="race/conservation/lint/domains/effects/shapes "
                            "verification")
    p.add_argument("checker",
                   choices=["hazards", "conservation", "lint", "domains",
                            "effects", "shapes", "all"])
    p.add_argument("--matrix", action="append",
                   help="suite name or .mtx path (repeatable; default: whole suite)")
    p.add_argument("--threads", type=int, nargs="+", default=[1, 4, 16],
                   help="thread counts to analyze at (default: 1 4 16)")
    p.add_argument("--pipeline", type=int, default=None,
                   help="pipeline_columns chunk size (default: whole-block tasks)")
    p.add_argument("--format", choices=["human", "json"], default="human",
                   help="output format (default: human)")
    p.add_argument("--path", action="append",
                   help="domains/effects/shapes only: check these file(s) "
                        "against the package contracts instead of the whole "
                        "tree (repeatable)")
    p.add_argument("--plans", action="store_true",
                   help="effects/shapes only: also audit compiled triangular/"
                        "refactor schedules (E4 write disjointness, S1/S2 "
                        "buffer bounds)")
    p.add_argument("--baseline",
                   help="suppress findings fingerprinted in this baseline JSON; "
                        "exit nonzero only on new findings")
    p.add_argument("--write-baseline",
                   help="write the current findings as a baseline JSON")
    p.set_defaults(fn=_cmd_analyze)

    p = sub.add_parser("trace", help="traced solve: span tree + Perfetto/JSONL export")
    p.add_argument("matrix")
    p.add_argument("--solver", choices=["klu", "basker"], default="klu")
    p.add_argument("--threads", type=int, default=4,
                   help="basker thread count (default 4)")
    p.add_argument("--refactor", type=int, default=1,
                   help="values-only refactorization replays to trace (default 1)")
    p.add_argument("--machine", choices=["sandybridge", "xeonphi"],
                   default="sandybridge")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--wall", action="store_true",
                   help="also record wall-clock per span (harness boundary only)")
    p.add_argument("--fault",
                   choices=["perturb", "nan", "pivot_zero", "drop_update",
                            "pattern_drift"],
                   help="inject one deterministic fault and trace the "
                        "recovery ladder instead of the plain solve")
    p.add_argument("--top", type=int, default=None, metavar="N",
                   help="also print the top N span names by total modeled "
                        "time (count, total, %% of root)")
    p.add_argument("--format", choices=["human", "json"], default="human")
    p.add_argument("--output",
                   help="output base path (default: TRACE_<matrix>_<solver>)")
    p.set_defaults(fn=_cmd_trace)

    p = sub.add_parser("profile",
                       help="continuous profiling: per-phase percentile "
                            "histograms, flight recorder + drift anomalies, "
                            "MachineModel calibration")
    p.add_argument("--steps", type=int, default=25,
                   help="same-pattern sequence length (default 25)")
    p.add_argument("--matrix", action="append",
                   help="suite name or .mtx path (repeatable); default: the "
                        "Xyce transient Jacobian sequence")
    p.add_argument("--solver", choices=["klu", "basker"], default="klu")
    p.add_argument("--machine", choices=["sandybridge", "xeonphi"],
                   default="sandybridge")
    p.add_argument("--calibrate", action="store_true",
                   help="fit MachineModel cost coefficients from the "
                        "collected (ledger, wall) span pairs")
    p.add_argument("--fault", type=int, default=None, metavar="SEED",
                   help="arm a seeded FaultPlan on the replay path (chaos "
                        "mode: the run FAILS unless >=1 anomaly fires)")
    p.add_argument("--no-wall", action="store_true",
                   help="skip wall-clock capture (fully bit-deterministic "
                        "output; incompatible with --calibrate)")
    p.add_argument("--seed", type=int, default=0,
                   help="value-jitter seed for --matrix sequences (default 0)")
    p.add_argument("--format", choices=["human", "json"], default="human")
    p.add_argument("--output", default="PROFILE.json",
                   help="profile artifact path (default: PROFILE.json)")
    p.set_defaults(fn=_cmd_profile)

    p = sub.add_parser("chaos", help="fault-injection sweep over the matrix suite")
    p.add_argument("--matrix", action="append",
                   help="suite name or .mtx path (repeatable; default: Table I suite)")
    p.add_argument("--kind", action="append",
                   choices=["perturb", "nan", "pivot_zero", "drop_update",
                            "pattern_drift"],
                   help="fault kind(s) to inject (repeatable; default: all)")
    p.add_argument("--solver", choices=["klu", "basker"], default="klu")
    p.add_argument("--steps", type=int, default=2,
                   help="same-pattern sequence steps per case (default 2)")
    p.add_argument("--tol", type=float, default=1e-10,
                   help="componentwise backward-error acceptance (default 1e-10)")
    p.add_argument("--cold", action="store_true",
                   help="cold-start every (matrix, kind) cell instead of "
                        "sharing one warm factorization per matrix")
    p.add_argument("--format", choices=["human", "json"], default="human")
    p.add_argument("--output", help="also write the findings JSON to this path")
    p.set_defaults(fn=_cmd_chaos)

    p = sub.add_parser("serve",
                       help="deterministic multi-tenant soak of the solve "
                            "service (admission, deadlines, retries, "
                            "breakers, degradation tiers)")
    p.add_argument("--requests", type=int, default=200,
                   help="total request budget across tenants (default 200)")
    p.add_argument("--tenants", type=int, default=4,
                   help="number of tenant profiles to run (default 4: "
                        "transient, sweep, chaos, latency)")
    p.add_argument("--seed", type=int, default=42,
                   help="soak seed: traffic, faults, retries (default 42)")
    p.add_argument("--faults", type=int, default=4,
                   help="injected kernel faults via a seeded FaultPlan "
                        "(default 4; 0 disables)")
    p.add_argument("--output", default="SERVE_report.json",
                   help="report path (default: SERVE_report.json)")
    p.add_argument("--check-golden", metavar="FILE",
                   help="fail unless the report is byte-identical to FILE")
    p.add_argument("--write-golden", metavar="FILE",
                   help="also write the report as a new golden copy")
    p.add_argument("--format", choices=["human", "json"], default="human")
    p.set_defaults(fn=_cmd_serve)

    p = sub.add_parser("bench", help="wall-clock microbenchmarks + regression gate")
    p.add_argument("--quick", action="store_true",
                   help="small matrix set and short Xyce sequence (CI mode)")
    p.add_argument("--matrix", action="append",
                   help="suite matrix to bench (repeatable; default: built-in set)")
    p.add_argument("--xyce", type=int, default=50,
                   help="length of the Xyce refactorization sequence (default 50)")
    p.add_argument("--repeats", type=int, default=3,
                   help="timing repetitions, best-of (default 3)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--output", default="BENCH_wallclock.json",
                   help="result JSON path (default: BENCH_wallclock.json)")
    p.add_argument("--baseline", default="benchmarks/results/BENCH_wallclock_baseline.json",
                   help="baseline JSON for --check")
    p.add_argument("--baseline-out",
                   help="also write the result (plus speedup floors) as a new baseline")
    p.add_argument("--check", action="store_true",
                   help="exit nonzero if speedups regress >tolerance vs the baseline")
    p.add_argument("--tolerance", type=float, default=0.25,
                   help="allowed relative speedup drop for --check (default 0.25)")
    p.set_defaults(fn=_cmd_bench)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
