"""Amesos2-style unified solver interface.

Basker ships inside Trilinos behind the Amesos2 adapter layer, which
gives every direct solver the same four-phase contract:
``preOrdering -> symbolicFactorization -> numericFactorization ->
solve``.  :class:`DirectSolver` reproduces that contract over the three
solvers in this package, so downstream code (e.g. a Newton loop) can
switch solvers with a string.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .core import Basker
from .errors import SingularMatrixError
from .obs.tracer import get_tracer
from .parallel.machine import MachineModel, SANDY_BRIDGE
from .solvers import KLU, SupernodalLU, slu_mt
from .solvers.extras import refine_solve, solve_multi, solve_transpose
from .sparse.csc import CSC
from .sparse.verify import validate_rhs

__all__ = ["DirectSolver", "available_solvers"]

_REGISTRY = {
    "basker": lambda opts: Basker(
        n_threads=opts.get("n_threads", 8),
        pivot_tol=opts.get("pivot_tol", 0.001),
        supernodal_separators=opts.get("supernodal_separators", False),
        nd_leaves=opts.get("nd_leaves"),
        static_perturb=opts.get("static_perturb", 0.0),
    ),
    "klu": lambda opts: KLU(
        pivot_tol=opts.get("pivot_tol", 0.001),
        scale=opts.get("scale"),
        static_perturb=opts.get("static_perturb", 0.0),
    ),
    "pardiso": lambda opts: SupernodalLU(),
    "superlu_mt": lambda opts: slu_mt(),
}


def available_solvers() -> list:
    return sorted(_REGISTRY)


class DirectSolver:
    """Four-phase Amesos2-like wrapper: analyze, factor, solve.

    >>> solver = DirectSolver("basker", n_threads=8)
    >>> solver.symbolic_factorization(A)
    >>> solver.numeric_factorization(A)
    >>> x = solver.solve(b)
    """

    def __init__(self, name: str, **options):
        key = name.lower()
        if key not in _REGISTRY:
            raise ValueError(f"unknown solver {name!r}; available: {available_solvers()}")
        self.name = key
        self.options = options
        self._impl = _REGISTRY[key](options)
        self._symbolic = None
        self._numeric = None
        self._n = None
        self._pattern = None  # (indptr, indices) of the factored matrix

    # ------------------------------------------------------------------
    def symbolic_factorization(self, A: CSC) -> "DirectSolver":
        self._symbolic = self._impl.analyze(A)
        self._n = A.n_rows
        self._numeric = None
        self._pattern = None
        return self

    def numeric_factorization(self, A: CSC) -> "DirectSolver":
        """Factor (or refactor when the pattern was already analyzed).

        When a prior numeric factorization exists and ``A`` has exactly
        the same pattern, the solver's values-only ``refactor_fast``
        path is taken (fixed pivot order, compiled elimination
        schedule).  If a reused pivot degenerates
        (:class:`~repro.errors.SingularMatrixError`), the call falls
        back to a full numeric factorization with fresh pivoting — the
        standard klu_refactor/klu_factor usage pattern.
        """
        if self._symbolic is None:
            self.symbolic_factorization(A)
        prior = self._numeric
        if (
            prior is not None
            and self._pattern is not None
            and np.array_equal(A.indptr, self._pattern[0])
            and np.array_equal(A.indices, self._pattern[1])
        ):
            try:
                self._numeric = self._impl.refactor_fast(A, prior)
                return self
            except SingularMatrixError:
                # fresh pivoting below
                get_tracer().metrics.incr("solver.singular_fallback")
        self._numeric = self._impl.factor(A, symbolic=self._symbolic)
        self._pattern = (A.indptr, A.indices)
        return self

    def solve(self, b: np.ndarray) -> np.ndarray:
        self._require_numeric()
        b = validate_rhs(b, self._n)
        return solve_multi(self._impl, self._numeric, b)

    def solve_transpose(self, b: np.ndarray) -> np.ndarray:
        self._require_numeric()
        b = validate_rhs(b, self._n)
        return solve_transpose(self._numeric, b)

    def solve_refined(self, A: CSC, b: np.ndarray, max_steps: int = 3):
        """Solve with iterative refinement.

        Returns ``(x, history)`` — the refined solution and the scaled
        residual after each refinement evaluation.  Raises
        :class:`~repro.errors.RefinementDivergedError` when the
        residual grows instead of shrinking.
        """
        self._require_numeric()
        return refine_solve(self._impl, self._numeric, A, b, max_steps=max_steps)

    def solve_resilient(
        self,
        A: CSC,
        b: np.ndarray,
        tol: float = 1e-10,
        refine_steps: int = 4,
        label: str = "",
        before_rung=None,
    ):
        """Solve through the recovery ladder (see
        :func:`repro.resilience.recovery.run_ladder`).

        Starts from the cheap values-only replay when a prior numeric
        factorization with the same pattern exists, escalating to full
        refactorization, strict re-pivoting, static perturbation +
        refinement, and finally a dense LU — each candidate verified by
        its componentwise backward error before acceptance.  Returns
        ``(x, report)``; raises
        :class:`~repro.errors.RecoveryExhaustedError` when every rung
        fails.  ``before_rung(rung, report)`` is forwarded to
        :func:`~repro.resilience.recovery.run_ladder` for deadline or
        lease checks between rungs.
        """
        from .resilience.recovery import run_ladder

        if self._symbolic is None:
            self.symbolic_factorization(A)
        prior = self._numeric
        if prior is not None and not (
            self._pattern is not None
            and np.array_equal(A.indptr, self._pattern[0])
            and np.array_equal(A.indices, self._pattern[1])
        ):
            prior = None  # pattern changed: the replay rung cannot apply

        def make_variant(**overrides):
            return _REGISTRY[self.name]({**self.options, **overrides})

        x, numeric, report = run_ladder(
            self._impl,
            A,
            b,
            symbolic=self._symbolic,
            prior=prior,
            make_variant=make_variant,
            tol=tol,
            refine_steps=refine_steps,
            label=label,
            before_rung=before_rung,
        )
        if numeric is not None:
            self._numeric = numeric
            self._pattern = (A.indptr, A.indices)
        return x, report

    def health_report(
        self,
        A: CSC,
        x: Optional[np.ndarray] = None,
        b: Optional[np.ndarray] = None,
        tol: float = 1e-10,
    ):
        """Numerical-health diagnostics of the current factorization
        (see :func:`repro.resilience.health.factor_health`)."""
        from .resilience.health import factor_health

        self._require_numeric()
        return factor_health(self._impl, self._numeric, A, x=x, b=b, tol=tol)

    # ------------------------------------------------------------------
    @property
    def factor_nnz(self) -> int:
        self._require_numeric()
        return self._numeric.factor_nnz

    def factor_seconds(
        self, machine: MachineModel = SANDY_BRIDGE, n_threads: Optional[int] = None
    ) -> float:
        """Modelled numeric-factorization time on a machine model."""
        self._require_numeric()
        num = self._numeric
        if hasattr(num, "schedule"):  # Basker / supernodal: parallel schedule
            if self.name == "basker":
                return num.factor_seconds(machine, n_threads=n_threads)
            return num.factor_seconds(machine, n_threads=n_threads or 1)
        return num.factor_seconds(machine)

    def _require_numeric(self) -> None:
        if self._numeric is None:
            raise RuntimeError("numeric_factorization has not been run")

    def __repr__(self) -> str:
        state = "numeric" if self._numeric is not None else (
            "symbolic" if self._symbolic is not None else "empty"
        )
        return f"DirectSolver({self.name!r}, state={state})"
