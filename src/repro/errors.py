"""Package-wide exception types.

Every error raised by this package for a *user-facing* reason derives
from :class:`ReproError`, so callers can catch one type.  The concrete
subclasses also inherit the builtin exception they historically were
(``ValueError``), so existing ``except ValueError`` call sites keep
working.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "SingularMatrixError",
    "StructureError",
    "TaskGraphError",
    "AnalysisError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class SingularMatrixError(ReproError, ValueError):
    """Raised when a factorization meets a structurally or numerically
    singular pivot and static perturbation is disabled."""

    def __init__(self, message: str, column: int = -1):
        super().__init__(message)
        self.column = column


class StructureError(ReproError, ValueError):
    """Raised when an input violates a structural precondition
    (non-square block, broken separator property, bad permutation)."""


class TaskGraphError(ReproError, ValueError):
    """Raised when a task DAG is malformed: a task's ``deps`` reference
    an unknown task id, a duplicate task id appears, or the dependency
    graph contains a cycle (which would deadlock the p2p runtime)."""


class AnalysisError(ReproError, ValueError):
    """Raised by :mod:`repro.analysis` when a checker cannot run
    (bad arguments, unknown matrix, missing schedule data)."""
