"""Package-wide exception types."""

from __future__ import annotations

__all__ = ["SingularMatrixError", "StructureError"]


class SingularMatrixError(ValueError):
    """Raised when a factorization meets a structurally or numerically
    singular pivot and static perturbation is disabled."""

    def __init__(self, message: str, column: int = -1):
        super().__init__(message)
        self.column = column


class StructureError(ValueError):
    """Raised when an input violates a structural precondition
    (non-square block, broken separator property, bad permutation)."""
