"""Package-wide exception types.

Every error raised by this package for a *user-facing* reason derives
from :class:`ReproError`, so callers can catch one type.  The concrete
subclasses also inherit the builtin exception they historically were
(``ValueError``, ``ZeroDivisionError``), so existing
``except ValueError`` / ``except ZeroDivisionError`` call sites keep
working.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "SingularMatrixError",
    "ZeroPivotError",
    "StructureError",
    "TaskGraphError",
    "AnalysisError",
    "NumericalHealthError",
    "RefinementDivergedError",
    "RecoveryExhaustedError",
    "FaultInjectionError",
    "AdmissionRejectedError",
    "DeadlineExceededError",
    "CacheInvalidatedError",
    "CircuitOpenError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro package.

    ``retryable`` classifies the error for the serving layer's retry
    policy: ``True`` means the same request may succeed if simply
    re-submitted (a transient numerical upset, a cache entry evicted
    under the borrower), ``False`` means retrying cannot help (a
    structural precondition violation, an exhausted recovery ladder, an
    explicit admission rejection).
    """

    retryable = False


class SingularMatrixError(ReproError, ValueError):
    """Raised when a factorization meets a structurally or numerically
    singular pivot and static perturbation is disabled."""

    def __init__(self, message: str, column: int = -1):
        super().__init__(message)
        self.column = column


class ZeroPivotError(SingularMatrixError, ZeroDivisionError):
    """A triangular solve hit a zero (or missing) diagonal entry.

    Inherits ``ZeroDivisionError`` because that is what the solve
    kernels historically raised; inherits
    :class:`SingularMatrixError` because a zero diagonal in a factor is
    a singularity, so the recovery ladder treats both alike.
    """


class StructureError(ReproError, ValueError):
    """Raised when an input violates a structural precondition
    (non-square block, broken separator property, bad permutation,
    malformed right-hand side)."""


class TaskGraphError(ReproError, ValueError):
    """Raised when a task DAG is malformed: a task's ``deps`` reference
    an unknown task id, a duplicate task id appears, or the dependency
    graph contains a cycle (which would deadlock the p2p runtime)."""


class AnalysisError(ReproError, ValueError):
    """Raised by :mod:`repro.analysis` when a checker cannot run
    (bad arguments, unknown matrix, missing schedule data)."""


class NumericalHealthError(ReproError, ArithmeticError):
    """A numerical-health check failed: non-finite values in factors or
    solutions, pathological pivot growth, or an unusable condition
    estimate.  ``what`` names the check that tripped.

    Retryable: a health failure on one request is frequently transient
    (a fault, a bad step) and a re-submission re-enters the recovery
    ladder from a pristine input.
    """

    retryable = True

    def __init__(self, message: str, what: str = ""):
        super().__init__(message)
        self.what = what


class RefinementDivergedError(NumericalHealthError):
    """Iterative refinement made the residual *grow* — the factors are
    too inaccurate for refinement to converge.  Carries the residual
    ``history`` observed before giving up."""

    def __init__(self, message: str, history=None):
        super().__init__(message, what="refinement")
        self.history = list(history) if history is not None else []


class RecoveryExhaustedError(ReproError, RuntimeError):
    """Every rung of the recovery ladder failed.  ``attempts`` carries
    the per-rung :class:`~repro.resilience.recovery.RungAttempt`
    records (name, error, backward error) in the order they ran."""

    def __init__(self, message: str, attempts=None):
        super().__init__(message)
        self.attempts = list(attempts) if attempts is not None else []


class FaultInjectionError(ReproError, ValueError):
    """A fault plan is malformed: unknown injection site or fault kind,
    out-of-range parameters, or nested plan activation."""


class AdmissionRejectedError(ReproError, RuntimeError):
    """The serving layer refused to accept a request: the bounded
    admission queue is full, the tenant's token bucket is empty, or the
    service is shedding load in a degraded tier.  ``reason`` is one of
    the :data:`~repro.serve.service.REJECT_REASONS` slugs; ``tenant``
    names the submitting tenant."""

    def __init__(self, message: str, reason: str = "", tenant: str = ""):
        super().__init__(message)
        self.reason = reason
        self.tenant = tenant


class DeadlineExceededError(ReproError, RuntimeError):
    """A request's modeled (or wall) deadline expired.

    Raised *at admission* when the cost estimate from the symbolic
    analysis already exceeds the budget (``report`` is None: no
    factorization ever started), or *mid-ladder* when accumulated
    modeled work crosses the deadline between recovery rungs
    (``report`` carries the partial
    :class:`~repro.resilience.recovery.RecoveryReport`)."""

    def __init__(self, message: str, deadline_s: float = 0.0,
                 elapsed_s: float = 0.0, report=None):
        super().__init__(message)
        self.deadline_s = deadline_s
        self.elapsed_s = elapsed_s
        self.report = report


class CacheInvalidatedError(ReproError, RuntimeError):
    """A borrowed cache entry was evicted or explicitly invalidated
    while the borrower still held its lease.  Retryable: re-submitting
    re-borrows (and, if needed, recomputes) a fresh entry instead of
    silently recomputing under the stale lease."""

    retryable = True

    def __init__(self, message: str, key: str = "", generation: int = -1):
        super().__init__(message)
        self.key = key
        self.generation = generation


class CircuitOpenError(ReproError, RuntimeError):
    """The per-pattern circuit breaker is open and the degraded tier
    cannot absorb an isolated solve, so the request is rejected instead
    of thrashing the shared cache.  ``key`` is the pattern hash."""

    def __init__(self, message: str, key: str = "", trips: int = 0):
        super().__init__(message)
        self.key = key
        self.trips = trips
