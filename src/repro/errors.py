"""Package-wide exception types.

Every error raised by this package for a *user-facing* reason derives
from :class:`ReproError`, so callers can catch one type.  The concrete
subclasses also inherit the builtin exception they historically were
(``ValueError``, ``ZeroDivisionError``), so existing
``except ValueError`` / ``except ZeroDivisionError`` call sites keep
working.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "SingularMatrixError",
    "ZeroPivotError",
    "StructureError",
    "TaskGraphError",
    "AnalysisError",
    "NumericalHealthError",
    "RefinementDivergedError",
    "RecoveryExhaustedError",
    "FaultInjectionError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class SingularMatrixError(ReproError, ValueError):
    """Raised when a factorization meets a structurally or numerically
    singular pivot and static perturbation is disabled."""

    def __init__(self, message: str, column: int = -1):
        super().__init__(message)
        self.column = column


class ZeroPivotError(SingularMatrixError, ZeroDivisionError):
    """A triangular solve hit a zero (or missing) diagonal entry.

    Inherits ``ZeroDivisionError`` because that is what the solve
    kernels historically raised; inherits
    :class:`SingularMatrixError` because a zero diagonal in a factor is
    a singularity, so the recovery ladder treats both alike.
    """


class StructureError(ReproError, ValueError):
    """Raised when an input violates a structural precondition
    (non-square block, broken separator property, bad permutation,
    malformed right-hand side)."""


class TaskGraphError(ReproError, ValueError):
    """Raised when a task DAG is malformed: a task's ``deps`` reference
    an unknown task id, a duplicate task id appears, or the dependency
    graph contains a cycle (which would deadlock the p2p runtime)."""


class AnalysisError(ReproError, ValueError):
    """Raised by :mod:`repro.analysis` when a checker cannot run
    (bad arguments, unknown matrix, missing schedule data)."""


class NumericalHealthError(ReproError, ArithmeticError):
    """A numerical-health check failed: non-finite values in factors or
    solutions, pathological pivot growth, or an unusable condition
    estimate.  ``what`` names the check that tripped."""

    def __init__(self, message: str, what: str = ""):
        super().__init__(message)
        self.what = what


class RefinementDivergedError(NumericalHealthError):
    """Iterative refinement made the residual *grow* — the factors are
    too inaccurate for refinement to converge.  Carries the residual
    ``history`` observed before giving up."""

    def __init__(self, message: str, history=None):
        super().__init__(message, what="refinement")
        self.history = list(history) if history is not None else []


class RecoveryExhaustedError(ReproError, RuntimeError):
    """Every rung of the recovery ladder failed.  ``attempts`` carries
    the per-rung :class:`~repro.resilience.recovery.RungAttempt`
    records (name, error, backward error) in the order they ran."""

    def __init__(self, message: str, attempts=None):
        super().__init__(message)
        self.attempts = list(attempts) if attempts is not None else []


class FaultInjectionError(ReproError, ValueError):
    """A fault plan is malformed: unknown injection site or fault kind,
    out-of-range parameters, or nested plan activation."""
