"""Approximate minimum degree ordering.

Basker (like KLU) reorders every BTF diagonal subblock with AMD before
factoring it (paper, Algorithm 2 line 2).  This implementation follows
the structure of Amestoy/Davis/Duff AMD (ref. [8] in the paper) —
quotient-graph elimination with elements, element absorption and
approximate external degrees — in a compact Python form.  Supervariable
detection is implemented via adjacency hashing; mass elimination of
indistinguishable variables is what keeps the quality close to the
reference code on circuit blocks.
"""

from __future__ import annotations

import numpy as np

from ..contracts import domains
from ..graph.etree import symmetric_pattern
from ..obs.tracer import get_tracer
from ..sparse.csc import CSC

__all__ = ["amd_order"]


@domains(A="matrix[S]", returns="perm[S->S]")
def amd_order(A: CSC, dense_cutoff: float = 10.0) -> np.ndarray:
    """Fill-reducing permutation of a square matrix.

    The ordering is computed on the symmetrized pattern of ``A + A.T``
    with the diagonal removed.  Returns ``perm`` such that
    ``A.permute(perm, perm)`` tends to factor with low fill.

    ``dense_cutoff``: variables with degree > cutoff * sqrt(n) are
    deferred to the end (the usual dense-row guard).
    """
    with get_tracer().span("order.amd"):
        return _amd_order(A, dense_cutoff)


@domains(A="matrix[S]", returns="perm[S->S]")
def _amd_order(A: CSC, dense_cutoff: float = 10.0) -> np.ndarray:
    n = A.n_cols
    if A.n_rows != n:
        raise ValueError("AMD requires a square matrix")
    if n == 0:
        return np.empty(0, dtype=np.int64)
    if n == 1:
        return np.zeros(1, dtype=np.int64)

    B = symmetric_pattern(A)

    # Adjacent-variable sets (no self loops).
    adj = [set() for _ in range(n)]
    for j in range(n):
        rows, _ = B.col(j)
        for i in rows:
            i = int(i)
            if i != j:
                adj[j].add(i)

    dense_limit = max(16.0, dense_cutoff * np.sqrt(n))
    status = np.zeros(n, dtype=np.int8)  # 0 variable, 1 eliminated, 2 dense-deferred
    elem_sets: dict[int, set] = {}       # element id -> variables it covers
    var_elems = [set() for _ in range(n)]  # elements adjacent to each variable
    merged_into = np.full(n, -1, dtype=np.int64)  # supervariable absorption
    weight = np.ones(n, dtype=np.int64)  # size of each supervariable

    # Approximate degree (upper bound) maintained incrementally.
    degree = np.array([len(a) for a in adj], dtype=np.int64)

    for v in range(n):
        if degree[v] > dense_limit:
            status[v] = 2

    order: list[int] = []
    alive = [v for v in range(n) if status[v] == 0]

    # A simple bucketed min-degree selection: rebuild lazily.
    import heapq

    heap = [(int(degree[v]), v) for v in alive]
    heapq.heapify(heap)

    eliminated_count = 0
    target = len(alive)

    while eliminated_count < target:
        # Pop the current minimum-degree variable (lazy deletion).
        while True:
            d, p = heapq.heappop(heap)
            if status[p] == 0 and merged_into[p] == -1 and d == degree[p]:
                break
        # --- Eliminate p: form element Lp.
        Lp = set(adj[p])
        for e in var_elems[p]:
            Lp |= elem_sets[e]
        Lp.discard(p)
        Lp = {u for u in Lp if status[u] == 0 and merged_into[u] == -1 or status[u] == 2}
        status[p] = 1
        order.append(p)
        eliminated_count += weight[p]

        # Absorb the elements of p (they are subsumed by Lp).
        for e in list(var_elems[p]):
            elem_sets.pop(e, None)
        elem_sets[p] = Lp

        # Update each variable in Lp.
        for u in Lp:
            adj[u].discard(p)
            adj[u] -= Lp  # entries now covered by the element
            # Drop references to absorbed elements.
            var_elems[u] = {e for e in var_elems[u] if e in elem_sets}
            var_elems[u].add(p)
            # Approximate external degree: |A_u| + sum of element sizes.
            dv = len(adj[u])
            for e in var_elems[u]:
                dv += len(elem_sets[e]) - 1  # exclude u itself
            degree[u] = dv
            if status[u] == 0:
                heapq.heappush(heap, (int(dv), u))

        # Supervariable detection inside Lp: variables with identical
        # (adj, elems) are indistinguishable -> merge (mass elimination).
        if len(Lp) > 1:
            sig: dict[int, list] = {}
            for u in Lp:
                if status[u] != 0 or merged_into[u] != -1:
                    continue
                h = hash((frozenset(adj[u]), frozenset(var_elems[u])))
                sig.setdefault(h, []).append(u)
            for group in sig.values():
                if len(group) < 2:
                    continue
                group.sort()
                rep = group[0]
                for u in group[1:]:
                    if adj[u] == adj[rep] and var_elems[u] == var_elems[rep]:
                        merged_into[u] = rep
                        weight[rep] += weight[u]
                        # Remove u from all structures.
                        for e in var_elems[u]:
                            elem_sets[e].discard(u)
                        for w in adj[u]:
                            adj[w].discard(u)
                        adj[u].clear()
                        var_elems[u].clear()

    # Expand supervariables: a merged variable is ordered right after
    # its representative.
    expanded: list[int] = []
    followers: dict[int, list] = {}
    for v in range(n):
        r = int(merged_into[v])
        if r != -1:
            # chase chains
            while merged_into[r] != -1:
                r = int(merged_into[r])
            followers.setdefault(r, []).append(v)
    for p in order:
        expanded.append(p)
        expanded.extend(followers.get(p, []))

    # Dense-deferred variables go last.
    for v in range(n):
        if status[v] == 2:
            expanded.append(v)

    perm = np.asarray(expanded, dtype=np.int64)
    if perm.size != n:
        raise AssertionError(f"AMD produced {perm.size} of {n} vertices")
    return perm
