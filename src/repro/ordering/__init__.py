"""Fill-reducing and structure-revealing orderings: AMD, BTF, ND."""

from .amd import amd_order
from .btf import BTFResult, btf
from .nd import NDNode, NDPartition, nd_order, nested_dissection
from .rcm import bandwidth, rcm_order
from .perm import apply_to_vector, compose, identity, invert, is_permutation

__all__ = [
    "amd_order",
    "btf",
    "BTFResult",
    "nested_dissection",
    "nd_order",
    "NDPartition",
    "NDNode",
    "invert",
    "compose",
    "identity",
    "is_permutation",
    "apply_to_vector",
    "rcm_order",
    "bandwidth",
]
