"""Nested-dissection ordering with an explicit binary separator tree.

The fine structure of Basker's big irreducible block (paper §III-C):
the block is reordered by ND on the graph of ``D2 + D2.T`` so that the
permuted matrix becomes the 2-D arrow-of-arrows layout of Figure 3(a).
Basker limits the ND tree to exactly ``p`` leaves (one per thread), so
this implementation takes the leaf count as a parameter instead of
recursing to single vertices.

The bisection is BFS level-set based with a pseudo-peripheral start and
a greedy vertex-separator refinement.  The essential *correctness*
property — no edges between the two sides of a separator — is asserted
in tests, because the parallel numeric factorization silently depends
on it (sibling subtrees never exchange updates).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from ..contracts import domains
from ..graph.etree import symmetric_pattern
from ..obs.tracer import get_tracer
from ..sparse.csc import CSC

__all__ = ["NDNode", "NDPartition", "nested_dissection", "nd_order"]


@dataclass
class NDNode:
    """A node of the binary ND tree, identified by its layout position."""

    id: int
    height: int                 # 0 for leaves, log2(p) for the root
    is_leaf: bool
    vertices: np.ndarray        # original vertex ids, in layout order
    children: Optional[Tuple[int, int]] = None
    parent: int = -1

    @property
    def size(self) -> int:
        return int(self.vertices.size)


@dataclass
class NDPartition:
    """A nested-dissection partition of a square matrix's graph.

    ``A.permute(perm, perm)`` puts the matrix in the 2-D ND layout:
    node ``t`` occupies the contiguous index range
    ``splits[t]:splits[t+1]``.  Nodes are numbered in layout order
    (left subtree, right subtree, separator), so for p = 4 the order is
    leaf, leaf, sep, leaf, leaf, sep, root — matching Figure 3(a).
    """

    perm: np.ndarray
    nodes: List[NDNode]
    splits: np.ndarray
    nleaves: int

    @property
    def n_nodes(self) -> int:
        return len(self.nodes)

    @property
    def root(self) -> int:
        return self.n_nodes - 1

    def leaves(self) -> List[int]:
        return [nd.id for nd in self.nodes if nd.is_leaf]

    def node_range(self, t: int) -> Tuple[int, int]:
        return int(self.splits[t]), int(self.splits[t + 1])

    def ancestors(self, t: int) -> List[int]:
        """Path from ``t``'s parent up to the root (inclusive)."""
        out = []
        p = self.nodes[t].parent
        while p != -1:
            out.append(p)
            p = self.nodes[p].parent
        return out

    def height(self) -> int:
        return self.nodes[self.root].height

    def check_separator_property(self, A: CSC) -> None:
        """Assert no entries connect disjoint sibling subtrees.

        For the permuted matrix B = A.permute(perm, perm), B[i, j] may
        be nonzero only if the node of i is an ancestor-or-self of the
        node of j, or vice versa.
        """
        B = A.permute(self.perm, self.perm)
        node_of = np.empty(B.n_rows, dtype=np.int64)
        for t in range(self.n_nodes):
            lo, hi = self.node_range(t)
            node_of[lo:hi] = t
        anc = [set([t] + self.ancestors(t)) for t in range(self.n_nodes)]
        for j in range(B.n_cols):
            rows, _ = B.col(j)
            tj = int(node_of[j])
            for i in rows:
                ti = int(node_of[int(i)])
                if ti == tj:
                    continue
                if tj not in anc[ti] and ti not in anc[tj]:
                    raise AssertionError(
                        f"entry ({int(i)},{j}) connects unrelated ND nodes {ti} and {tj}"
                    )


# ----------------------------------------------------------------------
# Graph helpers on an adjacency list restricted to a vertex subset
# ----------------------------------------------------------------------


def _build_adjacency(B: CSC) -> List[np.ndarray]:
    adj = []
    for j in range(B.n_cols):
        rows, _ = B.col(j)
        adj.append(rows[rows != j].astype(np.int64))
    return adj


def _components(adj: List[np.ndarray], verts: np.ndarray, member: np.ndarray) -> List[np.ndarray]:
    """Connected components of the induced subgraph on ``verts``.

    ``member[v]`` must be True exactly for v in verts.
    """
    seen = set()
    comps = []
    vset_order = verts.tolist()
    for s in vset_order:
        if s in seen:
            continue
        comp = [s]
        seen.add(s)
        head = 0
        while head < len(comp):
            v = comp[head]
            head += 1
            for w in adj[v]:
                w = int(w)
                if member[w] and w not in seen:
                    seen.add(w)
                    comp.append(w)
        comps.append(np.asarray(sorted(comp), dtype=np.int64))
    comps.sort(key=lambda c: -c.size)
    return comps


def _bfs_levels(adj: List[np.ndarray], member: np.ndarray, root: int) -> List[List[int]]:
    levels = [[root]]
    seen = {root}
    while True:
        nxt = []
        for v in levels[-1]:
            for w in adj[v]:
                w = int(w)
                if member[w] and w not in seen:
                    seen.add(w)
                    nxt.append(w)
        if not nxt:
            return levels
        levels.append(sorted(nxt))


def _pseudo_peripheral(adj: List[np.ndarray], member: np.ndarray, start: int) -> int:
    """Double-BFS heuristic: the far end of a BFS is a good ND root."""
    levels = _bfs_levels(adj, member, start)
    return int(levels[-1][0])


def _min_cover_separator(
    adj: List[np.ndarray],
    left: List[int],
    right: List[int],
    member: np.ndarray,
) -> Tuple[List[int], List[int], List[int]]:
    """Turn an edge bisection into a vertex separator via König's theorem.

    The separator is a *minimum vertex cover* of the bipartite boundary
    graph (boundary-left vs boundary-right vertices), computed from a
    maximum matching by the alternating-reachability construction —
    provably the smallest vertex set whose removal disconnects the two
    sides of this cut.
    """
    lset, rset = set(left), set(right)
    bedges: dict[int, list] = {}
    for u in left:
        nbrs = [int(w) for w in adj[u] if member[w] and int(w) in rset]
        if nbrs:
            bedges[u] = nbrs
    if not bedges:
        return left, right, []

    match_l: dict[int, int] = {}
    match_r: dict[int, int] = {}

    def try_augment(u: int, seen: set) -> bool:
        for w in bedges.get(u, ()):
            if w in seen:
                continue
            seen.add(w)
            if w not in match_r or try_augment(match_r[w], seen):
                match_l[u] = w
                match_r[w] = u
                return True
        return False

    for u in list(bedges):
        if u not in match_l:
            try_augment(u, set())

    # König: Z = unmatched boundary-left + alternating reachability.
    z_left = {u for u in bedges if u not in match_l}
    z_right: set = set()
    frontier = list(z_left)
    while frontier:
        u = frontier.pop()
        for w in bedges.get(u, ()):
            if w not in z_right:
                z_right.add(w)
                if w in match_r and match_r[w] not in z_left:
                    z_left.add(match_r[w])
                    frontier.append(match_r[w])
    cover = ({u for u in bedges if u not in z_left}) | z_right
    new_left = [v for v in left if v not in cover]
    new_right = [v for v in right if v not in cover]
    return new_left, new_right, sorted(cover)


def _split_component(
    adj: List[np.ndarray], comp: np.ndarray, member: np.ndarray
) -> Tuple[List[int], List[int], List[int]]:
    """Split a connected component into (left, right, separator).

    A BFS ordering from a pseudo-peripheral vertex gives a 1-D
    embedding; the balanced cut of that ordering is an edge bisection,
    which König's construction turns into a minimum vertex separator
    for the cut.  This produces thin separators even when BFS *levels*
    are fat (long-range taps in circuit graphs).
    """
    if comp.size == 1:
        return [int(comp[0])], [], []
    root = _pseudo_peripheral(adj, member, int(comp[0]))
    levels = _bfs_levels(adj, member, root)
    bfs_order = [v for lv in levels for v in lv]
    n = len(bfs_order)
    # Two 1-D embeddings: the BFS sweep and the natural numbering
    # (circuit matrices usually carry locality in their original ids;
    # long-range taps can scramble the BFS order but not the ids).
    embeddings = [bfs_order, sorted(int(v) for v in comp)]
    # Search cut positions in the middle band of each embedding; König
    # gives each cut's minimum vertex separator, and the cost weights
    # separator size heavily (it becomes the serial column block of the
    # 2-D layout).
    best = None
    fracs = [0.3 + 0.4 * k / 8.0 for k in range(9)]  # 0.30 .. 0.70
    for order in embeddings:
        for frac in fracs:
            cut = max(1, min(n - 1, int(frac * n)))
            l, r, s = _min_cover_separator(adj, order[:cut], order[cut:], member)
            balanced = min(len(l), len(r)) >= 0.2 * n
            cost = max(len(l), len(r)) + 6 * len(s)
            if best is None or (balanced, -cost) > (best[0], -best[1]):
                best = (balanced, cost, l, r, s)
    _, _, left, right, sep = best

    # Greedy refinement: pull separator vertices with one-sided
    # adjacency into that side.  Membership sets keep the moves safe
    # (the invariant "no left-right edge" holds after every move).
    left_set, right_set = set(left), set(right)
    # Iterate to a fixed point: moving one vertex can make another
    # one-sided.  A vertex with neighbours on a single side always
    # leaves the separator (keeping it costs far more than imbalance).
    pending = list(sep)
    new_sep: list = []
    changed = True
    while changed:
        changed = False
        keep = []
        for s in pending:
            nbrs = [int(w) for w in adj[s] if member[w]]
            in_left = any(w in left_set for w in nbrs)
            in_right = any(w in right_set for w in nbrs)
            if in_left and in_right:
                keep.append(s)
            elif in_left and not in_right:
                left.append(s)
                left_set.add(s)
                changed = True
            elif in_right and not in_left:
                right.append(s)
                right_set.add(s)
                changed = True
            else:
                if len(left) <= len(right):
                    left.append(s)
                    left_set.add(s)
                else:
                    right.append(s)
                    right_set.add(s)
                changed = True
        pending = keep
    new_sep = pending
    return left, right, new_sep


def _bisect(
    adj: List[np.ndarray], verts: np.ndarray, n_global: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Split ``verts`` into (left, right, separator) with no left-right edges."""
    member = np.zeros(n_global, dtype=bool)
    member[verts] = True
    comps = _components(adj, verts, member)
    if not comps:
        e = np.empty(0, dtype=np.int64)
        return e, e, e
    total = int(verts.size)
    if len(comps) > 1 and comps[0].size <= 0.6 * total:
        # Enough disconnection to bisect without any separator:
        # greedily bin-pack components into two sides.
        left, right, sep = [], [], []
        for comp in comps:
            if len(left) <= len(right):
                left.extend(int(v) for v in comp)
            else:
                right.extend(int(v) for v in comp)
    else:
        # Split the largest component; distribute the rest for balance.
        big = comps[0]
        member_big = np.zeros(n_global, dtype=bool)
        member_big[big] = True
        left, right, sep = _split_component(adj, big, member_big)
        for comp in comps[1:]:
            if len(left) <= len(right):
                left.extend(int(v) for v in comp)
            else:
                right.extend(int(v) for v in comp)
    return (
        np.asarray(sorted(left), dtype=np.int64),
        np.asarray(sorted(right), dtype=np.int64),
        np.asarray(sorted(sep), dtype=np.int64),
    )


# ----------------------------------------------------------------------
# Tree construction
# ----------------------------------------------------------------------


@domains(A="matrix[S]")
def nested_dissection(A: CSC, nleaves: int) -> NDPartition:
    """ND partition of a square matrix's symmetrized graph.

    ``nleaves`` must be a power of two (Basker's thread-count
    constraint, paper §III-C).  Empty leaves/separators are permitted —
    small or oddly shaped graphs simply produce zero-size blocks, which
    the factorization handles.
    """
    tr = get_tracer()
    with tr.span("order.nd") as sp:
        part = _nested_dissection(A, nleaves)
        if tr.enabled:
            sp.set(nleaves=nleaves, n_nodes=len(part.nodes))
    return part


@domains(A="matrix[S]")
def _nested_dissection(A: CSC, nleaves: int) -> NDPartition:
    if A.n_rows != A.n_cols:
        raise ValueError("nested dissection requires a square matrix")
    if nleaves < 1 or (nleaves & (nleaves - 1)) != 0:
        raise ValueError("nleaves must be a power of two")
    n = A.n_rows
    B = symmetric_pattern(A) if n else A
    adj = _build_adjacency(B) if n else []

    nodes: List[NDNode] = []

    def build(verts: np.ndarray, height: int) -> int:
        if height == 0:
            node = NDNode(id=len(nodes), height=0, is_leaf=True, vertices=verts)
            nodes.append(node)
            return node.id
        left, right, sep = _bisect(adj, verts, n)
        lid = build(left, height - 1)
        rid = build(right, height - 1)
        node = NDNode(
            id=len(nodes), height=height, is_leaf=False, vertices=sep, children=(lid, rid)
        )
        nodes.append(node)
        nodes[lid].parent = node.id
        nodes[rid].parent = node.id
        return node.id

    height = int(np.log2(nleaves))
    all_verts = np.arange(n, dtype=np.int64)
    if nleaves == 1:
        nodes.append(NDNode(id=0, height=0, is_leaf=True, vertices=all_verts))
    else:
        build(all_verts, height)

    perm = np.concatenate([nd.vertices for nd in nodes]) if nodes else np.empty(0, dtype=np.int64)
    perm = perm.astype(np.int64)
    splits = np.zeros(len(nodes) + 1, dtype=np.int64)
    splits[1:] = np.cumsum([nd.size for nd in nodes])
    return NDPartition(perm=perm, nodes=nodes, splits=splits, nleaves=nleaves)


@domains(A="matrix[S]", returns="perm[S->S]")
def nd_order(A: CSC, leaf_size: int = 64) -> np.ndarray:
    """A plain fill-reducing ND permutation (recurse until small leaves).

    Utility used by the supernodal baseline; the number of leaves is
    chosen from the matrix size rather than a thread count.
    """
    n = A.n_rows
    if n == 0:
        return np.empty(0, dtype=np.int64)
    nleaves = 1
    while nleaves * leaf_size < n and nleaves < 256:
        nleaves *= 2
    return nested_dissection(A, nleaves).perm
