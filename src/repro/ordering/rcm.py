"""Reverse Cuthill–McKee ordering.

A bandwidth-reducing ordering, included for completeness of the
ordering toolbox (the paper's background section surveys ordering
strategies; RCM is the classic profile reducer and a useful baseline
against AMD/ND in the ordering-quality tests and the explorer example).
"""

from __future__ import annotations

import numpy as np

from ..contracts import domains
from ..graph.etree import symmetric_pattern
from ..sparse.csc import CSC

__all__ = ["rcm_order", "bandwidth"]


@domains(A="matrix[S]")
def bandwidth(A: CSC) -> int:
    """Maximum |i - j| over stored entries."""
    if A.nnz == 0:
        return 0
    col_of = np.repeat(np.arange(A.n_cols), np.diff(A.indptr))
    return int(np.max(np.abs(A.indices - col_of)))


@domains(A="matrix[S]", returns="perm[S->S]")
def rcm_order(A: CSC) -> np.ndarray:
    """Reverse Cuthill–McKee permutation of a square matrix's graph.

    BFS from a minimum-degree vertex of each connected component,
    visiting neighbours in increasing-degree order, then reversed.
    """
    n = A.n_cols
    if A.n_rows != n:
        raise ValueError("RCM requires a square matrix")
    if n == 0:
        return np.empty(0, dtype=np.int64)
    B = symmetric_pattern(A)
    adj = []
    degree = np.zeros(n, dtype=np.int64)
    for j in range(n):
        rows, _ = B.col(j)
        nbrs = rows[rows != j]
        adj.append(nbrs)
        degree[j] = nbrs.size

    visited = np.zeros(n, dtype=bool)
    order = []
    # Components in increasing-min-degree order of their seed.
    seeds = np.argsort(degree, kind="stable")
    for s in seeds:
        s = int(s)
        if visited[s]:
            continue
        visited[s] = True
        queue = [s]
        head = 0
        while head < len(queue):
            v = queue[head]
            head += 1
            order.append(v)
            nbrs = [int(w) for w in adj[v] if not visited[w]]
            nbrs.sort(key=lambda w: (int(degree[w]), w))
            for w in nbrs:
                visited[w] = True
                queue.append(w)
    return np.asarray(order[::-1], dtype=np.int64)
