"""Block triangular form.

The coarse level of Basker's hierarchy (paper §III-A): permute the
matrix with an MWCM so the diagonal is zero-free with large entries,
then find the strongly connected components of the resulting directed
graph; ordering vertices by component yields a block *upper* triangular
matrix whose diagonal blocks are the irreducible components.  Only the
diagonal blocks need factoring, which is why circuit matrices can have
fill-in density below 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..contracts import domains
from ..obs.tracer import get_tracer
from ..graph.matching import mwcm_row_permutation
from ..graph.scc import scc_of_matrix
from ..sparse.csc import CSC
from .perm import compose

__all__ = ["BTFResult", "btf"]


@dataclass
class BTFResult:
    """Result of the BTF ordering.

    ``A.permute(row_perm, col_perm)`` is block upper triangular with
    square diagonal blocks delimited by ``block_splits`` (length
    ``n_blocks + 1``).  ``row_perm`` already includes the MWCM matching,
    so every diagonal entry of the permuted matrix is structurally
    nonzero when the matrix is structurally nonsingular.
    """

    row_perm: np.ndarray
    col_perm: np.ndarray
    block_splits: np.ndarray
    matched: bool  # True if the MWCM found a full matching

    @property
    def n_blocks(self) -> int:
        return len(self.block_splits) - 1

    def block_sizes(self) -> np.ndarray:
        return np.diff(self.block_splits)

    @property
    def largest_block(self) -> int:
        sizes = self.block_sizes()
        return int(sizes.max()) if sizes.size else 0

    def btf_percent(self, small_cutoff: int) -> float:
        """Percent of matrix rows in blocks of size <= ``small_cutoff``.

        This is the "BTF %" column of Table I: the fraction of the
        matrix covered by the many tiny independent subblocks (the fine
        BTF structure), as opposed to the large irreducible blocks that
        need the fine-ND treatment.
        """
        sizes = self.block_sizes()
        n = int(self.block_splits[-1])
        if n == 0:
            return 0.0
        small = int(sizes[sizes <= small_cutoff].sum())
        return 100.0 * small / n


@domains(A="matrix[global]")
def btf(A: CSC, use_mwcm: bool = True) -> BTFResult:
    """Compute the block triangular form of a square matrix.

    Parameters
    ----------
    A
        Square sparse matrix.
    use_mwcm
        Apply the bottleneck MWCM first (the paper's Pm1).  Disable to
        study the effect of the matching (the diagonal must already be
        zero-free for the BTF to be meaningful then).
    """
    tr = get_tracer()
    with tr.span("order.btf") as sp:
        res = _btf_impl(A, use_mwcm)
        if tr.enabled:
            sp.set(n_blocks=res.n_blocks, largest_block=res.largest_block)
            tr.metrics.set_gauge("btf.n_blocks", res.n_blocks)
            tr.metrics.set_gauge("btf.largest_block", res.largest_block)
    return res


@domains(A="matrix[global]")
def _btf_impl(A: CSC, use_mwcm: bool = True) -> BTFResult:
    if A.n_rows != A.n_cols:
        raise ValueError("BTF requires a square matrix")
    n = A.n_rows
    if n == 0:
        return BTFResult(
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            np.zeros(1, dtype=np.int64),
            True,
        )

    if use_mwcm:
        pm = mwcm_row_permutation(A)
        A1 = A.permute(row_perm=pm)
        matched = all(A1.get(j, j) != 0.0 for j in range(n))
    else:
        pm = np.arange(n, dtype=np.int64)
        A1 = A
        matched = True

    n_comp, comp, order = scc_of_matrix(A1)

    row_perm = compose(pm, order)  # domain: perm[global->btf]
    col_perm = order  # domain: perm[global->btf]

    # Block boundaries: components are contiguous in `order`.
    sizes = np.bincount(comp, minlength=n_comp)
    splits = np.zeros(n_comp + 1, dtype=np.int64)
    splits[1:] = np.cumsum(sizes)
    return BTFResult(row_perm, col_perm, splits, matched)
