"""Permutation utilities.

Conventions used throughout the package (matching :meth:`CSC.permute`):
a permutation ``p`` maps *new* positions to *old* ones, i.e. applying
``p`` produces ``B[i] = x[p[i]]`` (NumPy fancy indexing).
"""

from __future__ import annotations

import numpy as np

__all__ = ["invert", "compose", "is_permutation", "identity", "apply_to_vector", "random_permutation"]


def identity(n: int) -> np.ndarray:
    return np.arange(n, dtype=np.int64)


def invert(p: np.ndarray) -> np.ndarray:
    """Inverse permutation: ``invert(p)[p[i]] == i``."""
    p = np.asarray(p, dtype=np.int64)
    inv = np.empty_like(p)
    inv[p] = np.arange(p.size, dtype=np.int64)
    return inv


def compose(p: np.ndarray, q: np.ndarray) -> np.ndarray:
    """The permutation equivalent to applying ``p`` first, then ``q``.

    If ``y = x[p]`` and ``z = y[q]`` then ``z = x[compose(p, q)]``,
    i.e. ``compose(p, q) = p[q]``.
    """
    p = np.asarray(p, dtype=np.int64)
    q = np.asarray(q, dtype=np.int64)
    if p.size != q.size:
        raise ValueError("size mismatch")
    return p[q]


def is_permutation(p: np.ndarray) -> bool:
    p = np.asarray(p)
    if p.ndim != 1:
        return False
    seen = np.zeros(p.size, dtype=bool)
    for v in p:
        if v < 0 or v >= p.size or seen[v]:
            return False
        seen[v] = True
    return True


def apply_to_vector(p: np.ndarray, x: np.ndarray) -> np.ndarray:
    """``y[i] = x[p[i]]``."""
    return np.asarray(x)[np.asarray(p, dtype=np.int64)]


def random_permutation(n: int, rng: np.random.Generator) -> np.ndarray:
    return rng.permutation(n).astype(np.int64)
