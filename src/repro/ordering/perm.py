"""Permutation utilities.

Conventions used throughout the package (matching :meth:`CSC.permute`):
a permutation ``p`` maps *new* positions to *old* ones, i.e. applying
``p`` produces ``B[i] = x[p[i]]`` (NumPy fancy indexing).

>>> import numpy as np
>>> p = np.array([2, 0, 1])               # new position i takes old x[p[i]]
>>> np.array([10, 20, 30])[p].tolist()
[30, 10, 20]

Because of the reordering stack (BTF, ND, per-block AMD, pivoting),
every permutation also carries an *index domain* ``perm[A->B]``: it
turns a space-``A`` vector into a space-``B`` vector.  The ``@domains``
declarations below are checked statically by
``repro.analysis.domains`` (see ``docs/API.md``).
"""

from __future__ import annotations

import numpy as np

from ..contracts import domains, effects

__all__ = ["invert", "compose", "is_permutation", "identity", "apply_to_vector", "random_permutation"]


# NOTE: no @domains here — `identity` collides with `CSC.identity`,
# and the call-site matcher is name-based.
def identity(n: int) -> np.ndarray:
    return np.arange(n, dtype=np.int64)


@domains(p="perm[A->B]", returns="perm[B->A]")
@effects(pure=True)
def invert(p: np.ndarray) -> np.ndarray:
    """Inverse permutation: ``invert(p)[p[i]] == i``.

    >>> import numpy as np
    >>> invert(np.array([2, 0, 1])).tolist()
    [1, 2, 0]
    >>> p = np.array([2, 0, 1])
    >>> x = np.array([10, 20, 30])
    >>> x[p][invert(p)].tolist()          # invert undoes the reordering
    [10, 20, 30]
    """
    p = np.asarray(p, dtype=np.int64)
    inv = np.empty_like(p)
    inv[p] = np.arange(p.size, dtype=np.int64)
    return inv


@domains(p="perm[A->B]", q="perm[B->C]", returns="perm[A->C]")
@effects(pure=True)
def compose(p: np.ndarray, q: np.ndarray) -> np.ndarray:
    """The permutation equivalent to applying ``p`` first, then ``q``.

    If ``y = x[p]`` and ``z = y[q]`` then ``z = x[compose(p, q)]``,
    i.e. ``compose(p, q) = p[q]``.

    >>> import numpy as np
    >>> p = np.array([2, 0, 1]); q = np.array([1, 2, 0])
    >>> x = np.array([10.0, 20.0, 30.0])
    >>> bool(np.array_equal(x[p][q], x[compose(p, q)]))
    True
    """
    p = np.asarray(p, dtype=np.int64)
    q = np.asarray(q, dtype=np.int64)
    if p.size != q.size:
        raise ValueError("size mismatch")
    return p[q]


@domains(p="perm[A->B]")
@effects(pure=True)
def is_permutation(p) -> bool:
    """True if ``p`` is a permutation of ``0..len(p)-1``.

    >>> import numpy as np
    >>> is_permutation(np.array([2, 0, 1]))
    True
    >>> is_permutation(np.array([2, 0, 2]))
    False
    """
    p = np.asarray(p)
    if p.ndim != 1:
        return False
    if p.size == 0:
        return True
    if not np.issubdtype(p.dtype, np.integer):
        return False
    if int(p.min()) < 0 or int(p.max()) >= p.size:
        return False
    return bool((np.bincount(p, minlength=p.size) == 1).all())


@domains(p="perm[A->B]", x="vec[A]", returns="vec[B]")
@effects(pure=True)
def apply_to_vector(p: np.ndarray, x: np.ndarray) -> np.ndarray:
    """``y[i] = x[p[i]]``."""
    return np.asarray(x)[np.asarray(p, dtype=np.int64)]


@domains(returns="perm[S->S]")
def random_permutation(n: int, rng: np.random.Generator) -> np.ndarray:
    return rng.permutation(n).astype(np.int64)
