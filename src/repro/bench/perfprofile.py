"""Performance profiles (Dolan–Moré), as used in the paper's Figure 7.

A point (x, y) on a solver's profile means: on fraction ``y`` of the
test problems, this solver's time was within ``x`` times the best
solver's time for that problem.  Failed runs count as infinitely slow.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

__all__ = ["performance_profile", "geometric_mean"]


def performance_profile(
    times: Dict[str, Dict[str, float]],
    taus: Sequence[float] | None = None,
) -> Dict[str, List[Tuple[float, float]]]:
    """Compute profile curves.

    ``times[solver][problem]`` is the runtime (``math.inf`` for a
    failure).  Every solver must report every problem.  Returns, per
    solver, a list of (tau, fraction) points over ``taus`` (default: a
    log-spaced grid from 1 to 32).
    """
    solvers = sorted(times)
    if not solvers:
        return {}
    problems = sorted(times[solvers[0]])
    for s in solvers:
        if sorted(times[s]) != problems:
            raise ValueError(f"solver {s!r} reports a different problem set")
    if taus is None:
        taus = [2 ** (k / 4.0) for k in range(0, 21)]  # 1 .. 32

    best = {
        p: min(times[s][p] for s in solvers)
        for p in problems
    }
    for p, b in best.items():
        if not (b > 0) or math.isinf(b):
            raise ValueError(f"problem {p!r} has no finite positive best time")

    curves: Dict[str, List[Tuple[float, float]]] = {}
    for s in solvers:
        ratios = [times[s][p] / best[p] for p in problems]
        curve = []
        for tau in taus:
            frac = sum(1 for r in ratios if r <= tau + 1e-12) / len(problems)
            curve.append((float(tau), frac))
        curves[s] = curve
    return curves


def geometric_mean(values: Sequence[float]) -> float:
    vals = [v for v in values if v > 0 and not math.isinf(v)]
    if not vals:
        return float("nan")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))
