"""Benchmark harness: cached runners, performance profiles, reporting.

Also home of the *wall-clock* microbenchmarks (:mod:`.wallclock`) —
the only package allowed to read real clocks (lint rule R1 bans them
from the kernel packages).
"""

from .perfprofile import geometric_mean, performance_profile
from .report import ascii_series, emit, format_table
from .wallclock import check_regression, run_wallclock
from .runner import (
    basker_numeric,
    basker_seconds,
    clear_caches,
    klu_numeric,
    klu_seconds,
    matrix,
    pmkl_numeric,
    pmkl_seconds,
    slumt_numeric,
    slumt_seconds,
)

__all__ = [
    "performance_profile",
    "geometric_mean",
    "format_table",
    "ascii_series",
    "emit",
    "matrix",
    "basker_numeric",
    "klu_numeric",
    "pmkl_numeric",
    "slumt_numeric",
    "basker_seconds",
    "klu_seconds",
    "pmkl_seconds",
    "slumt_seconds",
    "clear_caches",
    "run_wallclock",
    "check_regression",
]
