"""Experiment runner: cached factorizations + machine timings.

Numeric factorization is machine-independent (the ledgers count
operations; pricing happens at schedule time), so one factorization per
(matrix, solver, thread-count) serves every machine model and sync
mode.  The caches below let the per-figure benches share work within a
pytest session.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..core import Basker
from ..matrices import get_matrix
from ..parallel.machine import MachineModel, SANDY_BRIDGE, XEON_PHI
from ..solvers import KLU, SolverFailure, SupernodalLU, slu_mt
from ..sparse.csc import CSC

__all__ = [
    "matrix",
    "basker_numeric",
    "klu_numeric",
    "pmkl_numeric",
    "slumt_numeric",
    "basker_seconds",
    "klu_seconds",
    "pmkl_seconds",
    "slumt_seconds",
    "clear_caches",
]

_matrices: Dict[str, CSC] = {}
_basker: Dict[Tuple[str, int], object] = {}
_klu: Dict[str, object] = {}
_pmkl: Dict[str, object] = {}
_slumt: Dict[str, object] = {}


def clear_caches() -> None:
    _matrices.clear()
    _basker.clear()
    _klu.clear()
    _pmkl.clear()
    _slumt.clear()


def matrix(name: str) -> CSC:
    if name not in _matrices:
        _matrices[name] = get_matrix(name)
    return _matrices[name]


# ----------------------------------------------------------------------
# Factorizations (cached)
# ----------------------------------------------------------------------


def basker_numeric(name: str, p: int):
    key = (name, p)
    if key not in _basker:
        solver = Basker(n_threads=p)
        _basker[key] = solver.factor(matrix(name))
    return _basker[key]


def klu_numeric(name: str):
    if name not in _klu:
        _klu[name] = KLU().factor(matrix(name))
    return _klu[name]


def pmkl_numeric(name: str):
    if name not in _pmkl:
        _pmkl[name] = SupernodalLU().factor(matrix(name))
    return _pmkl[name]


def slumt_numeric(name: str):
    """SLU-MT numeric, or None when the solver fails on the matrix."""
    if name not in _slumt:
        try:
            _slumt[name] = slu_mt().factor(matrix(name))
        except (SolverFailure, Exception) as exc:  # noqa: BLE001 - record failure
            if not isinstance(exc, SolverFailure):
                raise
            _slumt[name] = None
    return _slumt[name]


# ----------------------------------------------------------------------
# Timings
# ----------------------------------------------------------------------


def basker_seconds(
    name: str, p: int, machine: MachineModel = SANDY_BRIDGE, sync_mode: str = "p2p"
) -> float:
    return basker_numeric(name, p).schedule(machine, n_threads=p, sync_mode=sync_mode).makespan


def klu_seconds(name: str, machine: MachineModel = SANDY_BRIDGE) -> float:
    return klu_numeric(name).factor_seconds(machine)


def pmkl_seconds(name: str, p: int, machine: MachineModel = SANDY_BRIDGE) -> float:
    return pmkl_numeric(name).factor_seconds(machine, n_threads=p)


def slumt_seconds(name: str, p: int, machine: MachineModel = SANDY_BRIDGE) -> float:
    num = slumt_numeric(name)
    if num is None:
        return math.inf
    return num.factor_seconds(machine, n_threads=p)
