"""Plain-text reporting for the benches.

Each bench prints its paper-style table/series and also writes it to
``benchmarks/results/<experiment>.txt`` so the artifacts survive the
pytest run.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import List, Sequence

__all__ = ["format_table", "emit", "ascii_series"]

RESULTS_DIR = Path(__file__).resolve().parents[3] / "benchmarks" / "results"


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = "") -> str:
    cols = len(headers)
    srows = [[f"{c:.3g}" if isinstance(c, float) else str(c) for c in r] for r in rows]
    widths = [len(h) for h in headers]
    for r in srows:
        if len(r) != cols:
            raise ValueError("row width mismatch")
        for i, c in enumerate(r):
            widths[i] = max(widths[i], len(c))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for r in srows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(r, widths)))
    return "\n".join(lines)


def ascii_series(label: str, xs: Sequence[float], ys: Sequence[float]) -> str:
    pts = "  ".join(f"({x:g}, {y:.3g})" for x, y in zip(xs, ys))
    return f"{label}: {pts}"


def emit(experiment: str, text: str) -> None:
    """Print a result block and persist it under benchmarks/results/."""
    banner = f"\n===== {experiment} =====\n"
    print(banner + text)
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / f"{experiment}.txt").write_text(text + "\n")
