"""Wall-clock microbenchmarks with a regression gate.

Everything else in this repository prices work through simulated
machine models (:mod:`repro.parallel`); this module is the one place
that measures *real* time — which is why it lives in ``bench/``, the
package exempt from lint rule R1 (no wall clocks in kernel packages).

It times the four numeric phases on suite matrices and the Xyce
transient sequence:

* ``factor/<matrix>`` — first-time Gilbert–Peierls factorization of
  the largest BTF block (tracking; the default blocked kernel);
* ``factor_blocked/<matrix>`` — the same factorization, scalar
  reference loops (``gp_factor_reference``) vs the structure-aware
  dense-blocked ``gp_factor``;
* ``reach/<matrix>`` — a full symbolic reach sweep over that block:
  numpy ``topo_reach`` reference vs the list-based ``ReachGraph``;
* ``refactor/<matrix>`` — values-only refactorization: reference
  per-column loop (``gp_refactor_reference``) vs the level-scheduled
  vectorized replay (``gp_refactor``);
* ``solve/<matrix>`` — dense-RHS L/U triangular solves: reference
  loops vs the compiled :class:`~repro.sparse.schedule.TriangularSchedule`;
* ``xyce_refactor_sequence`` — the paper's §V-F workload end to end:
  a fixed-pattern Jacobian sequence refactored with KLU, seed-style
  per-step permute/submatrix/loop vs the cached-gather + schedule
  replay of ``KLU.refactor_fast``.

Results are written as ``BENCH_wallclock.json``.  The regression gate
compares *speedup ratios* (vectorized vs reference on the same machine,
so they are machine-portable) against a committed baseline, failing on
a relative drop beyond the tolerance and on hard floors recorded in the
baseline.
"""

from __future__ import annotations

import json
import platform
import time
from typing import Callable, Dict, List, Optional

import numpy as np

from ..graph.dfs import ReachGraph, ReachWorkspace, topo_reach
from ..matrices import get_matrix
from ..parallel.ledger import CostLedger
from ..solvers import KLU
from ..solvers.gp import (
    GPResult,
    gp_factor,
    gp_factor_reference,
    gp_refactor,
    gp_refactor_reference,
)
from ..sparse.csc import CSC
from ..sparse.ops import (
    lower_solve,
    lower_solve_reference,
    upper_solve,
    upper_solve_reference,
)

__all__ = ["run_wallclock", "check_regression", "DEFAULT_MATRICES", "QUICK_MATRICES"]

DEFAULT_MATRICES = ["Xyce0*", "Xyce1*", "circuit_4", "memplus", "scircuit"]
QUICK_MATRICES = ["Xyce0*", "circuit_4"]
SCHEMA_VERSION = 1

# Hard floors on speedup ratios, written into the baseline and enforced
# by the gate (prefix match on the case key).  The xyce floor dropped
# from 5.0 when the *reference* loop sped up (vectorized
# ``CSC.sort_indices`` cut its per-step permute/submatrix cost), which
# compresses the ratio without any vectorized-path regression; quick
# mode (20 matrices) also amortizes the one-time schedule compile less.
SPEEDUP_FLOORS = {
    "xyce_refactor_sequence": 4.0,
    "solve/": 3.0,
    "factor_blocked/": 1.5,
    "reach/": 2.0,
}


def _best_of(fn: Callable[[], object], repeats: int) -> float:
    """Minimum wall time of ``fn`` over ``repeats`` runs (seconds)."""
    best = float("inf")
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _largest_block_problem(name: str, rng: np.random.Generator):
    """The largest BTF diagonal block of a suite matrix, as a
    (block matrix, GP factors) pair — the hot kernel of every solver."""
    A = get_matrix(name)
    klu = KLU()
    num = klu.factor(A)
    splits = num.symbolic.block_splits
    sizes = np.diff(splits)
    k = int(np.argmax(sizes))
    lo, hi = int(splits[k]), int(splits[k + 1])
    blk = num.M.submatrix(lo, hi, lo, hi)
    prior = num.block_lu[k]
    # Identity pivot order: the block is already pivot-permuted in M.
    fixed = GPResult(
        prior.L, prior.U, np.arange(hi - lo, dtype=np.int64), CostLedger()
    )
    return A, blk, fixed


def _perturbed(blk: CSC, rng: np.random.Generator) -> CSC:
    """Same pattern, values jittered — one step of a Newton sequence."""
    data = blk.data * (1.0 + 0.01 * rng.standard_normal(blk.nnz))
    return CSC(blk.n_rows, blk.n_cols, blk.indptr, blk.indices, data)


def _bench_matrix(name: str, repeats: int, rng: np.random.Generator) -> Dict[str, dict]:
    A, blk, fixed = _largest_block_problem(name, rng)
    n = blk.n_cols
    cases: Dict[str, dict] = {}

    # factor: full Gilbert–Peierls on the block (tracking; this is the
    # blocked default path, detection included — the cold-factor cost).
    cases[f"factor/{name}"] = {
        "seconds": _best_of(lambda: gp_factor(blk), repeats),
        "n": n,
        "nnz": blk.nnz,
    }

    # factor_blocked: scalar reference loops vs the dense-blocked
    # kernel, same matrix, same factors (parity is asserted in tests).
    blocked = gp_factor(blk)
    t_ref = _best_of(lambda: gp_factor_reference(blk), repeats)
    t_vec = _best_of(lambda: gp_factor(blk), repeats)
    plan = blocked.dense_plan
    cases[f"factor_blocked/{name}"] = {
        "reference_s": t_ref,
        "vectorized_s": t_vec,
        "speedup": t_ref / t_vec if t_vec > 0 else float("inf"),
        "n": n,
        "nnz": blk.nnz,
        "switch": int(plan.switch) if plan is not None else n,
        "tail_cols": int(plan.tail_cols) if plan is not None else 0,
        "predicted_density": float(plan.density) if plan is not None else 0.0,
    }

    # reach: symbolic sweep over the final L pattern — numpy topo_reach
    # reference vs the list-based ReachGraph (bit-identical results).
    L = fixed.L
    pinv = np.arange(n, dtype=np.int64)

    def _reach_sweep():
        ws = ReachWorkspace(n)
        for k in range(n):
            rows = blk.indices[blk.indptr[k] : blk.indptr[k + 1]]
            ws.next_stamp()
            topo_reach(L.indptr, L.indices, rows, pinv, ws)

    pinv_l = pinv.tolist()

    def _reach_sweep_fast():
        g = ReachGraph.from_csc(L)
        for k in range(n):
            rows = blk.indices[blk.indptr[k] : blk.indptr[k + 1]]
            g.next_stamp()
            g.reach(rows.tolist(), pinv_l)

    t_ref = _best_of(_reach_sweep, repeats)
    t_vec = _best_of(_reach_sweep_fast, repeats)
    cases[f"reach/{name}"] = {
        "reference_s": t_ref,
        "vectorized_s": t_vec,
        "speedup": t_ref / t_vec if t_vec > 0 else float("inf"),
        "n": n,
    }

    # refactor: reference loop vs vectorized schedule replay.
    blk2 = _perturbed(blk, rng)
    t_compile0 = time.perf_counter()
    vec0 = gp_refactor(blk2, fixed)  # compiles + caches the schedule
    compile_s = time.perf_counter() - t_compile0
    t_ref = _best_of(lambda: gp_refactor_reference(blk2, fixed), repeats)
    t_vec = _best_of(lambda: gp_refactor(blk2, fixed), repeats)
    cases[f"refactor/{name}"] = {
        "reference_s": t_ref,
        "vectorized_s": t_vec,
        "first_call_s": compile_s,
        "speedup": t_ref / t_vec if t_vec > 0 else float("inf"),
        "n": n,
        "factor_nnz": fixed.L.nnz + fixed.U.nnz,
        "levels": fixed.schedule.n_stages if fixed.schedule is not None else None,
    }

    # solve: dense-RHS triangular solves on the refactored factors.
    Lf, Uf = vec0.L, vec0.U
    b = rng.standard_normal(n)
    lower_solve(Lf, b)  # warm the cached TriangularSchedules
    upper_solve(Uf, b)
    t_ref = _best_of(
        lambda: upper_solve_reference(Uf, lower_solve_reference(Lf, b)), repeats
    )
    t_vec = _best_of(lambda: upper_solve(Uf, lower_solve(Lf, b)), repeats)
    cases[f"solve/{name}"] = {
        "reference_s": t_ref,
        "vectorized_s": t_vec,
        "speedup": t_ref / t_vec if t_vec > 0 else float("inf"),
        "n": n,
        "factor_nnz": Lf.nnz + Uf.nnz,
    }
    return cases


def _klu_refactor_reference(klu: KLU, A: CSC, numeric):
    """The seed implementation of ``KLU.refactor_fast``: per-step
    permute + submatrix extraction + per-column reference loops.  Kept
    here as the wall-clock oracle for the sequence benchmark."""
    from ..errors import SingularMatrixError

    symbolic = numeric.symbolic
    splits = symbolic.block_splits
    M = A.permute(numeric.row_perm, symbolic.col_perm)
    total = CostLedger()
    total.mem_words += A.nnz
    block_lu = []
    block_ledgers = []
    block_ws = []
    row_perm = numeric.row_perm.copy()
    for k in range(symbolic.n_blocks):
        lo, hi = int(splits[k]), int(splits[k + 1])
        bblk = M.submatrix(lo, hi, lo, hi)
        led = CostLedger()
        prior = numeric.block_lu[k]
        try:
            fixed = GPResult(prior.L, prior.U, np.arange(hi - lo, dtype=np.int64), led)
            lu = gp_refactor_reference(bblk, fixed, ledger=led)
        except SingularMatrixError:
            lu = gp_factor(bblk, pivot_tol=klu.pivot_tol, ledger=led)
            row_perm[lo:hi] = row_perm[lo:hi][lu.row_perm]
        block_lu.append(lu)
        block_ledgers.append(led)
        block_ws.append((lu.L.nnz + lu.U.nnz) * 12.0 + (hi - lo) * 8.0)
        total.add(led)
    Mfinal = A.permute(row_perm, symbolic.col_perm)
    from ..solvers.klu import KLUNumeric

    return KLUNumeric(
        symbolic=symbolic,
        block_lu=block_lu,
        row_perm=row_perm,
        col_perm=symbolic.col_perm,
        M=Mfinal,
        ledger=total,
        block_ledgers=block_ledgers,
        block_working_sets=block_ws,
        row_scale=None,
    )


def _aggregate_phase_spans(tracer, machine) -> Dict[str, dict]:
    """Aggregate a traced run's spans by name into the phase table.

    ``modeled_s``/``wall_s`` are inclusive per span, so nested names
    (``order.*`` inside ``symbolic``) overlap their parents by design.
    Spans that never captured wall time (leaf spans created without a
    ``with`` block) keep ``wall_s`` null — not a silent 0.0 — so
    modeled and wall views count the same spans, with ``wall_count``
    recording the coverage gap.
    """
    from ..obs import modeled_times

    times = modeled_times(tracer, machine)
    spans: Dict[str, dict] = {}
    for sp in tracer.spans:
        rec = spans.setdefault(
            sp.name,
            {"count": 0, "modeled_s": 0.0, "wall_s": None, "wall_count": 0},
        )
        rec["count"] += 1
        rec["modeled_s"] += times[sp.sid][1]
        wall = sp.wall_seconds
        if wall is not None:
            rec["wall_s"] = (rec["wall_s"] or 0.0) + wall
            rec["wall_count"] += 1
    return spans


def _phase_breakdown(name: str, seed: int) -> dict:
    """Per-phase modeled + wall seconds from one traced KLU pipeline run.

    One analyze/factor/refactor/solve pass under a wall-clock-enabled
    :class:`~repro.obs.Tracer` (outside the timed best-of loops), then
    spans are aggregated by name via :func:`_aggregate_phase_spans`.
    """
    from ..obs import Tracer, tracing
    from ..parallel.machine import SANDY_BRIDGE

    A = get_matrix(name)
    rng = np.random.default_rng(seed)
    b = rng.standard_normal(A.n_rows)
    klu = KLU()
    tracer = Tracer(wall_clock=time.perf_counter)
    with tracing(tracer):
        sym = klu.analyze(A)
        num = klu.factor(A, symbolic=sym)
        A2 = CSC(A.n_rows, A.n_cols, A.indptr, A.indices, A.data * 1.01)
        num = klu.refactor_fast(A2, num)
        klu.solve(num, b)
    spans = _aggregate_phase_spans(tracer, SANDY_BRIDGE)
    return {"matrix": name, "machine": SANDY_BRIDGE.name, "spans": spans}


def _bench_xyce_sequence(n_matrices: int) -> dict:
    """The §V-F workload: one fixed-pattern Jacobian sequence, KLU
    values-only refactorization, seed loop vs schedule replay."""
    from ..xyce import matrix_sequence, xyce1_analog

    ckt = xyce1_analog()
    seq = matrix_sequence(ckt, n_matrices=n_matrices)
    klu = KLU()
    base = klu.factor(seq[0])

    t0 = time.perf_counter()
    num_ref = base
    for A in seq[1:]:
        num_ref = _klu_refactor_reference(klu, A, num_ref)
    t_ref = time.perf_counter() - t0

    t0 = time.perf_counter()
    num_vec = base
    for A in seq[1:]:
        num_vec = klu.refactor_fast(A, num_vec)
    t_vec = time.perf_counter() - t0

    # Cross-check: both paths must produce the same factors.
    drift = 0.0
    for lu_r, lu_v in zip(num_ref.block_lu, num_vec.block_lu):
        if lu_r.U.nnz:
            drift = max(drift, float(np.abs(lu_r.U.data - lu_v.U.data).max()))

    # Flight-recorded replay pass (untimed, separate from the best-of
    # loops so it cannot perturb the gated speedups): per-step wall,
    # modeled cost, and cache counter deltas, scanned for drift.
    from ..obs import FlightRecorder, Tracer, tracing
    from ..parallel.machine import SANDY_BRIDGE

    flight = FlightRecorder(capacity=max(1, len(seq)))
    tracer = Tracer(wall_clock=time.perf_counter)
    with tracing(tracer):
        num_f = klu.factor(seq[0])
        flight.record_step(
            0, modeled_s=SANDY_BRIDGE.seconds(num_f.ledger),
            metrics=tracer.metrics,
        )
        for k, A in enumerate(seq[1:], start=1):
            t0 = time.perf_counter()
            num_f = klu.refactor_fast(A, num_f)
            flight.record_step(
                k,
                modeled_s=SANDY_BRIDGE.seconds(num_f.ledger),
                wall_s=time.perf_counter() - t0,
                metrics=tracer.metrics,
            )
    return {
        "reference_s": t_ref,
        "vectorized_s": t_vec,
        "speedup": t_ref / t_vec if t_vec > 0 else float("inf"),
        "n_matrices": len(seq),
        "n": seq[0].n_rows,
        "nnz": seq[0].nnz,
        "max_factor_drift": drift,
        "flight": {
            "steps": len(flight),
            "anomalies": flight.scan(),
        },
    }


def run_wallclock(
    matrices: Optional[List[str]] = None,
    xyce_matrices: int = 50,
    repeats: int = 3,
    quick: bool = False,
    seed: int = 0,
) -> dict:
    """Run the wall-clock benchmark suite; returns the result document."""
    if matrices is None:
        matrices = QUICK_MATRICES if quick else DEFAULT_MATRICES
    if quick and xyce_matrices > 20:
        xyce_matrices = 20
    rng = np.random.default_rng(seed)
    cases: Dict[str, dict] = {}
    for name in matrices:
        cases.update(_bench_matrix(name, repeats, rng))
    cases["xyce_refactor_sequence"] = _bench_xyce_sequence(xyce_matrices)

    speedups = {k: v["speedup"] for k, v in cases.items() if "speedup" in v}
    solve_sp = [v for k, v in speedups.items() if k.startswith("solve/")]
    refac_sp = [v for k, v in speedups.items() if k.startswith("refactor/")]
    fblk_sp = [v for k, v in speedups.items() if k.startswith("factor_blocked/")]
    return {
        "schema": SCHEMA_VERSION,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "machine": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "config": {
            "matrices": list(matrices),
            "xyce_matrices": xyce_matrices,
            "repeats": repeats,
            "quick": quick,
            "seed": seed,
        },
        "cases": cases,
        "phases": _phase_breakdown(matrices[0], seed),
        "summary": {
            "xyce_refactor_speedup": cases["xyce_refactor_sequence"]["speedup"],
            "min_refactor_speedup": min(refac_sp) if refac_sp else None,
            "min_solve_speedup": min(solve_sp) if solve_sp else None,
            "min_factor_blocked_speedup": min(fblk_sp) if fblk_sp else None,
        },
    }


def check_regression(
    result: dict, baseline: dict, tolerance: float = 0.25
) -> List[str]:
    """Compare a result against a committed baseline.

    Returns a list of human-readable failures; empty means the gate
    passes.  Two kinds of check, both on speedup *ratios* so the gate
    is portable across machines:

    * relative: a case's speedup must not drop more than ``tolerance``
      below the baseline's speedup for the same case key;
    * floors: the baseline's ``floors`` mapping (prefix -> minimum
      speedup) sets hard minimums regardless of drift.
    """
    failures: List[str] = []
    base_cases = baseline.get("cases", {})
    for key, case in result.get("cases", {}).items():
        sp = case.get("speedup")
        if sp is None:
            continue
        base_sp = base_cases.get(key, {}).get("speedup")
        if base_sp is not None and sp < base_sp * (1.0 - tolerance):
            failures.append(
                f"{key}: speedup {sp:.2f}x regressed more than "
                f"{tolerance:.0%} below baseline {base_sp:.2f}x"
            )
        for prefix, floor in baseline.get("floors", {}).items():
            if key.startswith(prefix) and sp < floor:
                failures.append(
                    f"{key}: speedup {sp:.2f}x below the required floor {floor:.1f}x"
                )
    return failures


def save_json(doc: dict, path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_json(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)
