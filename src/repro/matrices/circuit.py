"""Circuit-style sparse matrix generators.

Building blocks for the Table I analogs: irregular low fill-in
patterns, controllable BTF structure (many tiny strongly connected
blocks plus optionally one big irreducible block), semi-dense coupling
columns that only a BTF-aware solver can avoid factoring, and
high-asymmetry rows that poison symmetrized (supernodal) orderings.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..sparse.csc import CSC

__all__ = [
    "ladder_circuit",
    "thick_ladder",
    "cyclic_block",
    "btf_composite",
    "add_semi_dense_columns",
    "zero_diagonal_pairs",
]


def ladder_circuit(
    n: int,
    extra_taps: float = 0.5,
    long_range_frac: float = 0.02,
    rng: np.random.Generator | None = None,
    diag_dominance: float = 1.0,
) -> CSC:
    """A strongly connected ladder/bus network: one irreducible block.

    Models the memory-chip / Freescale class: near-banded nearest
    neighbour coupling with a sprinkle of long-range taps, very low
    fill-in under AMD, BTF useless (single SCC).
    """
    rng = rng or np.random.default_rng(0)
    rows, cols, vals = [], [], []
    deg = np.zeros(n)

    def add(i, j, w):
        rows.append(i)
        cols.append(j)
        vals.append(w)
        deg[i] += abs(w)

    for i in range(n - 1):
        w1 = -1.0 - rng.random()
        w2 = -1.0 - rng.random()
        add(i, i + 1, w1)
        add(i + 1, i, w2)
    n_extra = int(extra_taps * n)
    for _ in range(n_extra):
        i = int(rng.integers(n))
        j = int(rng.integers(max(0, i - 8), min(n, i + 9)))
        if i != j:
            w = -rng.random()
            add(i, j, w)
            add(j, i, -rng.random())
    n_long = int(long_range_frac * n)
    for _ in range(n_long):
        i, j = int(rng.integers(n)), int(rng.integers(n))
        if i != j:
            add(i, j, -rng.random())
            add(j, i, -rng.random())
    for i in range(n):
        add(i, i, deg[i] + diag_dominance + rng.random())
    return CSC.from_coo(rows, cols, vals, (n, n))


def thick_ladder(
    length: int,
    width: int = 6,
    tap_frac: float = 0.08,
    long_range_frac: float = 0.002,
    rng: np.random.Generator | None = None,
) -> CSC:
    """A bus-bundle circuit: ``width`` parallel rails of ``length`` nodes.

    Nearest-neighbour coupling along and across the rails plus a few
    skip taps.  Quasi-1-D with a little transverse structure — the
    shape of large interconnect/memory circuits: low fill-in under any
    reasonable ordering, small ND separators (one rail cross-section),
    so the irreducible block parallelizes well.
    """
    rng = rng or np.random.default_rng(0)
    n = length * width
    idx = lambda i, j: i * width + j
    rows, cols, vals = [], [], []
    deg = np.zeros(n)

    def add(i, j, w):
        rows.append(i)
        cols.append(j)
        vals.append(w)
        deg[i] += abs(w)

    for i in range(length):
        for j in range(width):
            a = idx(i, j)
            if i + 1 < length:
                b = idx(i + 1, j)
                add(a, b, -1.0 - rng.random())
                add(b, a, -1.0 - rng.random())
            if j + 1 < width:
                b = idx(i, j + 1)
                add(a, b, -1.0 - rng.random())
                add(b, a, -1.0 - rng.random())
    for _ in range(int(tap_frac * n)):
        i = int(rng.integers(n))
        j = int(rng.integers(max(0, i - 2 * width), min(n, i + 2 * width)))
        if i != j:
            add(i, j, -rng.random())
            add(j, i, -rng.random())
    for _ in range(int(long_range_frac * n)):
        i, j = int(rng.integers(n)), int(rng.integers(n))
        if i != j:
            add(i, j, -rng.random())
            add(j, i, -rng.random())
    for i in range(n):
        add(i, i, deg[i] + 1.0 + rng.random())
    return CSC.from_coo(rows, cols, vals, (n, n))


def cyclic_block(
    size: int,
    density: float = 0.3,
    rng: np.random.Generator | None = None,
) -> Tuple[List[int], List[int], List[float]]:
    """Triplets of one strongly connected block (directed cycle + chords).

    Returned in local 0-based coordinates for composition.
    """
    rng = rng or np.random.default_rng(0)
    rows, cols, vals = [], [], []
    deg = np.zeros(size)
    # Directed cycle guarantees strong connectivity.
    for i in range(size):
        j = (i + 1) % size
        if size > 1:
            w = -1.0 - rng.random()
            rows.append(j)
            cols.append(i)
            vals.append(w)
            deg[j] += abs(w)
    n_chord = int(density * size * max(size - 1, 1))
    for _ in range(n_chord):
        i, j = int(rng.integers(size)), int(rng.integers(size))
        if i != j:
            w = -rng.random()
            rows.append(i)
            cols.append(j)
            vals.append(w)
            deg[i] += abs(w)
    for i in range(size):
        rows.append(i)
        cols.append(i)
        vals.append(deg[i] + 1.0 + rng.random())
    return rows, cols, vals


def btf_composite(
    small_block_sizes: Sequence[int],
    big_block: Optional[CSC] = None,
    coupling_per_block: float = 1.0,
    block_density: float = 0.3,
    rng: np.random.Generator | None = None,
) -> CSC:
    """Compose a matrix with a prescribed coarse BTF structure.

    Layout: the big irreducible block (if any) first, then the small
    strongly connected blocks, with strictly *upward* random coupling
    entries (rows in earlier blocks, columns in later ones) so the
    block triangular form is exactly the construction.

    ``coupling_per_block``: expected number of coupling entries per
    small block.
    """
    rng = rng or np.random.default_rng(0)
    offsets = []
    cursor = 0
    if big_block is not None:
        offsets.append(cursor)
        cursor += big_block.n_rows
    small_offsets = []
    for s in small_block_sizes:
        small_offsets.append(cursor)
        cursor += int(s)
    n = cursor

    rows, cols, vals = [], [], []
    if big_block is not None:
        col_of = np.repeat(np.arange(big_block.n_cols), np.diff(big_block.indptr))
        rows += big_block.indices.tolist()
        cols += col_of.tolist()
        vals += big_block.data.tolist()
    for off, s in zip(small_offsets, small_block_sizes):
        r, c, v = cyclic_block(int(s), density=block_density, rng=rng)
        rows += [off + i for i in r]
        cols += [off + j for j in c]
        vals += v
    # Upward coupling: from a later block's column into an earlier row.
    for bi, (off, s) in enumerate(zip(small_offsets, small_block_sizes)):
        if off == 0:
            continue  # nothing above the first block
        k = rng.poisson(coupling_per_block)
        for _ in range(int(k)):
            j = off + int(rng.integers(s))
            i = int(rng.integers(off))  # strictly above this block
            if i < j:
                rows.append(i)
                cols.append(j)
                vals.append(-0.5 * rng.random())
    return CSC.from_coo(rows, cols, vals, (n, n))


def zero_diagonal_pairs(
    A: CSC,
    pairs: Sequence[Tuple[int, int]],
    rng: np.random.Generator | None = None,
) -> CSC:
    """Zero out the diagonal of each pair (i, j), strengthening the
    cross entries instead.

    Circuit matrices (famously rajat21) contain voltage-source-like
    rows with structural zero diagonals: solvable only after a
    matching/row exchange.  Solvers without MC64-style matching or
    pivoting fail with a zero pivot here.
    """
    rng = rng or np.random.default_rng(0)
    kill = set()
    for i, j in pairs:
        kill.add((int(i), int(i)))
        kill.add((int(j), int(j)))
    col_of = np.repeat(np.arange(A.n_cols), np.diff(A.indptr))
    rows, cols, vals = [], [], []
    for r, c, v in zip(A.indices.tolist(), col_of.tolist(), A.data.tolist()):
        if (r, c) in kill:
            continue
        rows.append(r)
        cols.append(c)
        vals.append(v)
    for i, j in pairs:
        w = 2.0 + rng.random()
        rows += [int(i), int(j)]
        cols += [int(j), int(i)]
        vals += [w, w + rng.random()]
    return CSC.from_coo(rows, cols, vals, A.shape)


def add_semi_dense_columns(
    A: CSC,
    n_cols: int,
    touch_frac: float = 0.3,
    rng: np.random.Generator | None = None,
) -> CSC:
    """Append semi-dense coupling columns/rows to a matrix.

    Each added column has entries scattered over ``touch_frac`` of the
    existing rows, its own diagonal, and *one* feedback entry — the
    pattern the paper blames for PMKL's weakness ("the reason for this
    is due to semi-dense columns that Basker is able to avoid
    factoring"): after BTF, each added vertex is its own 1x1 block and
    the dense column lands entirely in never-factored off-diagonal
    blocks, while a symmetrized supernodal ordering sees a huge clique.
    """
    rng = rng or np.random.default_rng(0)
    n = A.n_rows
    total = n + n_cols
    col_of = np.repeat(np.arange(A.n_cols), np.diff(A.indptr))
    rows = A.indices.tolist()
    cols = col_of.tolist()
    vals = A.data.tolist()
    for k in range(n_cols):
        j = n + k
        touched = rng.choice(n, size=max(1, int(touch_frac * n)), replace=False)
        for i in touched:
            rows.append(int(i))
            cols.append(j)
            vals.append(-0.1 * rng.random())
        rows.append(j)
        cols.append(j)
        vals.append(5.0 + rng.random())
    return CSC.from_coo(rows, cols, vals, (total, total))
