"""Power-grid matrix generators.

The paper's suite contains four power-grid matrices (marked ``+``):
the RS reduced systems (100 % BTF, hundreds to thousands of blocks,
fill density < 1), Power0 (100 % BTF, 7.7k blocks) and hvdc2 (100 %
BTF, 67 blocks, fill 2.8).  Power flow through a reduced network is
directional, which is what gives these matrices their rich block
triangular structure; the generators here build exactly that shape:
strongly connected subgrids (feeder loops / areas) chained by one-way
tie lines.
"""

from __future__ import annotations

import numpy as np

from ..sparse.csc import CSC
from .circuit import btf_composite

__all__ = ["reduced_system", "meshed_area_grid"]


def reduced_system(
    n_blocks: int,
    block_size_mean: float = 12.0,
    block_density: float = 0.25,
    coupling: float = 1.5,
    max_block: int = 95,
    rng: np.random.Generator | None = None,
) -> CSC:
    """RS-class power grid: 100 % BTF, many small irreducible blocks.

    Block sizes follow a geometric distribution around the mean (real
    reduced systems mix single buses with multi-bus loops), capped at
    ``max_block`` so every block stays in the fine-BTF class.
    """
    rng = rng or np.random.default_rng(0)
    p = 1.0 / max(block_size_mean, 1.0)
    sizes = np.minimum(1 + rng.geometric(p, size=n_blocks), max_block)
    return btf_composite(
        small_block_sizes=sizes.tolist(),
        big_block=None,
        coupling_per_block=coupling,
        block_density=block_density,
        rng=rng,
    )


def meshed_area_grid(
    n_areas: int,
    area_size: int,
    ring_degree: int = 4,
    chord_frac: float = 0.15,
    coupling: float = 2.0,
    rng: np.random.Generator | None = None,
) -> CSC:
    """hvdc-class grid: a moderate number of meshed areas (small-world
    rings with chords), one-way DC ties between areas."""
    rng = rng or np.random.default_rng(0)

    def area_matrix(size: int) -> CSC:
        rows, cols, vals = [], [], []
        deg = np.zeros(size)
        for i in range(size):
            for d in range(1, ring_degree // 2 + 1):
                j = (i + d) % size
                w1, w2 = -1.0 - rng.random(), -1.0 - rng.random()
                rows += [i, j]
                cols += [j, i]
                vals += [w1, w2]
                deg[i] += abs(w1)
                deg[j] += abs(w2)
        for _ in range(int(chord_frac * size)):
            i, j = int(rng.integers(size)), int(rng.integers(size))
            if i != j:
                w = -rng.random()
                rows.append(i)
                cols.append(j)
                vals.append(w)
                deg[i] += abs(w)
        for i in range(size):
            rows.append(i)
            cols.append(i)
            vals.append(deg[i] + 1.0 + rng.random())
        return CSC.from_coo(rows, cols, vals, (size, size))

    # Build blocks then compose with one-way ties (upper coupling).
    blocks = [area_matrix(area_size) for _ in range(n_areas)]
    n = n_areas * area_size
    rows, cols, vals = [], [], []
    for a, blk in enumerate(blocks):
        off = a * area_size
        col_of = np.repeat(np.arange(blk.n_cols), np.diff(blk.indptr))
        rows += (blk.indices + off).tolist()
        cols += (col_of + off).tolist()
        vals += blk.data.tolist()
        if a > 0:
            for _ in range(int(rng.poisson(coupling)) + 1):
                i = int(rng.integers(off))  # earlier area row
                j = off + int(rng.integers(area_size))
                rows.append(i)
                cols.append(j)
                vals.append(-0.3 * rng.random())
    return CSC.from_coo(rows, cols, vals, (n, n))
