"""Workload generators: circuit, power-grid and mesh matrices + suite registry."""

from .circuit import (
    add_semi_dense_columns,
    btf_composite,
    cyclic_block,
    ladder_circuit,
    thick_ladder,
    zero_diagonal_pairs,
)
from .mesh import grid2d, grid3d, irregular_grid
from .powergrid import meshed_area_grid, reduced_system
from .suite import (
    FIG5_MATRICES,
    MatrixSpec,
    TABLE1,
    TABLE2,
    get_matrix,
    get_spec,
    suite_names,
)

__all__ = [
    "ladder_circuit",
    "thick_ladder",
    "zero_diagonal_pairs",
    "irregular_grid",
    "btf_composite",
    "cyclic_block",
    "add_semi_dense_columns",
    "grid2d",
    "grid3d",
    "reduced_system",
    "meshed_area_grid",
    "MatrixSpec",
    "TABLE1",
    "TABLE2",
    "FIG5_MATRICES",
    "get_matrix",
    "get_spec",
    "suite_names",
]
