"""2-D/3-D mesh matrices — the supernodal solver's ideal inputs.

Table II of the paper tests PMKL on six 2/3-D mesh problems (wind
tunnel, 5-point stencil ecology model, 3-D finite differences,
stiffness matrices, parabolic FEM, Helmholtz).  These generators
produce the same structural classes: regular grid graphs with 5/9-point
(2-D) or 7/27-point (3-D) stencils, mild unsymmetric value
perturbations, and diagonal dominance for factorability.
"""

from __future__ import annotations

import itertools

import numpy as np

from ..sparse.csc import CSC

__all__ = ["grid2d", "grid3d", "irregular_grid"]


def irregular_grid(
    m: int,
    stencil: int = 5,
    drop: float = 0.3,
    taps: float = 0.01,
    rng: np.random.Generator | None = None,
) -> CSC:
    """A grid with randomly deleted couplings and a few random taps.

    Power-delivery / memory-array circuits are grid-*like* but
    irregular: missing couplings fragment the supernodes a symmetrized
    supernodal analysis would otherwise enjoy, while the fill-in
    density stays in the grid's (high) class.  ``drop`` is the fraction
    of stencil couplings removed; ``taps`` adds random long-range
    symmetric pairs.
    """
    rng = rng or np.random.default_rng(0)
    base = grid2d(m, stencil=stencil, rng=rng)
    n = base.n_rows
    col_of = np.repeat(np.arange(n), np.diff(base.indptr))
    rows, cols, vals = base.indices, col_of, base.data
    off = rows != cols
    # Drop symmetric pairs: decide per unordered pair.
    keep_pair = {}
    keep = np.ones(rows.size, dtype=bool)
    for k in np.flatnonzero(off):
        key = (min(int(rows[k]), int(cols[k])), max(int(rows[k]), int(cols[k])))
        if key not in keep_pair:
            keep_pair[key] = rng.random() >= drop
        keep[k] = keep_pair[key]
    r = rows[keep].tolist()
    c = cols[keep].tolist()
    v = vals[keep].tolist()
    for _ in range(int(taps * n)):
        i, j = int(rng.integers(n)), int(rng.integers(n))
        if i != j:
            w = -rng.random()
            r += [i, j]
            c += [j, i]
            v += [w, -rng.random()]
    return CSC.from_coo(r, c, v, (n, n))


def grid2d(
    m: int,
    stencil: int = 5,
    skew: float = 0.1,
    rng: np.random.Generator | None = None,
) -> CSC:
    """``m x m`` grid operator with a 5- or 9-point stencil.

    Values are diagonally dominant with an ``skew``-sized random
    asymmetry (the matrices are structurally symmetric, numerically
    unsymmetric — like the paper's mesh suite run through an
    unsymmetric solver).
    """
    if stencil not in (5, 9):
        raise ValueError("2-D stencil must be 5 or 9")
    rng = rng or np.random.default_rng(0)
    n = m * m
    idx = lambda i, j: i * m + j
    offsets = [(1, 0), (0, 1)]
    if stencil == 9:
        offsets += [(1, 1), (1, -1)]
    rows, cols, vals = [], [], []
    deg = np.zeros(n)
    for i, j in itertools.product(range(m), range(m)):
        a = idx(i, j)
        for di, dj in offsets:
            bi, bj = i + di, j + dj
            if 0 <= bi < m and 0 <= bj < m:
                b = idx(bi, bj)
                w1 = -1.0 - skew * rng.random()
                w2 = -1.0 - skew * rng.random()
                rows += [a, b]
                cols += [b, a]
                vals += [w1, w2]
                deg[a] += abs(w1)
                deg[b] += abs(w2)
    rows += list(range(n))
    cols += list(range(n))
    vals += (deg + 1.0 + 0.1 * rng.random(n)).tolist()
    return CSC.from_coo(rows, cols, vals, (n, n))


def grid3d(
    m: int,
    stencil: int = 7,
    skew: float = 0.1,
    rng: np.random.Generator | None = None,
) -> CSC:
    """``m x m x m`` grid operator with a 7- or 27-point stencil."""
    if stencil not in (7, 27):
        raise ValueError("3-D stencil must be 7 or 27")
    rng = rng or np.random.default_rng(0)
    n = m**3
    idx = lambda i, j, k: (i * m + j) * m + k
    if stencil == 7:
        offsets = [(1, 0, 0), (0, 1, 0), (0, 0, 1)]
    else:
        offsets = [
            o
            for o in itertools.product((-1, 0, 1), repeat=3)
            if o != (0, 0, 0) and (o > (0, 0, 0))
        ]
    rows, cols, vals = [], [], []
    deg = np.zeros(n)
    for i, j, k in itertools.product(range(m), repeat=3):
        a = idx(i, j, k)
        for di, dj, dk in offsets:
            bi, bj, bk = i + di, j + dj, k + dk
            if 0 <= bi < m and 0 <= bj < m and 0 <= bk < m:
                b = idx(bi, bj, bk)
                w1 = -1.0 - skew * rng.random()
                w2 = -1.0 - skew * rng.random()
                rows += [a, b]
                cols += [b, a]
                vals += [w1, w2]
                deg[a] += abs(w1)
                deg[b] += abs(w2)
    rows += list(range(n))
    cols += list(range(n))
    vals += (deg + 1.0 + 0.1 * rng.random(n)).tolist()
    return CSC.from_coo(rows, cols, vals, (n, n))
