"""The synthetic test-suite registry (Table I and Table II analogs).

The paper's suite comes from the UF collection and Sandia's Xyce runs,
neither available offline; per DESIGN.md each entry here is a scaled
synthetic analog that preserves the *qualitative axes* the paper's
analysis runs on — BTF coverage (percent of rows in small independent
blocks), number of BTF blocks, and the fill-in density class
(|L+U|/|A| below or above 4.0).  Every entry records the paper's
reported numbers so the benches can print paper-vs-measured tables.

Names keep the originals with a ``*``/``+`` convention matching the
paper's Table I (``*`` Sandia/Xyce, ``+`` power grid).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from ..sparse.csc import CSC
from .circuit import (
    add_semi_dense_columns,
    btf_composite,
    ladder_circuit,
    thick_ladder,
    zero_diagonal_pairs,
)
from .mesh import grid2d, grid3d, irregular_grid
from .powergrid import meshed_area_grid, reduced_system

__all__ = ["MatrixSpec", "TABLE1", "TABLE2", "FIG5_MATRICES", "get_matrix", "suite_names"]


@dataclass
class PaperStats:
    """Numbers reported in the paper's Table I for the original matrix."""

    n: float
    nnz: float
    fill_density: float      # |L+U| / |A| measured with KLU
    btf_pct: float           # percent of rows in small diagonal blocks
    btf_blocks: float
    klu_lu_nnz: float = 0.0
    pmkl_lu_nnz: float = 0.0
    basker_lu_nnz: float = 0.0


@dataclass
class MatrixSpec:
    name: str
    kind: str                     # 'circuit' | 'powergrid' | 'xyce' | 'mesh'
    paper: PaperStats
    build: Callable[[np.random.Generator], CSC]
    seed: int = 0
    high_fill: bool = False       # paper's fill-density > 4.0 group

    def generate(self) -> CSC:
        return self.build(np.random.default_rng(self.seed))


def _spec(name, kind, paper, build, seed=0, high_fill=False):
    return MatrixSpec(name=name, kind=kind, paper=paper, build=build, seed=seed, high_fill=high_fill)


# ----------------------------------------------------------------------
# Table I analogs (ordered by the paper's increasing KLU fill density).
# ----------------------------------------------------------------------

TABLE1: List[MatrixSpec] = [
    _spec(
        "RS_b39c30+", "powergrid",
        PaperStats(6.0e4, 1.1e6, 0.6, 100.0, 3e3, 6.9e5, 6.3e6, 6.9e5),
        lambda rng: reduced_system(130, block_size_mean=9.0, block_density=0.6,
                                   coupling=6.0, rng=rng),
        seed=39,
    ),
    _spec(
        "RS_b678c2+", "powergrid",
        PaperStats(3.6e4, 8.8e6, 0.7, 100.0, 271, 5.8e6, 5.9e7, 5.8e6),
        lambda rng: reduced_system(55, block_size_mean=24.0, block_density=0.35,
                                   coupling=12.0, max_block=90, rng=rng),
        seed=678,
    ),
    _spec(
        "Power0*+", "powergrid",
        PaperStats(9.8e4, 4.8e5, 1.3, 100.0, 7.7e3, 6.4e5, 9.1e5, 6.4e5),
        lambda rng: reduced_system(160, block_size_mean=7.0, block_density=0.25,
                                   coupling=1.5, rng=rng),
        seed=100,
    ),
    _spec(
        "Circuit5M", "circuit",
        PaperStats(5.6e6, 6.0e7, 1.3, 0.0, 1, 6.8e7, 3.1e8, 7.4e7),
        lambda rng: thick_ladder(400, 6, rng=rng),
        seed=5,
    ),
    _spec(
        "memplus", "circuit",
        PaperStats(1.2e4, 9.9e4, 1.4, 0.1, 23, 1.4e5, 1.3e5, 1.4e5),
        lambda rng: add_semi_dense_columns(
            btf_composite([2] * 10 + [3] * 6,
                          big_block=thick_ladder(185, 6, rng=rng),
                          coupling_per_block=1.0, rng=rng),
            n_cols=6, touch_frac=0.12, rng=rng),
        seed=12,
    ),
    _spec(
        "rajat21", "circuit",
        PaperStats(4.1e5, 1.9e6, 1.5, 2.0, 5.9e3, 2.8e6, 4.9e6, 2.8e6),
        lambda rng: add_semi_dense_columns(
            zero_diagonal_pairs(
                btf_composite([1] * 40 + [2] * 12,
                              big_block=thick_ladder(250, 6, rng=rng),
                              coupling_per_block=1.2, rng=rng),
                pairs=[(1540 + 2 * k, 1541 + 2 * k) for k in range(12)], rng=rng),
            n_cols=14, touch_frac=0.35, rng=rng),
        seed=21,
    ),
    _spec(
        "trans5", "circuit",
        PaperStats(1.2e5, 7.5e5, 1.6, 0.0, 1, 1.2e6, 1.3e6, 1.2e6),
        lambda rng: thick_ladder(300, 6, tap_frac=0.12, rng=rng),
        seed=55,
    ),
    _spec(
        "circuit_4", "circuit",
        PaperStats(8.0e4, 3.1e5, 1.6, 34.8, 2.8e4, 5.0e5, 5.8e5, 5.1e5),
        lambda rng: btf_composite(
            (1 + rng.poisson(2.0, size=110)).tolist(),
            big_block=thick_ladder(117, 6, rng=rng),
            coupling_per_block=1.0, rng=rng),
        seed=4,
    ),
    _spec(
        "Xyce0*", "xyce",
        PaperStats(6.8e5, 3.9e6, 1.8, 85.0, 5.8e5, 4.7e6, 3.8e7, 4.8e6),
        lambda rng: btf_composite(
            (1 + rng.poisson(1.5, size=400)).tolist(),
            big_block=thick_ladder(44, 6, rng=rng),
            coupling_per_block=0.8, rng=rng),
        seed=900,
    ),
    _spec(
        "Xyce4*", "xyce",
        PaperStats(6.2e6, 7.3e7, 2.0, 12.0, 7.5e5, 4.5e7, 5.0e7, 4.5e7),
        lambda rng: btf_composite(
            (1 + rng.poisson(1.0, size=120)).tolist(),
            big_block=thick_ladder(267, 6, tap_frac=0.12, rng=rng),
            coupling_per_block=1.0, rng=rng),
        seed=904,
    ),
    _spec(
        "Xyce1*", "xyce",
        PaperStats(4.3e5, 2.4e6, 2.4, 21.0, 9.9e4, 5.1e6, 5.6e6, 5.1e6),
        lambda rng: btf_composite(
            (1 + rng.poisson(1.5, size=180)).tolist(),
            big_block=thick_ladder(217, 6, tap_frac=0.15, rng=rng),
            coupling_per_block=1.0, rng=rng),
        seed=901,
    ),
    _spec(
        "asic_680ks", "circuit",
        PaperStats(6.8e5, 1.7e6, 2.6, 86.0, 5.8e5, 4.5e6, 2.9e7, 4.5e6),
        lambda rng: add_semi_dense_columns(
            btf_composite(
                (1 + rng.poisson(1.2, size=420)).tolist(),
                big_block=thick_ladder(42, 6, rng=rng),
                coupling_per_block=0.8, rng=rng),
            n_cols=10, touch_frac=0.25, rng=rng),
        seed=680,
    ),
    _spec(
        "bcircuit", "circuit",
        PaperStats(6.9e4, 3.8e5, 2.8, 0.0, 1, 1.1e6, 1.1e6, 1.1e6),
        lambda rng: thick_ladder(212, 8, tap_frac=0.2, rng=rng),
        seed=66,
    ),
    _spec(
        "scircuit", "circuit",
        PaperStats(1.7e5, 9.6e5, 2.8, 0.3, 48, 2.7e6, 2.7e6, 2.7e6),
        lambda rng: btf_composite(
            [1] * 30 + [2] * 8,
            big_block=thick_ladder(188, 8, tap_frac=0.2, rng=rng),
            coupling_per_block=1.0, rng=rng),
        seed=77,
    ),
    _spec(
        "hvdc2+", "powergrid",
        PaperStats(1.9e5, 1.3e6, 2.8, 100.0, 67, 3.8e6, 3.0e6, 3.8e6),
        lambda rng: meshed_area_grid(24, 60, ring_degree=4, chord_frac=0.2,
                                     coupling=2.0, rng=rng),
        seed=2,
    ),
    _spec(
        "Freescale1", "circuit",
        PaperStats(3.4e6, 1.7e7, 4.1, 0.0, 1, 7.1e7, 5.6e7, 6.8e7),
        lambda rng: grid2d(42, stencil=5, skew=0.4, rng=rng),
        seed=1,
        high_fill=True,
    ),
    _spec(
        "hcircuit", "circuit",
        PaperStats(1.1e5, 5.1e5, 6.9, 13.0, 1.4e3, 7.3e5, 6.7e5, 7.1e5),
        lambda rng: btf_composite(
            (1 + rng.poisson(1.0, size=60)).tolist(),
            big_block=grid2d(38, stencil=5, skew=0.3, rng=rng),
            coupling_per_block=0.8, rng=rng),
        seed=17,
        high_fill=True,
    ),
    _spec(
        "Xyce3*", "xyce",
        PaperStats(1.9e6, 9.5e6, 9.2, 20.0, 4.0e5, 7.6e7, 4.3e7, 7.7e7),
        lambda rng: btf_composite(
            (1 + rng.poisson(1.5, size=100)).tolist(),
            big_block=grid2d(40, stencil=9, skew=0.3, rng=rng),
            coupling_per_block=1.0, rng=rng),
        seed=903,
        high_fill=True,
    ),
    _spec(
        "memchip", "circuit",
        PaperStats(2.7e6, 1.3e7, 9.9, 0.0, 1, 1.3e8, 6.5e7, 9.4e7),
        lambda rng: grid2d(45, stencil=9, skew=0.4, rng=rng),
        seed=9,
        high_fill=True,
    ),
    _spec(
        "G2_Circuit", "circuit",
        PaperStats(1.5e5, 7.3e5, 27.7, 0.0, 1, 2.0e7, 1.3e7, 2.0e7),
        lambda rng: grid3d(12, stencil=7, skew=0.2, rng=rng),
        seed=2222,
        high_fill=True,
    ),
    _spec(
        "twotone", "circuit",
        PaperStats(1.2e5, 1.2e6, 39.9, 0.0, 5, 4.8e7, 2.7e7, 4.7e7),
        lambda rng: grid3d(10, stencil=27, skew=0.4, rng=rng),
        seed=2,
        high_fill=True,
    ),
    _spec(
        "onetone1", "circuit",
        PaperStats(3.6e4, 3.4e5, 40.8, 1.1, 203, 1.4e7, 4.3e6, 1.2e7),
        lambda rng: btf_composite(
            [1] * 30 + [2] * 10,
            big_block=grid3d(9, stencil=27, skew=0.4, rng=rng),
            coupling_per_block=0.8, rng=rng),
        seed=1111,
        high_fill=True,
    ),
]


# ----------------------------------------------------------------------
# Table II analogs: PMKL's ideal 2/3-D mesh problems.
# ----------------------------------------------------------------------

TABLE2: List[MatrixSpec] = [
    _spec("pwtk", "mesh", PaperStats(2.2e5, 1.2e7, 8.1, 0, 1, 9.7e7, 9.7e7, 0),
          lambda rng: grid2d(55, stencil=9, rng=rng), seed=31),
    _spec("ecology", "mesh", PaperStats(1.0e6, 5.0e6, 14.2, 0, 1, 7.1e7, 7.1e7, 0),
          lambda rng: grid2d(62, stencil=5, rng=rng), seed=32),
    _spec("apache2", "mesh", PaperStats(7.2e5, 4.8e6, 58.3, 0, 1, 2.8e8, 2.8e8, 0),
          lambda rng: grid3d(14, stencil=7, rng=rng), seed=33),
    _spec("bmwcra1", "mesh", PaperStats(1.5e5, 1.1e7, 12.7, 0, 1, 1.4e8, 1.4e8, 0),
          lambda rng: grid3d(11, stencil=27, rng=rng), seed=34),
    _spec("parabolic_fem", "mesh", PaperStats(5.3e5, 3.7e6, 14.1, 0, 1, 5.2e7, 5.2e7, 0),
          lambda rng: grid2d(58, stencil=5, rng=rng), seed=35),
    _spec("helm2d03", "mesh", PaperStats(3.9e5, 2.7e6, 13.7, 0, 1, 3.7e7, 3.7e7, 0),
          lambda rng: grid2d(52, stencil=9, rng=rng), seed=36),
]


# The six matrices of Figures 5 and 6, in the paper's order
# (fill density 1.3 -> 9.2).
FIG5_MATRICES = ["Power0*+", "rajat21", "asic_680ks", "hvdc2+", "Freescale1", "Xyce3*"]

_ALL: Dict[str, MatrixSpec] = {s.name: s for s in TABLE1 + TABLE2}


def suite_names(table: int = 1) -> List[str]:
    return [s.name for s in (TABLE1 if table == 1 else TABLE2)]


def get_matrix(name: str) -> CSC:
    """Generate a suite matrix by its Table I / Table II name."""
    if name not in _ALL:
        raise KeyError(f"unknown suite matrix {name!r}; known: {sorted(_ALL)}")
    return _ALL[name].generate()


def get_spec(name: str) -> MatrixSpec:
    if name not in _ALL:
        raise KeyError(f"unknown suite matrix {name!r}")
    return _ALL[name]
