"""Suite-wide chaos sweep: every matrix x every fault kind.

For each matrix in the Table-1 suite and each fault kind, a
deterministic :class:`~repro.resilience.faults.FaultPlan` is armed at
the kind's natural injection site and a short fixed-pattern refactor
sequence is driven through :meth:`DirectSolver.solve_resilient`.  The
acceptance contract of the robustness work is binary:

* the recovery ladder produces a verified solve (componentwise
  backward error at or below ``tol``) — ``recovered``; or
* a *structured* :class:`~repro.errors.ReproError` propagates —
  ``typed_error``.

Anything else is a finding: ``untyped_escape`` (a bare numpy/Python
exception crossed the API boundary), ``silent_nonfinite`` (NaN/Inf
returned as a solution), or ``silent_wrong`` (backward error above
tolerance with no error raised).  ``python -m repro chaos`` emits the
findings as JSON and exits nonzero when any finding is present.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..errors import ReproError
from ..interface import DirectSolver
from ..matrices import TABLE1, get_matrix
from ..sparse.csc import CSC
from ..sparse.verify import componentwise_backward_error
from .faults import FAULT_KINDS, FaultPlan, FaultSpec, fault_matrix

__all__ = ["run_chaos", "FAILURE_CLASSES"]

# Classifications that make the sweep (and the CI chaos job) fail.
FAILURE_CLASSES = ("untyped_escape", "silent_nonfinite", "silent_wrong")


def _site_for(kind: str, solver: str, warm: bool) -> str:
    """The natural injection site for a fault kind on a given solver."""
    if kind in ("perturb", "nan"):
        if solver in ("klu", "basker") and warm:
            # Hit the hot values-only replay path of the warm sweep.
            return f"{solver}.refactor.values"
        return "gp.factor.values"
    if kind in ("pivot_zero", "drop_update"):
        return "schedule.replay.workspace"
    return "sequence.matrix"  # pattern_drift


def _spec_for(kind: str, site: str, warm: bool) -> FaultSpec:
    # Warm sweeps have a prior factorization, so the fault can fire on
    # the very first invocation (the replay path).  Cold sweeps delay
    # the harness-driven matrix drift to the second step so the
    # fixed-pattern replay state exists when it hits.
    occurrence = 1 if (site == "sequence.matrix" and not warm) else 0
    return FaultSpec(site=site, kind=kind, occurrence=occurrence)


def _run_cell(
    ds: DirectSolver,
    A0: CSC,
    x_true: np.ndarray,
    name: str,
    kind: str,
    site: str,
    spec: FaultSpec,
    steps: int,
    tol: float,
) -> dict:
    """Drive one (matrix, kind, site) cell through the armed plan."""
    case = {
        "matrix": name,
        "kind": kind,
        "site": site,
        "classification": "recovered",
        "steps": [],
        "events": 0,
    }
    with FaultPlan([spec], label=f"{name}:{kind}@{site}") as plan:
        for k in range(steps):
            Ak = CSC(
                A0.n_rows, A0.n_cols, A0.indptr, A0.indices,
                A0.data * (1.0 + 0.03 * k),
            )
            # The sequence-level site is driven by the harness:
            # the matrix itself changes between refactor steps.
            Ak = fault_matrix("sequence.matrix", Ak)
            bk = Ak.matvec(x_true)
            step: dict = {"step": k}
            try:
                x, report = ds.solve_resilient(
                    Ak, bk, tol=tol, label=f"{name}[{k}]"
                )
            except ReproError as exc:
                step["outcome"] = "typed_error"
                step["error_type"] = type(exc).__name__
                case["classification"] = "typed_error"
                case["steps"].append(step)
                break
            except Exception as exc:  # the finding we hunt for
                step["outcome"] = "untyped_escape"
                step["error_type"] = type(exc).__name__
                step["error"] = str(exc)
                case["classification"] = "untyped_escape"
                case["steps"].append(step)
                break
            step["rung"] = report.succeeded
            step["backward_error"] = report.backward_error
            if not np.all(np.isfinite(x)):
                step["outcome"] = "silent_nonfinite"
                case["classification"] = "silent_nonfinite"
                case["steps"].append(step)
                break
            berr = componentwise_backward_error(Ak, x, bk)
            if not (berr <= tol):
                step["outcome"] = "silent_wrong"
                step["verified_backward_error"] = float(berr)
                case["classification"] = "silent_wrong"
                case["steps"].append(step)
                break
            step["outcome"] = "recovered"
            case["steps"].append(step)
        case["events"] = len(plan.events)
        case["unfired"] = len(plan.unfired())
    return case


def run_chaos(
    names: Optional[Sequence[str]] = None,
    kinds: Optional[Sequence[str]] = None,
    solver: str = "klu",
    steps: int = 2,
    tol: float = 1e-10,
    warm: bool = True,
) -> dict:
    """Run the chaos sweep and return structured findings.

    ``steps`` same-pattern value variations of each matrix are solved
    through the recovery ladder while the fault plan is armed; the
    sweep is fully deterministic (occurrence-counted fault firing, no
    randomness), so a failing (matrix, kind) cell replays exactly.

    With ``warm=True`` (the default) one clean factorization per matrix
    is shared across the fault kinds, so each fault hits the hot
    values-only *replay* path first — the production shape of a
    transient run, and an order of magnitude cheaper than cold-starting
    every cell.  ``warm=False`` cold-starts every (matrix, kind) cell.
    """
    names = list(names) if names is not None else [s.name for s in TABLE1]
    kinds = list(kinds) if kinds is not None else list(FAULT_KINDS)
    cases: List[dict] = []

    for name in names:
        A0 = get_matrix(name)
        x_true = np.ones(A0.n_rows, dtype=np.float64)
        ds = DirectSolver(solver)
        if warm:
            ds.symbolic_factorization(A0)
            ds.numeric_factorization(A0)
        for kind in kinds:
            site = _site_for(kind, solver, warm)
            spec = _spec_for(kind, site, warm)
            if not warm:
                ds = DirectSolver(solver)
            cases.append(
                _run_cell(ds, A0, x_true, name, kind, site, spec, steps, tol)
            )
        # Extra cells for the dense-panel gather of the blocked
        # first-time factorization: cold-start so the very first
        # numeric factorization runs under the armed plan (that is the
        # only path through ``gp.panel``; warm sweeps replay values and
        # never re-enter it).  The site fires only on matrices whose
        # largest blocks detect a dense tail — elsewhere the cell
        # records an unfired plan and trivially recovers.
        for kind in kinds:
            if kind not in ("perturb", "nan"):
                continue
            spec = _spec_for(kind, "gp.panel", warm=False)
            cases.append(
                _run_cell(
                    DirectSolver(solver), A0, x_true,
                    name, kind, "gp.panel", spec, steps, tol,
                )
            )

    summary: dict = {}
    for case in cases:
        summary[case["classification"]] = summary.get(case["classification"], 0) + 1
    return {
        "solver": solver,
        "tol": tol,
        "steps": steps,
        "kinds": kinds,
        "n_matrices": len(names),
        "cases": cases,
        "summary": summary,
        "failures": [
            {"matrix": c["matrix"], "kind": c["kind"],
             "classification": c["classification"]}
            for c in cases if c["classification"] in FAILURE_CLASSES
        ],
    }
