"""Deterministic, seeded fault injection for the solve/refactor kernels.

A :class:`FaultPlan` is a context manager that arms a set of
:class:`FaultSpec` corruptions at *named injection sites* compiled into
the GP/KLU/Basker kernels and the schedule replay.  While a plan is
active, each site calls back into the plan once per invocation; a spec
fires when its site's invocation counter reaches ``occurrence``, so a
given (plan, workload) pair always injects at exactly the same places —
failure paths become replayable tests instead of field anecdotes.

The hooks are free when no plan is active: one module-global ``is None``
check per kernel *step* (never per column), which keeps the PR-3
wall-clock floors intact.

Sites and the fault kinds they accept:

====================================  =========  ==========================
site                                  hook type  kinds
====================================  =========  ==========================
``gp.factor.values``                  values     perturb, nan
``gp.panel``                          values     perturb, nan
``gp.refactor.values``                values     perturb, nan
``klu.refactor.values``               values     perturb, nan
``basker.refactor.values``            values     perturb, nan
``schedule.replay.workspace``         workspace  pivot_zero, drop_update,
                                                 perturb, nan
``sequence.matrix``                   matrix     pattern_drift, perturb, nan
====================================  =========  ==========================

* ``perturb`` — multiply one entry by ``magnitude`` (default ``1e8``).
* ``nan`` — poison one entry with NaN.
* ``pivot_zero`` — zero one *pivot* workspace slot (provokes
  :class:`~repro.errors.SingularMatrixError` in the replay).
* ``drop_update`` — zero one non-pivot workspace slot right after the
  input scatter, simulating a lost update/store.
* ``pattern_drift`` — insert a structurally new entry into a matrix
  (simulates the pattern changing between refactor steps).

Corruptions are applied to *internal copies*: a faulted kernel never
mutates its caller's arrays, so the recovery ladder can re-run from the
pristine input.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import FaultInjectionError
from ..obs.tracer import get_tracer

if TYPE_CHECKING:  # import-light: sparse imports this module at runtime
    from ..sparse.csc import CSC

__all__ = [
    "FAULT_KINDS",
    "KNOWN_SITES",
    "FaultSpec",
    "FaultEvent",
    "FaultPlan",
    "active_plan",
    "fault_values",
    "fault_workspace",
    "fault_matrix",
]

FAULT_KINDS = ("perturb", "nan", "pivot_zero", "drop_update", "pattern_drift")

# site name -> (hook type, allowed kinds, description)
KNOWN_SITES: Dict[str, Tuple[str, Tuple[str, ...], str]] = {
    "gp.factor.values": (
        "values", ("perturb", "nan"),
        "input values entering a fresh Gilbert-Peierls factorization",
    ),
    "gp.panel": (
        "values", ("perturb", "nan"),
        "trailing-column values gathered into the dense panel of the "
        "blocked gp_factor (fires only when a dense tail is detected)",
    ),
    "gp.refactor.values": (
        "values", ("perturb", "nan"),
        "input values entering the gp_refactor schedule replay",
    ),
    "klu.refactor.values": (
        "values", ("perturb", "nan"),
        "permuted matrix values inside KLU.refactor_fast",
    ),
    "basker.refactor.values": (
        "values", ("perturb", "nan"),
        "permuted matrix values inside Basker.refactor_fast",
    ),
    "schedule.replay.workspace": (
        "workspace", ("pivot_zero", "drop_update", "perturb", "nan"),
        "scattered workspace of RefactorSchedule.run (pivot slots known)",
    ),
    "sequence.matrix": (
        "matrix", ("pattern_drift", "perturb", "nan"),
        "assembled matrix between refactor steps (chaos/transient harness)",
    ),
}


@dataclass(frozen=True)
class FaultSpec:
    """One armed corruption.

    ``occurrence`` counts invocations of the site (0 = first call);
    ``frac`` in ``[0, 1)`` selects the target index as
    ``int(frac * size)``, so a spec is meaningful for any matrix size.
    """

    site: str
    kind: str
    occurrence: int = 0
    frac: float = 0.5
    magnitude: float = 1e8

    def validate(self) -> None:
        if self.site not in KNOWN_SITES:
            raise FaultInjectionError(
                f"unknown fault site {self.site!r}; known: {sorted(KNOWN_SITES)}"
            )
        hook_type, allowed, _ = KNOWN_SITES[self.site]
        if self.kind not in FAULT_KINDS:
            raise FaultInjectionError(
                f"unknown fault kind {self.kind!r}; known: {list(FAULT_KINDS)}"
            )
        if self.kind not in allowed:
            raise FaultInjectionError(
                f"fault kind {self.kind!r} is not injectable at site "
                f"{self.site!r} (a {hook_type} site accepts {list(allowed)})"
            )
        if not (0 <= self.occurrence):
            raise FaultInjectionError("occurrence must be >= 0")
        if not (0.0 <= self.frac < 1.0):
            raise FaultInjectionError("frac must be in [0, 1)")


@dataclass(frozen=True)
class FaultEvent:
    """Record of one corruption that actually fired."""

    site: str
    kind: str
    occurrence: int
    index: int
    detail: str


_ACTIVE: Optional["FaultPlan"] = None


def active_plan() -> Optional["FaultPlan"]:
    return _ACTIVE


class FaultPlan:
    """Context manager arming a deterministic set of fault specs.

    >>> plan = FaultPlan([FaultSpec("gp.refactor.values", "nan")])
    >>> with plan:
    ...     solver.refactor_fast(A, numeric)   # doctest: +SKIP
    >>> plan.events                            # what actually fired
    """

    def __init__(self, specs: Sequence[FaultSpec], label: str = ""):
        self.specs: List[FaultSpec] = list(specs)
        for spec in self.specs:
            spec.validate()
        self.label = label
        self.events: List[FaultEvent] = []
        self._counters: Dict[str, int] = {}
        # site -> occurrence -> [specs]
        self._by_site: Dict[str, Dict[int, List[FaultSpec]]] = {}
        for spec in self.specs:
            self._by_site.setdefault(spec.site, {}).setdefault(
                spec.occurrence, []
            ).append(spec)

    # ------------------------------------------------------------------
    @classmethod
    def random(
        cls,
        seed: int,
        n_faults: int = 3,
        sites: Optional[Sequence[str]] = None,
        kinds: Optional[Sequence[str]] = None,
        max_occurrence: int = 3,
    ) -> "FaultPlan":
        """A deterministic plan drawn from ``seed``: same seed, same
        specs, same injected sites."""
        rng = np.random.default_rng(seed)
        pool: List[Tuple[str, str]] = []
        for site in (sites if sites is not None else sorted(KNOWN_SITES)):
            if site not in KNOWN_SITES:
                raise FaultInjectionError(f"unknown fault site {site!r}")
            _, allowed, _ = KNOWN_SITES[site]
            for kind in allowed:
                if kinds is None or kind in kinds:
                    pool.append((site, kind))
        if not pool:
            raise FaultInjectionError("no (site, kind) pairs match the filters")
        specs = []
        for _ in range(n_faults):
            site, kind = pool[int(rng.integers(len(pool)))]
            specs.append(FaultSpec(
                site=site,
                kind=kind,
                occurrence=int(rng.integers(max_occurrence)),
                frac=float(rng.random()),
            ))
        return cls(specs, label=f"random(seed={seed})")

    # ------------------------------------------------------------------
    def __enter__(self) -> "FaultPlan":
        global _ACTIVE
        if _ACTIVE is not None:
            raise FaultInjectionError("a FaultPlan is already active (no nesting)")
        self.events = []
        self._counters = {}
        _ACTIVE = self
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        global _ACTIVE
        _ACTIVE = None

    def unfired(self) -> List[FaultSpec]:
        """Specs whose (site, occurrence) was never reached."""
        fired = {(e.site, e.kind, e.occurrence) for e in self.events}
        return [s for s in self.specs
                if (s.site, s.kind, s.occurrence) not in fired]

    # ------------------------------------------------------------------
    def _due(self, site: str) -> List[FaultSpec]:
        count = self._counters.get(site, 0)
        self._counters[site] = count + 1
        per_site = self._by_site.get(site)
        if not per_site:
            return []
        return per_site.get(count, [])

    def _record(self, spec: FaultSpec, index: int, detail: str) -> None:
        self.events.append(FaultEvent(
            site=spec.site, kind=spec.kind, occurrence=spec.occurrence,
            index=index, detail=detail,
        ))
        metrics = get_tracer().metrics
        metrics.incr("resilience.faults.injected")
        metrics.incr(f"resilience.faults.{spec.kind}")

    # ------------------------------------------------------------------
    def apply_values(self, site: str, values: np.ndarray) -> np.ndarray:
        due = self._due(site)
        if not due or values.size == 0:
            return values
        out = np.array(values, dtype=np.float64, copy=True)
        for spec in due:
            idx = int(spec.frac * out.size)
            if spec.kind == "perturb":
                old = out[idx]
                out[idx] = (old if old != 0.0 else 1.0) * spec.magnitude
                self._record(spec, idx, f"scaled entry by {spec.magnitude:g}")
            elif spec.kind == "nan":
                out[idx] = np.nan
                self._record(spec, idx, "poisoned entry with NaN")
        return out

    def apply_workspace(
        self, site: str, xwork: np.ndarray, pivot_positions: np.ndarray
    ) -> None:
        """Corrupt the (private, freshly scattered) replay workspace in
        place.  ``pivot_positions`` are the workspace slots holding the
        pivots, so ``pivot_zero`` can target a real pivot and
        ``drop_update`` a real update slot."""
        due = self._due(site)
        if not due or xwork.size == 0:
            return
        for spec in due:
            if spec.kind == "pivot_zero":
                if pivot_positions.size == 0:
                    continue
                # Prefer a pivot slot currently holding a nonzero value:
                # zeroing an already-zero slot would be a no-op fault.
                live = pivot_positions[xwork[pivot_positions] != 0.0]
                pool = live if live.size else pivot_positions
                pos = int(pool[int(spec.frac * pool.size)])
                xwork[pos] = 0.0
                self._record(spec, pos, "zeroed a pivot workspace slot")
                continue
            # The workspace spans the union factor pattern; fill-in
            # slots are still zero right after the input scatter, so
            # target a slot that actually carries an input value.
            nz = np.flatnonzero(xwork)
            idx = int(nz[int(spec.frac * nz.size)]) if nz.size else int(
                spec.frac * xwork.size
            )
            if spec.kind == "drop_update":
                # avoid the pivot slots: dropping a pivot is pivot_zero
                pivots = set(int(p) for p in pivot_positions)
                if idx in pivots:
                    for alt in nz:
                        if int(alt) not in pivots:
                            idx = int(alt)
                            break
                    else:
                        idx = (idx + 1) % xwork.size
                xwork[idx] = 0.0
                self._record(spec, idx, "zeroed an update workspace slot")
            elif spec.kind == "perturb":
                old = xwork[idx]
                xwork[idx] = (old if old != 0.0 else 1.0) * spec.magnitude
                self._record(spec, idx, f"scaled workspace slot by {spec.magnitude:g}")
            elif spec.kind == "nan":
                xwork[idx] = np.nan
                self._record(spec, idx, "poisoned workspace slot with NaN")

    def apply_matrix(self, site: str, A: CSC) -> CSC:
        due = self._due(site)
        if not due or A.nnz == 0:
            return A
        for spec in due:
            if spec.kind == "pattern_drift":
                A = _insert_entry(A, spec, self)
            else:
                data = self.apply_values_single(spec, A.data)
                A = A.__class__(A.n_rows, A.n_cols, A.indptr, A.indices, data)
        return A

    def apply_values_single(self, spec: FaultSpec, values: np.ndarray) -> np.ndarray:
        out = np.array(values, dtype=np.float64, copy=True)
        idx = int(spec.frac * out.size)
        if spec.kind == "perturb":
            old = out[idx]
            out[idx] = (old if old != 0.0 else 1.0) * spec.magnitude
            self._record(spec, idx, f"scaled entry by {spec.magnitude:g}")
        elif spec.kind == "nan":
            out[idx] = np.nan
            self._record(spec, idx, "poisoned entry with NaN")
        return out


def _insert_entry(A: CSC, spec: FaultSpec, plan: FaultPlan) -> CSC:
    """Insert one structurally new entry (pattern drift)."""
    n_rows, n_cols = A.n_rows, A.n_cols
    j = int(spec.frac * n_cols)
    lo, hi = int(A.indptr[j]), int(A.indptr[j + 1])
    present = set(int(r) for r in A.indices[lo:hi])
    row = -1
    for r in range(n_rows):
        if r not in present:
            row = r
            break
    if row < 0:  # column already dense; drift is impossible here
        return A
    pos = lo + int(np.searchsorted(A.indices[lo:hi], row))
    indptr = A.indptr.copy()
    indptr[j + 1:] += 1
    indices = np.insert(A.indices, pos, row)
    scale = float(np.max(np.abs(A.data), initial=1.0))
    data = np.insert(A.data, pos, 1e-3 * scale)
    plan._record(spec, pos, f"inserted entry ({row}, {j})")
    return A.__class__(n_rows, n_cols, indptr, indices, data)


# ----------------------------------------------------------------------
# Kernel-side hooks: one global check when inactive.
# ----------------------------------------------------------------------


def fault_values(site: str, values: np.ndarray) -> np.ndarray:
    """Hook for value-array sites; returns a corrupted copy or the
    input unchanged.  Zero-cost (one ``is None`` check) when no plan is
    active."""
    plan = _ACTIVE
    if plan is None:
        return values
    return plan.apply_values(site, values)


def fault_workspace(site: str, xwork: np.ndarray, pivot_positions: np.ndarray) -> None:
    plan = _ACTIVE
    if plan is None:
        return
    plan.apply_workspace(site, xwork, pivot_positions)


def fault_matrix(site: str, A: CSC) -> CSC:
    plan = _ACTIVE
    if plan is None:
        return A
    return plan.apply_matrix(site, A)
