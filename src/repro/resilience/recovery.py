"""The recovery ladder: bounded escalation from a degraded solve.

When a solve/refactor step degrades — a reused pivot collapses, a
fault corrupts the replay, the matrix drifts — the ladder escalates
through increasingly expensive (and increasingly robust) strategies,
verifying each candidate solution with the componentwise
Oettli–Prager backward error before accepting it:

1. ``replay``          — values-only ``refactor_fast`` on the prior
                         numeric object (the cheap path that normally
                         runs every step).
2. ``refactor``        — full numeric factorization with fresh
                         pivoting on the existing symbolic analysis.
3. ``repivot``         — fresh symbolic + numeric factorization with
                         *strict partial pivoting* (``pivot_tol=1.0``),
                         abandoning the diagonal preference that
                         trades stability for sparsity.
4. ``perturb_refine``  — static pivot perturbation
                         (``sqrt(eps) * max|A|``) so the factorization
                         cannot fail structurally, then iterative
                         refinement to win the accuracy back.
5. ``dense_fallback``  — dense LU with partial pivoting plus
                         refinement; the last resort for small/ugly
                         blocks (GLU3.0-style re-pivot recovery).

Every rung is traced as a ``resilience.rung.<name>`` span (with its
cost ledger attached, so ``check_ledger_tree`` stays bit-exact),
counted as ``resilience.*`` metrics, and summarized in a
:class:`RecoveryReport`.  If no rung produces a verified solution the
ladder raises :class:`~repro.errors.RecoveryExhaustedError` carrying
the attempt records.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

import numpy as np

from ..errors import RecoveryExhaustedError, ReproError
from ..obs.tracer import get_tracer
from ..parallel.ledger import CostLedger
from ..solvers.dense import dense_lu_factor
from ..solvers.extras import refine_solve
from ..solvers.triangular import lu_solve_factors
from ..sparse.csc import CSC
from ..sparse.verify import componentwise_backward_error, validate_rhs

__all__ = [
    "RECOVERY_LADDER",
    "RungAttempt",
    "RecoveryReport",
    "run_ladder",
]

RECOVERY_LADDER = ("replay", "refactor", "repivot", "perturb_refine", "dense_fallback")

LOOSE_PIVOT_TOL = 1.0  # strict partial pivoting for the re-pivot rung


@dataclass
class RungAttempt:
    """One bounded attempt at one ladder rung."""

    rung: str
    ok: bool
    error_type: Optional[str] = None
    error: Optional[str] = None
    backward_error: Optional[float] = None

    def to_dict(self) -> dict:
        return {
            "rung": self.rung,
            "ok": self.ok,
            "error_type": self.error_type,
            "error": self.error,
            "backward_error": self.backward_error,
        }


@dataclass
class RecoveryReport:
    """Structured summary of one ladder run."""

    attempts: List[RungAttempt] = field(default_factory=list)
    succeeded: Optional[str] = None      # rung name, or None when exhausted
    backward_error: Optional[float] = None
    ledger: CostLedger = field(default_factory=CostLedger)

    @property
    def ok(self) -> bool:
        return self.succeeded is not None

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "succeeded": self.succeeded,
            "backward_error": self.backward_error,
            "attempts": [a.to_dict() for a in self.attempts],
        }


def _static_perturbation(A: CSC) -> float:
    scale = float(np.max(np.abs(A.data), initial=1.0))
    if not np.isfinite(scale) or scale == 0.0:
        scale = 1.0
    return float(np.sqrt(np.finfo(np.float64).eps)) * scale


def run_ladder(
    impl,
    A: CSC,
    b: np.ndarray,
    symbolic=None,
    prior=None,
    make_variant: Optional[Callable[..., object]] = None,
    tol: float = 1e-10,
    refine_steps: int = 4,
    label: str = "",
    before_rung: Optional[Callable[[str, RecoveryReport], None]] = None,
) -> Tuple[np.ndarray, Optional[object], RecoveryReport]:
    """Escalate through the recovery ladder until a verified solve.

    Parameters
    ----------
    impl
        The solver instance (KLU / Basker / SupernodalLU flavoured)
        whose ``analyze``/``factor``/``refactor_fast``/``solve``
        methods drive rungs 1–2.
    symbolic, prior
        The existing symbolic analysis and prior numeric object; the
        ``replay`` rung is skipped when ``prior`` is None.
    make_variant
        ``make_variant(**overrides) -> solver`` factory used by the
        ``repivot``/``perturb_refine`` rungs to build a solver with
        ``pivot_tol``/``static_perturb`` overridden.  When absent those
        rungs reuse ``impl`` (still with a fresh symbolic analysis).
    tol
        Componentwise backward-error acceptance threshold.
    before_rung
        Optional hook ``before_rung(rung_name, report)`` invoked before
        each rung attempt, *outside* the rung's error handling: anything
        it raises propagates out of the ladder immediately with the
        partial ``report`` still consistent.  The serving layer uses it
        to enforce modeled deadlines mid-ladder
        (:class:`~repro.errors.DeadlineExceededError` carrying the
        partial report) and to detect cache-lease invalidation between
        rungs.

    Returns ``(x, numeric, report)`` — ``numeric`` is the accepted
    factorization when the winning rung produced an ``impl``-compatible
    one (None for the dense fallback).  Raises
    :class:`~repro.errors.RecoveryExhaustedError` when every rung
    fails, with ``attempts`` carrying the per-rung records.
    """
    tr = get_tracer()
    metrics = tr.metrics
    report = RecoveryReport()
    b64 = validate_rhs(b, A.n_rows)

    def attempt(rung: str, fn) -> Optional[Tuple[np.ndarray, Optional[object]]]:
        if before_rung is not None:
            before_rung(rung, report)
        metrics.incr("resilience.attempts")
        metrics.incr(f"resilience.rung.{rung}.attempts")
        with tr.span(f"resilience.rung.{rung}") as sp:
            if tr.enabled and label:
                sp.set(matrix=label)
            try:
                x, numeric, led = fn()
            except ReproError as exc:
                report.attempts.append(RungAttempt(
                    rung=rung, ok=False,
                    error_type=type(exc).__name__, error=str(exc),
                ))
                if tr.enabled:
                    sp.set(ok=False, error=type(exc).__name__)
                return None
            if led is not None:
                report.ledger.add(led)
                sp.attach(led)
            berr = componentwise_backward_error(A, x, b64)
            ok = bool(np.isfinite(berr) and berr <= tol)
            report.attempts.append(RungAttempt(
                rung=rung, ok=ok,
                error_type=None if ok else "backward_error",
                error=None if ok else f"componentwise backward error {berr:.3e}",
                backward_error=float(berr) if np.isfinite(berr) else None,
            ))
            if tr.enabled:
                sp.set(ok=ok, backward_error=float(berr) if np.isfinite(berr) else -1.0)
            if not ok:
                return None
            metrics.incr(f"resilience.rung.{rung}.success")
            metrics.observe("resilience.ladder.attempts", float(len(report.attempts)))
            report.succeeded = rung
            report.backward_error = float(berr)
            return x, numeric

    # -- rung 1: values-only replay on the prior numeric ----------------
    if prior is not None:
        def _replay():
            numeric = impl.refactor_fast(A, prior)
            return impl.solve(numeric, b64), numeric, numeric.ledger
        out = attempt("replay", _replay)
        if out is not None:
            return out[0], out[1], report

    # -- rung 2: full refactorization, fresh pivoting --------------------
    def _refactor():
        led = CostLedger()
        sym = symbolic
        if sym is None:
            sym = impl.analyze(A)
            led.add(sym.ledger)
        numeric = impl.factor(A, symbolic=sym)
        led.add(numeric.ledger)
        return impl.solve(numeric, b64), numeric, led
    out = attempt("refactor", _refactor)
    if out is not None:
        return out[0], out[1], report

    # -- rung 3: re-pivot with strict partial pivoting -------------------
    def _repivot():
        solver = impl if make_variant is None else make_variant(
            pivot_tol=LOOSE_PIVOT_TOL
        )
        led = CostLedger()
        sym = solver.analyze(A)          # fresh: the pattern may have drifted
        led.add(sym.ledger)
        numeric = solver.factor(A, symbolic=sym)
        led.add(numeric.ledger)
        x = solver.solve(numeric, b64)
        compatible = solver is impl or type(solver) is type(impl)
        return x, (numeric if compatible else None), led
    out = attempt("repivot", _repivot)
    if out is not None:
        return out[0], out[1], report

    # -- rung 4: static pivot perturbation + iterative refinement --------
    def _perturb_refine():
        eps = _static_perturbation(A)
        solver = impl if make_variant is None else make_variant(
            pivot_tol=LOOSE_PIVOT_TOL, static_perturb=eps
        )
        led = CostLedger()
        sym = solver.analyze(A)
        led.add(sym.ledger)
        numeric = solver.factor(A, symbolic=sym)
        led.add(numeric.ledger)
        x, _hist = refine_solve(solver, numeric, A, b64, max_steps=refine_steps)
        # The perturbed factorization is not a faithful factorization of
        # A; never hand it back for later replays.
        return x, None, led
    out = attempt("perturb_refine", _perturb_refine)
    if out is not None:
        return out[0], out[1], report

    # -- rung 5: dense LU fallback ---------------------------------------
    def _dense_fallback():
        led = CostLedger()
        lu = dense_lu_factor(A, static_perturb=_static_perturbation(A), ledger=led)
        x = lu_solve_factors(lu.L, lu.U, b64[lu.row_perm])
        for _ in range(refine_steps):
            r = b64 - A.matvec(x)
            if float(np.max(np.abs(r), initial=0.0)) == 0.0:
                break
            x = x + lu_solve_factors(lu.L, lu.U, r[lu.row_perm])
        return x, None, led
    out = attempt("dense_fallback", _dense_fallback)
    if out is not None:
        return out[0], out[1], report

    metrics.incr("resilience.exhausted")
    metrics.observe("resilience.ladder.attempts", float(len(report.attempts)))
    raise RecoveryExhaustedError(
        f"recovery ladder exhausted after {len(report.attempts)} attempt(s)"
        + (f" on {label}" if label else ""),
        attempts=report.attempts,
    )
