"""Numerical-health monitoring for factorizations and solves.

One :func:`factor_health` call per factorization *step* (never per
column) computes the classic direct-solver diagnostics —

* **reciprocal pivot growth** (``klu_rgrowth`` analogue): small values
  mean element growth ate the input's significant digits;
* **Hager/Higham 1-norm condition estimate** (``klu_condest``): one
  solve + one transpose solve per power step;
* **NaN/Inf scans** of the factor values and pivots;
* **pivot magnitude extremes** from the stored U diagonals;

and after a solve, the **componentwise (Oettli–Prager) backward
error** bounds how wrong the returned ``x`` can be.  Everything is
surfaced as a :class:`HealthReport` and recorded through the metrics
registry (``resilience.health.*`` gauges), so a transient run's health
is visible in any ``python -m repro trace`` snapshot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..errors import NumericalHealthError
from ..obs.tracer import get_tracer
from ..solvers.extras import _blocked_view, condest, rgrowth
from ..sparse.csc import CSC
from ..sparse.verify import componentwise_backward_error

__all__ = [
    "HealthReport",
    "factor_health",
    "check_finite",
    "componentwise_backward_error",
]

# Diagnostics beyond these thresholds mark the report unhealthy.
RGROWTH_FLOOR = 1e-12          # reciprocal pivot growth below this is sick
CONDEST_CEILING = 1.0 / np.finfo(np.float64).eps


@dataclass
class HealthReport:
    """Diagnostics of one numeric factorization (plus optional solve)."""

    n: int
    nnz: int
    factor_nnz: int
    rgrowth: float                 # reciprocal pivot growth (1 = benign)
    condest: float                 # Hager/Higham 1-norm condition estimate
    min_pivot: float
    max_pivot: float
    nonfinite_factors: int         # NaN/Inf entries across L/U values
    nonfinite_input: int           # NaN/Inf entries in A
    backward_error: Optional[float] = None  # componentwise, when a solve ran
    issues: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.issues

    def to_dict(self) -> dict:
        return {
            "n": self.n,
            "nnz": self.nnz,
            "factor_nnz": self.factor_nnz,
            "rgrowth": self.rgrowth,
            "condest": self.condest,
            "min_pivot": self.min_pivot,
            "max_pivot": self.max_pivot,
            "nonfinite_factors": self.nonfinite_factors,
            "nonfinite_input": self.nonfinite_input,
            "backward_error": self.backward_error,
            "ok": self.ok,
            "issues": list(self.issues),
        }

    def raise_if_sick(self) -> None:
        if self.issues:
            raise NumericalHealthError(
                "; ".join(self.issues), what=self.issues[0].split(":")[0]
            )


def check_finite(values: np.ndarray, what: str) -> None:
    """Raise :class:`NumericalHealthError` when ``values`` holds any
    NaN/Inf (one vectorized scan)."""
    if not np.all(np.isfinite(values)):
        bad = int(np.count_nonzero(~np.isfinite(values)))
        raise NumericalHealthError(
            f"{what}: {bad} non-finite value(s)", what=what
        )


def _pivot_extremes(numeric) -> tuple:
    """(min |U diagonal|, max |U diagonal|, non-finite factor count)
    across all diagonal blocks — vectorized over the stored factors
    (U's diagonal is the last entry of every column by layout)."""
    splits, blocks, _M, _rp, _cp = _blocked_view(numeric)
    lo_piv, hi_piv = np.inf, 0.0
    nonfinite = 0
    for L, U in blocks:
        nonfinite += int(np.count_nonzero(~np.isfinite(L.data)))
        nonfinite += int(np.count_nonzero(~np.isfinite(U.data)))
        if U.n_cols:
            diag = np.abs(U.data[U.indptr[1:] - 1])
            with np.errstate(invalid="ignore"):
                lo_piv = min(lo_piv, float(np.nanmin(diag))) if diag.size else lo_piv
                hi_piv = max(hi_piv, float(np.nanmax(diag))) if diag.size else hi_piv
    if not np.isfinite(lo_piv):
        lo_piv = 0.0
    return lo_piv, hi_piv, nonfinite


def factor_health(
    impl,
    numeric,
    A: CSC,
    x: Optional[np.ndarray] = None,
    b: Optional[np.ndarray] = None,
    condest_steps: int = 5,
    tol: float = 1e-10,
) -> HealthReport:
    """Health report for a numeric factorization of ``A``.

    ``impl`` is the solver (KLU/Basker/SupernodalLU instance) that
    produced ``numeric``.  When ``x``/``b`` are given, the
    componentwise backward error of the solve is included and checked
    against ``tol``.  Diagnostics are recorded as
    ``resilience.health.*`` gauges when metrics are enabled.
    """
    issues: List[str] = []
    nonfinite_input = int(np.count_nonzero(~np.isfinite(A.data)))
    if nonfinite_input:
        issues.append(f"input: {nonfinite_input} non-finite value(s)")
    min_piv, max_piv, nonfinite_fac = _pivot_extremes(numeric)
    if nonfinite_fac:
        issues.append(f"factors: {nonfinite_fac} non-finite value(s)")
    if min_piv == 0.0 and A.n_rows:
        issues.append("pivots: zero diagonal in U")

    if nonfinite_fac or nonfinite_input:
        # condest/rgrowth would only propagate the NaNs
        growth = 0.0
        cond = float("inf")
    else:
        growth = rgrowth(A, numeric)
        cond = condest(impl, numeric, A, maxiter=condest_steps)
        if not np.isfinite(growth) or growth < RGROWTH_FLOOR:
            issues.append(f"rgrowth: reciprocal pivot growth {growth:.3e}")
        if not np.isfinite(cond) or cond > CONDEST_CEILING:
            issues.append(f"condest: condition estimate {cond:.3e}")

    berr = None
    if x is not None and b is not None:
        berr = componentwise_backward_error(A, x, b)
        if not (berr <= tol):
            issues.append(f"backward_error: {berr:.3e} above tolerance {tol:.1e}")

    report = HealthReport(
        n=A.n_rows,
        nnz=A.nnz,
        factor_nnz=getattr(numeric, "factor_nnz", 0),
        rgrowth=growth,
        condest=cond,
        min_pivot=min_piv,
        max_pivot=max_piv,
        nonfinite_factors=nonfinite_fac,
        nonfinite_input=nonfinite_input,
        backward_error=berr,
        issues=issues,
    )
    metrics = get_tracer().metrics
    if metrics.enabled:
        metrics.set_gauge("resilience.health.rgrowth", growth)
        if np.isfinite(cond):
            metrics.set_gauge("resilience.health.condest", cond)
        if berr is not None and np.isfinite(berr):
            metrics.set_gauge("resilience.health.backward_error", berr)
        if not report.ok:
            metrics.incr("resilience.health.flagged")
    return report
