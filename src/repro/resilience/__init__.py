"""repro.resilience — numerical health, fault injection, recovery.

Three layers (see docs/API.md "Resilience and recovery"):

* :mod:`repro.resilience.faults` — deterministic, seeded fault
  injection (:class:`FaultPlan`) at named sites compiled into the
  GP/KLU/Basker kernels and the schedule replay.
* :mod:`repro.resilience.health` — :class:`HealthReport` diagnostics
  (pivot growth, Hager/Higham condest, Oettli–Prager backward error,
  NaN/Inf scans) recorded through the metrics registry.
* :mod:`repro.resilience.recovery` — the bounded recovery ladder
  (replay → refactor → re-pivot → static perturbation + refinement →
  dense fallback) producing a :class:`RecoveryReport`.
* :mod:`repro.resilience.chaos` — the suite-wide chaos sweep behind
  ``python -m repro chaos``.

``faults`` is import-light (the kernels import it); the heavier
modules load lazily so arming a fault plan never drags the solver
stack into kernel import time.
"""

from __future__ import annotations

from .faults import (
    FAULT_KINDS,
    KNOWN_SITES,
    FaultEvent,
    FaultPlan,
    FaultSpec,
    active_plan,
)

__all__ = [
    "FAULT_KINDS",
    "KNOWN_SITES",
    "FaultEvent",
    "FaultPlan",
    "FaultSpec",
    "active_plan",
    "HealthReport",
    "factor_health",
    "componentwise_backward_error",
    "RECOVERY_LADDER",
    "RungAttempt",
    "RecoveryReport",
    "run_ladder",
    "run_chaos",
]

_LAZY = {
    "HealthReport": "health",
    "factor_health": "health",
    "componentwise_backward_error": "health",
    "RECOVERY_LADDER": "recovery",
    "RungAttempt": "recovery",
    "RecoveryReport": "recovery",
    "run_ladder": "recovery",
    "run_chaos": "chaos",
}


def __getattr__(name: str):
    mod = _LAZY.get(name)
    if mod is None:
        raise AttributeError(f"module 'repro.resilience' has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(f".{mod}", __name__), name)
