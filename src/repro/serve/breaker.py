"""Per-pattern circuit breaker for the shared solve cache.

Circuit-simulation traffic resubmits the same matrix pattern thousands
of times, so one *pathological* pattern — values that keep collapsing
reused pivots, a tenant stamping garbage — can dominate a shared cache:
every request escalates through the recovery ladder, repeatedly
invalidating and recompiling the pattern's schedules while healthy
tenants wait.  The breaker isolates that pattern instead.

State machine (classic closed/open/half-open, driven entirely by the
deterministic modeled clock):

* ``closed`` — normal operation.  Every recovery-ladder *escalation*
  (the winning rung was beyond ``refactor``, or the ladder exhausted)
  increments a consecutive-escalation counter; a clean solve resets it.
  ``trip_threshold`` consecutive escalations trip the breaker.
* ``open`` — the pattern is quarantined: requests for it bypass the
  shared cache entirely (isolated ``solve_resilient``-style solves
  with a private symbolic analysis), so the shared entry stops
  thrashing.  After ``cooldown_s`` modeled seconds the breaker lets one
  probe through.
* ``half_open`` — the probe runs on the shared-cache path.  A clean
  solve closes the breaker (reset); another escalation re-opens it and
  restarts the cooldown.

Every transition is counted (``serve.breaker.trip`` /
``serve.breaker.reset`` / ``serve.breaker.reopen``) and surfaced to the
flight recorder by the service.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

__all__ = ["BreakerConfig", "CircuitBreaker", "CLOSED", "OPEN", "HALF_OPEN"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


@dataclass(frozen=True)
class BreakerConfig:
    """Tuning knobs for one pattern's breaker."""

    trip_threshold: int = 3      # consecutive escalations that trip
    cooldown_s: float = 0.05     # modeled seconds open before a probe

    def validate(self) -> None:
        if self.trip_threshold < 1:
            raise ValueError("trip_threshold must be >= 1")
        if self.cooldown_s < 0.0:
            raise ValueError("cooldown_s must be >= 0")


@dataclass
class CircuitBreaker:
    """Breaker for one pattern key; all times are modeled seconds."""

    config: BreakerConfig = field(default_factory=BreakerConfig)
    state: str = CLOSED
    consecutive_escalations: int = 0
    opened_at_s: float = 0.0
    trips: int = 0
    resets: int = 0
    reopens: int = 0
    transitions: List[dict] = field(default_factory=list)

    # ------------------------------------------------------------------
    def _transition(self, now_s: float, to: str, why: str) -> None:
        self.transitions.append({
            "event": "serve.breaker",
            "at_s": float(now_s),
            "from": self.state,
            "to": to,
            "why": why,
        })
        self.state = to

    # ------------------------------------------------------------------
    def allows_shared(self, now_s: float) -> bool:
        """May this request use the shared-cache path right now?

        An ``open`` breaker whose cooldown has elapsed moves to
        ``half_open`` and admits exactly this request as the probe.
        """
        if self.state == CLOSED:
            return True
        if self.state == OPEN:
            if now_s >= self.opened_at_s + self.config.cooldown_s:
                self._transition(now_s, HALF_OPEN, "cooldown elapsed")
                return True
            return False
        # half_open: one probe is already in flight this modeled instant;
        # further requests stay isolated until the probe resolves.
        return False

    # ------------------------------------------------------------------
    def record_success(self, now_s: float) -> Optional[str]:
        """A shared-path solve finished without escalation."""
        self.consecutive_escalations = 0
        if self.state == HALF_OPEN:
            self.resets += 1
            self._transition(now_s, CLOSED, "probe succeeded")
            return "reset"
        return None

    def record_escalation(self, now_s: float) -> Optional[str]:
        """A shared-path solve needed the deep ladder (or exhausted it)."""
        if self.state == HALF_OPEN:
            self.reopens += 1
            self.opened_at_s = now_s
            self._transition(now_s, OPEN, "probe escalated")
            return "reopen"
        self.consecutive_escalations += 1
        if (self.state == CLOSED
                and self.consecutive_escalations >= self.config.trip_threshold):
            self.trips += 1
            self.opened_at_s = now_s
            self._transition(now_s, OPEN,
                             f"{self.consecutive_escalations} consecutive "
                             "escalations")
            return "trip"
        return None

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "state": self.state,
            "trips": self.trips,
            "resets": self.resets,
            "reopens": self.reopens,
            "consecutive_escalations": self.consecutive_escalations,
        }
