"""Deterministic traffic simulator and soak harness for the service.

The simulator synthesizes the traffic shapes the paper's workloads
imply — Xyce-style transient sequences (one pattern, thousands of
values-only resubmissions) and power-grid N-1 contingency sweeps (one
pattern, hundreds of single-outage value variants) — plus the shapes a
*service* adds on top: seeded multi-tenant interleaving, overload
bursts, tight deadlines, a pathological tenant whose matrix is
numerically singular for part of the run (driving the recovery ladder
to exhaustion and the pattern's circuit breaker through
trip → open → half-open → reset), and injected kernel faults via
:class:`~repro.resilience.faults.FaultPlan`.

Everything derives from one seed through ``numpy.random.default_rng``
spawns, and the service itself advances only on modeled time, so
:func:`run_soak` produces a **byte-identical report** across runs and
machines — the property the CI `serve` job gates on.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..contracts import effects, shapes
from ..errors import ReproError
from ..matrices.powergrid import meshed_area_grid
from ..resilience.faults import FaultPlan
from ..sparse.csc import CSC
from ..sparse.verify import componentwise_backward_error
from ..xyce.circuits import rc_ladder
from ..xyce.transient import matrix_sequence
from .service import ServeConfig, SolveRequest, SolverService

__all__ = ["TenantSpec", "build_traffic", "default_tenants", "run_soak",
           "report_to_json"]

WORKLOADS = ("xyce", "n1", "poison")


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's traffic profile.

    ``workload`` picks the matrix stream: ``"xyce"`` (same-pattern
    transient Jacobian sequence), ``"n1"`` (same-pattern outage sweep
    over a meshed grid), ``"poison"`` (a numerically singular values
    phase followed by a healthy phase — the breaker-exercise shape).
    ``burst_every``/``burst_len`` inject arrival bursts: every
    ``burst_every``-th request starts a run of ``burst_len`` arrivals
    at 2% of the mean interarrival gap.
    """

    name: str
    workload: str = "xyce"
    n_requests: int = 50
    mean_interarrival_s: float = 1e-3
    deadline_s: Optional[float] = None
    bucket_capacity: Optional[float] = None
    bucket_refill_per_s: Optional[float] = None
    burst_every: int = 0
    burst_len: int = 6
    # poison workload: requests before this index carry singular values
    poison_until: int = 12

    def validate(self) -> None:
        if self.workload not in WORKLOADS:
            raise ValueError(
                f"unknown workload {self.workload!r}; known: {WORKLOADS}")
        if self.n_requests < 1:
            raise ValueError("n_requests must be >= 1")
        if self.mean_interarrival_s <= 0.0:
            raise ValueError("mean_interarrival_s must be > 0")


@effects(pure=True)
@shapes(returns="csc[4,4]")
def _poison_matrix(healthy: bool) -> CSC:
    """A tiny fixed-pattern matrix, singular or healthy by values.

    The pattern (a full 4x4) never changes, so every poison request maps
    to one cache entry and one circuit breaker.  The singular phase has
    rank 1 — every recovery rung fails its backward-error check and the
    ladder exhausts, which is exactly the repeated-escalation signal the
    breaker trips on.
    """
    n = 4
    if healthy:
        dense = np.eye(n) * 4.0 + np.ones((n, n))
    else:
        dense = np.ones((n, n))           # rank 1: unsolvable for general b
    rr, cc = np.indices((n, n))
    return CSC.from_coo(rr.ravel(), cc.ravel(), dense.ravel(), shape=(n, n))


def _n1_variants(base: CSC, n: int, rng: np.random.Generator) -> List[CSC]:
    """Same-pattern outage sweep: zero one off-diagonal entry per variant."""
    col_of = np.repeat(np.arange(base.n_cols), np.diff(base.indptr))
    offdiag = np.flatnonzero(base.indices != col_of)
    out = []
    for k in range(n):
        A = base.copy()
        if offdiag.size:
            slot = offdiag[int(rng.integers(offdiag.size))]
            A.data[slot] = 0.0            # outage: pattern kept, value zeroed
        out.append(A)
    return out


def _tenant_matrices(spec: TenantSpec, rng: np.random.Generator) -> List[CSC]:
    if spec.workload == "xyce":
        circuit = rc_ladder(12)
        mats = matrix_sequence(circuit, min(spec.n_requests, 24))
        return [mats[k % len(mats)] for k in range(spec.n_requests)]
    if spec.workload == "n1":
        base = meshed_area_grid(3, 10, rng=np.random.default_rng(
            int(rng.integers(2 ** 31))))
        return _n1_variants(base, spec.n_requests, rng)
    # poison: singular values first, healthy values after poison_until
    return [_poison_matrix(healthy=(k >= spec.poison_until))
            for k in range(spec.n_requests)]


def build_traffic(
    specs: List[TenantSpec],
    seed: int = 0,
) -> List[Tuple[TenantSpec, SolveRequest]]:
    """Seeded request stream, merged across tenants by arrival time.

    Ties break on (arrival, tenant name, per-tenant sequence) so the
    merge order is total and deterministic.
    """
    stream: List[Tuple[float, str, int, TenantSpec, SolveRequest]] = []
    for t_idx, spec in enumerate(sorted(specs, key=lambda s: s.name)):
        spec.validate()
        rng = np.random.default_rng([seed, t_idx])
        mats = _tenant_matrices(spec, rng)
        now = 0.0
        burst_left = 0
        for k in range(spec.n_requests):
            if spec.burst_every and k and k % spec.burst_every == 0:
                burst_left = spec.burst_len
            gap_mean = (spec.mean_interarrival_s * 0.02 if burst_left > 0
                        else spec.mean_interarrival_s)
            if burst_left > 0:
                burst_left -= 1
            now += float(rng.exponential(gap_mean))
            A = mats[k]
            b = rng.standard_normal(A.n_rows)
            stream.append((now, spec.name, k, spec, SolveRequest(
                tenant=spec.name, A=A, b=b, arrival_s=now,
                deadline_s=spec.deadline_s,
                label=f"{spec.name}/{k}")))
    stream.sort(key=lambda item: (item[0], item[1], item[2]))
    return [(spec, req) for (_, _, _, spec, req) in stream]


def default_tenants(n_requests: int = 200) -> List[TenantSpec]:
    """The reference ≥3-tenant mixed profile used by CI's soak.

    Shapes: a steady transient tenant (Xyce sequence), a bursty N-1
    sweep tenant with a modest rate limit (drives queue growth through
    replay_only into shed, plus tenant_rate rejections), a poison
    tenant whose singular phase trips its pattern's breaker, and a
    latency tenant with a deadline tight enough that admission-time
    estimates reject part of its traffic.
    """
    per = max(1, n_requests // 5)
    return [
        TenantSpec(name="transient", workload="xyce", n_requests=per * 2,
                   mean_interarrival_s=2e-3),
        TenantSpec(name="sweep", workload="n1", n_requests=per,
                   mean_interarrival_s=1.2e-3, deadline_s=0.5,
                   burst_every=6, burst_len=12,
                   bucket_capacity=24.0, bucket_refill_per_s=2500.0),
        TenantSpec(name="chaos", workload="poison", n_requests=per,
                   mean_interarrival_s=4e-3, poison_until=per // 2),
        TenantSpec(name="latency", workload="xyce", n_requests=per,
                   mean_interarrival_s=2.5e-3, deadline_s=2.5e-4),
    ]


def run_soak(
    specs: Optional[List[TenantSpec]] = None,
    config: Optional[ServeConfig] = None,
    seed: int = 0,
    n_requests: int = 200,
    n_faults: int = 4,
) -> dict:
    """Drive a seeded multi-tenant soak through one service instance.

    Returns the JSON-ready ``SERVE_report`` dict: per-tenant accounting,
    rejection/latency/breaker/cache summaries, and an ``invariants``
    block the CI job gates on — zero untyped escapes, zero unverified
    answers, the queue bound never exceeded.
    """
    if specs is None:
        specs = default_tenants(n_requests)
    if config is None:
        config = ServeConfig(seed=seed, chaos_invalidate_every=17,
                             queue_depth=12, replay_only_depth=6,
                             shed_depth=10)
    service = SolverService(config)
    for spec in sorted(specs, key=lambda s: s.name):
        service.register_tenant(spec.name,
                                bucket_capacity=spec.bucket_capacity,
                                bucket_refill_per_s=spec.bucket_refill_per_s)
    traffic = build_traffic(specs, seed=seed)

    plan = None
    if n_faults > 0:
        plan = FaultPlan.random(
            seed=seed, n_faults=n_faults,
            sites=("klu.refactor.values", "gp.factor.values"),
            kinds=("perturb", "nan"), max_occurrence=40)

    outcomes: List[dict] = []
    untyped: List[str] = []
    wrong: List[dict] = []
    errors: Dict[str, int] = {}
    rejects: Dict[str, int] = {}

    def one(spec: TenantSpec, req: SolveRequest) -> None:
        try:
            resp = service.submit(req)
        except ReproError as exc:
            name = type(exc).__name__
            errors[name] = errors.get(name, 0) + 1
            reason = getattr(exc, "reason", "") or name
            rejects[reason] = rejects.get(reason, 0) + 1
            outcomes.append({"label": req.label, "ok": False,
                             "error": name, "reason": reason})
            return
        except Exception as exc:  # untyped escape: an invariant violation
            untyped.append(f"{req.label}: {type(exc).__name__}: {exc}")
            outcomes.append({"label": req.label, "ok": False,
                             "error": "UNTYPED"})
            return
        # independent residual verification — never trust the report
        berr = componentwise_backward_error(req.A, resp.x, req.b)
        if not (np.isfinite(berr) and berr <= config.tol):
            wrong.append({"label": req.label, "backward_error": float(berr)})
        outcomes.append(resp.to_dict() | {"label": req.label})

    if plan is not None:
        with plan:
            for spec, req in traffic:
                one(spec, req)
    else:
        for spec, req in traffic:
            one(spec, req)

    snap = service.snapshot()
    accepted = sum(1 for o in outcomes if o["ok"])
    breaker_totals = {
        "trips": sum(b["trips"] for b in snap["breakers"].values()),
        "resets": sum(b["resets"] for b in snap["breakers"].values()),
        "reopens": sum(b["reopens"] for b in snap["breakers"].values()),
    }
    report = {
        "seed": seed,
        "n_requests": len(traffic),
        "tenants": [s.name for s in sorted(specs, key=lambda t: t.name)],
        "accepted": accepted,
        "rejected": len(traffic) - accepted,
        "reject_reasons": {k: rejects[k] for k in sorted(rejects)},
        "error_types": {k: errors[k] for k in sorted(errors)},
        "retries": snap["metrics"]["counters"].get("serve.retries", 0),
        "shed_total": snap["metrics"]["counters"].get("serve.shed_total", 0),
        "latency": snap["latency"],
        "wait": snap["wait"],
        "per_tenant": snap["tenants"],
        "queue": snap["queue"],
        "cache": snap["cache"],
        "breakers": snap["breakers"],
        "breaker_totals": breaker_totals,
        "faults_fired": ([{
            "site": e.site, "kind": e.kind,
            "occurrence": e.occurrence, "index": e.index,
        } for e in plan.events] if plan is not None else []),
        "invariants": {
            "untyped_escapes": untyped,
            "unverified_answers": wrong,
            "queue_bound_respected": bool(
                snap["queue"]["peak_depth"] <= config.queue_depth),
        },
        "ok": (not untyped and not wrong
               and snap["queue"]["peak_depth"] <= config.queue_depth),
    }
    return report


@effects(pure=True)
def report_to_json(report: dict) -> str:
    """Canonical byte-stable serialization of a soak report."""
    return json.dumps(report, sort_keys=True, indent=2) + "\n"
