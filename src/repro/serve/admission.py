"""Admission control: bounded queue and per-tenant token buckets.

The service simulates a single-server FIFO queue in **modeled time**
(the same deterministic clock the rest of the package prices work in:
``MachineModel.seconds`` over exact :class:`CostLedger` operation
counts).  Requests execute eagerly in real Python, but their *latency*
is the modeled wait + modeled service time, so queueing behavior —
depth growth under overload, shed decisions, p99 latency — is
bit-reproducible across runs and machines.

Two admission gates run before any solver work starts:

* :class:`TokenBucket` — per-tenant rate limiting.  Buckets refill
  continuously in modeled time; an empty bucket rejects with reason
  ``tenant_rate``.  This keeps one chatty tenant from starving the
  rest even when the queue itself has room.
* :class:`ModeledQueue` — the bounded admission queue.  Queue depth at
  the request's arrival instant is the number of previously admitted
  requests not yet finished; depth at or beyond ``max_depth`` rejects
  with reason ``queue_full``.  The bound is *never* exceeded: the
  depth check happens before the request is enqueued.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Tuple

__all__ = ["TokenBucket", "ModeledQueue"]


@dataclass
class TokenBucket:
    """Continuous-refill token bucket over the modeled clock."""

    capacity: float = 8.0
    refill_per_s: float = 4.0     # tokens per modeled second
    tokens: float = None          # type: ignore[assignment]
    last_refill_s: float = 0.0
    taken: int = 0
    rejected: int = 0

    def __post_init__(self) -> None:
        if self.capacity <= 0.0:
            raise ValueError("token bucket capacity must be > 0")
        if self.refill_per_s < 0.0:
            raise ValueError("token bucket refill rate must be >= 0")
        if self.tokens is None:
            self.tokens = self.capacity

    def _refill(self, now_s: float) -> None:
        if now_s > self.last_refill_s:
            self.tokens = min(
                self.capacity,
                self.tokens + (now_s - self.last_refill_s) * self.refill_per_s,
            )
            self.last_refill_s = now_s

    def try_take(self, now_s: float, cost: float = 1.0) -> bool:
        """Take ``cost`` tokens at modeled instant ``now_s`` if available."""
        self._refill(now_s)
        if self.tokens + 1e-12 >= cost:   # absorb float refill rounding
            self.tokens -= cost
            self.taken += 1
            return True
        self.rejected += 1
        return False

    def to_dict(self) -> dict:
        return {
            "capacity": self.capacity,
            "refill_per_s": self.refill_per_s,
            "taken": self.taken,
            "rejected": self.rejected,
        }


@dataclass
class ModeledQueue:
    """Single-server FIFO queue simulated on the modeled clock.

    ``admit`` checks the depth bound at the arrival instant;
    ``start_service`` converts an admitted request's arrival time into
    its service start (arrival, or when the server frees — whichever
    is later) and advances ``busy_until`` once the modeled service
    duration is known.
    """

    max_depth: int = 16
    busy_until_s: float = 0.0
    _completions: Deque[float] = field(default_factory=deque)
    admitted: int = 0
    rejected: int = 0
    peak_depth: int = 0

    def __post_init__(self) -> None:
        if self.max_depth < 1:
            raise ValueError("queue max_depth must be >= 1")

    def depth_at(self, now_s: float) -> int:
        """Queue depth (admitted, unfinished requests) at ``now_s``."""
        while self._completions and self._completions[0] <= now_s:
            self._completions.popleft()
        return len(self._completions)

    def admit(self, now_s: float) -> Tuple[bool, int]:
        """Try to admit an arrival at ``now_s``; returns (ok, depth)."""
        depth = self.depth_at(now_s)
        if depth >= self.max_depth:
            self.rejected += 1
            return False, depth
        self.admitted += 1
        return True, depth

    def start_service(self, arrival_s: float) -> float:
        """Service start instant for a request that arrived at ``arrival_s``."""
        return max(arrival_s, self.busy_until_s)

    def finish_service(self, start_s: float, service_s: float) -> float:
        """Record a service of ``service_s`` modeled seconds; returns
        the completion instant."""
        if service_s < 0.0:
            raise ValueError("service time must be >= 0")
        finish = start_s + service_s
        self.busy_until_s = finish
        self._completions.append(finish)
        depth = len(self._completions)
        if depth > self.peak_depth:
            self.peak_depth = depth
        return finish

    def to_dict(self) -> dict:
        return {
            "max_depth": self.max_depth,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "peak_depth": self.peak_depth,
        }


def make_tenant_buckets(
    tenants: Dict[str, Tuple[float, float]],
) -> Dict[str, TokenBucket]:
    """Build one bucket per tenant from ``{name: (capacity, refill)}``."""
    return {
        name: TokenBucket(capacity=cap, refill_per_s=rate)
        for name, (cap, rate) in sorted(tenants.items())
    }
