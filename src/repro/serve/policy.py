"""Retry, deadline, and cost-estimation policy for the solve service.

Retries are **seeded**: the jitter stream comes from one
``numpy.random.default_rng`` created from the service seed, so a soak
run replays bit-identically.  Classification is type-driven — every
package error carries a ``retryable`` class attribute
(:class:`~repro.errors.ReproError`), so the policy never string-matches
exception text:

* retryable — :class:`~repro.errors.NumericalHealthError` (transient
  numerical upsets; a fresh submission re-enters the recovery ladder
  from pristine inputs) and :class:`~repro.errors.CacheInvalidatedError`
  (the borrowed entry was evicted mid-flight; re-borrowing rebuilds it).
* never retried — :class:`~repro.errors.StructureError` (the input is
  malformed; resubmitting the same bytes cannot help),
  :class:`~repro.errors.SingularMatrixError` *after* the recovery
  ladder exhausted (the ladder already tried every escalation,
  including strict re-pivot and static perturbation), admission
  rejections, and deadline expiries.

Deadline cost estimation prices the work the request is *about* to do
on the service's machine model: the per-pattern latency history when
the cache has one (p95 of observed modeled service times), otherwise a
conservative multiple of the symbolic-analysis ledger — symbolic cost
is a structural lower bound on numeric cost, and the multiplier covers
the factor + solve phases the analysis has not counted yet.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..contracts import effects
from ..parallel.ledger import CostLedger
from ..parallel.machine import MachineModel

__all__ = ["RetryPolicy", "estimate_request_seconds", "SYMBOLIC_COST_MULTIPLIER"]

# Numeric factorization + solve typically costs a small multiple of the
# symbolic DFS work on circuit-class matrices; 3x keeps admission-time
# deadline checks conservative without rejecting feasible requests.
SYMBOLIC_COST_MULTIPLIER = 3.0


@dataclass
class RetryPolicy:
    """Seeded exponential backoff with bounded retries.

    ``backoff_s(attempt)`` returns
    ``base * multiplier**attempt * (1 + U(-jitter, +jitter))`` where the
    uniform draw comes from the policy's private seeded generator —
    deterministic across runs, decorrelated across retries.
    """

    max_retries: int = 2
    base_backoff_s: float = 0.002
    multiplier: float = 2.0
    jitter: float = 0.25
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.base_backoff_s < 0.0:
            raise ValueError("base_backoff_s must be >= 0")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        self._rng = np.random.default_rng(self.seed)

    def should_retry(self, exc: BaseException, attempt: int) -> bool:
        """May ``exc`` (raised on 0-based ``attempt``) be retried?"""
        if attempt >= self.max_retries:
            return False
        return bool(getattr(exc, "retryable", False))

    def backoff_s(self, attempt: int) -> float:
        """Modeled backoff before re-running 0-based retry ``attempt``."""
        base = self.base_backoff_s * (self.multiplier ** attempt)
        u = float(self._rng.uniform(-self.jitter, self.jitter))
        return base * (1.0 + u)


@effects(pure=True)
def estimate_request_seconds(
    machine: MachineModel,
    symbolic_ledger: Optional[CostLedger] = None,
    observed_s: Optional[float] = None,
    multiplier: float = SYMBOLIC_COST_MULTIPLIER,
) -> float:
    """Admission-time estimate of one request's modeled service time.

    Prefers the pattern's observed latency history (``observed_s``,
    typically the cache entry's p95); falls back to pricing the
    symbolic ledger and scaling by ``multiplier``.  Returns 0.0 when
    neither source exists (first contact with a pattern before its
    symbolic analysis ran) — admission then cannot pre-reject on the
    deadline and mid-flight enforcement takes over.
    """
    if observed_s is not None:
        return float(observed_s)
    if symbolic_ledger is not None:
        return multiplier * machine.seconds(symbolic_ledger)
    return 0.0
