"""In-process clients for :class:`~repro.serve.service.SolverService`.

Two clients share one call shape, so code written against the
deterministic in-process client runs unchanged against the thread-pool
variant:

* :class:`ServeClient` — direct, synchronous, bit-deterministic.  This
  is what the traffic simulator and the CI soak drive.
* :class:`ThreadedServeClient` — submits through a
  ``concurrent.futures.ThreadPoolExecutor``.  The service's internal
  locking (admission, queue, cache, breakers, metrics) keeps every
  invariant intact under concurrent submission; modeled *ordering*
  follows thread interleaving, so results are correct and typed but not
  byte-reproducible.  Exists to prove the envelope is actually
  concurrency-safe, and as the template for a real multi-worker
  deployment.

Both clients re-raise the service's typed errors unchanged — a caller
sees exactly :class:`~repro.errors.AdmissionRejectedError`,
:class:`~repro.errors.DeadlineExceededError`,
:class:`~repro.errors.CircuitOpenError`, or the final solve failure.
"""

from __future__ import annotations

from concurrent.futures import Future, ThreadPoolExecutor
from typing import Optional

import numpy as np

from ..sparse.csc import CSC
from .service import SolveRequest, SolveResponse, SolverService

__all__ = ["ServeClient", "ThreadedServeClient"]


class ServeClient:
    """Synchronous in-process client (the deterministic path)."""

    def __init__(self, service: SolverService, tenant: str):
        self.service = service
        self.tenant = tenant
        service.register_tenant(tenant)

    def solve(
        self,
        A: CSC,
        b: np.ndarray,
        arrival_s: float = 0.0,
        deadline_s: Optional[float] = None,
        label: str = "",
    ) -> SolveResponse:
        """Solve ``A x = b``; raises the service's typed errors."""
        return self.service.submit(SolveRequest(
            tenant=self.tenant, A=A, b=b, arrival_s=arrival_s,
            deadline_s=deadline_s, label=label))


class ThreadedServeClient(ServeClient):
    """Thread-pool client: same interface, futures under the hood.

    ``solve`` stays synchronous (submit + wait) so the two clients are
    drop-in interchangeable; ``solve_async`` exposes the future for
    callers that want real overlap.  Use as a context manager or call
    :meth:`shutdown`.
    """

    def __init__(self, service: SolverService, tenant: str,
                 max_workers: int = 4):
        super().__init__(service, tenant)
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers,
            thread_name_prefix=f"serve-{tenant}")

    def solve_async(
        self,
        A: CSC,
        b: np.ndarray,
        arrival_s: float = 0.0,
        deadline_s: Optional[float] = None,
        label: str = "",
    ) -> Future:
        return self._pool.submit(
            super().solve, A, b, arrival_s=arrival_s,
            deadline_s=deadline_s, label=label)

    def solve(self, A, b, arrival_s=0.0, deadline_s=None, label=""):
        return self.solve_async(
            A, b, arrival_s=arrival_s, deadline_s=deadline_s,
            label=label).result()

    def shutdown(self) -> None:
        self._pool.shutdown(wait=True)

    def __enter__(self) -> "ThreadedServeClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()
