"""The fault-tolerant solve service.

:class:`SolverService` is a long-lived, multi-tenant front end over the
package's resilient direct solvers.  One instance owns:

* the **admission path** — per-tenant token buckets and a bounded
  FIFO queue simulated on the deterministic modeled clock
  (:mod:`repro.serve.admission`); overload is *refused*, typed, never
  queued unboundedly;
* the **shared pattern cache** — one symbolic analysis + last verified
  numeric factorization per sparsity pattern, leased to requests with
  generation checking (:mod:`repro.serve.cache`);
* **per-pattern circuit breakers** — patterns whose requests keep
  escalating the recovery ladder are quarantined onto an isolated,
  cache-free solve path (:mod:`repro.serve.breaker`);
* the **degradation ladder** — three tiers keyed on queue depth at
  arrival: ``full`` (entire recovery ladder available), ``replay_only``
  (only the cheap replay/refactor rungs; deep escalations are refused
  so a struggling pattern cannot eat the queue's headroom), ``shed``
  (typed rejection before any work).  Every tier transition is a
  counter bump and a flight-recorder event.

Determinism: all scheduling state — waits, service times, backoff,
token refill — advances on modeled seconds priced from exact
:class:`~repro.parallel.ledger.CostLedger` operation counts.  Requests
execute eagerly in-process; nothing reads a wall clock unless the
caller opts into the harness-boundary wall deadline
(:attr:`ServeConfig.wall_deadline_s`), which exists for real
deployments and stays off in reproducibility tests.

Thread safety: admission, queue accounting, cache, breakers, and the
flight recorder are all mutated under ``self._lock`` or their own
locks, so the optional thread-pool client
(:class:`repro.serve.client.ThreadedServeClient`) can drive one service
instance from many threads.  Modeled *ordering* under threads follows
submission interleaving (not bit-reproducible); the single-threaded
simulator is the bit-deterministic configuration.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..contracts import effects
from ..errors import (
    AdmissionRejectedError,
    CacheInvalidatedError,
    CircuitOpenError,
    DeadlineExceededError,
    RecoveryExhaustedError,
    ReproError,
)
from ..interface import DirectSolver
from ..obs.flight import FlightRecorder
from ..obs.hist import StreamingHistogram
from ..obs.metrics import Metrics
from ..parallel.ledger import CostLedger
from ..parallel.machine import MachineModel, SANDY_BRIDGE
from ..sparse.csc import CSC
from ..sparse.verify import validate_rhs
from .admission import ModeledQueue, TokenBucket
from .breaker import BreakerConfig, CircuitBreaker
from .cache import PatternCache, pattern_key
from .policy import RetryPolicy, estimate_request_seconds

__all__ = [
    "REJECT_REASONS",
    "TIERS",
    "ServeConfig",
    "SolveRequest",
    "SolveResponse",
    "SolverService",
]

# Typed rejection slugs carried on AdmissionRejectedError.reason.
REJECT_REASONS = (
    "queue_full",          # bounded queue at capacity
    "tenant_rate",         # tenant token bucket empty
    "shed_overload",       # shed tier: depth past the shed threshold
    "breaker_open",        # pattern quarantined and tier cannot isolate
    "replay_only_escalation",  # degraded tier refused a deep ladder rung
)

# Degradation tiers, healthiest first.
TIERS = ("full", "replay_only", "shed")

# Rungs the replay_only tier may run: the values-only replay and one
# full refactorization.  Deeper rungs (repivot / perturb_refine /
# dense_fallback) are refused under degradation — they are exactly the
# expensive work an overloaded queue cannot afford.
_CHEAP_RUNGS = ("replay", "refactor")

# Winning one of these rungs (or exhausting the ladder) counts as an
# escalation for the pattern's circuit breaker.
_ESCALATION_RUNGS = ("repivot", "perturb_refine", "dense_fallback")


@dataclass(frozen=True)
class ServeConfig:
    """Tuning for one :class:`SolverService` instance."""

    solver: str = "klu"
    machine: MachineModel = SANDY_BRIDGE
    tol: float = 1e-10
    refine_steps: int = 4
    # admission
    queue_depth: int = 16
    replay_only_depth: int = 8     # depth at/past this -> replay_only tier
    shed_depth: int = 14           # depth at/past this -> shed tier
    bucket_capacity: float = 8.0   # default per-tenant bucket
    bucket_refill_per_s: float = 200.0
    # cache
    cache_capacity: int = 8
    eviction_window: int = 4
    # breaker
    breaker_trip_threshold: int = 3
    breaker_cooldown_s: float = 0.05
    # retry
    max_retries: int = 2
    base_backoff_s: float = 0.002
    retry_jitter: float = 0.25
    seed: int = 0
    # deadline enforcement at the harness boundary (wall seconds per
    # request; None = modeled-only, the deterministic default)
    wall_deadline_s: Optional[float] = None
    # deterministic chaos: invalidate the borrowed cache entry under the
    # live lease every Nth shared-path request (0 = off) — exercises the
    # borrow/evict race and the retryable CacheInvalidatedError path
    chaos_invalidate_every: int = 0
    flight_capacity: int = 1024

    def validate(self) -> None:
        if not 0 < self.replay_only_depth <= self.shed_depth <= self.queue_depth:
            raise ValueError(
                "tier thresholds must satisfy 0 < replay_only_depth <= "
                "shed_depth <= queue_depth")
        BreakerConfig(self.breaker_trip_threshold,
                      self.breaker_cooldown_s).validate()
        if self.chaos_invalidate_every < 0:
            raise ValueError("chaos_invalidate_every must be >= 0")


@dataclass
class SolveRequest:
    """One tenant request: solve ``A x = b`` before ``deadline_s``."""

    tenant: str
    A: CSC
    b: np.ndarray
    arrival_s: float = 0.0        # modeled arrival instant
    deadline_s: Optional[float] = None  # modeled budget from arrival; None = none
    label: str = ""


@dataclass
class SolveResponse:
    """A verified answer plus its full serving account."""

    x: np.ndarray
    backward_error: float
    request_id: int
    tenant: str
    tier: str                     # tier the request was served under
    path: str                     # "shared" | "isolated"
    cache_hit: bool
    retries: int
    succeeded_rung: str
    wait_s: float                 # modeled queue wait
    service_s: float              # modeled service (incl. retries/backoff)
    latency_s: float              # wait + service
    finish_s: float               # modeled completion instant
    report: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "request_id": self.request_id,
            "tenant": self.tenant,
            "ok": True,
            "tier": self.tier,
            "path": self.path,
            "cache_hit": self.cache_hit,
            "retries": self.retries,
            "succeeded_rung": self.succeeded_rung,
            "backward_error": self.backward_error,
            "wait_s": self.wait_s,
            "service_s": self.service_s,
            "latency_s": self.latency_s,
        }


@dataclass
class _TenantAccount:
    """Per-tenant resource accounting."""

    bucket: TokenBucket
    ledger: CostLedger = field(default_factory=CostLedger)
    accepted: int = 0
    rejected: int = 0
    latency: StreamingHistogram = field(default_factory=StreamingHistogram)

    def to_dict(self, machine: MachineModel) -> dict:
        return {
            "accepted": self.accepted,
            "rejected": self.rejected,
            "modeled_seconds": machine.seconds(self.ledger),
            "total_flops": self.ledger.total_flops,
            "latency": self.latency.snapshot(),
            "bucket": self.bucket.to_dict(),
        }


class SolverService:
    """Long-lived multi-tenant solve service (see module docstring)."""

    def __init__(self, config: Optional[ServeConfig] = None) -> None:
        self.config = config if config is not None else ServeConfig()
        self.config.validate()
        self.machine = self.config.machine
        self.metrics = Metrics()
        self.queue = ModeledQueue(max_depth=self.config.queue_depth)
        self.cache = PatternCache(
            capacity=self.config.cache_capacity,
            machine=self.machine,
            metrics=self.metrics,
            eviction_window=self.config.eviction_window,
        )
        self.flight = FlightRecorder(capacity=self.config.flight_capacity)
        self.retry_policy = RetryPolicy(
            max_retries=self.config.max_retries,
            base_backoff_s=self.config.base_backoff_s,
            jitter=self.config.retry_jitter,
            seed=self.config.seed,
        )
        self._breakers: Dict[str, CircuitBreaker] = {}
        self._tenants: Dict[str, _TenantAccount] = {}
        self._lock = threading.RLock()
        self._next_id = 0
        self._shared_count = 0     # chaos-invalidation cadence
        self._tier = "full"
        self.latency = StreamingHistogram()
        self.wait = StreamingHistogram()

    # ------------------------------------------------------------------
    # tenants
    # ------------------------------------------------------------------
    def register_tenant(
        self,
        name: str,
        bucket_capacity: Optional[float] = None,
        bucket_refill_per_s: Optional[float] = None,
    ) -> None:
        """Register a tenant with an optional custom rate limit."""
        with self._lock:
            if name in self._tenants:
                return
            self._tenants[name] = _TenantAccount(bucket=TokenBucket(
                capacity=bucket_capacity if bucket_capacity is not None
                else self.config.bucket_capacity,
                refill_per_s=bucket_refill_per_s if bucket_refill_per_s is not None
                else self.config.bucket_refill_per_s,
            ))

    def _account(self, tenant: str) -> _TenantAccount:
        with self._lock:
            if tenant not in self._tenants:
                self.register_tenant(tenant)
            return self._tenants[tenant]

    # ------------------------------------------------------------------
    # tiers
    # ------------------------------------------------------------------
    def _tier_for_depth(self, depth: int) -> str:
        if depth >= self.config.shed_depth:
            return "shed"
        if depth >= self.config.replay_only_depth:
            return "replay_only"
        return "full"

    def _note_tier(self, tier: str, now_s: float, events: List[dict]) -> None:
        """Count + record a tier transition (idempotent per tier)."""
        if tier == self._tier:
            return
        events.append({
            "event": "serve.tier",
            "from": self._tier,
            "to": tier,
            "at_s": float(now_s),
        })
        self._tier = tier
        self.metrics.incr(f"serve.tier.{tier}")

    # ------------------------------------------------------------------
    # the request path
    # ------------------------------------------------------------------
    def submit(self, request: SolveRequest) -> SolveResponse:
        """Serve one request; raises typed errors on any refusal.

        Raises
        ------
        AdmissionRejectedError
            Queue full, tenant rate-limited, shed tier, breaker open in
            a degraded tier, or a degraded tier refusing a deep rung.
        DeadlineExceededError
            The modeled deadline cannot be met (at admission, with no
            factorization work started) or expired mid-ladder (with the
            partial recovery report attached).
        ReproError subclasses
            Whatever the final non-retryable solve failure was
            (StructureError, RecoveryExhaustedError, ...).
        """
        wall_start = time.monotonic() if self.config.wall_deadline_s else None
        with self._lock:
            return self._submit_locked(request, wall_start)

    # The whole request runs under the service lock: modeled-queue
    # accounting must observe requests in a single total order, and the
    # solver work itself is pure CPU (no IO to overlap).  The threaded
    # client therefore gets safety, not speedup — see module docstring.
    def _submit_locked(self, request: SolveRequest,
                       wall_start: Optional[float]) -> SolveResponse:
        cfg = self.config
        events: List[dict] = []
        now = float(request.arrival_s)
        account = self._account(request.tenant)
        self._next_id += 1
        rid = self._next_id
        modeled_s = None

        try:
            # ---- admission gates (no solver work yet) ------------------
            depth = self.queue.depth_at(now)
            self.metrics.set_gauge("serve.queue_depth", float(depth))
            tier = self._tier_for_depth(depth)
            self._note_tier(tier, now, events)

            if not account.bucket.try_take(now):
                self._reject(account, events, rid, request, now, "tenant_rate")
            # the hard bound outranks the shed tier: a full queue is
            # queue_full even when the shed threshold is also crossed
            if depth >= self.queue.max_depth:
                self.queue.rejected += 1
                self._reject(account, events, rid, request, now, "queue_full")
            if tier == "shed":
                self.metrics.incr("serve.shed_total")
                self._reject(account, events, rid, request, now, "shed_overload")
            ok, depth = self.queue.admit(now)
            if not ok:  # unreachable: the bound was checked above
                self._reject(account, events, rid, request, now, "queue_full")

            key = pattern_key(request.A)
            breaker = self._breakers.get(key)
            if breaker is None:
                breaker = CircuitBreaker(config=BreakerConfig(
                    trip_threshold=cfg.breaker_trip_threshold,
                    cooldown_s=cfg.breaker_cooldown_s,
                ))
                self._breakers[key] = breaker

            shared = breaker.allows_shared(now)
            if not shared and tier != "full":
                # a degraded tier has no headroom for isolated re-analysis
                self.metrics.incr("serve.rejected.breaker_open")
                account.rejected += 1
                events.append({"event": "serve.reject", "request": rid,
                               "reason": "breaker_open", "tenant": request.tenant})
                raise CircuitOpenError(
                    f"pattern {key} circuit open and tier {tier!r} cannot "
                    "absorb an isolated solve",
                    key=key, trips=breaker.trips)

            wait_s = self.queue.start_service(now) - now
            self.metrics.incr("serve.admitted")

            # ---- serve -------------------------------------------------
            if shared:
                response = self._serve_shared(
                    rid, request, account, breaker, key, tier,
                    now, wait_s, events)
            else:
                self.metrics.incr("serve.isolated")
                events.append({"event": "serve.isolated", "request": rid,
                               "pattern": key})
                response = self._serve_isolated(
                    rid, request, account, key, tier, now, wait_s, events)

            self._check_wall_deadline(wall_start)
            account.accepted += 1
            account.latency.observe(response.latency_s)
            self.latency.observe(response.latency_s)
            self.wait.observe(response.wait_s)
            self.metrics.incr("serve.completed")
            modeled_s = response.service_s
            return response
        except ReproError as exc:
            self.metrics.incr(f"serve.error.{type(exc).__name__}")
            raise
        finally:
            for b in self._breakers.values():
                events.extend(self._drain(b))
            self.flight.record_step(
                step=rid,
                modeled_s=modeled_s,
                events=events,
                metrics=self.metrics,
            )

    @staticmethod
    def _drain(breaker: CircuitBreaker) -> List[dict]:
        out = breaker.transitions[:]
        breaker.transitions.clear()
        return out

    def _reject(self, account: _TenantAccount, events: List[dict], rid: int,
                request: SolveRequest, now_s: float, reason: str) -> None:
        self.metrics.incr(f"serve.rejected.{reason}")
        account.rejected += 1
        events.append({"event": "serve.reject", "request": rid,
                       "reason": reason, "tenant": request.tenant,
                       "at_s": float(now_s)})
        raise AdmissionRejectedError(
            f"request {rid} from {request.tenant!r} rejected: {reason}",
            reason=reason, tenant=request.tenant)

    def _check_completion_deadline(self, rid: int, request: SolveRequest,
                                   elapsed_s: float, report) -> None:
        """A verified answer delivered after the deadline is still a
        deadline failure — the caller has moved on.  The work stays
        accounted (the server really was occupied); the response is
        replaced by the typed error with the full report attached."""
        if request.deadline_s is None or elapsed_s <= request.deadline_s:
            return
        self.metrics.incr("serve.deadline.completion")
        raise DeadlineExceededError(
            f"request {rid}: completed at modeled {elapsed_s:.3e}s, past "
            f"deadline {request.deadline_s:.3e}s",
            deadline_s=request.deadline_s, elapsed_s=elapsed_s,
            report=report)

    def _check_wall_deadline(self, wall_start: Optional[float]) -> None:
        """Harness-boundary wall clock enforcement (opt-in, not modeled)."""
        if wall_start is None:
            return
        elapsed = time.monotonic() - wall_start
        if elapsed > self.config.wall_deadline_s:
            self.metrics.incr("serve.deadline.wall")
            raise DeadlineExceededError(
                f"wall deadline {self.config.wall_deadline_s}s exceeded "
                f"({elapsed:.3f}s elapsed)",
                deadline_s=self.config.wall_deadline_s, elapsed_s=elapsed)

    # ------------------------------------------------------------------
    def _serve_shared(self, rid: int, request: SolveRequest,
                      account: _TenantAccount, breaker: CircuitBreaker,
                      key: str, tier: str, now: float, wait_s: float,
                      events: List[dict]) -> SolveResponse:
        """The normal path: leased shared cache entry + recovery ladder."""
        cfg = self.config
        b = validate_rhs(request.b, request.A.n_rows)
        spent = CostLedger()      # everything this request burned so far

        def build():
            solver = DirectSolver(cfg.solver)
            solver.symbolic_factorization(request.A)
            sym_ledger = getattr(solver._symbolic, "ledger", None)
            led = sym_ledger.copy() if sym_ledger is not None else CostLedger()
            return solver, led

        lease, hit = self.cache.borrow(key, build)
        if not hit:
            spent.add(lease.entry.build_ledger)

        # ---- admission-time deadline check: the estimate comes from the
        # pattern's latency history or its symbolic ledger — no numeric
        # factorization has run yet when this rejects.
        if request.deadline_s is not None:
            estimate = estimate_request_seconds(
                self.machine,
                symbolic_ledger=lease.entry.build_ledger,
                observed_s=lease.entry.estimate_seconds(),
            )
            projected = wait_s + estimate
            if projected > request.deadline_s:
                self.cache.release(lease)
                self.metrics.incr("serve.deadline.admission")
                events.append({"event": "serve.deadline", "request": rid,
                               "where": "admission",
                               "projected_s": projected,
                               "deadline_s": request.deadline_s})
                raise DeadlineExceededError(
                    f"request {rid}: projected {projected:.3e}s exceeds "
                    f"deadline {request.deadline_s:.3e}s at admission",
                    deadline_s=request.deadline_s, elapsed_s=projected,
                    report=None)

        self._shared_count += 1
        if (cfg.chaos_invalidate_every
                and self._shared_count % cfg.chaos_invalidate_every == 0):
            # deterministic borrow/evict race: yank the entry under the
            # live lease; the next lease check fails retryable.
            self.cache.invalidate(key)
            events.append({"event": "serve.chaos.invalidate", "request": rid,
                           "pattern": key})

        retries = 0
        attempt = 0
        while True:
            holder = {}

            def before_rung(rung, report):
                holder["report"] = report
                lease.check()
                if tier == "replay_only" and rung not in _CHEAP_RUNGS:
                    self.metrics.incr("serve.rejected.replay_only_escalation")
                    raise AdmissionRejectedError(
                        f"request {rid}: tier replay_only refuses rung "
                        f"{rung!r}", reason="replay_only_escalation",
                        tenant=request.tenant)
                if request.deadline_s is not None:
                    elapsed = wait_s + self.machine.seconds(
                        spent) + self.machine.seconds(report.ledger)
                    if elapsed > request.deadline_s:
                        self.metrics.incr("serve.deadline.midflight")
                        raise DeadlineExceededError(
                            f"request {rid}: modeled elapsed {elapsed:.3e}s "
                            f"crossed deadline {request.deadline_s:.3e}s "
                            f"before rung {rung!r}",
                            deadline_s=request.deadline_s,
                            elapsed_s=elapsed, report=report)

            try:
                x, report = lease.entry.solver.solve_resilient(
                    request.A, b, tol=cfg.tol,
                    refine_steps=cfg.refine_steps,
                    label=request.label, before_rung=before_rung)
                lease.check()   # answer must come from a live generation
                spent.add(report.ledger)
                service_s = self.machine.seconds(spent)
                finish = self.queue.finish_service(
                    self.queue.start_service(now), service_s)
                self.cache.release(lease, service_seconds=service_s)
                account.ledger.add(spent)

                escalated = report.succeeded in _ESCALATION_RUNGS
                change = (breaker.record_escalation(finish) if escalated
                          else breaker.record_success(finish))
                if change:
                    self.metrics.incr(f"serve.breaker.{change}")
                    if change == "trip":
                        # quarantine: drop the thrashing entry so the
                        # half-open probe rebuilds from scratch
                        self.cache.invalidate(key)
                if escalated:
                    self.metrics.incr("serve.escalations")
                    events.append({"event": "serve.escalation",
                                   "request": rid,
                                   "rung": report.succeeded})
                self._check_completion_deadline(
                    rid, request, wait_s + service_s, report)
                return SolveResponse(
                    x=x, backward_error=float(report.backward_error),
                    request_id=rid, tenant=request.tenant, tier=tier,
                    path="shared", cache_hit=hit, retries=retries,
                    succeeded_rung=str(report.succeeded),
                    wait_s=wait_s, service_s=service_s,
                    latency_s=wait_s + service_s, finish_s=finish,
                    report=report.to_dict())
            except ReproError as exc:
                partial = holder.get("report")
                if partial is not None:
                    spent.add(partial.ledger)
                if isinstance(exc, RecoveryExhaustedError):
                    change = breaker.record_escalation(now)
                    if change:
                        self.metrics.incr(f"serve.breaker.{change}")
                        if change == "trip":
                            self.cache.invalidate(key)
                if not self.retry_policy.should_retry(exc, attempt):
                    service_s = self.machine.seconds(spent)
                    if service_s > 0.0:
                        self.queue.finish_service(
                            self.queue.start_service(now), service_s)
                        account.ledger.add(spent)
                    self.cache.release(lease)
                    raise
                backoff = self.retry_policy.backoff_s(attempt)
                spent.add(_backoff_ledger(self.machine, backoff))
                retries += 1
                attempt += 1
                self.metrics.incr("serve.retries")
                events.append({"event": "serve.retry", "request": rid,
                               "attempt": attempt,
                               "error": type(exc).__name__,
                               "backoff_s": backoff})
                self.cache.release(lease)
                lease, hit = self.cache.borrow(key, build)

    # ------------------------------------------------------------------
    def _serve_isolated(self, rid: int, request: SolveRequest,
                        account: _TenantAccount, key: str, tier: str,
                        now: float, wait_s: float,
                        events: List[dict]) -> SolveResponse:
        """Breaker-open path: private solver, no shared-cache traffic.

        The request pays full re-analysis every time — deliberately: a
        quarantined pattern must not touch (or repopulate) the shared
        entry other tenants depend on.
        """
        cfg = self.config
        b = validate_rhs(request.b, request.A.n_rows)
        solver = DirectSolver(cfg.solver)
        solver.symbolic_factorization(request.A)
        spent = CostLedger()
        sym_ledger = getattr(solver._symbolic, "ledger", None)
        if sym_ledger is not None:
            spent.add(sym_ledger)
        holder = {}

        def before_rung(rung, report):
            holder["report"] = report
            if request.deadline_s is not None:
                elapsed = wait_s + self.machine.seconds(
                    spent) + self.machine.seconds(report.ledger)
                if elapsed > request.deadline_s:
                    self.metrics.incr("serve.deadline.midflight")
                    raise DeadlineExceededError(
                        f"request {rid}: modeled elapsed {elapsed:.3e}s "
                        f"crossed deadline {request.deadline_s:.3e}s "
                        f"before rung {rung!r} (isolated)",
                        deadline_s=request.deadline_s,
                        elapsed_s=elapsed, report=report)

        try:
            x, report = solver.solve_resilient(
                request.A, b, tol=cfg.tol, refine_steps=cfg.refine_steps,
                label=request.label, before_rung=before_rung)
        except ReproError:
            partial = holder.get("report")
            if partial is not None:
                spent.add(partial.ledger)
            service_s = self.machine.seconds(spent)
            if service_s > 0.0:
                self.queue.finish_service(
                    self.queue.start_service(now), service_s)
                account.ledger.add(spent)
            raise
        spent.add(report.ledger)
        service_s = self.machine.seconds(spent)
        finish = self.queue.finish_service(
            self.queue.start_service(now), service_s)
        account.ledger.add(spent)
        self._check_completion_deadline(
            rid, request, wait_s + service_s, report)
        return SolveResponse(
            x=x, backward_error=float(report.backward_error),
            request_id=rid, tenant=request.tenant, tier=tier,
            path="isolated", cache_hit=False, retries=0,
            succeeded_rung=str(report.succeeded),
            wait_s=wait_s, service_s=service_s,
            latency_s=wait_s + service_s, finish_s=finish,
            report=report.to_dict())

    # ------------------------------------------------------------------
    def breaker_state(self, A_or_key) -> dict:
        """Breaker snapshot for a matrix or a pattern key."""
        key = A_or_key if isinstance(A_or_key, str) else pattern_key(A_or_key)
        with self._lock:
            breaker = self._breakers.get(key)
            return breaker.to_dict() if breaker is not None else {
                "state": "closed", "trips": 0, "resets": 0, "reopens": 0,
                "consecutive_escalations": 0}

    def snapshot(self) -> dict:
        """Deterministic JSON-ready service state summary."""
        with self._lock:
            return {
                "queue": self.queue.to_dict(),
                "cache": self.cache.snapshot(),
                "tier": self._tier,
                "breakers": {k: b.to_dict()
                             for k, b in sorted(self._breakers.items())},
                "tenants": {name: acct.to_dict(self.machine)
                            for name, acct in sorted(self._tenants.items())},
                "latency": self.latency.snapshot(),
                "wait": self.wait.snapshot(),
                "metrics": self.metrics.snapshot(),
            }


@effects(pure=True)
def _backoff_ledger(machine: MachineModel, backoff_s: float) -> CostLedger:
    """A ledger whose modeled price equals ``backoff_s`` of pure waiting.

    Backoff occupies the request's slot without doing flops; modeling it
    as memory traffic keeps all accounting in ledger currency so tenant
    totals and queue occupancy stay consistent.
    """
    one_word = machine.seconds(CostLedger(mem_words=1.0))
    return CostLedger(mem_words=backoff_s / one_word if one_word > 0.0 else 0.0)
