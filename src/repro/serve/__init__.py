"""repro.serve: a fault-tolerant, multi-tenant solve service.

The serving layer wraps the package's resilient direct solvers in an
explicit robustness envelope — bounded admission with per-tenant rate
limits, modeled-clock deadlines, seeded retries, a shared pattern-keyed
solver cache with lease/generation safety, per-pattern circuit
breaking, and tiered degradation under overload.  See ``docs/API.md``
("Serving and overload behavior") for the state machines and
``repro serve`` for the CLI soak harness.
"""

from .admission import ModeledQueue, TokenBucket
from .breaker import BreakerConfig, CircuitBreaker
from .cache import CacheEntry, Lease, PatternCache, pattern_key
from .client import ServeClient, ThreadedServeClient
from .policy import RetryPolicy, estimate_request_seconds
from .service import (
    REJECT_REASONS,
    TIERS,
    ServeConfig,
    SolveRequest,
    SolveResponse,
    SolverService,
)
from .sim import TenantSpec, build_traffic, default_tenants, run_soak

__all__ = [
    "ModeledQueue",
    "TokenBucket",
    "BreakerConfig",
    "CircuitBreaker",
    "CacheEntry",
    "Lease",
    "PatternCache",
    "pattern_key",
    "ServeClient",
    "ThreadedServeClient",
    "RetryPolicy",
    "estimate_request_seconds",
    "REJECT_REASONS",
    "TIERS",
    "ServeConfig",
    "SolveRequest",
    "SolveResponse",
    "SolverService",
    "TenantSpec",
    "build_traffic",
    "default_tenants",
    "run_soak",
]
