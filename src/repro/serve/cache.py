"""Shared pattern-keyed solver cache with leases and cost-aware eviction.

Circuit and power-grid workloads are dominated by *pattern reuse*: a
transient stamps the same sparsity pattern thousands of times, an N-1
sweep solves hundreds of values-only variants of one grid.  The serving
layer therefore shares one symbolic analysis + numeric factorization
per pattern across all tenants, keyed by a content hash of the pattern
(:func:`pattern_key`).

Safety under sharing comes from three mechanisms:

* **Leases with generation counters.**  ``borrow`` hands out a
  :class:`Lease` that captures the entry's generation at borrow time.
  Any eviction or explicit invalidation bumps the generation, so a
  borrower touching a stale lease gets a typed, *retryable*
  :class:`~repro.errors.CacheInvalidatedError` instead of silently
  computing against freed state.
* **LRU + cost-aware eviction.**  When the cache is full, the evictor
  looks at the ``eviction_window`` least-recently-used unleased entries
  and drops the one that is *cheapest to rebuild* (modeled seconds of
  its recorded build ledger) — evicting a 2-second factorization to
  keep a 2-millisecond one is never worth it.  Ties break on the key,
  so eviction order is fully deterministic.
* **A single lock.**  All map mutations happen under one
  ``threading.RLock``; entries themselves are immutable-after-build
  apart from counters.  The in-process simulator never contends, the
  optional thread-pool executor does.

Counters (on the injected :class:`~repro.obs.metrics.Metrics`):
``cache.hit`` / ``cache.miss`` / ``cache.evictions`` /
``cache.invalidate`` — the same family the flight recorder's
cache-hit-drop detector scans.
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from ..contracts import effects, shapes
from ..errors import CacheInvalidatedError
from ..obs.hist import StreamingHistogram
from ..obs.metrics import Metrics
from ..parallel.ledger import CostLedger
from ..parallel.machine import MachineModel, SANDY_BRIDGE
from ..sparse.csc import CSC

__all__ = ["pattern_key", "CacheEntry", "Lease", "PatternCache"]


@effects(pure=True)
@shapes(A="csc[r,c]", returns="any")
def pattern_key(A: CSC) -> str:
    """Content hash of a matrix *pattern* (shape + indptr + indices).

    Values are deliberately excluded: a transient step or an N-1
    variant with identical structure must map to the same cache entry
    so the values-only replay path can run.
    """
    h = hashlib.sha256()
    h.update(f"{A.n_rows}x{A.n_cols}".encode())
    h.update(A.indptr.tobytes())
    h.update(A.indices.tobytes())
    return h.hexdigest()[:16]


@dataclass
class CacheEntry:
    """One pattern's shared solver state plus its accounting.

    ``solver`` is a :class:`~repro.interface.DirectSolver` carrying the
    symbolic analysis and the most recent verified numeric
    factorization for this pattern, so the next request's recovery
    ladder starts at the cheap values-only replay rung.
    """

    key: str
    solver: object
    build_ledger: CostLedger = field(default_factory=CostLedger)
    generation: int = 0
    valid: bool = True
    leases: int = 0
    hits: int = 0
    last_used: int = 0            # monotonic use tick (LRU ordering)
    observed_s: StreamingHistogram = field(default_factory=StreamingHistogram)

    def rebuild_seconds(self, machine: MachineModel) -> float:
        """Modeled cost of rebuilding this entry from scratch."""
        return machine.seconds(self.build_ledger)

    def estimate_seconds(self) -> Optional[float]:
        """Pessimistic per-request service estimate from history.

        Returns the p95 of observed modeled service times, or None
        before the first completion (admission then falls back to
        pricing the symbolic analysis ledger).
        """
        if self.observed_s.count == 0:
            return None
        return self.observed_s.quantile(0.95)

    def invalidate(self) -> int:
        """Bump the generation and drop derived solver caches.

        Live leases captured before this call now fail their
        :meth:`Lease.check` with a retryable
        :class:`~repro.errors.CacheInvalidatedError`.
        """
        self.generation += 1
        self.valid = False
        sym = getattr(self.solver, "_symbolic", None)
        if sym is not None and hasattr(sym, "invalidate"):
            sym.invalidate()
        num = getattr(self.solver, "_numeric", None)
        if num is not None and hasattr(num, "invalidate_caches"):
            num.invalidate_caches()
        return self.generation


@dataclass
class Lease:
    """A borrow handle: entry + the generation captured at borrow time."""

    entry: CacheEntry
    generation: int
    released: bool = False

    def check(self) -> None:
        """Raise if the entry was evicted/invalidated under this lease."""
        if not self.entry.valid or self.entry.generation != self.generation:
            raise CacheInvalidatedError(
                f"cache entry {self.entry.key} invalidated under a live "
                f"lease (borrowed generation {self.generation}, now "
                f"{self.entry.generation})",
                key=self.entry.key,
                generation=self.entry.generation,
            )


class PatternCache:
    """Concurrency-safe shared cache of per-pattern solver state."""

    def __init__(
        self,
        capacity: int = 8,
        machine: MachineModel = SANDY_BRIDGE,
        metrics: Optional[Metrics] = None,
        eviction_window: int = 4,
    ) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        if eviction_window < 1:
            raise ValueError("eviction_window must be >= 1")
        self.capacity = capacity
        self.machine = machine
        self.metrics = metrics if metrics is not None else Metrics()
        self.eviction_window = eviction_window
        self._entries: Dict[str, CacheEntry] = {}
        self._lock = threading.RLock()
        self._tick = 0
        self.evictions = 0
        self.invalidations = 0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def keys(self):
        with self._lock:
            return sorted(self._entries)

    def get(self, key: str) -> Optional[CacheEntry]:
        with self._lock:
            return self._entries.get(key)

    # ------------------------------------------------------------------
    def borrow(
        self,
        key: str,
        factory: Callable[[], Tuple[object, CostLedger]],
    ) -> Tuple[Lease, bool]:
        """Borrow the entry for ``key``, building it on a miss.

        ``factory() -> (solver, build_ledger)`` runs *outside* the lock
        on a miss (symbolic analysis is the expensive part), then the
        built entry is inserted — first writer wins if two threads race
        the same miss, and the loser borrows the winner's entry.

        Returns ``(lease, hit)``.  Call :meth:`release` when done.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and entry.valid:
                self._tick += 1
                entry.last_used = self._tick
                entry.hits += 1
                entry.leases += 1
                self.metrics.incr("cache.hit")
                return Lease(entry=entry, generation=entry.generation), True
            self.metrics.incr("cache.miss")

        solver, build_ledger = factory()

        with self._lock:
            entry = self._entries.get(key)
            if entry is None or not entry.valid:
                if len(self._entries) >= self.capacity:
                    self._evict_one_locked()
                entry = CacheEntry(key=key, solver=solver,
                                   build_ledger=build_ledger.copy())
                self._entries[key] = entry
            self._tick += 1
            entry.last_used = self._tick
            entry.leases += 1
            return Lease(entry=entry, generation=entry.generation), False

    def release(self, lease: Lease, service_seconds: Optional[float] = None) -> None:
        """Return a lease; optionally record the observed service time."""
        with self._lock:
            if lease.released:
                return
            lease.released = True
            lease.entry.leases = max(0, lease.entry.leases - 1)
            if (service_seconds is not None and lease.entry.valid
                    and lease.entry.generation == lease.generation):
                lease.entry.observed_s.observe(float(service_seconds))

    # ------------------------------------------------------------------
    def _evict_one_locked(self) -> Optional[str]:
        """Evict one entry: cheapest-to-rebuild among the LRU window.

        Unleased entries are preferred; when every entry is leased the
        LRU-most leased entry is invalidated anyway (its borrowers get
        a retryable :class:`~repro.errors.CacheInvalidatedError` at the
        next lease check) so the cache bound is never exceeded.
        """
        if not self._entries:
            return None
        pool = [e for e in self._entries.values() if e.leases == 0]
        forced = not pool
        if forced:
            pool = list(self._entries.values())
        pool.sort(key=lambda e: (e.last_used, e.key))
        window = pool[: self.eviction_window]
        victim = min(
            window,
            key=lambda e: (e.rebuild_seconds(self.machine), e.key),
        )
        victim.invalidate()
        del self._entries[victim.key]
        self.evictions += 1
        self.metrics.incr("cache.evictions")
        if forced:
            self.metrics.incr("cache.evictions.forced")
        return victim.key

    def invalidate(self, key: str) -> bool:
        """Explicitly invalidate (and remove) ``key``.

        Live leases observe the generation bump and raise the typed
        retryable error at their next :meth:`Lease.check`.
        """
        with self._lock:
            entry = self._entries.pop(key, None)
            if entry is None:
                return False
            entry.invalidate()
            self.invalidations += 1
            self.metrics.incr("cache.invalidate")
            return True

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Deterministic JSON-ready summary."""
        with self._lock:
            return {
                "size": len(self._entries),
                "capacity": self.capacity,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
                "entries": {
                    k: {
                        "generation": e.generation,
                        "hits": e.hits,
                        "leases": e.leases,
                        "observed_count": e.observed_s.count,
                    }
                    for k, e in sorted(self._entries.items())
                },
            }
