"""Metrics registry: named counters, gauges and value observations.

The registry is the quantitative side of :mod:`repro.obs`: spans say
*where* a run spent its modeled time, counters/gauges say *what
happened* — fill-in, off-diagonal pivot swaps, BTF block counts,
schedule-cache hits/misses, :class:`~repro.errors.SingularMatrixError`
fallbacks, level widths.

Everything is deterministic: values come from the algorithms, never
from clocks, and :meth:`Metrics.snapshot` emits keys in sorted order so
two identical runs serialize identically.

Instrumentation sites reach the registry through the active tracer
(``get_tracer().metrics``); with tracing disabled that resolves to
:data:`NULL_METRICS`, whose methods are no-ops, so disabled runs pay
only an attribute lookup and a call.

Thread safety: every mutating operation (``incr``, ``set_gauge``,
``observe``, ``merge``) and every consistent read (``snapshot``) holds
the registry's internal lock, so a registry shared by the serving
layer's thread-pool executor never loses an update or folds a
half-written stat.  ``merge`` locks only *this* registry and reads
shallow copies of ``other``'s tables — the source registry must be
quiescent (or single-writer) during a merge, which every call site
satisfies because merges fold per-step registries that have finished
their step.
"""

from __future__ import annotations

import threading
from typing import Dict

__all__ = ["Metrics", "NullMetrics", "NULL_METRICS"]


class Metrics:
    """Deterministic, lock-protected counter/gauge/observation store."""

    enabled = True

    def __init__(self) -> None:
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.stats: Dict[str, Dict[str, float]] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def incr(self, name: str, amount: float = 1) -> None:
        """Add ``amount`` to the counter ``name`` (created at 0)."""
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + amount

    def counter(self, name: str) -> float:
        """Current value of a counter (0 when never incremented)."""
        return self.counters.get(name, 0)

    def set_gauge(self, name: str, value: float) -> None:
        """Record the latest value of ``name`` (last write wins)."""
        with self._lock:
            self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Fold ``value`` into the running count/total/min/max/sum_sq of
        ``name`` (distribution summaries, e.g. schedule level widths)."""
        with self._lock:
            st = self.stats.get(name)
            if st is None:
                self.stats[name] = {
                    "count": 1, "total": value, "min": value, "max": value,
                    "sum_sq": value * value,
                }
            else:
                st["count"] += 1
                st["total"] += value
                st["sum_sq"] += value * value
                if value < st["min"]:
                    st["min"] = value
                if value > st["max"]:
                    st["max"] = value

    def merge(self, other: "Metrics") -> "Metrics":
        """Fold another registry into this one (counters add, gauges
        last-write-wins from ``other``, stats combine exactly) — used to
        aggregate per-step registries across a sequence.

        ``other`` must be quiescent (single-writer contract): its tables
        are shallow-copied before folding so a torn iteration cannot
        occur, but values written to ``other`` during the merge may or
        may not be included.
        """
        counters = dict(other.counters)
        gauges = dict(other.gauges)
        stats = {k: dict(st) for k, st in other.stats.items()}
        with self._lock:
            for k, v in counters.items():
                self.counters[k] = self.counters.get(k, 0) + v
            self.gauges.update(gauges)
            for k, st in stats.items():
                mine = self.stats.get(k)
                if mine is None:
                    self.stats[k] = dict(st)
                else:
                    mine["count"] += st["count"]
                    mine["total"] += st["total"]
                    mine["sum_sq"] += st["sum_sq"]
                    if st["min"] < mine["min"]:
                        mine["min"] = st["min"]
                    if st["max"] > mine["max"]:
                        mine["max"] = st["max"]
        return self

    # ------------------------------------------------------------------
    @staticmethod
    def _stat_summary(st: Dict[str, float]) -> Dict[str, float]:
        """Derived mean/stddev folded into a stat dict, fixed key order."""
        n = st["count"]
        mean = st["total"] / n
        var = st["sum_sq"] / n - mean * mean
        stddev = var ** 0.5 if var > 0.0 else 0.0
        return {
            "count": st["count"], "total": st["total"],
            "min": st["min"], "max": st["max"], "sum_sq": st["sum_sq"],
            "mean": mean, "stddev": stddev,
        }

    def snapshot(self) -> dict:
        """JSON-ready copy with deterministically sorted keys."""
        with self._lock:
            counters = dict(self.counters)
            gauges = dict(self.gauges)
            stats = {k: dict(st) for k, st in self.stats.items()}
        return {
            "counters": {k: counters[k] for k in sorted(counters)},
            "gauges": {k: gauges[k] for k in sorted(gauges)},
            "stats": {k: self._stat_summary(stats[k]) for k in sorted(stats)},
        }


class NullMetrics:
    """No-op registry installed while tracing is disabled."""

    enabled = False

    def incr(self, name: str, amount: float = 1) -> None:
        pass

    def counter(self, name: str) -> float:
        return 0

    def set_gauge(self, name: str, value: float) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass

    def merge(self, other) -> "NullMetrics":
        return self

    def snapshot(self) -> dict:
        return {"counters": {}, "gauges": {}, "stats": {}}


NULL_METRICS = NullMetrics()
