"""Continuous profiling: per-span-name latency histograms over sequences.

:class:`ProfilingTracer` extends the span tracer with streaming
aggregation: every completed span is folded into a per-span-name
:class:`~repro.obs.hist.StreamingHistogram` of **modeled** seconds
(ledger × machine model — deterministic) and, when the tracer was given
a wall clock at the harness boundary, a second histogram of **wall**
seconds plus a ``(name, ledger, wall)`` calibration sample.  Harvesting
is on demand (:meth:`ProfilingTracer.harvest`) rather than on span
exit, because leaf spans are legal without ``with`` and ledgers may be
attached after exit; spans are processed in creation order up to the
first still-open span, so calling it at step boundaries (empty span
stack) sees every span exactly once.

:func:`run_profile` is the harness: it drives the §V-F same-pattern
matrix sequence (or any supplied matrix list) through
``DirectSolver.solve_resilient`` under a :class:`ProfilingTracer` and a
:class:`~repro.obs.flight.FlightRecorder`, optionally arms a seeded
:class:`~repro.resilience.faults.FaultPlan` over the replay phase,
optionally fits a calibrated MachineModel from the collected samples,
and returns the ``PROFILE.json``-shaped report the ``repro profile``
CLI serializes.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..parallel.ledger import CostLedger
from ..parallel.machine import MachineModel, SANDY_BRIDGE
from .flight import FlightRecorder
from .hist import StreamingHistogram
from .metrics import Metrics
from .tracer import LEDGER_FIELDS, Span, Tracer, tracing

__all__ = ["ProfilingTracer", "run_profile", "PROFILE_SCHEMA"]

PROFILE_SCHEMA = "repro.profile.v1"


class ProfilingTracer(Tracer):
    """Tracer that folds completed spans into per-name histograms."""

    def __init__(
        self,
        machine: MachineModel = SANDY_BRIDGE,
        wall_clock: Optional[Callable[[], float]] = None,
        metrics: Optional[Metrics] = None,
        growth: Optional[float] = None,
        min_value: Optional[float] = None,
    ) -> None:
        super().__init__(wall_clock=wall_clock, metrics=metrics)
        self.machine = machine
        hist_kwargs = {}
        if growth is not None:
            hist_kwargs["growth"] = growth
        if min_value is not None:
            hist_kwargs["min_value"] = min_value
        self._hist_kwargs = hist_kwargs
        self.modeled_hist: Dict[str, StreamingHistogram] = {}
        self.wall_hist: Dict[str, StreamingHistogram] = {}
        # (span name, inclusive ledger, wall seconds) calibration pairs.
        self.samples: List[Tuple[str, CostLedger, float]] = []
        self._harvested = 0

    # ------------------------------------------------------------------
    def _hist(self, table: Dict[str, StreamingHistogram],
              name: str) -> StreamingHistogram:
        h = table.get(name)
        if h is None:
            h = table[name] = StreamingHistogram(**self._hist_kwargs)
        return h

    def _ingest(self, sp: Span) -> None:
        total = sp.ledger_total()
        self._hist(self.modeled_hist, sp.name).observe(
            self.machine.seconds(total))
        wall = sp.wall_seconds
        if wall is not None:
            self._hist(self.wall_hist, sp.name).observe(max(0.0, wall))
            if wall > 0.0 and not total.is_empty():
                self.samples.append((sp.name, total, wall))

    def harvest(self) -> int:
        """Fold spans completed since the last harvest; returns how many.

        Stops at the first span that is still open — spans are stored in
        creation (pre-)order, so an open ancestor always precedes its
        not-yet-finished descendants.  Call at step boundaries (or once
        at the end of the workload) for full coverage.
        """
        open_ids = {id(s) for s in self._stack}
        n = 0
        while self._harvested < len(self.spans):
            sp = self.spans[self._harvested]
            if id(sp) in open_ids:
                break
            self._ingest(sp)
            self._harvested += 1
            n += 1
        return n

    # ------------------------------------------------------------------
    def profile_snapshot(self) -> dict:
        """Per-span-name modeled/wall percentile summaries, sorted."""
        phases = {}
        for name in sorted(self.modeled_hist):
            phases[name] = {
                "modeled": self.modeled_hist[name].snapshot(),
                "wall": (self.wall_hist[name].snapshot()
                         if name in self.wall_hist else None),
            }
        return phases


# ----------------------------------------------------------------------
# The profiling harness.
# ----------------------------------------------------------------------

# Fault site carrying the values-only replay for each DirectSolver kind.
_REPLAY_FAULT_SITE = {
    "klu": "klu.refactor.values",
    "basker": "basker.refactor.values",
}


def _fault_plan(seed: int, solver: str, steps: int):
    """A seeded plan targeting the replay path of the profiled solver."""
    from ..resilience.faults import FaultPlan

    site = _REPLAY_FAULT_SITE.get(solver, "sequence.matrix")
    # The site is invoked once per post-warmup step, so keep every
    # occurrence reachable within the armed window.
    return FaultPlan.random(
        seed,
        n_faults=3,
        sites=[site],
        kinds=("nan", "perturb"),
        max_occurrence=max(1, min(3, steps - 2)),
    )


def run_profile(
    steps: int = 25,
    matrices: Optional[List] = None,
    circuit=None,
    solver: str = "klu",
    machine: MachineModel = SANDY_BRIDGE,
    calibrate: bool = False,
    wall_clock: Optional[Callable[[], float]] = None,
    fault_seed: Optional[int] = None,
    capacity: int = 256,
    tol: float = 1e-10,
    flag_factor: float = 2.0,
) -> dict:
    """Profile a same-pattern solve sequence; return the PROFILE report.

    The workload is the paper §V-F traffic shape: ``steps`` Jacobians
    of one circuit (default :func:`repro.xyce.circuits.xyce1_analog`),
    each solved through ``DirectSolver.solve_resilient`` so the cheap
    values-only replay runs every step and the recovery ladder absorbs
    injected faults.  ``wall_clock`` (e.g. ``time.perf_counter``) turns
    on wall histograms and enables ``calibrate=True``; without it the
    whole run — histograms, flight records, anomalies — is
    bit-deterministic.  ``fault_seed`` arms a seeded
    :class:`~repro.resilience.faults.FaultPlan` on the replay path from
    the second step onward (the clean warmup keeps detectors
    calibrated).
    """
    from ..interface import DirectSolver

    if matrices is None:
        if circuit is None:
            from ..xyce.circuits import xyce1_analog
            circuit = xyce1_analog()
        from ..xyce.transient import matrix_sequence
        matrices = matrix_sequence(circuit, steps)
    matrices = list(matrices)
    if not matrices:
        raise ValueError("run_profile needs at least one matrix")
    steps = len(matrices)

    tracer = ProfilingTracer(machine=machine, wall_clock=wall_clock)
    flight = FlightRecorder(capacity=capacity)
    plan = _fault_plan(fault_seed, solver, steps) if fault_seed is not None else None

    ds = DirectSolver(solver)
    rng = np.random.default_rng(2016)
    rhs = [rng.standard_normal(A.n_rows) for A in matrices]

    armed = False
    try:
        with tracing(tracer):
            for k, A in enumerate(matrices):
                # Arm the fault plan after the warmup step so detectors
                # have a clean baseline to drift from.
                if plan is not None and k == 1 and not armed:
                    plan.__enter__()
                    armed = True
                if k > 0 and not (
                    np.array_equal(A.indptr, matrices[k - 1].indptr)
                    and np.array_equal(A.indices, matrices[k - 1].indices)
                ):
                    # Pattern changed (mixed-suite input): re-analyze so
                    # the refactor rung never runs on a stale symbolic.
                    ds.symbolic_factorization(A)
                with tracer.span("profile.step", step=k) as step_span:
                    _x, report = ds.solve_resilient(
                        A, rhs[k], tol=tol, label=f"step{k}")
                tracer.harvest()
                phases: Dict[str, float] = {}
                for child in step_span.children:
                    sec = machine.seconds(child.ledger_total())
                    phases[child.name] = phases.get(child.name, 0.0) + sec
                events = [report.to_dict()] if len(report.attempts) > 1 else []
                flight.record_step(
                    step=k,
                    modeled_s=machine.seconds(step_span.ledger_total()),
                    wall_s=step_span.wall_seconds,
                    phases=phases,
                    events=events,
                    metrics=tracer.metrics,
                )
            tracer.harvest()
    finally:
        if armed:
            plan.__exit__(None, None, None)

    anomalies = flight.scan()

    calibration = None
    if calibrate:
        from .calibrate import fit_machine_model

        calibration = fit_machine_model(
            tracer.samples, base=machine, flag_factor=flag_factor)

    return {
        "schema": PROFILE_SCHEMA,
        "machine": machine.name,
        "solver": solver,
        "steps": steps,
        "n": int(matrices[0].n_rows),
        "fault": {
            "seed": fault_seed,
            "specs": [
                {"site": s.site, "kind": s.kind, "occurrence": s.occurrence,
                 "frac": s.frac}
                for s in plan.specs
            ],
            "fired": len(plan.events),
        } if plan is not None else None,
        "phases": tracer.profile_snapshot(),
        "anomalies": anomalies,
        "flight": {
            "capacity": flight.capacity,
            "dropped": flight.dropped,
            "total_steps": flight.total_steps,
            "records": flight.records,
        },
        "metrics": tracer.metrics.snapshot(),
        # (span name, ledger fields, wall seconds) calibration pairs —
        # JSON-ready so suite-level fits can pool samples across runs.
        "samples": [
            [name, {f: getattr(led, f) for f in LEDGER_FIELDS}, wall]
            for name, led, wall in tracer.samples
        ],
        "calibration": calibration.to_dict() if calibration is not None else None,
    }
