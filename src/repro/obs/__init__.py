"""repro.obs — hierarchical span tracing and metrics for the pipeline.

The tracer is off by default (:data:`NULL_TRACER`); activate one with
:func:`tracing` and export with the functions in :mod:`repro.obs.export`::

    from repro.obs import Tracer, tracing, to_perfetto

    with tracing(Tracer()) as tr:
        solver = DirectSolver(A, n_threads=4)
        solver.factor()
    doc = to_perfetto(tr, machine)
"""

from .metrics import Metrics, NullMetrics, NULL_METRICS
from .tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    check_ledger_tree,
    get_tracer,
    set_tracer,
    tracing,
)
from .export import (
    modeled_times,
    parse_jsonl,
    span_tree,
    to_jsonl,
    to_perfetto,
    top_spans,
    validate_perfetto,
)
from .hist import StreamingHistogram
from .flight import (
    FlightRecorder,
    detect_cache_hit_drop,
    detect_pivot_growth_trend,
    detect_recovery_events,
    detect_step_cost_spike,
    scan_anomalies,
)
from .calibrate import CalibrationResult, fit_machine_model
from .prof import ProfilingTracer, run_profile

__all__ = [
    "Metrics",
    "NullMetrics",
    "NULL_METRICS",
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "get_tracer",
    "set_tracer",
    "tracing",
    "check_ledger_tree",
    "modeled_times",
    "to_perfetto",
    "to_jsonl",
    "parse_jsonl",
    "span_tree",
    "top_spans",
    "validate_perfetto",
    "StreamingHistogram",
    "FlightRecorder",
    "detect_step_cost_spike",
    "detect_cache_hit_drop",
    "detect_pivot_growth_trend",
    "detect_recovery_events",
    "scan_anomalies",
    "CalibrationResult",
    "fit_machine_model",
    "ProfilingTracer",
    "run_profile",
]
