"""repro.obs — hierarchical span tracing and metrics for the pipeline.

The tracer is off by default (:data:`NULL_TRACER`); activate one with
:func:`tracing` and export with the functions in :mod:`repro.obs.export`::

    from repro.obs import Tracer, tracing, to_perfetto

    with tracing(Tracer()) as tr:
        solver = DirectSolver(A, n_threads=4)
        solver.factor()
    doc = to_perfetto(tr, machine)
"""

from .metrics import Metrics, NullMetrics, NULL_METRICS
from .tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    check_ledger_tree,
    get_tracer,
    set_tracer,
    tracing,
)
from .export import (
    modeled_times,
    parse_jsonl,
    span_tree,
    to_jsonl,
    to_perfetto,
    validate_perfetto,
)

__all__ = [
    "Metrics",
    "NullMetrics",
    "NULL_METRICS",
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "get_tracer",
    "set_tracer",
    "tracing",
    "check_ledger_tree",
    "modeled_times",
    "to_perfetto",
    "to_jsonl",
    "parse_jsonl",
    "span_tree",
    "validate_perfetto",
]
