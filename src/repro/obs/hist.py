"""Streaming log-bucketed histograms for per-phase latency distributions.

A :class:`StreamingHistogram` folds an unbounded stream of non-negative
durations into a fixed family of geometric buckets: bucket ``i`` covers
``[min_value * growth**i, min_value * growth**(i+1))``, with a single
underflow bucket for values at or below ``min_value``.  Because the
bucket edges are a pure function of the constructor parameters, the
histogram is **insertion-order invariant**: the same multiset of
observations produces bit-identical buckets, percentiles and snapshots
no matter how it is streamed in or how many partial histograms are
:meth:`merged <StreamingHistogram.merge>` together.  That property is
what lets the profiling layer aggregate spans across transient steps,
runs and (eventually) service workers without a total-ordering step.

Quantiles are bucket-resolved: ``quantile(q)`` walks the sorted buckets
to the one holding the ``ceil(q * count)``-th observation and returns
that bucket's geometric midpoint, so with the default ``growth`` of
``2**0.25`` every percentile is exact to within ±9%.  Exact ``count``,
``total``, ``min``, ``max`` and ``sum_sq`` are tracked alongside.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = ["StreamingHistogram"]

# Default bucket family: quarter-octave buckets from 1 picosecond up.
# 2**0.25 growth gives ~160 buckets across 12 decades — small enough to
# serialize per span name, fine enough for single-digit-percent error.
DEFAULT_GROWTH = 2.0 ** 0.25
DEFAULT_MIN_VALUE = 1e-12


class StreamingHistogram:
    """Deterministic mergeable histogram over non-negative values."""

    __slots__ = ("growth", "min_value", "_log_growth", "counts",
                 "count", "total", "sum_sq", "min", "max")

    def __init__(self, growth: float = DEFAULT_GROWTH,
                 min_value: float = DEFAULT_MIN_VALUE) -> None:
        if not growth > 1.0:
            raise ValueError(f"growth must be > 1, got {growth!r}")
        if not min_value > 0.0:
            raise ValueError(f"min_value must be > 0, got {min_value!r}")
        self.growth = float(growth)
        self.min_value = float(min_value)
        self._log_growth = math.log(self.growth)
        # bucket index -> observation count; index -1 is the underflow
        # bucket (values <= min_value, including exact zeros).
        self.counts: Dict[int, int] = {}
        self.count = 0
        self.total = 0.0
        self.sum_sq = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    # ------------------------------------------------------------------
    def bucket_index(self, value: float) -> int:
        """Index of the bucket covering ``value`` (-1 = underflow)."""
        if value <= self.min_value:
            return -1
        idx = int(math.floor(math.log(value / self.min_value)
                             / self._log_growth))
        # Guard the open/closed boundary against float rounding: keep
        # the invariant lower_bound(idx) <= value < lower_bound(idx+1).
        while self.bucket_bounds(idx)[0] > value:
            idx -= 1
        while value >= self.bucket_bounds(idx)[1]:
            idx += 1
        return idx

    def bucket_bounds(self, index: int) -> Tuple[float, float]:
        """``(low, high)`` bounds of bucket ``index``."""
        if index < 0:
            return (0.0, self.min_value)
        return (self.min_value * self.growth ** index,
                self.min_value * self.growth ** (index + 1))

    # ------------------------------------------------------------------
    def observe(self, value: float) -> None:
        """Fold one non-negative observation into the histogram."""
        v = float(value)
        if v < 0.0 or v != v:
            raise ValueError(f"histogram values must be >= 0, got {value!r}")
        idx = self.bucket_index(v)
        self.counts[idx] = self.counts.get(idx, 0) + 1
        self.count += 1
        self.total += v
        self.sum_sq += v * v
        if self.min is None or v < self.min:
            self.min = v
        if self.max is None or v > self.max:
            self.max = v

    def observe_many(self, values: Iterable[float]) -> None:
        for v in values:
            self.observe(v)

    def merge(self, other: "StreamingHistogram") -> "StreamingHistogram":
        """Fold ``other`` into ``self`` (same bucket family required)."""
        if (other.growth != self.growth
                or other.min_value != self.min_value):
            raise ValueError(
                "cannot merge histograms with different bucket families: "
                f"growth {self.growth!r} vs {other.growth!r}, "
                f"min_value {self.min_value!r} vs {other.min_value!r}")
        for idx, n in other.counts.items():
            self.counts[idx] = self.counts.get(idx, 0) + n
        self.count += other.count
        self.total += other.total
        self.sum_sq += other.sum_sq
        if other.min is not None and (self.min is None or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None or other.max > self.max):
            self.max = other.max
        return self

    # ------------------------------------------------------------------
    def quantile(self, q: float) -> Optional[float]:
        """Value at quantile ``q`` in [0, 1], bucket-resolved.

        Returns the geometric midpoint of the bucket containing the
        ``ceil(q * count)``-th smallest observation; exact ``min``/
        ``max`` are returned at the extremes so reported percentiles
        never lie outside the observed range.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q!r}")
        if self.count == 0:
            return None
        if q == 0.0:
            return self.min
        rank = min(self.count, max(1, int(math.ceil(q * self.count))))
        seen = 0
        for idx in sorted(self.counts):
            seen += self.counts[idx]
            if seen >= rank:
                lo, hi = self.bucket_bounds(idx)
                if idx < 0:
                    mid = lo if lo > 0.0 else hi / 2.0
                else:
                    mid = math.sqrt(lo * hi)
                # Clamp into the observed range so p99 of a two-sample
                # histogram cannot exceed the true max.
                if self.min is not None and mid < self.min:
                    mid = self.min
                if self.max is not None and mid > self.max:
                    mid = self.max
                return mid
        return self.max  # pragma: no cover - unreachable (seen==count)

    def mean(self) -> Optional[float]:
        if self.count == 0:
            return None
        return self.total / self.count

    def stddev(self) -> Optional[float]:
        """Population standard deviation from exact running moments."""
        if self.count == 0:
            return None
        mu = self.total / self.count
        var = self.sum_sq / self.count - mu * mu
        return math.sqrt(var) if var > 0.0 else 0.0

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-ready summary with deterministic key/bucket ordering."""
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean(),
            "stddev": self.stddev(),
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }

    def to_dict(self) -> dict:
        """Full lossless serialization (snapshot + bucket counts)."""
        out = self.snapshot()
        out["growth"] = self.growth
        out["min_value"] = self.min_value
        out["sum_sq"] = self.sum_sq
        out["buckets"] = [[idx, self.counts[idx]]
                          for idx in sorted(self.counts)]
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "StreamingHistogram":
        """Inverse of :meth:`to_dict` (exact round trip)."""
        h = cls(growth=data["growth"], min_value=data["min_value"])
        h.counts = {int(idx): int(n) for idx, n in data["buckets"]}
        h.count = int(data["count"])
        h.total = float(data["total"])
        h.sum_sq = float(data["sum_sq"])
        h.min = data["min"]
        h.max = data["max"]
        return h

    def __repr__(self) -> str:
        return (f"StreamingHistogram(count={self.count}, "
                f"p50={self.quantile(0.5)!r}, max={self.max!r})")
