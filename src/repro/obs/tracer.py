"""Hierarchical span tracer for the solve pipeline.

A :class:`Span` is one phase of a run — ``solve`` nesting
``order.btf`` / ``order.nd`` / ``order.amd``, ``symbolic``,
``numeric.gp``, ``refactor.replay``, ``solve.tri`` — optionally
carrying the :class:`~repro.parallel.ledger.CostLedger` the phase
counted.  Span time is **modeled** (ledger × machine model, priced at
export), never wall-clock: the kernel packages are subject to the R1
lint rule (no wall clocks) and R5 (no nondeterminism), and span ids
come from a plain counter, so an instrumented run is bit-reproducible.
Wall-clock capture exists only at the harness/bench boundary — pass a
clock callable (e.g. ``time.perf_counter``) as ``Tracer(wall_clock=…)``
and spans additionally record real start/end times.

Tracing is **zero-cost when disabled**: the default active tracer is
:data:`NULL_TRACER`, whose ``span()`` returns a shared no-op span and
whose ``metrics`` is the no-op registry.  Instrumentation sites use
constant span names, and anything that would allocate or format (span
attributes, per-item child spans) is guarded behind
``tracer.enabled``.

Ledger attachment semantics:

* :meth:`Span.attach` — the span's *inclusive* modeled cost.  The
  ledger is copied at the call, so attach it once it is final.
* :meth:`Span.attach_overhead` — cost of the span's own work that no
  child span accounts for (e.g. the block-scatter words of a numeric
  factorization).  :func:`check_ledger_tree` verifies that for every
  span with both an attached ledger and costed children,
  ``overhead + sum(child totals) == ledger`` field-exactly — the
  conservation property behind the "sum of leaf span ledgers equals
  the pipeline ledger" guarantee of ``repro trace``.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import fields as _dc_fields
from typing import Callable, Dict, List, Optional

from ..parallel.ledger import CostLedger
from .metrics import Metrics, NULL_METRICS

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "get_tracer",
    "set_tracer",
    "tracing",
    "check_ledger_tree",
]

LEDGER_FIELDS = tuple(f.name for f in _dc_fields(CostLedger))


class Span:
    """One traced phase; usable as a context manager."""

    __slots__ = (
        "sid", "parent_sid", "name", "depth", "attrs",
        "ledger", "overhead", "children",
        "wall_start", "wall_end", "_tracer",
    )

    def __init__(self, tracer: "Tracer", sid: int, parent_sid: int,
                 name: str, depth: int) -> None:
        self.sid = sid
        self.parent_sid = parent_sid
        self.name = name
        self.depth = depth
        self.attrs: Dict[str, object] = {}
        self.ledger: Optional[CostLedger] = None
        self.overhead: Optional[CostLedger] = None
        self.children: List[Span] = []
        self.wall_start: Optional[float] = None
        self.wall_end: Optional[float] = None
        self._tracer = tracer

    # ------------------------------------------------------------------
    def __enter__(self) -> "Span":
        tr = self._tracer
        tr._stack.append(self)
        if tr.wall_clock is not None:
            self.wall_start = tr.wall_clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        tr = self._tracer
        if tr.wall_clock is not None:
            self.wall_end = tr.wall_clock()
        if tr._stack and tr._stack[-1] is self:
            tr._stack.pop()
        return False

    # ------------------------------------------------------------------
    def set(self, **attrs) -> "Span":
        """Attach key/value attributes (exported into trace args)."""
        self.attrs.update(attrs)
        return self

    def attach(self, ledger: CostLedger) -> "Span":
        """Attach the span's inclusive modeled cost (copied now)."""
        if self.ledger is None:
            self.ledger = ledger.copy()
        else:
            self.ledger.add(ledger)
        return self

    def attach_overhead(self, ledger: CostLedger) -> "Span":
        """Attach own-work cost not covered by any child span."""
        if self.overhead is None:
            self.overhead = ledger.copy()
        else:
            self.overhead.add(ledger)
        return self

    # ------------------------------------------------------------------
    def ledger_total(self) -> CostLedger:
        """Inclusive cost: the attached ledger if present, otherwise the
        fold of the children's totals (plus any overhead), in child
        order — the deterministic summation the consistency check and
        the exporters share."""
        if self.ledger is not None:
            return self.ledger.copy()
        total = self.overhead.copy() if self.overhead is not None else CostLedger()
        for child in self.children:
            total.add(child.ledger_total())
        return total

    @property
    def wall_seconds(self) -> Optional[float]:
        if self.wall_start is None or self.wall_end is None:
            return None
        return self.wall_end - self.wall_start

    def __repr__(self) -> str:
        return f"Span({self.sid}, {self.name!r}, depth={self.depth})"


class Tracer:
    """Collects a forest of spans plus a metrics registry.

    ``wall_clock`` is None by default (modeled time only); harness code
    may pass ``time.perf_counter`` to record real span times alongside.
    """

    enabled = True

    def __init__(self, wall_clock: Optional[Callable[[], float]] = None,
                 metrics: Optional[Metrics] = None) -> None:
        self.metrics = metrics if metrics is not None else Metrics()
        self.wall_clock = wall_clock
        self.spans: List[Span] = []     # creation (pre-)order
        self.roots: List[Span] = []
        self._stack: List[Span] = []
        self._next_sid = 0

    def span(self, name: str, **attrs) -> Span:
        """Open a span under the innermost active span (use ``with``)."""
        sid = self._next_sid
        self._next_sid += 1
        parent = self._stack[-1] if self._stack else None
        sp = Span(self, sid, parent.sid if parent is not None else -1,
                  name, len(self._stack))
        if attrs:
            sp.attrs.update(attrs)
        self.spans.append(sp)
        if parent is not None:
            parent.children.append(sp)
        else:
            self.roots.append(sp)
        return sp

    def current(self) -> Optional[Span]:
        """The innermost open span, or ``None`` outside any span.

        Used by kernels that open a costed child span to attach their
        remaining own-work to the caller's span as overhead, keeping
        :func:`check_ledger_tree` conservation exact."""
        return self._stack[-1] if self._stack else None


class _NullSpan:
    """Shared inert span: every method is a no-op returning self."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attrs) -> "_NullSpan":
        return self

    def attach(self, ledger) -> "_NullSpan":
        return self

    def attach_overhead(self, ledger) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The default (disabled) tracer: no spans, no metrics, no state."""

    enabled = False
    metrics = NULL_METRICS
    wall_clock = None

    def span(self, name: str, **attrs) -> _NullSpan:
        return _NULL_SPAN

    def current(self) -> None:
        return None


NULL_TRACER = NullTracer()

_ACTIVE: object = NULL_TRACER


def get_tracer():
    """The active tracer (the no-op :data:`NULL_TRACER` by default)."""
    return _ACTIVE


def set_tracer(tracer) -> None:
    """Install ``tracer`` (or :data:`NULL_TRACER`) as the active tracer."""
    global _ACTIVE
    _ACTIVE = tracer if tracer is not None else NULL_TRACER


@contextmanager
def tracing(tracer: Tracer):
    """Scoped activation: ``with tracing(Tracer()) as tr: …``."""
    global _ACTIVE
    prev = _ACTIVE
    _ACTIVE = tracer
    try:
        yield tracer
    finally:
        _ACTIVE = prev


def check_ledger_tree(tracer: Tracer) -> List[str]:
    """Verify ledger conservation over the span forest.

    For every span with an attached (inclusive) ledger whose children
    carry any cost, ``overhead + sum(child totals)`` must equal the
    attached ledger *field-exactly* — ledgers are operation counts, so
    no tolerance is warranted.  Returns human-readable problems; empty
    means the trace's leaf ledgers sum to the pipeline totals.
    """
    problems: List[str] = []
    for sp in tracer.spans:
        if sp.ledger is None or not sp.children:
            continue
        folded = sp.overhead.copy() if sp.overhead is not None else CostLedger()
        child_cost = False
        for child in sp.children:
            ct = child.ledger_total()
            if not ct.is_empty():
                child_cost = True
            folded.add(ct)
        if not child_cost:
            continue  # structural children only (no cost accounting)
        for f in LEDGER_FIELDS:
            got = getattr(folded, f)
            want = getattr(sp.ledger, f)
            if got != want:
                problems.append(
                    f"span {sp.sid} ({sp.name}): children+overhead {f}="
                    f"{got!r} != attached ledger {f}={want!r}"
                )
    return problems
