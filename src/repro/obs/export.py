"""Exporters for :mod:`repro.obs` traces.

Three formats, all deterministic for a given run:

* :func:`to_perfetto` — Chrome-tracing / Perfetto JSON.  The span tree
  renders as nested slices on one lane of process 0 (timestamps are
  microseconds of *modeled* time, priced from each span's attached
  :class:`~repro.parallel.ledger.CostLedger` on a
  :class:`~repro.parallel.machine.MachineModel`); a simulated
  :class:`~repro.parallel.sim.Schedule` can be merged as child lanes of
  process 1, one named thread lane per simulated core, with flow arrows
  for the point-to-point dependency edges.
* :func:`to_jsonl` — one JSON object per line: span records first (in
  span-id order), then counters/gauges/stats from the metrics
  registry.  :func:`parse_jsonl` reads the stream back.
* :func:`span_tree` — fixed-width ASCII summary of the span tree with
  modeled (and, when captured, wall) seconds per span.

:func:`validate_perfetto` is the minimal schema check used by tests and
CI: every complete event carries numeric ``ts``/``dur``/``pid``/``tid``
and every flow-start id has a matching flow-finish id.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple

from ..parallel.ledger import CostLedger
from ..parallel.machine import MachineModel
from .tracer import LEDGER_FIELDS, Span, Tracer

__all__ = [
    "modeled_times",
    "to_perfetto",
    "to_jsonl",
    "parse_jsonl",
    "span_tree",
    "top_spans",
    "validate_perfetto",
]


def _ledger_dict(ledger: Optional[CostLedger]) -> Optional[dict]:
    if ledger is None:
        return None
    return {f: getattr(ledger, f) for f in LEDGER_FIELDS}


def modeled_times(
    tracer: Tracer, machine: MachineModel
) -> Dict[int, Tuple[float, float]]:
    """Per-span ``(start, duration)`` in modeled seconds.

    A span's duration prices its inclusive ledger on ``machine``; its
    children are laid out sequentially inside it after the span's own
    overhead (the modeled pipeline is serial — parallel structure lives
    in the merged simulated schedule lanes, not in the span tree).
    Roots are laid out sequentially from t=0.
    """
    out: Dict[int, Tuple[float, float]] = {}

    def place(sp: Span, start: float) -> float:
        dur = machine.seconds(sp.ledger_total())
        out[sp.sid] = (start, dur)
        cursor = start
        if sp.overhead is not None:
            cursor += machine.seconds(sp.overhead)
        for child in sp.children:
            cursor = place(child, cursor)
        return start + dur

    cursor = 0.0
    for root in tracer.roots:
        cursor = place(root, cursor)
    return out


def to_perfetto(
    tracer: Tracer,
    machine: MachineModel,
    schedule=None,
    schedule_tasks=None,
    schedule_labels: Optional[Dict[int, str]] = None,
) -> dict:
    """Export the trace as a Chrome-tracing/Perfetto JSON object.

    ``schedule`` (a :class:`~repro.parallel.sim.Schedule`) merges the
    simulated task lanes as process 1; pass the run's ``SimTask`` list
    as ``schedule_tasks`` to get named thread lanes and flow arrows for
    the p2p dependency edges.
    """
    times = modeled_times(tracer, machine)
    events: List[dict] = []
    for sp in tracer.spans:
        start, dur = times[sp.sid]
        args: dict = {"sid": sp.sid, "parent": sp.parent_sid}
        led = _ledger_dict(sp.ledger if sp.ledger is not None else None)
        if led is not None:
            args["ledger"] = led
        if sp.attrs:
            args.update(sp.attrs)
        if sp.wall_seconds is not None:
            args["wall_s"] = sp.wall_seconds
        events.append(
            {
                "name": sp.name,
                "cat": "span",
                "ph": "X",
                "ts": start * 1e6,
                "dur": dur * 1e6,
                "pid": 0,
                "tid": 0,
                "args": args,
            }
        )
    events.append(
        {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "args": {"name": f"repro pipeline (modeled, {machine.name})"},
        }
    )
    if schedule is not None:
        sub = schedule.to_chrome_trace(schedule_labels, tasks=schedule_tasks)
        for e in sub["traceEvents"]:
            e = dict(e)
            e["pid"] = 1
            events.append(e)
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": 1,
                "tid": 0,
                "args": {"name": "simulated task schedule"},
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ns"}


def to_jsonl(tracer: Tracer, machine: MachineModel) -> str:
    """One JSON object per line: spans, then counters/gauges/stats."""
    times = modeled_times(tracer, machine)
    lines: List[str] = []
    for sp in tracer.spans:
        start, dur = times[sp.sid]
        rec = {
            "type": "span",
            "sid": sp.sid,
            "parent": sp.parent_sid,
            "depth": sp.depth,
            "name": sp.name,
            "modeled_start_s": start,
            "modeled_s": dur,
            "ledger": _ledger_dict(sp.ledger),
            "overhead": _ledger_dict(sp.overhead),
            "attrs": dict(sp.attrs),
            "wall_s": sp.wall_seconds,
        }
        lines.append(json.dumps(rec, sort_keys=True))
    snap = tracer.metrics.snapshot()
    for name, value in snap["counters"].items():
        lines.append(json.dumps(
            {"type": "counter", "name": name, "value": value}, sort_keys=True))
    for name, value in snap["gauges"].items():
        lines.append(json.dumps(
            {"type": "gauge", "name": name, "value": value}, sort_keys=True))
    for name, st in snap["stats"].items():
        lines.append(json.dumps(
            {"type": "stat", "name": name, **st}, sort_keys=True))
    return "\n".join(lines) + "\n" if lines else ""


def parse_jsonl(text: str) -> dict:
    """Parse a :func:`to_jsonl` stream back into records.

    Returns ``{"spans": [...], "counters": {...}, "gauges": {...},
    "stats": {...}}``; span records keep the JSONL field names.
    """
    spans: List[dict] = []
    counters: Dict[str, float] = {}
    gauges: Dict[str, float] = {}
    stats: Dict[str, dict] = {}
    for line in text.splitlines():
        if not line.strip():
            continue
        rec = json.loads(line)
        kind = rec.get("type")
        if kind == "span":
            spans.append(rec)
        elif kind == "counter":
            counters[rec["name"]] = rec["value"]
        elif kind == "gauge":
            gauges[rec["name"]] = rec["value"]
        elif kind == "stat":
            stats[rec["name"]] = {
                k: v for k, v in rec.items() if k not in ("type", "name")
            }
        else:
            raise ValueError(f"unknown JSONL record type {kind!r}")
    return {"spans": spans, "counters": counters, "gauges": gauges, "stats": stats}


def span_tree(tracer: Tracer, machine: MachineModel, name_width: int = 36) -> str:
    """Fixed-width ASCII rendering of the span tree."""
    times = modeled_times(tracer, machine)
    lines: List[str] = []

    def emit(sp: Span) -> None:
        _, dur = times[sp.sid]
        label = ("  " * sp.depth + sp.name)[:name_width]
        wall = f"  wall {sp.wall_seconds:>10.3e} s" if sp.wall_seconds is not None else ""
        extras = ""
        if sp.attrs:
            kv = " ".join(f"{k}={sp.attrs[k]}" for k in sorted(sp.attrs))
            extras = f"  [{kv}]"
        lines.append(f"{label:<{name_width}} modeled {dur:>10.3e} s{wall}{extras}")
        for child in sp.children:
            emit(child)

    for root in tracer.roots:
        emit(root)
    return "\n".join(lines)


def top_spans(tracer: Tracer, machine: MachineModel, n: int = 10) -> List[dict]:
    """Top ``n`` span names by total inclusive modeled seconds.

    Aggregates every span by name — count, total modeled seconds, and
    the share of the root total (the sequential fold of the root spans'
    inclusive ledgers, so nested spans can individually exceed 100% is
    impossible but siblings of one name can sum close to it).  Ties
    break by name so the table is deterministic.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n!r}")
    totals: Dict[str, float] = {}
    counts: Dict[str, int] = {}
    for sp in tracer.spans:
        dur = machine.seconds(sp.ledger_total())
        totals[sp.name] = totals.get(sp.name, 0.0) + dur
        counts[sp.name] = counts.get(sp.name, 0) + 1
    root_total = sum(machine.seconds(r.ledger_total()) for r in tracer.roots)
    rows = [
        {
            "name": name,
            "count": counts[name],
            "modeled_s": totals[name],
            "pct_of_root": (100.0 * totals[name] / root_total
                            if root_total > 0.0 else 0.0),
        }
        for name in totals
    ]
    rows.sort(key=lambda r: (-r["modeled_s"], r["name"]))
    return rows[:n]


def validate_perfetto(doc: dict) -> List[str]:
    """Minimal schema check for an exported Perfetto JSON object.

    * the document has a ``traceEvents`` list;
    * every complete ("X") event carries numeric ``ts``, ``dur``,
      ``pid`` and ``tid``;
    * flow events pair up: every flow-start ("s") id has at least one
      flow-finish ("f"), and vice versa.
    """
    problems: List[str] = []
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    flow_starts: Dict[object, int] = {}
    flow_ends: Dict[object, int] = {}
    for i, e in enumerate(events):
        ph = e.get("ph")
        if ph == "X":
            for key in ("ts", "dur", "pid", "tid"):
                if not isinstance(e.get(key), (int, float)):
                    problems.append(
                        f"event {i} ({e.get('name')!r}): missing or "
                        f"non-numeric {key!r}"
                    )
        elif ph == "s":
            flow_starts[e.get("id")] = flow_starts.get(e.get("id"), 0) + 1
        elif ph == "f":
            flow_ends[e.get("id")] = flow_ends.get(e.get("id"), 0) + 1
    for fid in flow_starts:
        if fid not in flow_ends:
            problems.append(f"flow id {fid!r} has a start but no finish")
    for fid in flow_ends:
        if fid not in flow_starts:
            problems.append(f"flow id {fid!r} has a finish but no start")
    return problems
