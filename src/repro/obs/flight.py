"""Flight recorder: a bounded ring of per-step records plus drift detectors.

Transient runs and solver-sequence benches are *sequences* — hundreds
of same-pattern solves whose health can drift long after any single
solve looks fine.  The :class:`FlightRecorder` keeps the last
``capacity`` steps' worth of per-step evidence (modeled/wall phase
durations, resilience health gauges, schedule/refactor cache counter
deltas, recovery-rung events) in a ring buffer, dumps and reloads it
as JSONL, and feeds a set of **deterministic drift detectors**:

* :func:`detect_step_cost_spike` — a step's modeled cost jumps well
  above the rolling median of the preceding window (a fault forcing a
  ladder escalation, a pattern drift forcing re-analysis, …).
* :func:`detect_cache_hit_drop` — a cache family (``schedule.tri``,
  ``schedule.refactor``, ``klu.refactor.schedule`` …) that had settled
  into hits starts missing or invalidating again.
* :func:`detect_pivot_growth_trend` — the ``gp.pivot_growth`` gauge
  blows past an absolute ceiling or climbs orders of magnitude above
  its rolling median.
* :func:`detect_recovery_events` — any step carried recovery-ladder
  events at all (clean sequences carry none).

Detectors look only at *modeled* costs, counters and gauges — all
deterministic — so a clean run produces bit-identical (empty) anomaly
lists across machines; wall times ride along in the records for human
consumption but are never gated on.  Every anomaly is a structured
``{"event": "obs.anomaly.<kind>", "step": …, …}`` dict.
"""

from __future__ import annotations

import json
import statistics
from collections import deque
from typing import Deque, Dict, List, Optional

from .tracer import get_tracer

__all__ = [
    "FlightRecorder",
    "detect_step_cost_spike",
    "detect_cache_hit_drop",
    "detect_pivot_growth_trend",
    "detect_recovery_events",
    "scan_anomalies",
]

# Counter suffixes that mark a counter as belonging to a cache family:
# "schedule.tri.hit" -> family "schedule.tri".  ".evictions" extends the
# standard families to the serving layer's shared pattern cache
# ("cache.hit" / "cache.miss" / "cache.evictions") and the sparse
# schedule caches dropped by an eviction hook — an eviction counts as a
# regression event exactly like a miss or an invalidation.
_CACHE_SUFFIXES = (".hit", ".miss", ".invalidate", ".evictions")


class FlightRecorder:
    """Bounded per-step record ring with JSONL round trip."""

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity!r}")
        self.capacity = capacity
        self._ring: Deque[dict] = deque(maxlen=capacity)
        self.dropped = 0          # records evicted by the ring bound
        self.total_steps = 0      # records ever offered
        self._last_counters: Dict[str, float] = {}

    # ------------------------------------------------------------------
    def record_step(
        self,
        step: int,
        modeled_s: Optional[float] = None,
        wall_s: Optional[float] = None,
        phases: Optional[Dict[str, float]] = None,
        events: Optional[List[dict]] = None,
        metrics=None,
    ) -> dict:
        """Append one per-step record and return it.

        ``metrics`` defaults to the active tracer's registry; counter
        *deltas* since the previous record are stored (so each record
        describes what that step did, not cumulative totals), and the
        current gauge values are snapshotted.
        """
        if metrics is None:
            metrics = get_tracer().metrics
        counters = getattr(metrics, "counters", {}) or {}
        deltas = {}
        for name in sorted(counters):
            d = counters[name] - self._last_counters.get(name, 0)
            if d != 0:
                deltas[name] = d
        self._last_counters = dict(counters)
        gauges = getattr(metrics, "gauges", {}) or {}
        record = {
            "step": int(step),
            "modeled_s": float(modeled_s) if modeled_s is not None else None,
            "wall_s": float(wall_s) if wall_s is not None else None,
            "phases": {k: phases[k] for k in sorted(phases)} if phases else {},
            "gauges": {k: gauges[k] for k in sorted(gauges)},
            "deltas": deltas,
            "events": list(events) if events else [],
        }
        if len(self._ring) == self.capacity:
            self.dropped += 1
        self.total_steps += 1
        self._ring.append(record)
        return record

    @property
    def records(self) -> List[dict]:
        """The retained records, oldest first."""
        return list(self._ring)

    def __len__(self) -> int:
        return len(self._ring)

    # ------------------------------------------------------------------
    def scan(self, **kwargs) -> List[dict]:
        """Run every drift detector over the retained records."""
        return scan_anomalies(self.records, **kwargs)

    # ------------------------------------------------------------------
    def to_jsonl(self) -> str:
        """One sorted-keys JSON object per line, oldest record first,
        preceded by a header line describing the recorder itself."""
        header = {
            "type": "flight_header",
            "capacity": self.capacity,
            "dropped": self.dropped,
            "total_steps": self.total_steps,
        }
        lines = [json.dumps(header, sort_keys=True)]
        for rec in self._ring:
            lines.append(json.dumps({"type": "flight_step", **rec},
                                    sort_keys=True))
        return "\n".join(lines) + "\n"

    def dump(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_jsonl())

    @classmethod
    def from_jsonl(cls, text: str) -> "FlightRecorder":
        """Inverse of :meth:`to_jsonl` (exact record round trip)."""
        recorder = None
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            obj = json.loads(line)
            kind = obj.pop("type", None)
            if kind == "flight_header":
                recorder = cls(capacity=obj["capacity"])
                recorder.dropped = obj["dropped"]
                recorder.total_steps = obj["total_steps"]
            elif kind == "flight_step":
                if recorder is None:
                    raise ValueError("flight JSONL missing header line")
                recorder._ring.append(obj)
            else:
                raise ValueError(f"unknown flight record type: {kind!r}")
        if recorder is None:
            raise ValueError("empty flight JSONL")
        return recorder

    @classmethod
    def load(cls, path: str) -> "FlightRecorder":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_jsonl(fh.read())


# ----------------------------------------------------------------------
# Drift detectors — pure functions over record lists, modeled-only.
# ----------------------------------------------------------------------

def detect_step_cost_spike(
    records: List[dict],
    key: str = "modeled_s",
    window: int = 8,
    factor: float = 3.0,
    min_history: int = 4,
) -> List[dict]:
    """Steps whose modeled cost exceeds ``factor`` × the rolling median
    of the preceding ``window`` steps (needs ``min_history`` priors)."""
    events = []
    values = [r.get(key) for r in records]
    for i, rec in enumerate(records):
        v = values[i]
        if v is None or i < min_history:
            continue
        history = [x for x in values[max(0, i - window):i] if x is not None]
        if len(history) < min_history:
            continue
        med = statistics.median(history)
        if med > 0.0 and v > factor * med:
            events.append({
                "event": "obs.anomaly.step_cost_spike",
                "step": rec["step"],
                "key": key,
                "value": v,
                "rolling_median": med,
                "ratio": v / med,
                "threshold": factor,
            })
    return events


def _cache_families(records: List[dict]) -> List[str]:
    fams = set()
    for rec in records:
        for name in rec.get("deltas", {}):
            for suf in _CACHE_SUFFIXES:
                if name.endswith(suf):
                    fams.add(name[: -len(suf)])
    return sorted(fams)


def detect_cache_hit_drop(records: List[dict], warmup: int = 2) -> List[dict]:
    """Cache families that settled into hits and then regressed.

    Per family, fire on a record past ``warmup`` whose miss+invalidate
    delta is positive *after* some earlier record produced a hit — the
    self-calibrating rule that tolerates cold caches (families that
    never hit, e.g. a full-factor loop) without a whitelist.
    """
    events = []
    for fam in _cache_families(records):
        seen_hit = False
        for i, rec in enumerate(records):
            deltas = rec.get("deltas", {})
            hits = deltas.get(fam + ".hit", 0)
            misses = (deltas.get(fam + ".miss", 0)
                      + deltas.get(fam + ".invalidate", 0)
                      + deltas.get(fam + ".evictions", 0))
            if seen_hit and i >= warmup and misses > 0:
                events.append({
                    "event": "obs.anomaly.cache_hit_drop",
                    "step": rec["step"],
                    "family": fam,
                    "misses": misses,
                    "hits": hits,
                })
            if hits > 0:
                seen_hit = True
    return events


def detect_pivot_growth_trend(
    records: List[dict],
    gauge: str = "gp.pivot_growth",
    ceiling: float = 1e6,
    factor: float = 100.0,
    window: int = 8,
    min_history: int = 4,
) -> List[dict]:
    """Pivot growth punching through an absolute ceiling or climbing
    ``factor``× above its rolling median."""
    events = []
    values = [r.get("gauges", {}).get(gauge) for r in records]
    for i, rec in enumerate(records):
        v = values[i]
        if v is None:
            continue
        if v > ceiling:
            events.append({
                "event": "obs.anomaly.pivot_growth",
                "step": rec["step"],
                "gauge": gauge,
                "value": v,
                "reason": "ceiling",
                "threshold": ceiling,
            })
            continue
        history = [x for x in values[max(0, i - window):i] if x is not None]
        if len(history) < min_history:
            continue
        med = statistics.median(history)
        if med > 0.0 and v > factor * med:
            events.append({
                "event": "obs.anomaly.pivot_growth",
                "step": rec["step"],
                "gauge": gauge,
                "value": v,
                "reason": "trend",
                "rolling_median": med,
                "ratio": v / med,
                "threshold": factor,
            })
    return events


def detect_recovery_events(records: List[dict]) -> List[dict]:
    """Steps that carried recovery-ladder events (clean runs carry none)."""
    events = []
    for rec in records:
        evs = rec.get("events") or []
        if evs:
            events.append({
                "event": "obs.anomaly.recovery",
                "step": rec["step"],
                "count": len(evs),
                "rungs": sorted({str(e.get("succeeded"))
                                 for e in evs if isinstance(e, dict)}),
            })
    return events


def scan_anomalies(
    records: List[dict],
    spike_factor: float = 3.0,
    cache_warmup: int = 2,
    pivot_ceiling: float = 1e6,
) -> List[dict]:
    """All detectors, results ordered by step then event name."""
    events: List[dict] = []
    events.extend(detect_step_cost_spike(records, factor=spike_factor))
    events.extend(detect_cache_hit_drop(records, warmup=cache_warmup))
    events.extend(detect_pivot_growth_trend(records, ceiling=pivot_ceiling))
    events.extend(detect_recovery_events(records))
    events.sort(key=lambda e: (e["step"], e["event"]))
    return events
