"""MachineModel calibration from (ledger, wall-seconds) span pairs.

The simulator prices every :class:`~repro.parallel.ledger.CostLedger`
through a :class:`~repro.parallel.machine.MachineModel` whose
coefficients were hand-set to the paper's *relative* observations.  For
the planned serve daemon and makespan scheduler the *absolute* scale
matters too, so this module fits the per-operation cost coefficients
to measurements: each profiled span contributes one equation

``wall_seconds ≈ Σ_field  ledger.field × t_field``

and :func:`fit_machine_model` solves the resulting overdetermined
system by non-negative least squares (plain numpy: iterated
``lstsq`` with active-set clamping — 5 unknowns, so Lawson–Hanson
machinery is unnecessary).  Ledger fields that never appear in the
samples are left at the base model's coefficients (they are
unidentifiable from the data).

The :class:`CalibrationResult` carries the fitted model (built through
:meth:`MachineModel.calibrated`), the coefficient table, goodness of
fit, and a per-span-kind residual report that flags kernels whose
modeled time diverges from measured wall time by more than
``flag_factor`` (default 2×) — the signal that a kernel's *cost
accounting* (not just the constants) is wrong.

Everything here is deterministic given the input samples; only the
samples themselves carry wall-clock nondeterminism, and they are
gathered exclusively at the harness boundary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..parallel.ledger import CostLedger
from ..parallel.machine import MachineModel
from .tracer import LEDGER_FIELDS

__all__ = ["COEFFICIENT_FOR_FIELD", "CalibrationResult", "fit_machine_model"]

# CostLedger field -> MachineModel coefficient priced against it.
COEFFICIENT_FOR_FIELD = {
    "sparse_flops": "t_sparse_flop",
    "dense_flops": "t_dense_flop",
    "dfs_steps": "t_dfs_step",
    "mem_words": "t_mem_word",
    "columns": "t_column",
}
assert set(COEFFICIENT_FOR_FIELD) == set(LEDGER_FIELDS)


@dataclass
class CalibrationResult:
    """Fitted model + fit quality + per-span-kind residuals."""

    base: MachineModel
    model: MachineModel
    coefficients: Dict[str, float]      # full coefficient table (fitted + kept)
    fitted: Tuple[str, ...]             # coefficient names actually fitted
    n_samples: int
    r2: float                           # 1 - SS_res/SS_tot on wall seconds
    residuals: Dict[str, dict] = field(default_factory=dict)
    flag_factor: float = 2.0

    @property
    def flagged(self) -> List[str]:
        """Span kinds whose fitted model still diverges > flag_factor."""
        return sorted(k for k, r in self.residuals.items() if r["flagged"])

    def to_dict(self) -> dict:
        return {
            "base_model": self.base.name,
            "model": self.model.name,
            "coefficients": {k: self.coefficients[k]
                             for k in sorted(self.coefficients)},
            "fitted": list(self.fitted),
            "n_samples": self.n_samples,
            "r2": self.r2,
            "flag_factor": self.flag_factor,
            "flagged": self.flagged,
            "residuals": {k: self.residuals[k]
                          for k in sorted(self.residuals)},
        }


def _nnls(A: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Non-negative least squares via iterated lstsq + clamping.

    Fit, zero out negative coefficients, refit on the surviving
    columns; repeats until all active coefficients are non-negative.
    Exact for this problem size and fully deterministic.
    """
    n = A.shape[1]
    active = list(range(n))
    x = np.zeros(n)
    for _ in range(n + 1):
        if not active:
            break
        sol, *_ = np.linalg.lstsq(A[:, active], y, rcond=None)
        if np.all(sol >= 0.0):
            for j, col in enumerate(active):
                x[col] = sol[j]
            break
        active = [col for col, v in zip(active, sol) if v > 0.0]
    return x


def fit_machine_model(
    samples: Sequence[Tuple[str, CostLedger, float]],
    base: MachineModel,
    flag_factor: float = 2.0,
    name: Optional[str] = None,
) -> CalibrationResult:
    """Fit cost coefficients from ``(span_name, ledger, wall_s)`` samples.

    Raises ``ValueError`` when no sample carries both a non-empty
    ledger and a finite positive wall time — calibration needs real
    measurements, not modeled ones.
    """
    rows: List[List[float]] = []
    y: List[float] = []
    kept: List[Tuple[str, CostLedger, float]] = []
    for span_name, ledger, wall_s in samples:
        if wall_s is None or not np.isfinite(wall_s) or wall_s <= 0.0:
            continue
        if ledger is None or ledger.is_empty():
            continue
        rows.append([float(getattr(ledger, f)) for f in LEDGER_FIELDS])
        y.append(float(wall_s))
        kept.append((span_name, ledger, float(wall_s)))
    if not rows:
        raise ValueError(
            "no usable calibration samples: need spans with a non-empty "
            "cost ledger and a positive wall time (run the profiler with "
            "a wall clock at the harness boundary)")

    A = np.asarray(rows, dtype=np.float64)
    yv = np.asarray(y, dtype=np.float64)

    # Only columns with signal are identifiable; the rest keep the base
    # model's coefficient.
    col_mask = A.sum(axis=0) > 0.0
    fitted_fields = [f for f, m in zip(LEDGER_FIELDS, col_mask) if m]
    x_active = _nnls(A[:, col_mask], yv) if fitted_fields else np.zeros(0)

    coefficients = {coeff: float(getattr(base, coeff))
                    for coeff in COEFFICIENT_FOR_FIELD.values()}
    for f, v in zip(fitted_fields, x_active):
        coefficients[COEFFICIENT_FOR_FIELD[f]] = float(v)
    fitted = tuple(COEFFICIENT_FOR_FIELD[f] for f in fitted_fields)

    model = base.calibrated(name=name, **{c: coefficients[c] for c in fitted})

    pred = np.array([model.seconds(ledger) for _, ledger, _ in kept])
    ss_res = float(np.sum((yv - pred) ** 2))
    ss_tot = float(np.sum((yv - yv.mean()) ** 2))
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0.0 else (1.0 if ss_res == 0.0 else 0.0)

    # Per-span-kind residual report: aggregate wall vs modeled (default
    # and fitted) and flag kinds still off by more than flag_factor.
    by_kind: Dict[str, dict] = {}
    for span_name, ledger, wall_s in kept:
        agg = by_kind.setdefault(span_name, {
            "count": 0, "wall_s": 0.0,
            "modeled_default_s": 0.0, "modeled_fitted_s": 0.0,
        })
        agg["count"] += 1
        agg["wall_s"] += wall_s
        agg["modeled_default_s"] += base.seconds(ledger)
        agg["modeled_fitted_s"] += model.seconds(ledger)
    for kind, agg in by_kind.items():
        wall = agg["wall_s"]
        for which in ("default", "fitted"):
            modeled = agg[f"modeled_{which}_s"]
            if wall > 0.0 and modeled > 0.0:
                ratio = modeled / wall
            else:
                ratio = None
            agg[f"ratio_{which}"] = ratio
        ratio = agg["ratio_fitted"]
        agg["flagged"] = bool(
            ratio is None or ratio > flag_factor or ratio < 1.0 / flag_factor)

    return CalibrationResult(
        base=base,
        model=model,
        coefficients=coefficients,
        fitted=fitted,
        n_samples=len(kept),
        r2=r2,
        residuals=by_kind,
        flag_factor=flag_factor,
    )
