"""Bipartite matchings for zero-free diagonals.

Two layers, mirroring the HSL routines the literature names:

* :func:`max_cardinality_matching` — an MC21-style augmenting-path
  matching on the pattern only, giving a zero-free diagonal when the
  matrix is structurally nonsingular.
* :func:`mwcm` — the paper's "maximum weight-cardinality matching"
  (MWCM).  The paper states Basker's implementation is *bottleneck*
  style (unlike SuperLU-Dist's product/sum MC64 variant): among all
  maximum-cardinality matchings it maximizes the smallest matched
  ``|A[i, j]|``, pushing large entries onto the diagonal to reduce the
  need for numerical pivoting.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..contracts import domains
from ..sparse.csc import CSC

__all__ = [
    "max_cardinality_matching",
    "mwcm",
    "mwcm_product",
    "mwcm_row_permutation",
]


def _try_augment(
    j: int,
    indptr: np.ndarray,
    indices: np.ndarray,
    data: np.ndarray,
    threshold: float,
    match_row: np.ndarray,
    match_col: np.ndarray,
    visited: np.ndarray,
    stamp: int,
) -> bool:
    """Iterative DFS augmenting path from column ``j``.

    Only entries with ``|a| >= threshold`` are usable.  ``visited`` is a
    stamp array over columns.
    """
    # Stack holds (column, edge cursor).
    stack = [(j, int(indptr[j]))]
    visited[j] = stamp
    path_rows = []  # rows chosen along the DFS path, parallel to stack
    while stack:
        col, cursor = stack[-1]
        hi = int(indptr[col + 1])
        advanced = False
        while cursor < hi:
            r = int(indices[cursor])
            cursor += 1
            if abs(data[cursor - 1]) < threshold:
                continue
            owner = int(match_row[r])
            if owner == -1:
                # Augment along the path.
                stack[-1] = (col, cursor)
                path_rows.append(r)
                for (c, _), rr in zip(stack, path_rows):
                    match_row[rr] = c
                    match_col[c] = rr
                return True
            if visited[owner] != stamp:
                visited[owner] = stamp
                stack[-1] = (col, cursor)
                path_rows.append(r)
                stack.append((owner, int(indptr[owner])))
                advanced = True
                break
        if not advanced:
            stack.pop()
            if path_rows:
                path_rows.pop()
    return False


def max_cardinality_matching(A: CSC, threshold: float = 0.0) -> Tuple[int, np.ndarray, np.ndarray]:
    """Maximum-cardinality column-to-row matching using entries >= threshold.

    Returns ``(size, match_col, match_row)`` where ``match_col[j]`` is
    the row matched to column ``j`` (or -1) and ``match_row[i]`` the
    column matched to row ``i`` (or -1).
    """
    n_rows, n_cols = A.shape
    match_row = np.full(n_rows, -1, dtype=np.int64)
    match_col = np.full(n_cols, -1, dtype=np.int64)
    visited = np.full(n_cols, -1, dtype=np.int64)
    size = 0
    # Cheap pass first: greedy assignment (classic MC21 speedup).
    for j in range(n_cols):
        lo, hi = int(A.indptr[j]), int(A.indptr[j + 1])
        for k in range(lo, hi):
            r = int(A.indices[k])
            if abs(A.data[k]) >= threshold and match_row[r] == -1:
                match_row[r] = j
                match_col[j] = r
                size += 1
                break
    # Augmenting pass.
    for j in range(n_cols):
        if match_col[j] == -1:
            if _try_augment(j, A.indptr, A.indices, A.data, threshold, match_row, match_col, visited, j):
                size += 1
    return size, match_col, match_row


def mwcm(A: CSC) -> Tuple[np.ndarray, float]:
    """Bottleneck maximum weight-cardinality matching.

    Finds a maximum-cardinality matching whose smallest matched
    magnitude is as large as possible (binary search over the distinct
    entry magnitudes, re-running the matching at each threshold).

    Returns ``(match_col, bottleneck)`` where ``match_col[j]`` is the
    row matched to column ``j`` (-1 if the matrix is structurally
    deficient in that column) and ``bottleneck`` the achieved minimum
    matched magnitude.
    """
    if A.nnz == 0:
        return np.full(A.n_cols, -1, dtype=np.int64), 0.0
    full_size, match_col, _ = max_cardinality_matching(A, threshold=0.0)

    mags = np.unique(np.abs(A.data))
    mags = mags[mags > 0.0]
    if mags.size == 0:
        return match_col, 0.0

    # Binary search for the largest threshold that still admits a
    # matching of the maximum cardinality.
    lo, hi = 0, mags.size - 1  # mags[lo] always feasible after check below
    size_lo, match_lo, _ = max_cardinality_matching(A, threshold=float(mags[0]))
    if size_lo < full_size:
        # Even the smallest positive threshold loses cardinality
        # (explicit zeros were needed); keep the unthresholded matching.
        return match_col, 0.0
    best_match, best_t = match_lo, float(mags[0])
    while lo < hi:
        mid = (lo + hi + 1) // 2
        size_mid, match_mid, _ = max_cardinality_matching(A, threshold=float(mags[mid]))
        if size_mid == full_size:
            lo = mid
            best_match, best_t = match_mid, float(mags[mid])
        else:
            hi = mid - 1
    return best_match, best_t


def mwcm_product(A: CSC) -> Tuple[np.ndarray, float]:
    """Product-maximizing weighted matching (SuperLU-Dist's MC64 mode).

    Maximizes ``prod |A[match(j), j]|`` over perfect matchings — the
    "product/sum based MC64 ordering" the paper contrasts with Basker's
    bottleneck variant (§V).  Solved as a min-cost assignment with
    ``c_ij = log(max_col) − log|a_ij|`` by successive shortest
    augmenting paths with dual potentials (Jonker–Volgenant style).

    Returns ``(match_col, log_product)``; unmatched columns (structural
    deficiency) get -1 and contribute nothing to the product.

    Optimality holds for structurally nonsingular matrices (a perfect
    matching exists — MC64's own operating assumption).  On deficient
    matrices the result still has maximum cardinality but the product
    may be suboptimal, because successive shortest paths commit each
    column greedily.
    """
    n_rows, n_cols = A.shape
    # Per-column cost lists.
    col_rows: list = []
    col_costs: list = []
    INF = float("inf")
    for j in range(n_cols):
        rows, vals = A.col(j)
        mags = np.abs(vals)
        keep = mags > 0.0
        rows, mags = rows[keep], mags[keep]
        if rows.size:
            cmax = float(mags.max())
            col_rows.append(rows.astype(np.int64))
            col_costs.append(np.log(cmax) - np.log(mags))
        else:
            col_rows.append(np.empty(0, dtype=np.int64))
            col_costs.append(np.empty(0))

    import heapq

    u = np.zeros(n_cols)          # column potentials
    v = np.zeros(n_rows)          # row potentials
    match_col = np.full(n_cols, -1, dtype=np.int64)
    match_row = np.full(n_rows, -1, dtype=np.int64)

    # Invariant: reduced cost c(j, r) - u[j] - v[r] >= 0, tight (== 0)
    # on matched edges.  For each new column, Dijkstra over rows finds
    # the cheapest augmenting path; potentials keep edge weights
    # nonnegative across phases (Jonker-Volgenant / e-maxx Hungarian).
    for j0 in range(n_cols):
        if col_rows[j0].size == 0:
            continue
        dist = np.full(n_rows, INF)
        prev_col = np.full(n_rows, -1, dtype=np.int64)
        visited: list = []
        in_tree = np.zeros(n_rows, dtype=bool)
        heap = []
        rows, costs = col_rows[j0], col_costs[j0]
        for t in range(rows.size):
            r = int(rows[t])
            red = float(costs[t]) - u[j0] - v[r]
            if red < dist[r]:
                dist[r] = red
                prev_col[r] = j0
                heapq.heappush(heap, (red, r))
        free_row = -1
        d_star = 0.0
        while heap:
            d, r = heapq.heappop(heap)
            if in_tree[r] or d > dist[r] + 1e-300:
                continue
            in_tree[r] = True
            visited.append(r)
            if match_row[r] == -1:
                free_row, d_star = r, d
                break
            j = int(match_row[r])
            # Traverse the (tight) matched edge back to column j, then
            # relax j's other edges.
            jrows, jcosts = col_rows[j], col_costs[j]
            for t in range(jrows.size):
                r2 = int(jrows[t])
                if in_tree[r2]:
                    continue
                red = d + float(jcosts[t]) - u[j] - v[r2]
                if red < dist[r2]:
                    dist[r2] = red
                    prev_col[r2] = j
                    heapq.heappush(heap, (red, r2))
        if free_row < 0:
            continue  # column structurally unmatched
        # Potential update over the Dijkstra tree.
        u[j0] += d_star
        for r in visited:
            if r == free_row:
                continue
            delta = d_star - float(dist[r])
            v[r] -= delta
            u[int(match_row[r])] += delta
        # Augment along prev_col.
        r = free_row
        while True:
            j = int(prev_col[r])
            r_next = int(match_col[j])
            match_col[j] = r
            match_row[r] = j
            if j == j0:
                break
            r = r_next

    logprod = 0.0
    for j in range(n_cols):
        if match_col[j] >= 0:
            logprod += float(np.log(abs(A.get(int(match_col[j]), j))))
    return match_col, logprod


@domains(A="matrix[S]", returns="perm[S->S]")
def mwcm_row_permutation(A: CSC) -> np.ndarray:
    """Row permutation ``p`` such that ``A.permute(row_perm=p)`` has the
    MWCM-matched entries on its diagonal.

    Unmatched columns (structurally singular matrices) receive the
    leftover rows in index order, so ``p`` is always a valid
    permutation.
    """
    if A.n_rows != A.n_cols:
        raise ValueError("diagonal matching requires a square matrix")
    match_col, _ = mwcm(A)
    n = A.n_rows
    p = np.full(n, -1, dtype=np.int64)
    used = np.zeros(n, dtype=bool)
    for j in range(n):
        r = int(match_col[j])
        if r >= 0:
            p[j] = r
            used[r] = True
    free = np.flatnonzero(~used)
    k = 0
    for j in range(n):
        if p[j] == -1:
            p[j] = free[k]
            k += 1
    return p
