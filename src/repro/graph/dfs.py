"""Topological reach over a (partially built) lower-triangular factor.

This is the symbolic heart of the Gilbert–Peierls algorithm (Algorithm 1
in the paper, line 3): the fill pattern of column ``k`` is the set of
nodes reachable in the graph of ``L`` from the nonzeros of ``A(:, k)``,
emitted in a topological order so the numeric sparse triangular solve
can process each node after all nodes that update it.

The implementation follows CSparse's ``cs_reach``/``cs_dfs``: fully
iterative, stamp-marked (no O(n) clearing per column), and aware of
partial pivoting through ``pinv`` — a row that has not yet been chosen
as a pivot has no outgoing edges.
"""

from __future__ import annotations

import numpy as np

__all__ = ["topo_reach", "ReachWorkspace", "ReachGraph"]

# Shared sentinel for "row is not yet pivotal": no outgoing edges.
_NO_EDGES: tuple = ()


class ReachWorkspace:
    """Reusable scratch arrays for :func:`topo_reach`.

    One workspace per factorization target; sized by the number of rows
    of the block being factored.  ``stamp`` must be advanced by the
    caller between reach queries (one fresh stamp per column).
    """

    def __init__(self, n: int) -> None:
        self.mark = np.full(n, -1, dtype=np.int64)
        self.xi = np.empty(n, dtype=np.int64)       # output, filled top-down
        self.stack = np.empty(n, dtype=np.int64)    # DFS vertex stack
        self.cursor = np.empty(n, dtype=np.int64)   # DFS edge cursors
        self.stamp = 0

    def next_stamp(self) -> int:
        self.stamp += 1
        return self.stamp


def topo_reach(
    Lp: np.ndarray,
    Li: np.ndarray,
    brows: np.ndarray,
    pinv: np.ndarray | None,
    ws: ReachWorkspace,
) -> tuple[int, int]:
    """Compute the reach of ``brows`` in the graph of L.

    Parameters
    ----------
    Lp, Li
        CSC structure of the partially built L.  Column ``c`` of L lists
        the rows updated by pivot column ``c``.
    brows
        Row indices (nonzero pattern of the right-hand-side column).
    pinv
        ``pinv[i]`` is the pivot column that row ``i`` was eliminated
        into, or -1 if row ``i`` is not yet pivotal (then it has no
        outgoing edges).  ``None`` means the identity (fully factored
        square L, as in the off-diagonal block solves).
    ws
        Workspace; the caller must have bumped ``ws.stamp`` for this
        query (use :meth:`ReachWorkspace.next_stamp`).

    Returns
    -------
    (top, steps)
        The reach is ``ws.xi[top:]`` in topological (processing) order.
        ``steps`` counts DFS edge traversals for the cost ledgers.
    """
    mark, xi, stack, cursor = ws.mark, ws.xi, ws.stack, ws.cursor
    stamp = ws.stamp
    top = xi.size
    steps = 0
    for t in range(brows.size):
        root = int(brows[t])
        if mark[root] == stamp:
            continue
        mark[root] = stamp
        depth = 0
        stack[0] = root
        c = root if pinv is None else int(pinv[root])
        cursor[0] = Lp[c] if c >= 0 else -1
        while depth >= 0:
            v = int(stack[depth])
            c = v if pinv is None else int(pinv[v])
            descended = False
            if c >= 0:
                cur = int(cursor[depth])
                hi = int(Lp[c + 1])
                while cur < hi:
                    w = int(Li[cur])
                    cur += 1
                    steps += 1
                    if mark[w] != stamp:
                        cursor[depth] = cur
                        mark[w] = stamp
                        depth += 1
                        stack[depth] = w
                        cw = w if pinv is None else int(pinv[w])
                        cursor[depth] = Lp[cw] if cw >= 0 else -1
                        descended = True
                        break
                if not descended:
                    cursor[depth] = cur
            if not descended:
                # Post-order emit: v precedes every node it updates.
                top -= 1
                xi[top] = v
                depth -= 1
    return top, steps


class ReachGraph:
    """Incremental list-based adjacency for fast reach queries.

    :func:`topo_reach` pays a numpy scalar-indexing penalty on every
    edge (``int(Li[cur])`` boxes one element per step); over a full
    factorization the reach DFS dominated the cold factor wall clock
    (``reach/scircuit`` ~9x the numeric work, see BENCH_wallclock).
    This class keeps the same graph as plain Python ``list`` columns —
    column ``c`` lists the rows of L(:, c), pivot row first, exactly the
    ``Li`` slice — and runs the identical stamped DFS over them at
    C-list speed (~6x on the suite sweeps).

    :meth:`reach` is a drop-in oracle match for :func:`topo_reach`: the
    emitted topological order, the ``top`` split point and the ``steps``
    edge count are **bit-identical** (same traversal, same edge order,
    same tie-breaking), so the CostLedger discipline is unaffected.

    The caller owns stamp advancement (``next_stamp`` per query) and
    appends each L column as it is built (:meth:`append_column`), which
    is how :func:`repro.solvers.gp.gp_factor` grows the graph during
    factorization.
    """

    __slots__ = ("n", "cols", "xi", "mark", "stamp", "_sv", "_sa", "_sc")

    def __init__(self, n: int) -> None:
        self.n = n
        self.cols: list = []            # one Python list of rows per built column
        self.xi: list = [0] * n         # reach output, filled top-down
        self.mark: list = [-1] * n      # stamp marks
        self.stamp = 0
        self._sv: list = [0] * n        # DFS vertex stack
        self._sa: list = [_NO_EDGES] * n  # DFS adjacency-list stack
        self._sc: list = [0] * n        # DFS edge cursors

    @classmethod
    def from_csc(cls, L) -> "ReachGraph":
        """Adjacency of a fully built L (one ``tolist`` per column)."""
        g = cls(L.n_rows)
        indptr, indices = L.indptr, L.indices
        for c in range(L.n_cols):
            g.cols.append(indices[indptr[c]: indptr[c + 1]].tolist())
        return g

    def next_stamp(self) -> int:
        self.stamp += 1
        return self.stamp

    def append_column(self, rows: list) -> None:
        """Register the rows of the next built L column (pivot first)."""
        self.cols.append(rows)

    def reach(self, brows, pinv) -> tuple[int, int]:
        """Reach of ``brows`` (iterable of int) under ``pinv`` (list).

        Returns ``(top, steps)``; the reach is ``self.xi[top:]`` in
        topological order — same contract as :func:`topo_reach`.
        ``pinv`` must be a Python list (``pinv[i] < 0`` = not pivotal).
        """
        mark, xi, cols = self.mark, self.xi, self.cols
        sv, sa, sc = self._sv, self._sa, self._sc
        stamp = self.stamp
        top = self.n
        steps = 0
        for root in brows:
            if mark[root] == stamp:
                continue
            mark[root] = stamp
            c = pinv[root]
            depth = 0
            sv[0] = root
            sa[0] = cols[c] if c >= 0 else _NO_EDGES
            sc[0] = 0
            while depth >= 0:
                adj = sa[depth]
                cur = sc[depth]
                hi = len(adj)
                descended = False
                while cur < hi:
                    w = adj[cur]
                    cur += 1
                    steps += 1
                    if mark[w] != stamp:
                        mark[w] = stamp
                        sc[depth] = cur
                        depth += 1
                        sv[depth] = w
                        cw = pinv[w]
                        sa[depth] = cols[cw] if cw >= 0 else _NO_EDGES
                        sc[depth] = 0
                        descended = True
                        break
                if not descended:
                    sc[depth] = cur
                    # Post-order emit: v precedes every node it updates.
                    top -= 1
                    xi[top] = sv[depth]
                    depth -= 1
        return top, steps
