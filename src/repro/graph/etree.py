"""Elimination trees, postorders and factor column counts.

Basker's fine-ND symbolic factorization (Algorithm 3) builds per-thread
elimination trees of the leaf diagonal blocks and uses them both for
column counts (``LU_ii``) and for the least-common-ancestor walks that
bound the upper off-diagonal counts (``U_ik``).  These are the standard
algorithms from Davis, *Direct Methods for Sparse Linear Systems*
(ref. [15] in the paper), implemented iteratively.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..sparse.csc import CSC

__all__ = [
    "etree",
    "postorder",
    "symbolic_cholesky_counts",
    "symmetric_pattern",
    "ata_pattern",
]


def symmetric_pattern(A: CSC) -> CSC:
    """Pattern of ``A + A.T`` with unit values (graph symmetrization)."""
    if A.n_rows != A.n_cols:
        raise ValueError("requires a square matrix")
    At = A.transpose()
    col_a = np.repeat(np.arange(A.n_cols), np.diff(A.indptr))
    col_b = np.repeat(np.arange(At.n_cols), np.diff(At.indptr))
    rows = np.concatenate([A.indices, At.indices])
    cols = np.concatenate([col_a, col_b])
    return CSC.from_coo(rows, cols, np.ones(rows.size), A.shape, sum_duplicates=True)


def ata_pattern(A: CSC) -> CSC:
    """Pattern of ``A.T @ A`` with unit values (column-intersection graph).

    Used when the pivoting option requires ``etree(A.T A)`` instead of
    ``etree(A + A.T)`` (paper, Algorithm 3 discussion).
    """
    rows, cols = [], []
    At = A.transpose()  # rows of A as columns
    for i in range(At.n_cols):
        cidx, _ = At.col(i)
        if cidx.size > 1:
            # Clique among the columns sharing row i; to keep this
            # O(nnz * rowdeg) rather than quadratic blowup we link each
            # column to the smallest column of the row (a standard
            # etree-preserving sparsification).
            first = cidx[0]
            rows.append(np.full(cidx.size - 1, first, dtype=np.int64))
            cols.append(cidx[1:])
    n = A.n_cols
    if not rows:
        return CSC.identity(n)
    r = np.concatenate(rows + cols)
    c = np.concatenate(cols + rows)
    r = np.concatenate([r, np.arange(n)])
    c = np.concatenate([c, np.arange(n)])
    return CSC.from_coo(r, c, np.ones(r.size), (n, n), sum_duplicates=True)


def etree(B: CSC) -> np.ndarray:
    """Elimination tree of a matrix with symmetric pattern.

    ``parent[j]`` is the etree parent of column ``j`` (-1 for roots).
    Only the strictly-lower part of ``B`` is read (row > col), matching
    the usual formulation on the upper/lower half of a symmetric
    pattern.  Uses path compression via an ancestor array.
    """
    n = B.n_cols
    # Plain Python lists: the ancestor walk is scalar-at-a-time, and
    # list indexing beats numpy scalar indexing severalfold there.
    parent = [-1] * n
    ancestor = [-1] * n
    indptr = B.indptr.tolist()
    indices = B.indices.tolist()
    # Traverse B by rows of the upper triangle == columns of the lower.
    # For column j, every entry i < j in B[:, j] connects subtree of i
    # toward j.
    for j in range(n):
        for t in range(indptr[j], indptr[j + 1]):
            i = indices[t]
            if i >= j:
                break
            # Walk from i to the root of its current subtree, compressing.
            while i != -1 and i < j:
                nxt = ancestor[i]
                ancestor[i] = j
                if nxt == -1:
                    parent[i] = j
                    break
                i = nxt
    return np.array(parent, dtype=np.int64)


def postorder(parent: np.ndarray) -> np.ndarray:
    """A postorder of the forest given by ``parent`` (iterative DFS).

    Returns ``post`` with ``post[k]`` = the k-th node in postorder.
    Children are visited in increasing node order.
    """
    n = parent.size
    # Build child lists (head/next linked lists, reversed so iteration
    # yields increasing order).
    head = np.full(n, -1, dtype=np.int64)
    nxt = np.full(n, -1, dtype=np.int64)
    for v in range(n - 1, -1, -1):
        p = int(parent[v])
        if p != -1:
            nxt[v] = head[p]
            head[p] = v
    post = np.empty(n, dtype=np.int64)
    k = 0
    stack = []
    for root in range(n):
        if parent[root] != -1:
            continue
        stack.append(root)
        while stack:
            v = stack[-1]
            c = int(head[v])
            if c != -1:
                head[v] = nxt[c]  # consume child
                stack.append(c)
            else:
                post[k] = v
                k += 1
                stack.pop()
    if k != n:
        raise ValueError("parent array contains a cycle")
    return post


def symbolic_cholesky_counts(B: CSC, parent: np.ndarray) -> np.ndarray:
    """Column counts of the Cholesky factor of a symmetric-pattern B.

    ``counts[j]`` includes the diagonal.  Uses the row-subtree
    traversal: for each row ``i``, walk each entry ``j < i`` of the row
    up the etree, marking with stamp ``i``, counting each newly visited
    node into its column.  Complexity O(|L|) — exact, not an estimate.
    """
    n = B.n_cols
    # Python lists for the same reason as :func:`etree`: the subtree
    # walk is scalar-at-a-time, where list indexing wins.
    counts = [1] * n  # diagonal
    mark = [-1] * n
    par = parent.tolist()
    Bt = B.transpose()  # rows of B as columns of Bt
    indptr = Bt.indptr.tolist()
    indices = Bt.indices.tolist()
    for i in range(n):
        mark[i] = i
        for t in range(indptr[i], indptr[i + 1]):
            j = indices[t]
            if j >= i:
                break
            while j != -1 and mark[j] != i and j < i:
                mark[j] = i
                counts[j] += 1
                j = par[j]
    return np.array(counts, dtype=np.int64)
