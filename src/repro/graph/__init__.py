"""Graph kernels: SCC, bipartite matching, elimination trees, reach DFS."""

from .dfs import ReachWorkspace, topo_reach
from .etree import ata_pattern, etree, postorder, symbolic_cholesky_counts, symmetric_pattern
from .matching import max_cardinality_matching, mwcm, mwcm_row_permutation
from .scc import scc_of_matrix, tarjan_scc

__all__ = [
    "ReachWorkspace",
    "topo_reach",
    "etree",
    "postorder",
    "symbolic_cholesky_counts",
    "symmetric_pattern",
    "ata_pattern",
    "max_cardinality_matching",
    "mwcm",
    "mwcm_row_permutation",
    "scc_of_matrix",
    "tarjan_scc",
]
