"""Strongly connected components (Tarjan, iterative).

Used by the BTF ordering: after the MWCM row permutation puts a zero-free
diagonal in place, the SCCs of the directed graph of the matrix are
exactly the diagonal blocks of the block triangular form (Pothen & Fan,
ACM TOMS 1990 — ref. [14] in the paper).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..sparse.csc import CSC

__all__ = ["tarjan_scc", "scc_of_matrix"]


def tarjan_scc(n: int, adj_indptr: np.ndarray, adj_indices: np.ndarray) -> Tuple[int, np.ndarray]:
    """Tarjan's algorithm on a directed graph in CSR/CSC-style adjacency.

    Returns ``(n_components, comp)`` where ``comp[v]`` is the component
    id of vertex ``v``.  Component ids are numbered in *reverse
    topological order of discovery*: ids are assigned as components
    complete, so every edge goes from a vertex with a >= id to one with
    a <= id... more precisely, for edge (u, v) in the graph,
    ``comp[u] <= comp[v]`` never holds for cross-component edges going
    "backwards".  Callers who need a specific triangular orientation
    should use :func:`scc_of_matrix`, which documents the convention it
    returns.

    The implementation is fully iterative (explicit stack) so that large
    chain-structured circuit graphs don't hit Python's recursion limit.
    """
    index = np.full(n, -1, dtype=np.int64)   # discovery order
    lowlink = np.zeros(n, dtype=np.int64)
    on_stack = np.zeros(n, dtype=bool)
    comp = np.full(n, -1, dtype=np.int64)
    stack: List[int] = []
    next_index = 0
    n_comp = 0

    # Each frame is [vertex, edge cursor].
    for root in range(n):
        if index[root] != -1:
            continue
        call_stack: List[list] = [[root, adj_indptr[root]]]
        index[root] = lowlink[root] = next_index
        next_index += 1
        stack.append(root)
        on_stack[root] = True
        while call_stack:
            frame = call_stack[-1]
            v, cursor = frame
            if cursor < adj_indptr[v + 1]:
                frame[1] = cursor + 1
                w = int(adj_indices[cursor])
                if index[w] == -1:
                    index[w] = lowlink[w] = next_index
                    next_index += 1
                    stack.append(w)
                    on_stack[w] = True
                    call_stack.append([w, adj_indptr[w]])
                elif on_stack[w]:
                    if index[w] < lowlink[v]:
                        lowlink[v] = index[w]
            else:
                call_stack.pop()
                if call_stack:
                    parent = call_stack[-1][0]
                    if lowlink[v] < lowlink[parent]:
                        lowlink[parent] = lowlink[v]
                if lowlink[v] == index[v]:
                    while True:
                        w = stack.pop()
                        on_stack[w] = False
                        comp[w] = n_comp
                        if w == v:
                            break
                    n_comp += 1
    return n_comp, comp


def scc_of_matrix(A: CSC) -> Tuple[int, np.ndarray, np.ndarray]:
    """SCCs of the directed graph of a square matrix.

    The graph has an edge ``j -> i`` for each stored entry ``A[i, j]``
    (column j "feeds" row i).  Returns ``(n_comp, comp, order)`` where
    ``comp`` labels components **renumbered into topological order such
    that permuting rows and columns by ``order`` (all vertices of
    component 0 first, then component 1, ...) yields a block *upper*
    triangular matrix** — the orientation shown in the paper's BTF
    figure.  ``order`` is the concatenated vertex permutation.
    """
    if A.n_rows != A.n_cols:
        raise ValueError("SCC ordering requires a square matrix")
    n = A.n_rows
    n_comp, comp = tarjan_scc(n, A.indptr, A.indices)

    # Tarjan emits components in reverse topological order of the
    # condensation for edge direction j->i: if component X has an edge
    # into component Y (X != Y), Y completes first.  For an edge
    # A[i, j] (j -> i), comp[i] < comp[j] for cross edges.  Keeping the
    # Tarjan numbering therefore puts nonzeros at rows with smaller
    # component id than their column — block *upper* triangular —
    # exactly what we want.
    order = np.argsort(comp, kind="stable").astype(np.int64)
    return n_comp, comp, order
