"""repro — reproduction of *Basker: A Threaded Sparse LU Factorization
Utilizing Hierarchical Parallelism and Data Layouts* (Booth,
Rajamanickam, Thornquist; IPDPS 2016).

Quickstart::

    import numpy as np
    from repro import Basker, SANDY_BRIDGE

    A = ...                       # repro.sparse.CSC matrix
    solver = Basker(n_threads=8)
    numeric = solver.factor(A)
    x = solver.solve(numeric, b)
    t_par = numeric.factor_seconds(SANDY_BRIDGE)   # simulated makespan

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record of every table and figure.
"""

from .core import Basker, BaskerNumeric
from .interface import DirectSolver, available_solvers
from .errors import (
    FaultInjectionError,
    NumericalHealthError,
    RecoveryExhaustedError,
    RefinementDivergedError,
    ReproError,
    SingularMatrixError,
    StructureError,
    TaskGraphError,
    ZeroPivotError,
)
from .obs import Metrics, Tracer, get_tracer, tracing
from .parallel import CostLedger, MachineModel, SANDY_BRIDGE, XEON_PHI, Schedule
from .resilience import FaultPlan, FaultSpec
from .solvers import KLU, SolverFailure, SupernodalLU, gp_factor, slu_mt
from .sparse import CSC, BlockMatrix, factorization_residual, solve_residual

__version__ = "1.0.0"

__all__ = [
    "Basker",
    "BaskerNumeric",
    "DirectSolver",
    "available_solvers",
    "KLU",
    "SupernodalLU",
    "slu_mt",
    "gp_factor",
    "CSC",
    "BlockMatrix",
    "CostLedger",
    "MachineModel",
    "SANDY_BRIDGE",
    "XEON_PHI",
    "Schedule",
    "ReproError",
    "SingularMatrixError",
    "StructureError",
    "TaskGraphError",
    "ZeroPivotError",
    "NumericalHealthError",
    "RefinementDivergedError",
    "RecoveryExhaustedError",
    "FaultInjectionError",
    "FaultPlan",
    "FaultSpec",
    "SolverFailure",
    "Metrics",
    "Tracer",
    "get_tracer",
    "tracing",
    "factorization_residual",
    "solve_residual",
    "__version__",
]
