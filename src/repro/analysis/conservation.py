"""Ledger-conservation and schedule-consistency checks.

The performance model's integrity rests on two invariants that used to
live in comments:

1. **Work conservation.**  Every operation a kernel performs is counted
   into exactly one task's :class:`~repro.parallel.ledger.CostLedger`
   (or into the explicitly declared non-task *overhead*: input block
   scatter and final factor assembly).  So, field by field::

       sum(task.ledger for task in tasks) + overhead == whole ledger

   A deficit means work was dropped from the simulation (optimistic
   makespan); an excess means it was double counted (pessimistic).

2. **Schedule consistency.**  A :class:`~repro.parallel.sim.Schedule`
   replayed from the DAG must satisfy: no task starts before every
   dependency has ended, tasks mapped to one thread never overlap,
   pinned tasks run on their pinned thread, and the makespan is the
   max end time.

:func:`check_conservation` verifies (1), :func:`check_schedule`
verifies (2); both return a :class:`ConservationReport` of findings.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields as dc_fields
from typing import Dict, List, Optional, Sequence

from ..parallel.ledger import CostLedger
from ..parallel.sim import Schedule, SimTask

__all__ = ["ConservationReport", "check_conservation", "check_schedule"]


@dataclass
class ConservationReport:
    """Findings from the conservation / schedule checks."""

    n_tasks: int
    findings: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings

    def describe(self) -> str:
        head = f"{self.n_tasks} tasks: " + ("OK" if self.ok else f"{len(self.findings)} finding(s)")
        return "\n".join([head] + [f"  {f}" for f in self.findings])


def check_conservation(
    tasks: Sequence[SimTask],
    total: CostLedger,
    overhead: Optional[CostLedger] = None,
    rtol: float = 1e-6,
) -> ConservationReport:
    """Verify sum(per-task ledgers) + overhead == total, per field.

    ``rtol`` absorbs the floating-point apportionment of chunked tasks
    (a logical task's ledger is split across column chunks by realized
    nnz weights that sum to 1 only up to rounding).
    """
    report = ConservationReport(n_tasks=len(tasks))
    acc = CostLedger()
    for t in tasks:
        acc.add(t.ledger)
    if overhead is not None:
        acc.add(overhead)
    for f in dc_fields(CostLedger):
        got = getattr(acc, f.name)
        want = getattr(total, f.name)
        tol = rtol * max(1.0, abs(want))
        if abs(got - want) > tol:
            verb = "dropped from" if got < want else "double counted in"
            report.findings.append(
                f"ledger field '{f.name}': tasks+overhead sum to {got:.6g} "
                f"but the whole-factorization ledger says {want:.6g} — "
                f"work {verb} the task DAG"
            )
    return report


def check_schedule(
    tasks: Sequence[SimTask],
    schedule: Schedule,
    eps: float = 1e-12,
) -> ConservationReport:
    """Verify a simulated schedule against the DAG it replayed."""
    report = ConservationReport(n_tasks=len(tasks))
    by_id: Dict[int, SimTask] = {t.tid: t for t in tasks}

    for t in tasks:
        if t.tid not in schedule.start or t.tid not in schedule.end:
            report.findings.append(f"task {t.tid} ({t.label}) missing from the schedule")
    for tid in schedule.start:
        if tid not in by_id:
            report.findings.append(f"schedule contains unknown task id {tid}")
    if report.findings:
        return report

    for t in tasks:
        s, e = schedule.start[t.tid], schedule.end[t.tid]
        if e < s - eps:
            report.findings.append(
                f"task {t.tid} ({t.label}) ends before it starts: [{s}, {e}]"
            )
        th = schedule.thread_of.get(t.tid)
        if t.thread is not None and th != t.thread:
            report.findings.append(
                f"task {t.tid} ({t.label}) pinned to thread {t.thread} "
                f"but scheduled on {th}"
            )
        for d in t.deps:
            if d in schedule.end and schedule.end[d] > s + eps:
                dl = by_id[d].label if d in by_id else ""
                report.findings.append(
                    f"task {t.tid} ({t.label}) starts at {s:.6g} before "
                    f"dependency {d} ({dl}) ends at {schedule.end[d]:.6g}"
                )

    by_thread: Dict[int, List[int]] = {}
    for tid, th in schedule.thread_of.items():
        by_thread.setdefault(th, []).append(tid)
    for th, tids in sorted(by_thread.items()):
        if not (0 <= th < schedule.n_threads):
            report.findings.append(f"schedule uses thread {th} outside 0..{schedule.n_threads - 1}")
            continue
        tids.sort(key=lambda t: (schedule.start[t], schedule.end[t]))
        for a, b in zip(tids, tids[1:]):
            if schedule.end[a] > schedule.start[b] + eps:
                report.findings.append(
                    f"thread {th}: tasks {a} ({by_id[a].label}) and {b} "
                    f"({by_id[b].label}) overlap in time "
                    f"([{schedule.start[a]:.6g},{schedule.end[a]:.6g}] vs "
                    f"[{schedule.start[b]:.6g},{schedule.end[b]:.6g}])"
                )

    max_end = max(schedule.end.values(), default=0.0)
    if abs(schedule.makespan - max_end) > eps + 1e-9 * max(1.0, max_end):
        report.findings.append(
            f"makespan {schedule.makespan:.6g} != max task end {max_end:.6g}"
        )
    if len(schedule.busy) != schedule.n_threads:
        report.findings.append(
            f"busy vector has {len(schedule.busy)} entries for "
            f"{schedule.n_threads} threads"
        )
    return report
