"""Index-domain static analysis: track permutation spaces through the solver.

Basker's design is a stack of reorderings — coarse/fine BTF, nested
dissection on the big irreducible block, AMD on diagonal blocks, and
partial-pivoting row permutations folded in during numeric
factorization — so every integer array in the package lives in one of
several *index spaces*: ``global`` (the input matrix), ``btf`` (after
the BTF row/column permutation), ``nd`` (after the ND ordering of the
large block), ``local:block`` (positions within one extracted block).
Mixing spaces up — indexing a global array with a block-local offset,
applying a permutation twice, composing permutations whose inner spaces
do not chain — is the dominant silent-corruption bug class in this kind
of solver, and the type system cannot see it: every space is just an
``int64`` array.

This module is an AST-based checker for those invariants.  It has three
parts:

1. **Contracts** — functions declare domains with the runtime no-op
   decorator :func:`repro.contracts.domains`; locals can be pinned with
   ``# domain:`` comments (``x = f()  # domain: vec[btf]`` on an
   assignment, or a standalone ``# domain: name = perm[nd->nd]``).

2. **Intraprocedural dataflow** — a linear walk over each function body
   propagates domains through assignments and the permutation algebra:

   * ``invert(p)``: ``perm[A->B]`` becomes ``perm[B->A]``;
   * ``compose(p, q)`` and the equivalent fancy-index form ``p[q]``:
     requires ``outer(p) == inner(q)`` and yields
     ``perm[inner(p)->outer(q)]``;
   * fancy indexing ``x[p]`` with ``x: vec[A]`` and ``p: perm[A->B]``
     yields ``vec[B]`` (the package-wide *new→old* convention of
     ``repro.ordering.perm``);
   * slicing ``x[lo:hi]`` extracts a block-local view
     (``vec[local:block]``);
   * ``np.asarray`` / ``.copy()`` / ``.astype()`` pass domains through.

3. **Interprocedural call-site checking** — contracts are collected
   across the whole package first, then every call site is unified
   against the callee's declaration.  Single-uppercase space tokens
   (``A``, ``B``, ``S``) are *variables* bound per call site, so a
   generic ``amd_order(A="matrix[S]") -> perm[S->S]`` called on a
   ``CSC.submatrix`` result (declared ``matrix[local:block]``) returns
   a block-local permutation.

The checker is deliberately conservative: a finding is emitted only
when **both** sides of a comparison are *concrete* spaces that
disagree.  Anything it does not understand infers "unknown" and stays
silent, so an unannotated module can never produce false positives.

Finding codes::

    D1  call-site or return domain mismatch against a declared contract
    D2  double application of a permutation  (x[p] where x: vec[B],
        p: perm[A->B] — x is already in p's output space)
    D3  composing permutations whose spaces do not chain
    D4  index-space mismatch on a subscript (e.g. a ``local:block``
        index used against a ``global`` array)
    D5  malformed domain expression / declaration

Entry points: :func:`check_domains_source` (one source string),
:func:`check_domains_paths` (explicit files, contracts drawn from the
package *plus* those files), :func:`check_domains_tree` (the whole
installed package — the CI gate, exposed as ``python -m repro analyze
domains``).
"""

from __future__ import annotations

import ast
import io
import os
import re
import tokenize
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Domain",
    "DomainFinding",
    "DomainSyntaxError",
    "FunctionContract",
    "ContractRegistry",
    "parse_domain",
    "check_domains_source",
    "check_domains_paths",
    "check_domains_tree",
]

# The concrete spaces used by the package.  Anything matching _SPACE_RE
# is accepted (fixtures may invent spaces); single uppercase letters are
# unification variables.
LOCAL_BLOCK = "local:block"
KINDS = ("perm", "index", "vec", "matrix")

_SPACE_RE = re.compile(r"^[A-Za-z][A-Za-z0-9_:.\-]*$")
_DOMAIN_RE = re.compile(r"^\s*(perm|index|vec|matrix)\s*\[\s*([^\[\]]+?)\s*\]\s*$")
_COMMENT_RE = re.compile(r"#\s*domain:\s*(.+?)\s*$")
_NAMED_RE = re.compile(r"^(\w+)\s*=\s*(.+)$")

# Functions that return their input unchanged (domain-wise).  Attribute
# calls in the first group pass through argument 0 (``np.asarray(x)``);
# the second group passes through the receiver (``x.copy()``).
_PASSTHROUGH_ARG0 = {"asarray", "ascontiguousarray", "asanyarray", "array", "require"}
_PASSTHROUGH_RECV = {"copy", "astype"}


class DomainSyntaxError(ValueError):
    """Raised by :func:`parse_domain` on a malformed domain expression."""


@dataclass(frozen=True)
class Domain:
    """A parsed domain expression.

    ``kind`` is one of :data:`KINDS`.  For ``perm``, ``s1`` is the inner
    (input) space and ``s2`` the outer (output) space of ``x_B = x_A[p]``;
    for the other kinds ``s1`` is the space and ``s2`` is ``None``.  A
    space of ``None`` means "unknown" (e.g. after substituting an
    unbound variable).
    """

    kind: str
    s1: Optional[str]
    s2: Optional[str] = None

    def __str__(self) -> str:
        if self.kind == "perm":
            return "perm[%s->%s]" % (self.s1 or "?", self.s2 or "?")
        return "%s[%s]" % (self.kind, self.s1 or "?")


@dataclass(frozen=True)
class DomainFinding:
    """One diagnostic: ``path:line CODE message``."""

    path: str
    line: int
    code: str
    message: str

    def __str__(self) -> str:
        return "%s:%d %s %s" % (self.path, self.line, self.code, self.message)


def _is_var(space: Optional[str]) -> bool:
    """Single-uppercase-letter spaces are unification variables."""
    return space is not None and len(space) == 1 and space.isupper()


def _concrete(space: Optional[str]) -> bool:
    return space is not None and not _is_var(space)


def _conflict(a: Optional[str], b: Optional[str]) -> bool:
    """True when two spaces are both concrete and disagree."""
    return _concrete(a) and _concrete(b) and a != b


def parse_domain(text: str) -> Optional[Domain]:
    """Parse ``"perm[global->btf]"`` / ``"vec[nd]"`` / ``"any"``.

    Returns ``None`` for ``any`` (explicit unknown).  Raises
    :class:`DomainSyntaxError` on malformed input.
    """
    stripped = text.strip()
    if stripped == "any":
        return None
    m = _DOMAIN_RE.match(stripped)
    if m is None:
        raise DomainSyntaxError(
            "invalid domain %r (expected kind[space] with kind in %s)"
            % (text, "/".join(KINDS))
        )
    kind, inside = m.group(1), m.group(2)
    if kind == "perm":
        if "->" not in inside:
            raise DomainSyntaxError(
                "invalid perm domain %r (expected perm[inner->outer])" % text
            )
        inner, _, outer = inside.partition("->")
        inner, outer = inner.strip(), outer.strip()
        if not _SPACE_RE.match(inner) or not _SPACE_RE.match(outer):
            raise DomainSyntaxError("invalid space name in %r" % text)
        return Domain("perm", inner, outer)
    space = inside.strip()
    if "->" in space or not _SPACE_RE.match(space):
        raise DomainSyntaxError("invalid space name in %r" % text)
    return Domain(kind, space)


@dataclass
class FunctionContract:
    """The declared domains of one ``@domains``-decorated function."""

    name: str
    path: str
    line: int
    params: Dict[str, Optional[Domain]]
    returns: Optional[Domain]
    is_method: bool
    param_order: Tuple[str, ...]  # excludes self/cls for methods

    def signature_key(self):
        return (
            tuple(sorted(self.params.items(), key=lambda kv: kv[0])),
            self.returns,
            self.param_order,
        )


class ContractRegistry:
    """Contracts collected across a set of sources, keyed by name.

    Call sites are matched by the simple callee name (``f(...)`` or
    ``obj.f(...)``).  When several decorated functions share a name the
    registry only answers if their declarations agree (e.g. ``factor``
    on both ``KLU`` and ``Basker``); otherwise the name is ambiguous
    and call sites against it are skipped.
    """

    def __init__(self) -> None:
        self._by_name: Dict[str, List[FunctionContract]] = {}
        # contracts keyed by AST node identity, for checking bodies
        self._by_node: Dict[int, FunctionContract] = {}

    def add(self, contract: FunctionContract, node: ast.AST) -> None:
        self._by_name.setdefault(contract.name, []).append(contract)
        self._by_node[id(node)] = contract

    def lookup(self, name: str) -> Optional[FunctionContract]:
        group = self._by_name.get(name)
        if not group:
            return None
        first = group[0]
        key = first.signature_key()
        for other in group[1:]:
            if other.signature_key() != key:
                return None  # ambiguous name, disagreeing declarations
        return first

    def for_node(self, node: ast.AST) -> Optional[FunctionContract]:
        return self._by_node.get(id(node))


def _decorator_is_domains(dec: ast.expr) -> bool:
    if not isinstance(dec, ast.Call):
        return False
    fn = dec.func
    if isinstance(fn, ast.Name):
        return fn.id == "domains"
    if isinstance(fn, ast.Attribute):
        return fn.attr == "domains"
    return False


def _collect_contracts(
    tree: ast.Module, relpath: str, registry: ContractRegistry, findings: List[DomainFinding]
) -> None:
    """Pass 1: read every ``@domains(...)`` declaration in *tree*."""
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for dec in node.decorator_list:
            if not _decorator_is_domains(dec):
                continue
            arg_names = [a.arg for a in node.args.posonlyargs + node.args.args]
            is_method = bool(arg_names) and arg_names[0] in ("self", "cls")
            order = tuple(arg_names[1:] if is_method else arg_names)
            valid_names = set(arg_names) | {
                a.arg for a in node.args.kwonlyargs
            } | {"returns"}
            params: Dict[str, Optional[Domain]] = {}
            returns: Optional[Domain] = None
            for kw in dec.keywords:
                if kw.arg is None:
                    findings.append(
                        DomainFinding(relpath, dec.lineno, "D5",
                                      "@domains does not accept ** expansion")
                    )
                    continue
                if not (isinstance(kw.value, ast.Constant)
                        and isinstance(kw.value.value, str)):
                    findings.append(
                        DomainFinding(relpath, kw.value.lineno, "D5",
                                      "@domains values must be string literals")
                    )
                    continue
                if kw.arg not in valid_names:
                    findings.append(
                        DomainFinding(
                            relpath, kw.value.lineno, "D5",
                            "@domains declares %r which is not a parameter of %s()"
                            % (kw.arg, node.name))
                    )
                    continue
                try:
                    dom = parse_domain(kw.value.value)
                except DomainSyntaxError as exc:
                    findings.append(
                        DomainFinding(relpath, kw.value.lineno, "D5", str(exc))
                    )
                    continue
                if kw.arg == "returns":
                    returns = dom
                else:
                    params[kw.arg] = dom
            registry.add(
                FunctionContract(
                    name=node.name, path=relpath, line=node.lineno,
                    params=params, returns=returns,
                    is_method=is_method, param_order=order,
                ),
                node,
            )


def _scan_comments(
    source: str, relpath: str, findings: List[DomainFinding]
) -> Tuple[Dict[int, Domain], List[Tuple[int, str, Domain]]]:
    """Pre-scan ``# domain:`` comments.

    Returns ``(trailing, named)``: *trailing* maps a line number to the
    domain its assignment target should take; *named* is a list of
    ``(line, name, domain)`` standalone declarations applied in
    statement order.
    """
    trailing: Dict[int, Domain] = {}
    named: List[Tuple[int, str, Domain]] = []
    # Real COMMENT tokens only — the marker appearing inside a
    # docstring or string literal is prose, not a declaration.
    comments: List[Tuple[int, str]] = []
    try:
        for tok in tokenize.generate_tokens(io.StringIO(source).readline):
            if tok.type == tokenize.COMMENT:
                comments.append((tok.start[0], tok.string))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return trailing, named  # the AST pass reports the syntax error
    for lineno, text in comments:
        m = _COMMENT_RE.search(text)
        if m is None:
            continue
        payload = m.group(1)
        nm = _NAMED_RE.match(payload)
        try:
            if nm is not None and nm.group(1) not in KINDS:
                named.append((lineno, nm.group(1), parse_domain(nm.group(2))))
            else:
                dom = parse_domain(payload)
                if dom is not None:
                    trailing[lineno] = dom
        except DomainSyntaxError as exc:
            findings.append(DomainFinding(relpath, lineno, "D5", str(exc)))
    return trailing, named


class _FunctionChecker(ast.NodeVisitor):
    """Dataflow over one function body (or the module top level)."""

    def __init__(
        self,
        relpath: str,
        registry: ContractRegistry,
        trailing: Dict[int, Domain],
        named: List[Tuple[int, str, Domain]],
        findings: List[DomainFinding],
        contract: Optional[FunctionContract] = None,
    ) -> None:
        self.relpath = relpath
        self.registry = registry
        self.trailing = trailing
        self.named = sorted(named, key=lambda t: t[0])
        self._named_idx = 0
        self.findings = findings
        self.contract = contract
        self.env: Dict[str, Optional[Domain]] = {}
        if contract is not None:
            for pname, dom in contract.params.items():
                self.env[pname] = dom

    # -- reporting -------------------------------------------------------

    def _report(self, node: ast.AST, code: str, message: str) -> None:
        self.findings.append(
            DomainFinding(self.relpath, getattr(node, "lineno", 0), code, message)
        )

    # -- statement walk --------------------------------------------------

    def run_body(self, body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            self._walk_stmt(stmt)

    def _apply_named(self, lineno: int) -> None:
        while self._named_idx < len(self.named) and self.named[self._named_idx][0] <= lineno:
            _, name, dom = self.named[self._named_idx]
            self.env[name] = dom
            self._named_idx += 1

    def _walk_stmt(self, stmt: ast.stmt) -> None:
        self._apply_named(stmt.lineno)
        if isinstance(stmt, ast.Assign):
            dom = self.infer(stmt.value)
            override = self.trailing.get(stmt.lineno)
            if override is not None:
                dom = override
            for target in stmt.targets:
                self._assign_target(target, dom)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                dom = self.infer(stmt.value)
                override = self.trailing.get(stmt.lineno)
                if override is not None:
                    dom = override
                self._assign_target(stmt.target, dom)
        elif isinstance(stmt, ast.AugAssign):
            self.infer(stmt.value)
            if isinstance(stmt.target, ast.Subscript):
                self._infer_subscript(stmt.target)
        elif isinstance(stmt, ast.Expr):
            self.infer(stmt.value)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                actual = self.infer(stmt.value)
                self._check_return(stmt, actual)
        elif isinstance(stmt, (ast.If, ast.While)):
            self.infer(stmt.test)
            self.run_body(stmt.body)
            self.run_body(stmt.orelse)
        elif isinstance(stmt, ast.For):
            self.infer(stmt.iter)
            self._assign_target(stmt.target, None)
            self.run_body(stmt.body)
            self.run_body(stmt.orelse)
        elif isinstance(stmt, ast.With):
            for item in stmt.items:
                self.infer(item.context_expr)
                if item.optional_vars is not None:
                    self._assign_target(item.optional_vars, None)
            self.run_body(stmt.body)
        elif isinstance(stmt, ast.Try):
            self.run_body(stmt.body)
            for handler in stmt.handlers:
                self.run_body(handler.body)
            self.run_body(stmt.orelse)
            self.run_body(stmt.finalbody)
        elif isinstance(stmt, (ast.Assert,)):
            self.infer(stmt.test)
        # FunctionDef / ClassDef bodies are checked separately with
        # their own (empty) environments; everything else is inert.

    def _assign_target(self, target: ast.expr, dom: Optional[Domain]) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = dom
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._assign_target(elt, None)
        elif isinstance(target, ast.Subscript):
            # a store through a subscript still checks the index space
            self._infer_subscript(target)
        elif isinstance(target, ast.Starred):
            self._assign_target(target.value, None)
        # attribute stores do not change the local environment

    def _check_return(self, stmt: ast.Return, actual: Optional[Domain]) -> None:
        if self.contract is None or self.contract.returns is None or actual is None:
            return
        declared = self.contract.returns
        if declared.kind != actual.kind:
            self._report(
                stmt, "D1",
                "%s() declared to return %s but returns %s"
                % (self.contract.name, declared, actual))
            return
        for d, a in ((declared.s1, actual.s1), (declared.s2, actual.s2)):
            if _conflict(d, a):
                self._report(
                    stmt, "D1",
                    "%s() declared to return %s but returns %s"
                    % (self.contract.name, declared, actual))
                return

    # -- expression inference --------------------------------------------

    def infer(self, node: ast.expr) -> Optional[Domain]:
        if isinstance(node, ast.Name):
            return self.env.get(node.id)
        if isinstance(node, ast.Call):
            return self._infer_call(node)
        if isinstance(node, ast.Subscript):
            return self._infer_subscript(node)
        if isinstance(node, ast.IfExp):
            self.infer(node.test)
            body = self.infer(node.body)
            orelse = self.infer(node.orelse)
            return body if body == orelse else None
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            for elt in node.elts:
                self.infer(elt)
            return None
        if isinstance(node, ast.BinOp):
            self.infer(node.left)
            self.infer(node.right)
            return None
        if isinstance(node, ast.UnaryOp):
            self.infer(node.operand)
            return None
        if isinstance(node, ast.BoolOp):
            for v in node.values:
                self.infer(v)
            return None
        if isinstance(node, ast.Compare):
            self.infer(node.left)
            for c in node.comparators:
                self.infer(c)
            return None
        if isinstance(node, ast.Starred):
            self.infer(node.value)
            return None
        return None

    def _infer_call(self, node: ast.Call) -> Optional[Domain]:
        # Infer every argument first so nested calls are always checked,
        # even under callees we know nothing about.
        arg_doms = [self.infer(a) for a in node.args]
        kw_doms = {kw.arg: self.infer(kw.value) for kw in node.keywords}

        func = node.func
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr

        # Domain-preserving wrappers.
        if name in _PASSTHROUGH_ARG0 and node.args:
            return arg_doms[0]
        if name in _PASSTHROUGH_RECV and isinstance(func, ast.Attribute):
            return self.infer(func.value)

        # The permutation-algebra primitives get dedicated transfer
        # functions (and dedicated finding codes) rather than generic
        # contract unification.
        if name == "invert" and len(node.args) >= 1:
            return self._transfer_invert(node, arg_doms[0])
        if name == "compose" and len(node.args) >= 2:
            return self._transfer_compose(node, arg_doms[0], arg_doms[1])

        if name is None:
            return None
        contract = self.registry.lookup(name)
        if contract is None:
            return None
        return self._check_call(node, contract, arg_doms, kw_doms)

    def _transfer_invert(self, node: ast.Call, p: Optional[Domain]) -> Optional[Domain]:
        if p is None:
            return Domain("perm", None, None)
        if p.kind != "perm":
            self._report(node, "D1", "invert() applied to %s (expected a perm)" % p)
            return None
        return Domain("perm", p.s2, p.s1)

    def _transfer_compose(
        self, node: ast.Call, p: Optional[Domain], q: Optional[Domain]
    ) -> Optional[Domain]:
        for arg in (p, q):
            if arg is not None and arg.kind != "perm":
                self._report(node, "D1", "compose() applied to %s (expected a perm)" % arg)
                return None
        if p is not None and q is not None and _conflict(p.s2, q.s1):
            self._report(
                node, "D3",
                "compose(%s, %s): outer space %r does not chain with inner space %r"
                % (p, q, p.s2, q.s1))
            return None
        return Domain(
            "perm",
            p.s1 if p is not None else None,
            q.s2 if q is not None else None,
        )

    def _check_call(
        self,
        node: ast.Call,
        contract: FunctionContract,
        arg_doms: List[Optional[Domain]],
        kw_doms: Dict[Optional[str], Optional[Domain]],
    ) -> Optional[Domain]:
        if any(isinstance(a, ast.Starred) for a in node.args) or None in kw_doms:
            return self._substitute(contract.returns, {})
        if contract.is_method and not isinstance(node.func, ast.Attribute):
            # a bound method called through a bare name: cannot map args
            return self._substitute(contract.returns, {})
        pairs: List[Tuple[str, Optional[Domain]]] = []
        for i, dom in enumerate(arg_doms):
            if i < len(contract.param_order):
                pairs.append((contract.param_order[i], dom))
        for kw_name, dom in kw_doms.items():
            pairs.append((kw_name, dom))
        bindings: Dict[str, str] = {}
        for pname, actual in pairs:
            declared = contract.params.get(pname)
            if declared is None or actual is None:
                continue
            self._unify(node, contract, pname, declared, actual, bindings)
        return self._substitute(contract.returns, bindings)

    def _unify(
        self,
        node: ast.Call,
        contract: FunctionContract,
        pname: str,
        declared: Domain,
        actual: Domain,
        bindings: Dict[str, str],
    ) -> None:
        if declared.kind != actual.kind:
            self._report(
                node, "D1",
                "argument %r of %s(): declared %s, got %s"
                % (pname, contract.name, declared, actual))
            return
        for d, a in ((declared.s1, actual.s1), (declared.s2, actual.s2)):
            if d is None or a is None:
                continue
            if _is_var(d):
                bound = bindings.get(d)
                if bound is None:
                    bindings[d] = a
                elif _conflict(bound, a):
                    self._report(
                        node, "D1",
                        "argument %r of %s(): declared %s, got %s "
                        "(space variable %s already bound to %r)"
                        % (pname, contract.name, declared, actual, d, bound))
                    return
                elif _concrete(a) and not _concrete(bound):
                    bindings[d] = a
            elif _conflict(d, a):
                self._report(
                    node, "D1",
                    "argument %r of %s(): declared %s, got %s"
                    % (pname, contract.name, declared, actual))
                return

    @staticmethod
    def _substitute(declared: Optional[Domain], bindings: Dict[str, str]) -> Optional[Domain]:
        if declared is None:
            return None

        def sub(space: Optional[str]) -> Optional[str]:
            if space is None:
                return None
            if _is_var(space):
                bound = bindings.get(space)
                return bound if _concrete(bound) else None
            return space

        return Domain(declared.kind, sub(declared.s1), sub(declared.s2))

    # -- subscripts ------------------------------------------------------

    def _infer_subscript(self, node: ast.Subscript) -> Optional[Domain]:
        base = self.infer(node.value)
        sl = node.slice
        if isinstance(sl, ast.Slice):
            for part in (sl.lower, sl.upper, sl.step):
                if part is not None:
                    self.infer(part)
            if base is None:
                return None
            if base.kind == "matrix":
                return None
            # slicing a range out of a structured array extracts a
            # block-local view
            return Domain("vec", LOCAL_BLOCK)
        if isinstance(sl, ast.Tuple):
            for elt in sl.elts:
                self.infer(elt)
            return None
        idx = self.infer(sl)
        if base is None:
            return None
        if base.kind == "matrix":
            return None
        if base.kind == "perm":
            if idx is not None and idx.kind == "perm":
                # p[q] is compose(p, q): outer(p) must chain with inner(q)
                if _conflict(base.s2, idx.s1):
                    self._report(
                        node, "D3",
                        "%s[%s]: outer space %r does not chain with inner space %r"
                        % (base, idx, base.s2, idx.s1))
                    return None
                return Domain("perm", base.s1, idx.s2)
            return None
        # base is vec/index
        if idx is None:
            return None
        space = base.s1
        if idx.kind == "perm":
            if _conflict(space, idx.s1):
                if not _conflict(space, idx.s2):
                    self._report(
                        node, "D2",
                        "double application of permutation: %s indexed with %s "
                        "(the array is already in the permutation's output space)"
                        % (base, idx))
                else:
                    self._report(
                        node, "D4",
                        "%s indexed with %s (permutation consumes %r-space data)"
                        % (base, idx, idx.s1))
                return None
            return Domain(base.kind, idx.s2)
        if idx.kind == "index":
            if _conflict(space, idx.s1):
                self._report(
                    node, "D4",
                    "%s subscripted with %s (index values live in a different space)"
                    % (base, idx))
                return None
            return None
        if idx.kind in ("vec", "matrix"):
            return None
        return None


# ---------------------------------------------------------------------------
# drivers


def _package_root() -> str:
    return os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _iter_sources(root: str) -> Iterable[Tuple[str, str]]:
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(d for d in dirnames if d != "__pycache__")
        for fname in sorted(filenames):
            if fname.endswith(".py"):
                full = os.path.join(dirpath, fname)
                rel = os.path.relpath(full, root)
                yield full, rel.replace(os.sep, "/")


@dataclass
class _ParsedSource:
    relpath: str
    tree: ast.Module
    trailing: Dict[int, Domain]
    named: List[Tuple[int, str, Domain]]


def _parse_sources(
    sources: Sequence[Tuple[str, str]],
    registry: ContractRegistry,
    findings: List[DomainFinding],
) -> List[_ParsedSource]:
    parsed: List[_ParsedSource] = []
    for source, relpath in sources:
        try:
            tree = ast.parse(source)
        except SyntaxError as exc:
            findings.append(
                DomainFinding(relpath, exc.lineno or 0, "D5",
                              "syntax error: %s" % exc.msg))
            continue
        trailing, named = _scan_comments(source, relpath, findings)
        _collect_contracts(tree, relpath, registry, findings)
        parsed.append(_ParsedSource(relpath, tree, trailing, named))
    return parsed


def _function_span_comments(
    parsed: _ParsedSource, node: ast.AST
) -> Tuple[Dict[int, Domain], List[Tuple[int, str, Domain]]]:
    lo = node.lineno
    hi = getattr(node, "end_lineno", None) or 10**9
    trailing = {ln: d for ln, d in parsed.trailing.items() if lo <= ln <= hi}
    named = [(ln, n, d) for ln, n, d in parsed.named if lo <= ln <= hi]
    return trailing, named


def _check_parsed(
    parsed_sources: Sequence[_ParsedSource],
    registry: ContractRegistry,
    findings: List[DomainFinding],
) -> None:
    for parsed in parsed_sources:
        # module top level (skips nested function/class bodies)
        top = _FunctionChecker(
            parsed.relpath, registry, parsed.trailing, parsed.named, findings)
        top.run_body(
            [s for s in parsed.tree.body
             if not isinstance(s, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef))])
        # every function and method, each in its own environment
        for node in ast.walk(parsed.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            trailing, named = _function_span_comments(parsed, node)
            checker = _FunctionChecker(
                parsed.relpath, registry, trailing, named, findings,
                contract=registry.for_node(node))
            checker.run_body(node.body)


def _finalize(findings: List[DomainFinding]) -> List[DomainFinding]:
    unique = sorted(set(findings), key=lambda f: (f.path, f.line, f.code, f.message))
    return unique


def check_domains_source(
    source: str,
    relpath: str = "<string>",
    extra_sources: Optional[Sequence[Tuple[str, str]]] = None,
) -> List[DomainFinding]:
    """Check a single source string (plus optional companion sources).

    Contracts are collected from *source* and every ``(text, relpath)``
    pair in *extra_sources*; findings are reported for all of them.
    Mostly a unit-test entry point.
    """
    registry = ContractRegistry()
    findings: List[DomainFinding] = []
    pairs = [(source, relpath)] + list(extra_sources or ())
    parsed = _parse_sources(pairs, registry, findings)
    _check_parsed(parsed, registry, findings)
    return _finalize(findings)


def check_domains_paths(
    paths: Sequence[str], package_root: Optional[str] = None
) -> List[DomainFinding]:
    """Check explicit files against the package's contracts.

    The registry is built from the installed ``repro`` package (or
    *package_root*) *plus* the given files, but findings are reported
    only for the given files — this is how the seeded-violation fixtures
    are checked without muddying the tree-wide gate.
    """
    root = package_root or _package_root()
    registry = ContractRegistry()
    tree_findings: List[DomainFinding] = []
    package_sources = []
    for full, rel in _iter_sources(root):
        with open(full, "r", encoding="utf-8") as fh:
            package_sources.append((fh.read(), rel))
    _parse_sources(package_sources, registry, tree_findings)

    findings: List[DomainFinding] = []
    target_sources = []
    for path in paths:
        with open(path, "r", encoding="utf-8") as fh:
            target_sources.append((fh.read(), path))
    parsed_targets = _parse_sources(target_sources, registry, findings)
    _check_parsed(parsed_targets, registry, findings)
    return _finalize(findings)


def check_domains_tree(root: Optional[str] = None) -> List[DomainFinding]:
    """Check every module of the package — the CI gate."""
    root = root or _package_root()
    registry = ContractRegistry()
    findings: List[DomainFinding] = []
    sources = []
    for full, rel in _iter_sources(root):
        with open(full, "r", encoding="utf-8") as fh:
            sources.append((fh.read(), rel))
    parsed = _parse_sources(sources, registry, findings)
    _check_parsed(parsed, registry, findings)
    return _finalize(findings)
