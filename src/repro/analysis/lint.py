"""Custom AST lint enforcing the repo's cost-model discipline.

The reproduction's central contract is that *all* cost flows through
:class:`~repro.parallel.ledger.CostLedger` — never wall clocks — and
that counted work is never silently dropped.  Four rules:

* **R1** — no wall-clock calls (``time.time``, ``time.perf_counter``,
  ``time.monotonic``, ``time.process_time``, ``time.thread_time``)
  inside the kernel packages ``core/``, ``solvers/``, ``sparse/``.
  Importing those names from ``time`` there is equally flagged.
* **R2** — a kernel function that increments ledger counters
  (``x.sparse_flops += ...`` etc.) must receive the ledger through a
  parameter named ``ledger``, or the ledger object must escape the
  function (be returned, passed to a call, or attached to a result).
  A ledger that is created, incremented and never observed is work
  silently dropped from the performance model.
* **R3** — no bare ``except:`` anywhere in the package.
* **R4** — no mutable default arguments (``[]``, ``{}``, ``set()``,
  ``list()``, ``dict()``) anywhere in the package.
* **R5** — no nondeterminism in the kernel packages (``core/``,
  ``solvers/``, ``sparse/``, ``ordering/``, ``graph/``): no
  module-level RNG use through ``np.random.<fn>`` (``default_rng``,
  ``seed``, ``rand``, ...), no ``from numpy.random import <fn>``, no
  ``import random``, and no time-derived seeds
  (``default_rng(time.time())``).  Kernels that need randomness must
  take a ``numpy.random.Generator`` parameter — type annotations
  referencing ``np.random.Generator`` are explicitly allowed.
* **R6** — no mutable module-level state (``dict``/``list``/``set``
  literals or bare constructor calls, including class-level caches) in
  the kernel packages plus ``parallel/``.  Shared mutable state is the
  static backstop for the effect checker's E3: a worker-pool backend
  forks or pickles kernels, so a module cache silently diverges across
  processes.  A definition that is genuinely intended (a registry
  populated at import time, say) carries a trailing
  ``# effects: global-ok`` pin — the same pin the effect checker honors.

Findings are reported as ``path:line CODE message``; the CLI exits
nonzero when any are found, which is what CI gates on.
"""

from __future__ import annotations

import ast
import io
import os
import re
import tokenize
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Set

__all__ = [
    "LintFinding", "lint_source", "lint_paths", "lint_tree",
    "KERNEL_DIRS", "DETERMINISTIC_DIRS", "R6_DIRS",
]

KERNEL_DIRS = ("core", "solvers", "sparse")
# R5 (determinism) additionally covers the ordering/graph kernels whose
# output must be reproducible run to run.
DETERMINISTIC_DIRS = KERNEL_DIRS + ("ordering", "graph")
# R6 (no mutable module state) additionally covers parallel/ — the
# scheduler machinery ships to worker processes with the kernels.
R6_DIRS = DETERMINISTIC_DIRS + ("parallel",)
_WALL_CLOCKS = {"time", "perf_counter", "monotonic", "process_time", "thread_time", "clock"}
_COUNTERS = {"sparse_flops", "dense_flops", "dfs_steps", "mem_words", "columns"}
_MUTABLE_CALLS = {"list", "dict", "set"}
# numpy.random module-level entry points banned in deterministic kernels.
# ``Generator`` is deliberately absent: ``rng: np.random.Generator``
# annotations are the sanctioned way for kernels to consume randomness.
_RNG_NAMES = {
    "default_rng", "seed", "rand", "randn", "randint", "random",
    "random_sample", "ranf", "sample", "choice", "permutation", "shuffle",
    "standard_normal", "uniform", "normal", "RandomState", "get_state",
    "set_state",
}
_RNG_FACTORIES = {"default_rng", "RandomState", "seed"}


@dataclass
class LintFinding:
    path: str
    line: int
    rule: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line} {self.rule} {self.message}"


def _is_kernel_module(relpath: str) -> bool:
    parts = relpath.replace(os.sep, "/").split("/")
    return any(p in parts[:-1] for p in KERNEL_DIRS)


def _is_deterministic_module(relpath: str) -> bool:
    parts = relpath.replace(os.sep, "/").split("/")
    return any(p in parts[:-1] for p in DETERMINISTIC_DIRS)


def _is_r6_module(relpath: str) -> bool:
    parts = relpath.replace(os.sep, "/").split("/")
    return any(p in parts[:-1] for p in R6_DIRS)


def _check_wall_clocks(tree: ast.AST, path: str, out: List[LintFinding]) -> None:
    for node in ast.walk(tree):
        if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
            if node.value.id == "time" and node.attr in _WALL_CLOCKS:
                out.append(LintFinding(
                    path, node.lineno, "R1",
                    f"wall-clock call time.{node.attr} in a kernel module — "
                    "cost must flow through CostLedger",
                ))
        elif isinstance(node, ast.ImportFrom) and node.module == "time":
            for alias in node.names:
                if alias.name in _WALL_CLOCKS:
                    out.append(LintFinding(
                        path, node.lineno, "R1",
                        f"importing {alias.name} from time in a kernel module — "
                        "cost must flow through CostLedger",
                    ))


def _function_params(fn: ast.AST) -> List[str]:
    a = fn.args
    params = [x.arg for x in a.posonlyargs + a.args + a.kwonlyargs]
    if a.vararg:
        params.append(a.vararg.arg)
    if a.kwarg:
        params.append(a.kwarg.arg)
    return params


def _own_body_nodes(fn: ast.AST) -> Iterable[ast.AST]:
    """Walk a function body without descending into nested functions
    (those are linted on their own)."""
    stack = list(fn.body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _check_ledger_flow(tree: ast.AST, path: str, out: List[LintFinding]) -> None:
    for fn in ast.walk(tree):
        if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        params = set(_function_params(fn))
        # Names whose counters this function increments, with first line.
        incremented: dict = {}
        counter_attr_ids = set()  # id() of Name nodes that are counter receivers
        for node in _own_body_nodes(fn):
            target = None
            if isinstance(node, ast.AugAssign):
                target = node.target
            elif isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
            if (
                isinstance(target, ast.Attribute)
                and target.attr in _COUNTERS
                and isinstance(target.value, ast.Name)
            ):
                name = target.value.id
                incremented.setdefault(name, node.lineno)
                counter_attr_ids.add(id(target.value))
        if not incremented:
            continue
        # A counted ledger is fine if it is a parameter, or if the name
        # escapes: any use other than as a counter receiver (passed to
        # a call, returned, stored on a result, re-read, ...).
        for name, lineno in incremented.items():
            if name in params or name == "self":
                continue
            escapes = False
            for node in _own_body_nodes(fn):
                if (
                    isinstance(node, ast.Name)
                    and node.id == name
                    and isinstance(node.ctx, ast.Load)
                    and id(node) not in counter_attr_ids
                ):
                    escapes = True
                    break
            if not escapes:
                out.append(LintFinding(
                    path, lineno, "R2",
                    f"function '{fn.name}' counts cost into '{name}' which "
                    "is neither a 'ledger' parameter nor escapes the "
                    "function — that work is dropped from the model",
                ))


def _check_bare_except(tree: ast.AST, path: str, out: List[LintFinding]) -> None:
    for node in ast.walk(tree):
        if isinstance(node, ast.ExceptHandler) and node.type is None:
            out.append(LintFinding(
                path, node.lineno, "R3",
                "bare 'except:' — catch a concrete exception type",
            ))


def _check_mutable_defaults(tree: ast.AST, path: str, out: List[LintFinding]) -> None:
    for fn in ast.walk(tree):
        if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        name = getattr(fn, "name", "<lambda>")
        for default in list(fn.args.defaults) + [
            d for d in fn.args.kw_defaults if d is not None
        ]:
            bad = isinstance(default, (ast.List, ast.Dict, ast.Set)) or (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in _MUTABLE_CALLS
                and not default.args
                and not default.keywords
            )
            if bad:
                out.append(LintFinding(
                    path, default.lineno, "R4",
                    f"mutable default argument in '{name}' — use None "
                    "and create inside the function",
                ))


def _mentions_time(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and sub.id in {"time", "datetime"}:
            return True
    return False


def _check_nondeterminism(tree: ast.AST, path: str, out: List[LintFinding]) -> None:
    for node in ast.walk(tree):
        if isinstance(node, ast.Attribute) and node.attr in _RNG_NAMES:
            v = node.value
            if (
                isinstance(v, ast.Attribute)
                and v.attr == "random"
                and isinstance(v.value, ast.Name)
                and v.value.id in {"np", "numpy"}
            ):
                out.append(LintFinding(
                    path, node.lineno, "R5",
                    f"module-level RNG np.random.{node.attr} in a deterministic "
                    "kernel — take a numpy.random.Generator parameter instead",
                ))
        elif isinstance(node, ast.ImportFrom):
            if node.module == "numpy.random":
                for alias in node.names:
                    if alias.name in _RNG_NAMES:
                        out.append(LintFinding(
                            path, node.lineno, "R5",
                            f"importing {alias.name} from numpy.random in a "
                            "deterministic kernel — take a Generator parameter "
                            "instead",
                        ))
            elif node.module == "random":
                out.append(LintFinding(
                    path, node.lineno, "R5",
                    "importing from the stdlib random module in a deterministic "
                    "kernel — take a numpy.random.Generator parameter instead",
                ))
        elif isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name in {"random", "numpy.random"}:
                    out.append(LintFinding(
                        path, node.lineno, "R5",
                        f"import {alias.name} in a deterministic kernel — take "
                        "a numpy.random.Generator parameter instead",
                    ))
        elif isinstance(node, ast.Call):
            fn = node.func
            name = None
            if isinstance(fn, ast.Attribute):
                name = fn.attr
            elif isinstance(fn, ast.Name):
                name = fn.id
            if name in _RNG_FACTORIES and any(
                _mentions_time(a) for a in list(node.args) + [k.value for k in node.keywords]
            ):
                out.append(LintFinding(
                    path, node.lineno, "R5",
                    f"time-derived seed passed to {name} — seeds must be "
                    "deterministic (explicit constants or caller-provided)",
                ))


_GLOBAL_OK_RE = re.compile(r"#\s*effects:\s*global-ok\b")
# Constructors whose bare module-level call creates shared mutable state.
_R6_CONSTRUCTORS = {
    "dict", "list", "set", "defaultdict", "OrderedDict", "deque",
    "Counter", "bytearray",
}


def _global_ok_lines(source: str) -> Set[int]:
    """Lines carrying a ``# effects: global-ok`` pin (real comments)."""
    lines: Set[int] = set()
    try:
        toks = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in toks:
            if tok.type == tokenize.COMMENT and _GLOBAL_OK_RE.search(tok.string):
                lines.add(tok.start[0])
    except (tokenize.TokenError, IndentationError, SyntaxError):
        pass
    return lines


def _r6_is_mutable(value: ast.expr) -> bool:
    if isinstance(value, (ast.Dict, ast.List, ast.Set,
                          ast.ListComp, ast.SetComp, ast.DictComp)):
        return True
    return (
        isinstance(value, ast.Call)
        and isinstance(value.func, ast.Name)
        and value.func.id in _R6_CONSTRUCTORS
    )


def _check_module_state(
    tree: ast.AST, source: str, path: str, out: List[LintFinding]
) -> None:
    ok_lines = _global_ok_lines(source)
    scopes = [("module", tree.body)]
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            scopes.append((f"class '{node.name}'", node.body))
    for where, body in scopes:
        for stmt in body:
            targets: List[ast.expr] = []
            value = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            else:
                continue
            if not _r6_is_mutable(value) or stmt.lineno in ok_lines:
                continue
            for t in targets:
                if not isinstance(t, ast.Name):
                    continue
                if t.id == "__all__" or (
                    t.id.startswith("__") and t.id.endswith("__")
                ):
                    continue
                out.append(LintFinding(
                    path, stmt.lineno, "R6",
                    f"mutable {where}-level state '{t.id}' in a kernel "
                    "package — process-unsafe shared state; pass it "
                    "explicitly or pin the line '# effects: global-ok'",
                ))


def lint_source(source: str, relpath: str = "<string>") -> List[LintFinding]:
    """Lint one module's source.  ``relpath`` (relative to the package
    root, e.g. ``core/numeric.py``) decides whether the kernel-only
    rules R1/R2 apply."""
    out: List[LintFinding] = []
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        out.append(LintFinding(relpath, exc.lineno or 0, "R0", f"syntax error: {exc.msg}"))
        return out
    if _is_kernel_module(relpath):
        _check_wall_clocks(tree, relpath, out)
        _check_ledger_flow(tree, relpath, out)
    if _is_deterministic_module(relpath):
        _check_nondeterminism(tree, relpath, out)
    if _is_r6_module(relpath):
        _check_module_state(tree, source, relpath, out)
    _check_bare_except(tree, relpath, out)
    _check_mutable_defaults(tree, relpath, out)
    out.sort(key=lambda f: (f.path, f.line, f.rule))
    return out


def lint_paths(paths: Sequence[str], root: str) -> List[LintFinding]:
    out: List[LintFinding] = []
    for p in paths:
        rel = os.path.relpath(p, root)
        with open(p, "r", encoding="utf-8") as fh:
            out.extend(lint_source(fh.read(), rel))
    out.sort(key=lambda f: (f.path, f.line, f.rule))
    return out


def lint_tree(root: Optional[str] = None) -> List[LintFinding]:
    """Lint every ``.py`` file under ``root`` (default: the installed
    ``repro`` package directory)."""
    if root is None:
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    paths = []
    for dirpath, _dirnames, filenames in os.walk(root):
        for fn in sorted(filenames):
            if fn.endswith(".py"):
                paths.append(os.path.join(dirpath, fn))
    return lint_paths(sorted(paths), root)
