"""Fingerprinted finding baselines for ``repro analyze`` subcommands.

A baseline file freezes the currently-known findings of a checker so CI
can gate on *regressions* — new findings fail the build, legacy ones are
reported as suppressed.  Fingerprints deliberately exclude line numbers:
editing an unrelated part of a file must not invalidate the baseline, so
a finding is identified by ``(checker, path, code, message)``.  Messages
that embed line numbers (the effect checker's "emitted at line N") keep
them — moving an emission site is a real change worth re-reviewing.

File format (JSON, committed next to the code it blesses)::

    {"version": 1,
     "findings": [{"checker": "effects", "fingerprint": "ab12...",
                   "path": "core/numeric.py", "code": "E1",
                   "message": "..."}]}

The ``path``/``code``/``message`` fields are informational — matching
uses only ``fingerprint``.  :func:`apply_baseline` splits findings into
``(new, suppressed)``; the CLI exits non-zero only on ``new``.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, Iterable, List, Sequence, Set, Tuple

__all__ = [
    "finding_fingerprint",
    "load_baseline",
    "apply_baseline",
    "write_baseline",
    "write_baseline_many",
    "BASELINE_VERSION",
]

BASELINE_VERSION = 1


def finding_fingerprint(checker: str, finding: Dict) -> str:
    """Stable fingerprint of one finding dict (line numbers excluded).

    ``finding`` is the ``dataclasses.asdict`` form the CLI emits:
    file-checker findings carry ``path`` + ``rule``/``code`` +
    ``message``; run-checker entries (hazards/conservation) carry
    ``matrix``/``threads``/``kind`` + ``message``.
    """
    code = finding.get("code") or finding.get("rule") or finding.get("kind") or ""
    parts = (
        checker,
        str(finding.get("path", finding.get("matrix", ""))),
        str(finding.get("threads", "")),
        str(code),
        str(finding.get("message", "")),
    )
    digest = hashlib.sha256("\x1f".join(parts).encode("utf-8")).hexdigest()
    return digest[:16]


def load_baseline(path: str) -> Set[str]:
    """Load the fingerprint set from a baseline file."""
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if not isinstance(doc, dict) or doc.get("version") != BASELINE_VERSION:
        raise ValueError(
            "baseline %r: expected a JSON object with version %d"
            % (path, BASELINE_VERSION))
    fps = set()
    for entry in doc.get("findings", []):
        fp = entry.get("fingerprint")
        if not isinstance(fp, str):
            raise ValueError("baseline %r: finding without a fingerprint" % path)
        fps.add(fp)
    return fps


def apply_baseline(
    checker: str,
    findings: Sequence[Dict],
    suppressed_fps: Iterable[str],
) -> Tuple[List[Dict], List[Dict]]:
    """Split findings into ``(new, suppressed)`` against a baseline.

    Each returned dict gains a ``fingerprint`` key so the JSON artifact
    can be turned into an updated baseline by hand if needed.
    """
    fps = set(suppressed_fps)
    new: List[Dict] = []
    suppressed: List[Dict] = []
    for f in findings:
        f = dict(f)
        f["fingerprint"] = finding_fingerprint(checker, f)
        (suppressed if f["fingerprint"] in fps else new).append(f)
    return new, suppressed


def _baseline_entries(
    checker: str, findings: Sequence[Dict], seen: Set[str]
) -> List[Dict]:
    entries = []
    for f in findings:
        fp = finding_fingerprint(checker, f)
        if fp in seen:
            continue
        seen.add(fp)
        entries.append({
            "checker": checker,
            "fingerprint": fp,
            "path": str(f.get("path", f.get("matrix", ""))),
            "code": str(f.get("code") or f.get("rule") or f.get("kind") or ""),
            "message": str(f.get("message", "")),
        })
    return entries


def write_baseline(path: str, checker: str, findings: Sequence[Dict]) -> int:
    """Write a baseline blessing the given findings; returns the count."""
    return write_baseline_many(path, {checker: findings})


def write_baseline_many(path: str, groups: Dict[str, Sequence[Dict]]) -> int:
    """Write one baseline blessing several checkers' findings at once
    (the ``repro analyze all`` form); returns the fingerprint count.

    Fingerprints are namespaced by checker, so a combined baseline is
    also valid for each individual ``repro analyze <checker>`` run.
    """
    entries: List[Dict] = []
    seen: Set[str] = set()
    for checker in sorted(groups):
        entries.extend(_baseline_entries(checker, groups[checker], seen))
    doc = {"version": BASELINE_VERSION, "findings": entries}
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return len(entries)
