"""Symbolic shape/bounds/dtype abstract interpretation for the kernels.

Basker's design (and our PR-3 schedule compiler) is index plumbing:
every kernel gathers and scatters through layered index arrays, so the
dominant silent-corruption bug class is an index array that is *out of
bounds for the buffer it indexes*, a ``reduceat`` segment array that is
not sorted, or a narrowing cast that breaks the package-wide ``int64``
discipline.  This module closes that gap with an abstract interpreter
over the kernel packages that assigns every array variable a *symbolic
shape* in a lattice of named dimensions (``n``, ``nnz(A)``,
``len(seg_starts)``, block sizes, ...) plus an index-range interval,
propagated through the numpy idioms the kernels use (``np.asarray``,
slicing, fancy indexing, ``searchsorted``, ``bincount(minlength=)``,
``reduceat``, broadcasting, concatenation) and interprocedurally via
:func:`repro.contracts.shapes` declarations, reusing the registry /
call-graph propagation machinery introduced for the effect analyzer.

The symbolic dimension lattice
------------------------------

A dimension is a multivariate integer polynomial over *atoms* — named
dimensions bound by a contract (``n``, ``k``), dimension functions of a
parameter (``nnz(A)``, ``len(x)``, ``rows(A)``, ``cols(A)``) and fresh
anonymous atoms — represented in canonical form (monomial -> integer
coefficient).  All atoms are nonnegative integers, which makes the
partial order decidable for the cases that matter::

    d1 <= d2   iff every coefficient of d2 - d1 is >= 0          (True)
    d1 >  d2   iff d2 - d1 has a negative constant term and no
                   positive coefficients                         (False)
    otherwise  unknown                                           (None)

``unknown`` keeps the checker conservative: a finding is emitted only
when a violation is *provable*, so an unannotated module can never
produce false positives, exactly like the domain and effect checkers.

Finding classes::

    S1  gather out of bounds — an index (scalar or fancy-index array)
        provably >= the length of the buffer it indexes
    S2  scatter/reduceat precondition violation — segment starts
        provably unsorted or out of range, scatter target arrays
        provably containing duplicates without accumulation
    S3  shape-conformance mismatch — elementwise ops, comparisons,
        boolean masks or sliced stores over provably different (or
        declared-distinct) dimensions
    S4  index-width hazard — creation of or narrowing cast to
        int32/int16 index arrays in kernel packages (the tree is
        int64-only), and degree->=2 products like ``n * n`` used as
        flat allocation lengths
    S5  contract mismatch — declared vs inferred shapes disagree at a
        return site or a call site (also malformed declarations and
        unparsable shape expressions)

Contracts are declared with the runtime no-op decorator
:func:`repro.contracts.shapes`; ``# shapes: ignore`` on a line
suppresses findings on that line.  :func:`audit_schedule_buffers`
complements the static pass with a concrete bounds audit of compiled
:mod:`repro.sparse.schedule` plans, and :func:`contract_checked` /
:func:`check_call_contract` provide the differential runtime checker
that validates observed shapes against the same declarations.
"""

from __future__ import annotations

import ast
import inspect
import io
import os
import re
import tokenize
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..errors import AnalysisError

__all__ = [
    "SHAPE_KERNEL_DIRS",
    "ShapeFinding",
    "ShapeContractError",
    "check_shapes_source",
    "check_shapes_paths",
    "check_shapes_tree",
    "collect_shape_contracts",
    "audit_schedule_buffers",
    "check_call_contract",
    "contract_checked",
]

SHAPE_KERNEL_DIRS = ("core", "solvers", "sparse", "ordering", "graph")


class ShapeContractError(AnalysisError):
    """A runtime value violated its declared shape contract."""


@dataclass(frozen=True)
class ShapeFinding:
    path: str
    line: int
    code: str
    message: str

    def __str__(self) -> str:  # pragma: no cover - convenience
        return "%s:%d %s %s" % (self.path, self.line, self.code, self.message)


# ======================================================================
# Dimension algebra: canonical polynomials over nonnegative atoms
# ======================================================================

# A Dim is a dict mapping a monomial (sorted tuple of atom names; () is
# the constant term) to a nonzero integer coefficient.

Dim = Dict[Tuple[str, ...], int]


def _d_const(c: int) -> Dim:
    return {(): int(c)} if c else {}


def _d_atom(name: str) -> Dim:
    return {(name,): 1}


def _d_add(a: Dim, b: Dim) -> Dim:
    out = dict(a)
    for mono, c in b.items():
        nc = out.get(mono, 0) + c
        if nc:
            out[mono] = nc
        else:
            out.pop(mono, None)
    return out


def _d_neg(a: Dim) -> Dim:
    return {m: -c for m, c in a.items()}


def _d_sub(a: Dim, b: Dim) -> Dim:
    return _d_add(a, _d_neg(b))


def _d_mul(a: Dim, b: Dim) -> Dim:
    out: Dim = {}
    for ma, ca in a.items():
        for mb, cb in b.items():
            mono = tuple(sorted(ma + mb))
            nc = out.get(mono, 0) + ca * cb
            if nc:
                out[mono] = nc
            else:
                out.pop(mono, None)
    return out


def _d_eq(a: Optional[Dim], b: Optional[Dim]) -> Optional[bool]:
    """Provable equality: True / False / None (unknown)."""
    if a is None or b is None:
        return None
    diff = _d_sub(a, b)
    if not diff:
        return True
    if set(diff) == {()}:
        return False
    return None


def _d_le(a: Optional[Dim], b: Optional[Dim]) -> Optional[bool]:
    """Provable ``a <= b`` given all atoms are nonnegative integers."""
    if a is None or b is None:
        return None
    diff = _d_sub(b, a)
    if all(c >= 0 for c in diff.values()):
        return True
    if diff.get((), 0) < 0 and all(c <= 0 for c in diff.values()):
        return False
    return None


def _d_lt(a: Optional[Dim], b: Optional[Dim]) -> Optional[bool]:
    """Provable ``a < b``."""
    if a is None or b is None:
        return None
    if _d_le(_d_add(a, _d_const(1)), b) is True:
        return True
    if _d_le(b, a) is True:
        return False
    return None


def _d_nonneg(a: Dim) -> bool:
    """Provably >= 0 (all coefficients nonnegative)."""
    return all(c >= 0 for c in a.values())


_ATOM_STRIP = re.compile(r"@\d+")


def _d_str(d: Optional[Dim]) -> str:
    if d is None:
        return "?"
    if not d:
        return "0"
    parts = []
    for mono in sorted(d, key=lambda m: (len(m), m)):
        c = d[mono]
        if not mono:
            parts.append(str(c))
            continue
        body = "*".join(mono)
        if c == 1:
            parts.append(body)
        elif c == -1:
            parts.append("-%s" % body)
        else:
            parts.append("%d*%s" % (c, body))
    out = " + ".join(parts).replace("+ -", "- ")
    return _ATOM_STRIP.sub("", out)


def _d_subst(d: Dim, bindings: Dict[str, Dim]) -> Dim:
    """Substitute bound atoms (unbound atoms stay themselves)."""
    out: Dim = {}
    for mono, c in d.items():
        term = _d_const(c) if not mono else None
        acc: Dim = {(): c}
        for atom in mono:
            acc = _d_mul(acc, bindings.get(atom, _d_atom(atom)))
        term = acc
        out = _d_add(out, term)
    return out


def _d_single_atom(d: Optional[Dim]) -> Optional[str]:
    """The atom name when ``d`` is exactly one atom with coefficient 1."""
    if d is not None and len(d) == 1:
        (mono, c), = d.items()
        if c == 1 and len(mono) == 1:
            return mono[0]
    return None


# ======================================================================
# Contract mini-language
# ======================================================================

_DTYPES = ("f8", "i8", "i4", "i2", "b1", "u4")
_DIM_FUNCS = ("len", "nnz", "rows", "cols")

_TOKEN_RE = re.compile(
    r"\s*(?:(?P<int>\d+)|(?P<name>[A-Za-z_][A-Za-z_0-9]*)|(?P<op>[\[\](),+\-*<]))"
)


class _SpecError(ValueError):
    pass


def _tokenize_spec(text: str) -> List[Tuple[str, str]]:
    toks: List[Tuple[str, str]] = []
    pos = 0
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if not m or m.end() == pos:
            rest = text[pos:].strip()
            if not rest:
                break
            raise _SpecError("unexpected %r" % rest[:10])
        if m.group("int") is not None:
            toks.append(("int", m.group("int")))
        elif m.group("name") is not None:
            toks.append(("name", m.group("name")))
        else:
            toks.append(("op", m.group("op")))
        pos = m.end()
    return toks


@dataclass
class _Spec:
    kind: str                      # array | csc | dim | scalar | any
    dtype: Optional[str] = None
    dims: Optional[List[Dim]] = None
    bound: Optional[Dim] = None
    sorted: bool = False
    unique: bool = False
    text: str = ""


class _SpecParser:
    def __init__(self, toks: List[Tuple[str, str]]):
        self.toks = toks
        self.i = 0

    def peek(self) -> Optional[Tuple[str, str]]:
        return self.toks[self.i] if self.i < len(self.toks) else None

    def next(self) -> Tuple[str, str]:
        tok = self.peek()
        if tok is None:
            raise _SpecError("unexpected end of shape expression")
        self.i += 1
        return tok

    def expect(self, val: str) -> None:
        tok = self.next()
        if tok[1] != val:
            raise _SpecError("expected %r, got %r" % (val, tok[1]))

    # dim := term (("+"|"-") term)*
    def dim(self) -> Dim:
        d = self.term()
        while self.peek() and self.peek()[1] in ("+", "-"):
            op = self.next()[1]
            t = self.term()
            d = _d_add(d, t) if op == "+" else _d_sub(d, t)
        return d

    def term(self) -> Dim:
        d = self.factor()
        while self.peek() and self.peek()[1] == "*":
            self.next()
            d = _d_mul(d, self.factor())
        return d

    def factor(self) -> Dim:
        kind, val = self.next()
        if kind == "int":
            return _d_const(int(val))
        if kind == "name":
            if self.peek() and self.peek()[1] == "(":
                if val not in _DIM_FUNCS:
                    raise _SpecError("unknown dimension function %r" % val)
                self.next()
                arg = self.next()
                if arg[0] != "name":
                    raise _SpecError("dimension function needs a parameter name")
                self.expect(")")
                return _d_atom("%s(%s)" % (val, arg[1]))
            return _d_atom(val)
        raise _SpecError("unexpected %r in dimension" % val)


def parse_shape_spec(text: str) -> _Spec:
    """Parse one shape expression of the contract mini-language."""
    if not isinstance(text, str):
        raise _SpecError("shape declaration must be a string")
    toks = _tokenize_spec(text)
    p = _SpecParser(toks)
    kind, val = p.next()
    if kind != "name":
        raise _SpecError("shape expression must start with a form name")
    spec: _Spec
    if val in ("any", "scalar", "dim") and (p.peek() is None or p.peek()[1] != "["):
        spec = _Spec(kind=val if val != "any" else "any", text=text)
        if val in ("scalar", "dim"):
            spec.kind = val
    elif val == "csc":
        p.expect("[")
        r = p.dim()
        p.expect(",")
        c = p.dim()
        p.expect("]")
        spec = _Spec(kind="csc", dims=[r, c], text=text)
    elif val in _DTYPES or val == "any":
        p.expect("[")
        dims = [p.dim()]
        while p.peek() and p.peek()[1] == ",":
            p.next()
            dims.append(p.dim())
        p.expect("]")
        spec = _Spec(kind="array", dtype=None if val == "any" else val,
                     dims=dims, text=text)
    else:
        raise _SpecError("unknown shape form %r" % val)
    # qualifiers
    while p.peek() is not None:
        kind, val = p.next()
        if val == "sorted":
            spec.sorted = True
        elif val == "unique":
            spec.unique = True
        elif val == "<":
            spec.bound = p.dim()
        else:
            raise _SpecError("unknown qualifier %r" % val)
    if spec.bound is not None and spec.kind not in ("array", "scalar", "dim"):
        raise _SpecError("'< bound' only applies to arrays and scalars")
    return spec


def _spec_atoms(spec: _Spec) -> Set[str]:
    atoms: Set[str] = set()
    for d in (spec.dims or []) + ([spec.bound] if spec.bound is not None else []):
        for mono in d:
            atoms.update(mono)
    return atoms


# ======================================================================
# Abstract values
# ======================================================================


@dataclass(frozen=True)
class _Val:
    kind: str = "any"              # any | scalar | array | csc | tuple | range
    dtype: Optional[str] = None
    shape: Optional[Tuple[Optional[Dim], ...]] = None
    bound: Optional[Dim] = None    # exclusive upper bound on int values
    maxval: Optional[Dim] = None   # provable lower bound on max element
    nonneg: bool = False
    sorted: Optional[bool] = None  # nondecreasing element order
    unique: Optional[bool] = None
    dim: Optional[Dim] = None      # scalars: symbolic value
    rows: Optional[Dim] = None     # csc
    cols: Optional[Dim] = None
    nnz: Optional[Dim] = None
    elts: Optional[Tuple["_Val", ...]] = None


_UNKNOWN = _Val()


def _axis0(v: _Val) -> Optional[Dim]:
    if v.kind == "array" and v.shape:
        return v.shape[0]
    return None


def _provably_nonempty(v: _Val) -> bool:
    d = _axis0(v)
    return d is not None and _d_le(_d_const(1), d) is True


def _is_int_dtype(dt: Optional[str]) -> bool:
    return dt is not None and dt[0] in ("i", "u")


def _join_dim(a: Optional[Dim], b: Optional[Dim]) -> Optional[Dim]:
    return a if _d_eq(a, b) is True else None


def _join_flag(a: Optional[bool], b: Optional[bool]) -> Optional[bool]:
    return a if a == b else None


def _join(a: _Val, b: _Val) -> _Val:
    if a == b:
        return a
    if a.kind != b.kind:
        return _UNKNOWN
    shape: Optional[Tuple[Optional[Dim], ...]] = None
    if a.shape is not None and b.shape is not None and len(a.shape) == len(b.shape):
        shape = tuple(_join_dim(x, y) for x, y in zip(a.shape, b.shape))
    return _Val(
        kind=a.kind,
        dtype=a.dtype if a.dtype == b.dtype else None,
        shape=shape,
        bound=_join_dim(a.bound, b.bound),
        maxval=_join_dim(a.maxval, b.maxval),
        nonneg=a.nonneg and b.nonneg,
        sorted=_join_flag(a.sorted, b.sorted),
        unique=_join_flag(a.unique, b.unique),
        dim=_join_dim(a.dim, b.dim),
        rows=_join_dim(a.rows, b.rows),
        cols=_join_dim(a.cols, b.cols),
        nnz=_join_dim(a.nnz, b.nnz),
    )


def _merge_envs(a: Dict[str, _Val], b: Dict[str, _Val]) -> Dict[str, _Val]:
    return {k: _join(a[k], b[k]) for k in a.keys() & b.keys()}


# numpy dtype expression -> tag
_DTYPE_TAGS = {
    "int64": "i8", "intp": "i8", "int_": "i8", "int": "i8",
    "int32": "i4", "intc": "i4",
    "int16": "i2",
    "uint32": "u4",
    "float64": "f8", "double": "f8", "float": "f8", "float_": "f8",
    "bool": "b1", "bool_": "b1",
}


def _dtype_tag_of_expr(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Attribute):
        return _DTYPE_TAGS.get(node.attr)
    if isinstance(node, ast.Name):
        return _DTYPE_TAGS.get(node.id)
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return _DTYPE_TAGS.get(node.value)
    return None


def _attr_chain(node: ast.expr) -> Optional[List[str]]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return list(reversed(parts))
    return None


# ======================================================================
# Contract collection
# ======================================================================


@dataclass
class _Contract:
    name: str
    relpath: str
    line: int
    params: List[str]
    specs: Dict[str, _Spec]
    returns: Optional[_Spec]
    is_method: bool
    is_classmethod: bool


def _decorator_is(dec: ast.expr, name: str) -> bool:
    if not isinstance(dec, ast.Call):
        return False
    fn = dec.func
    return (isinstance(fn, ast.Name) and fn.id == name) or (
        isinstance(fn, ast.Attribute) and fn.attr == name)


def _parse_shapes_decorator(
    node: ast.FunctionDef,
    relpath: str,
    in_class: bool,
    findings: List[ShapeFinding],
) -> Optional[_Contract]:
    dec = next((d for d in node.decorator_list if _decorator_is(d, "shapes")), None)
    if dec is None:
        return None
    params = [a.arg for a in node.args.posonlyargs + node.args.args]
    is_classmethod = any(
        isinstance(d, ast.Name) and d.id == "classmethod"
        for d in node.decorator_list)
    is_staticmethod = any(
        isinstance(d, ast.Name) and d.id == "staticmethod"
        for d in node.decorator_list)
    kwonly = {a.arg for a in node.args.kwonlyargs}
    specs: Dict[str, _Spec] = {}
    returns: Optional[_Spec] = None
    ok = True
    for kw in dec.keywords:
        if kw.arg is None or not (
            isinstance(kw.value, ast.Constant) and isinstance(kw.value.value, str)
        ):
            findings.append(ShapeFinding(
                relpath, dec.lineno, "S5",
                "malformed @shapes declaration on %r: values must be "
                "string literals" % node.name))
            ok = False
            continue
        try:
            spec = parse_shape_spec(kw.value.value)
        except _SpecError as exc:
            findings.append(ShapeFinding(
                relpath, dec.lineno, "S5",
                "malformed @shapes declaration on %r: %s in %r"
                % (node.name, exc, kw.value.value)))
            ok = False
            continue
        if kw.arg == "returns":
            returns = spec
        elif kw.arg in params or kw.arg in kwonly:
            specs[kw.arg] = spec
        else:
            findings.append(ShapeFinding(
                relpath, dec.lineno, "S5",
                "@shapes on %r declares unknown parameter %r"
                % (node.name, kw.arg)))
            ok = False
    if not ok and not specs and returns is None:
        return None
    return _Contract(
        name=node.name,
        relpath=relpath,
        line=node.lineno,
        params=params,
        specs=specs,
        returns=returns,
        is_method=in_class and not is_staticmethod,
        is_classmethod=is_classmethod,
    )


class _Registry:
    """Name -> contract; ambiguous names resolve to nothing."""

    def __init__(self) -> None:
        self._by_name: Dict[str, List[_Contract]] = {}

    def add(self, contract: _Contract) -> None:
        self._by_name.setdefault(contract.name, []).append(contract)

    def resolve(self, name: str) -> Optional[_Contract]:
        lst = self._by_name.get(name)
        if lst and len(lst) == 1:
            return lst[0]
        return None

    def all(self) -> List[_Contract]:
        return [c for lst in self._by_name.values() for c in lst]


def _contract_dim_resolver(contract: _Contract) -> Dict[str, Dim]:
    """Bindings mapping dimension-function atoms of declared params to
    their declared dimensions (``len(x)`` -> x's declared axis-0 dim,
    ``rows(A)``/``cols(A)`` -> A's declared row/col dims)."""
    bindings: Dict[str, Dim] = {}
    for pname, spec in contract.specs.items():
        if spec.kind == "array" and spec.dims and len(spec.dims) == 1:
            bindings["len(%s)" % pname] = spec.dims[0]
        elif spec.kind == "csc" and spec.dims:
            bindings["rows(%s)" % pname] = spec.dims[0]
            bindings["cols(%s)" % pname] = spec.dims[1]
    return bindings


def _val_from_spec(spec: _Spec, pname: str,
                   resolver: Dict[str, Dim]) -> _Val:
    if spec.kind == "dim":
        return _Val(kind="scalar", dim=_d_atom(pname), nonneg=True)
    if spec.kind == "scalar":
        b = _d_subst(spec.bound, resolver) if spec.bound is not None else None
        return _Val(kind="scalar", bound=b, nonneg=b is not None)
    if spec.kind == "csc":
        return _Val(
            kind="csc",
            rows=_d_subst(spec.dims[0], resolver),
            cols=_d_subst(spec.dims[1], resolver),
            nnz=_d_atom("nnz(%s)" % pname),
        )
    if spec.kind == "array":
        b = _d_subst(spec.bound, resolver) if spec.bound is not None else None
        return _Val(
            kind="array",
            dtype=spec.dtype,
            shape=tuple(_d_subst(d, resolver) for d in spec.dims),
            bound=b,
            nonneg=b is not None,
            sorted=True if spec.sorted else None,
            unique=True if spec.unique else None,
        )
    return _UNKNOWN


# ======================================================================
# Pins
# ======================================================================

_PIN_RE = re.compile(r"#\s*shapes:\s*(.+?)\s*$")


def _scan_pins(source: str, relpath: str,
               findings: List[ShapeFinding]) -> Set[int]:
    """Line numbers carrying ``# shapes: ignore``."""
    ignore: Set[int] = set()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            m = _PIN_RE.search(tok.string)
            if not m:
                continue
            if m.group(1) == "ignore":
                ignore.add(tok.start[0])
            else:
                findings.append(ShapeFinding(
                    relpath, tok.start[0], "S5",
                    "unknown '# shapes:' pin %r (only 'ignore' is "
                    "supported)" % m.group(1)))
    except tokenize.TokenError:
        pass
    return ignore


# ======================================================================
# The abstract interpreter
# ======================================================================

_REDUCEAT_UFUNCS = ("add", "subtract", "maximum", "minimum", "multiply")
_NARROW_DTYPES = ("i4", "i2", "u4")


class _ShapeInterp:
    """Interpret one function body, emitting S1-S5 findings."""

    def __init__(
        self,
        relpath: str,
        fn: ast.FunctionDef,
        contract: Optional[_Contract],
        registry: _Registry,
        findings: List[ShapeFinding],
        kernel: bool,
        summaries: Dict[str, _Val],
    ) -> None:
        self.relpath = relpath
        self.fn = fn
        self.contract = contract
        self.registry = registry
        self.findings = findings
        self.kernel = kernel
        self.summaries = summaries
        self.env: Dict[str, _Val] = {}
        self.declared: Set[str] = set()
        self.returns: List[_Val] = []
        self._fresh = 0
        self._ver: Dict[str, int] = {}
        self._cs = 0

    # ------------------------------------------------------------------
    def run(self) -> _Val:
        if self.contract is not None:
            resolver = _contract_dim_resolver(self.contract)
            atoms: Set[str] = set()
            for spec in self.contract.specs.values():
                atoms |= _spec_atoms(spec)
            if self.contract.returns is not None:
                atoms |= _spec_atoms(self.contract.returns)
            for pname, spec in self.contract.specs.items():
                self.env[pname] = _val_from_spec(spec, pname, resolver)
            for pname in self.contract.params:
                if pname not in self.env and pname in atoms:
                    self.env[pname] = _Val(
                        kind="scalar", dim=_d_atom(pname), nonneg=True)
            self.declared = {a for a in atoms if "(" not in a}
            self._resolver = resolver
        else:
            self._resolver = {}
        for stmt in self.fn.body:
            self._stmt(stmt)
        ret = self.returns[0] if self.returns else _UNKNOWN
        for r in self.returns[1:]:
            ret = _join(ret, r)
        return ret

    def _emit(self, node: ast.AST, code: str, msg: str) -> None:
        self.findings.append(ShapeFinding(
            self.relpath, getattr(node, "lineno", self.fn.lineno), code, msg))

    def _fresh_atom(self) -> Dim:
        self._fresh += 1
        return _d_atom("?@%d" % self._fresh)

    def _bind(self, name: str, val: _Val) -> None:
        self._ver[name] = self._ver.get(name, 0) + 1
        self.env[name] = val

    def _len_atom(self, node: ast.expr) -> Dim:
        """A stable atom for the unknown length of a named variable."""
        if isinstance(node, ast.Name):
            ver = self._ver.get(node.id, 0)
            return _d_atom("len(%s)@%d" % (node.id, ver))
        return self._fresh_atom()

    # ------------------------------------------------------------------
    # statements

    def _stmt(self, node: ast.stmt) -> None:
        if isinstance(node, ast.Assign):
            val = self._eval(node.value)
            for tgt in node.targets:
                self._assign(tgt, val)
        elif isinstance(node, ast.AnnAssign):
            if node.value is not None:
                self._assign(node.target, self._eval(node.value))
        elif isinstance(node, ast.AugAssign):
            if isinstance(node.target, ast.Subscript):
                self._store(node.target, self._eval(node.value), aug=True)
            elif isinstance(node.target, ast.Name):
                cur = self.env.get(node.target.id, _UNKNOWN)
                rhs = self._eval(node.value)
                self._bind(node.target.id, self._binop(node, cur, rhs, node.op))
        elif isinstance(node, ast.Expr):
            self._eval(node.value)
        elif isinstance(node, ast.Return):
            if node.value is not None:
                self.returns.append(self._eval(node.value))
            else:
                self.returns.append(_Val(kind="any"))
        elif isinstance(node, ast.If):
            self._eval(node.test)
            env_t = dict(self.env)
            env_f = dict(self.env)
            self.env = env_t
            for s in node.body:
                self._stmt(s)
            env_t, self.env = self.env, env_f
            for s in node.orelse:
                self._stmt(s)
            self.env = _merge_envs(env_t, self.env)
        elif isinstance(node, (ast.For, ast.While)):
            if isinstance(node, ast.For):
                it = self._eval(node.iter)
                self._assign(node.target, self._iter_elem(it))
            else:
                self._eval(node.test)
            pre = dict(self.env)
            for s in node.body:
                self._stmt(s)
            for s in node.orelse:
                self._stmt(s)
            self.env = _merge_envs(pre, self.env)
        elif isinstance(node, ast.With):
            for item in node.items:
                self._eval(item.context_expr)
                if item.optional_vars is not None:
                    self._assign(item.optional_vars, _UNKNOWN)
            for s in node.body:
                self._stmt(s)
        elif isinstance(node, ast.Try):
            pre = dict(self.env)
            for s in node.body:
                self._stmt(s)
            body_env = self.env
            for handler in node.handlers:
                self.env = dict(pre)
                for s in handler.body:
                    self._stmt(s)
            self.env = body_env
            for s in node.finalbody:
                self._stmt(s)
        elif isinstance(node, (ast.Assert, ast.Raise)):
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    self._eval(child)
        elif isinstance(node, ast.Delete):
            for tgt in node.targets:
                if isinstance(tgt, ast.Name):
                    self.env.pop(tgt.id, None)
        # nested defs/classes/imports/pass/etc: skip

    def _iter_elem(self, it: _Val) -> _Val:
        if it.kind == "range":
            return _Val(kind="scalar", bound=it.bound, nonneg=it.nonneg)
        if it.kind == "array":
            return _Val(kind="scalar", dtype=it.dtype, bound=it.bound,
                        nonneg=it.nonneg)
        return _UNKNOWN

    def _assign(self, tgt: ast.expr, val: _Val) -> None:
        if isinstance(tgt, ast.Name):
            self._bind(tgt.id, val)
        elif isinstance(tgt, (ast.Tuple, ast.List)):
            elts = val.elts if val.kind == "tuple" and val.elts else None
            for i, sub in enumerate(tgt.elts):
                if isinstance(sub, ast.Starred):
                    self._assign(sub.value, _UNKNOWN)
                elif elts is not None and i < len(elts):
                    self._assign(sub, elts[i])
                else:
                    self._assign(sub, _UNKNOWN)
        elif isinstance(tgt, ast.Subscript):
            self._store(tgt, val, aug=False)
        # attribute targets: no tracking

    # ------------------------------------------------------------------
    # subscripts

    def _check_gather(self, node: ast.AST, idx: _Val, length: Optional[Dim],
                      what: str) -> None:
        """S1 when an index is provably out of bounds for ``length``.

        Array indexes need a provable *lower bound on the max element*
        (``maxval``) plus provable nonemptiness — an over-approximate
        upper bound exceeding the buffer proves nothing."""
        if length is None:
            return
        if idx.kind == "scalar" and idx.dim is not None:
            if _d_nonneg(idx.dim) and _d_lt(idx.dim, length) is False:
                self._emit(node, "S1",
                           "%s: index %s is provably >= length %s"
                           % (what, _d_str(idx.dim), _d_str(length)))
        elif idx.kind == "array" and idx.maxval is not None \
                and _provably_nonempty(idx):
            if _d_lt(idx.maxval, length) is False:
                self._emit(node, "S1",
                           "%s: index reaches %s, provably >= buffer "
                           "length %s"
                           % (what, _d_str(idx.maxval), _d_str(length)))

    def _conform(self, node: ast.AST, a: _Val, b: _Val, what: str) -> None:
        """S3 when two 1-D operands have provably different lengths."""
        da, db = _axis0(a), _axis0(b)
        if da is None or db is None:
            return
        if len(a.shape or ()) != 1 or len(b.shape or ()) != 1:
            return
        if _d_eq(da, _d_const(1)) is True or _d_eq(db, _d_const(1)) is True:
            return  # broadcastable
        if _d_eq(da, db) is False:
            self._emit(node, "S3",
                       "%s: shapes (%s,) and (%s,) are provably different"
                       % (what, _d_str(da), _d_str(db)))
            return
        sa, sb = _d_single_atom(da), _d_single_atom(db)
        if (sa and sb and sa != sb and sa in self.declared
                and sb in self.declared):
            self._emit(node, "S3",
                       "%s: mixes declared dimensions %r and %r"
                       % (what, sa, sb))

    def _subscript_load(self, node: ast.Subscript) -> _Val:
        val = self._eval(node.value)
        sl = node.slice
        if val.kind == "tuple" and isinstance(sl, ast.Constant) \
                and isinstance(sl.value, int) and val.elts:
            if 0 <= sl.value < len(val.elts):
                return val.elts[sl.value]
            return _UNKNOWN
        if val.kind != "array":
            if isinstance(sl, ast.Slice):
                self._slice_parts(sl)
            else:
                self._eval(sl)
            return _UNKNOWN
        length = _axis0(val)
        if isinstance(sl, ast.Slice):
            return self._sliced(node, val, sl)
        if isinstance(sl, ast.Tuple):
            for e in sl.elts:
                if isinstance(e, ast.Slice):
                    self._slice_parts(e)
                else:
                    self._eval(e)
            return _Val(kind="array", dtype=val.dtype)
        idx = self._eval(sl)
        if idx.kind == "scalar":
            self._check_gather(node, idx, length, "gather")
            return _Val(kind="scalar", dtype=val.dtype, bound=val.bound,
                        nonneg=val.nonneg)
        if idx.kind == "array":
            if idx.dtype == "b1":
                self._conform(node, idx, val, "boolean mask")
                return _Val(kind="array", dtype=val.dtype, shape=(None,),
                            bound=val.bound, nonneg=val.nonneg,
                            sorted=val.sorted, unique=val.unique)
            self._check_gather(node, idx, length, "gather")
            srt = True if (val.sorted is True and idx.sorted is True) else None
            unq = True if (val.unique is True and idx.unique is True) else None
            return _Val(kind="array", dtype=val.dtype, shape=idx.shape,
                        bound=val.bound, nonneg=val.nonneg,
                        sorted=srt, unique=unq)
        return _Val(kind="array", dtype=val.dtype) if idx.kind == "any" \
            else _UNKNOWN

    def _slice_parts(self, sl: ast.Slice) -> Tuple[Optional[_Val], ...]:
        lo = self._eval(sl.lower) if sl.lower is not None else None
        hi = self._eval(sl.upper) if sl.upper is not None else None
        st = self._eval(sl.step) if sl.step is not None else None
        return lo, hi, st

    def _sliced(self, node: ast.AST, val: _Val, sl: ast.Slice) -> _Val:
        lo, hi, st = self._slice_parts(sl)
        length = _axis0(val)
        out_len: Optional[Dim] = None
        srt = val.sorted
        mv: Optional[Dim] = None
        if st is None:
            lo_d = lo.dim if lo is not None and lo.kind == "scalar" else (
                _d_const(0) if lo is None else None)
            hi_d = hi.dim if hi is not None and hi.kind == "scalar" else (
                length if hi is None else None)
            if lo_d is not None and hi_d is not None:
                neg_hi = not _d_nonneg(hi_d)
                if neg_hi and length is not None:
                    hi_d = _d_add(length, hi_d)
                    neg_hi = False
                if not neg_hi and _d_nonneg(lo_d):
                    ok_hi = length is None or _d_le(hi_d, length) is not False
                    if _d_le(lo_d, hi_d) is True and ok_hi:
                        out_len = _d_sub(hi_d, lo_d)
        elif st.kind == "scalar" and st.dim is not None \
                and _d_eq(st.dim, _d_const(-1)) is True \
                and lo is None and hi is None:
            out_len = length
            mv = val.maxval
            if val.sorted is True and length is not None \
                    and _d_le(_d_const(2), length) is True:
                srt = False
            else:
                srt = None
        else:
            srt = None
        return _Val(kind="array", dtype=val.dtype,
                    shape=(out_len,) if out_len is not None else (None,),
                    bound=val.bound, maxval=mv, nonneg=val.nonneg,
                    sorted=srt, unique=val.unique)

    def _store(self, node: ast.Subscript, rhs: _Val, aug: bool) -> None:
        val = self._eval(node.value)
        sl = node.slice
        if val.kind != "array":
            if isinstance(sl, ast.Slice):
                self._slice_parts(sl)
            else:
                self._eval(sl)
            return
        length = _axis0(val)
        if isinstance(sl, ast.Slice):
            out = self._sliced(node, val, sl)
            if rhs.kind == "array":
                self._conform(node, out, rhs, "sliced store")
            return
        if isinstance(sl, ast.Tuple):
            for e in sl.elts:
                if isinstance(e, ast.Slice):
                    self._slice_parts(e)
                else:
                    self._eval(e)
            return
        idx = self._eval(sl)
        if idx.kind == "scalar":
            self._check_gather(node, idx, length, "scatter")
            return
        if idx.kind == "array":
            if idx.dtype == "b1":
                self._conform(node, idx, val, "boolean mask store")
                return
            self._check_gather(node, idx, length, "scatter")
            if idx.unique is False:
                self._emit(node, "S2",
                           "scatter target provably contains duplicate "
                           "indices; updates would collide (use ufunc.at "
                           "or reduceat for accumulation)")
            if rhs.kind == "array":
                self._conform(node, idx, rhs, "scatter store")

    # ------------------------------------------------------------------
    # expressions

    def _eval(self, node: ast.expr) -> _Val:
        if isinstance(node, ast.Constant):
            v = node.value
            if isinstance(v, bool):
                return _Val(kind="scalar", dtype="b1")
            if isinstance(v, int):
                return _Val(kind="scalar", dim=_d_const(v), nonneg=v >= 0)
            if isinstance(v, float):
                return _Val(kind="scalar", dtype="f8")
            return _UNKNOWN
        if isinstance(node, ast.Name):
            return self.env.get(node.id, _UNKNOWN)
        if isinstance(node, (ast.Tuple, ast.List)):
            return _Val(kind="tuple",
                        elts=tuple(self._eval(e) for e in node.elts))
        if isinstance(node, ast.Attribute):
            return self._attribute(node)
        if isinstance(node, ast.Subscript):
            return self._subscript_load(node)
        if isinstance(node, ast.BinOp):
            a = self._eval(node.left)
            b = self._eval(node.right)
            return self._binop(node, a, b, node.op)
        if isinstance(node, ast.UnaryOp):
            v = self._eval(node.operand)
            if isinstance(node.op, ast.USub) and v.kind == "scalar" \
                    and v.dim is not None:
                return _Val(kind="scalar", dim=_d_neg(v.dim))
            if isinstance(node.op, ast.Not):
                return _Val(kind="scalar", dtype="b1")
            if isinstance(node.op, ast.Invert) and v.kind == "array":
                return replace(v, bound=None, nonneg=False, sorted=None,
                               unique=None)
            return v if v.kind == "array" else _UNKNOWN
        if isinstance(node, ast.Compare):
            vals = [self._eval(node.left)] + [
                self._eval(c) for c in node.comparators]
            arrays = [v for v in vals if v.kind == "array"]
            for i in range(len(arrays) - 1):
                self._conform(node, arrays[i], arrays[i + 1], "comparison")
            if arrays:
                return _Val(kind="array", dtype="b1", shape=arrays[0].shape)
            return _Val(kind="scalar", dtype="b1")
        if isinstance(node, ast.BoolOp):
            for v in node.values:
                self._eval(v)
            return _UNKNOWN
        if isinstance(node, ast.IfExp):
            self._eval(node.test)
            return _join(self._eval(node.body), self._eval(node.orelse))
        if isinstance(node, ast.Call):
            return self._call(node)
        if isinstance(node, ast.Starred):
            return self._eval(node.value)
        if isinstance(node, ast.JoinedStr):
            for v in node.values:
                if isinstance(v, ast.FormattedValue):
                    self._eval(v.value)
            return _UNKNOWN
        # comprehensions/lambdas/etc: opaque (comp variables are local)
        return _UNKNOWN

    def _binop(self, node: ast.AST, a: _Val, b: _Val, op: ast.operator) -> _Val:
        if a.kind == "scalar" and b.kind == "scalar":
            if a.dim is not None and b.dim is not None:
                if isinstance(op, ast.Add):
                    return _Val(kind="scalar", dim=_d_add(a.dim, b.dim),
                                nonneg=a.nonneg and b.nonneg)
                if isinstance(op, ast.Sub):
                    d = _d_sub(a.dim, b.dim)
                    return _Val(kind="scalar", dim=d, nonneg=_d_nonneg(d))
                if isinstance(op, ast.Mult):
                    return _Val(kind="scalar", dim=_d_mul(a.dim, b.dim),
                                nonneg=a.nonneg and b.nonneg)
            if isinstance(op, ast.Mod) and b.dim is not None:
                return _Val(kind="scalar", bound=b.dim,
                            nonneg=a.nonneg and b.nonneg)
            return _Val(kind="scalar", dtype="f8" if "f8" in (a.dtype, b.dtype)
                        else None)
        if a.kind == "array" or b.kind == "array":
            if a.kind == "array" and b.kind == "array":
                self._conform(node, a, b, "elementwise op")
            arr = a if a.kind == "array" else b
            other = b if a.kind == "array" else a
            dtype = None
            if "f8" in (a.dtype, b.dtype) or isinstance(op, ast.Div):
                dtype = "f8"
            elif _is_int_dtype(arr.dtype) and (
                    other.kind != "array" or _is_int_dtype(other.dtype)):
                dtype = arr.dtype
            shape = arr.shape
            if a.kind == "array" and b.kind == "array" \
                    and _axis0(a) is None and _axis0(b) is not None:
                shape = b.shape
            nonneg = False
            if isinstance(op, (ast.Add, ast.Mult)):
                nonneg = a.nonneg and b.nonneg
            if isinstance(op, ast.Mod) and other.kind == "scalar" \
                    and other.dim is not None and a.kind == "array":
                return _Val(kind="array", dtype=arr.dtype, shape=shape,
                            bound=other.dim, nonneg=a.nonneg and other.nonneg)
            return _Val(kind="array", dtype=dtype, shape=shape, nonneg=nonneg)
        return _UNKNOWN

    def _attribute(self, node: ast.Attribute) -> _Val:
        obj = self._eval(node.value)
        attr = node.attr
        if obj.kind == "csc":
            if attr == "indptr":
                n_cols = obj.cols
                shape = (_d_add(n_cols, _d_const(1)),) if n_cols is not None \
                    else (None,)
                bound = _d_add(obj.nnz, _d_const(1)) if obj.nnz is not None \
                    else None
                return _Val(kind="array", dtype="i8", shape=shape,
                            bound=bound, nonneg=True, sorted=True)
            if attr == "indices":
                return _Val(kind="array", dtype="i8",
                            shape=(obj.nnz,) if obj.nnz is not None else (None,),
                            bound=obj.rows, nonneg=True)
            if attr == "data":
                return _Val(kind="array", dtype="f8",
                            shape=(obj.nnz,) if obj.nnz is not None else (None,))
            if attr == "n_rows":
                return _Val(kind="scalar", dim=obj.rows, nonneg=True)
            if attr == "n_cols":
                return _Val(kind="scalar", dim=obj.cols, nonneg=True)
            if attr == "nnz":
                return _Val(kind="scalar", dim=obj.nnz, nonneg=True)
            if attr == "shape":
                return _Val(kind="tuple", elts=(
                    _Val(kind="scalar", dim=obj.rows, nonneg=True),
                    _Val(kind="scalar", dim=obj.cols, nonneg=True)))
            return _UNKNOWN
        if obj.kind == "array":
            if attr == "size":
                if obj.shape is not None and len(obj.shape) == 1 \
                        and obj.shape[0] is not None:
                    return _Val(kind="scalar", dim=obj.shape[0], nonneg=True)
                return _Val(kind="scalar", dim=self._len_atom(node.value),
                            nonneg=True)
            if attr == "shape":
                if obj.shape is not None:
                    return _Val(kind="tuple", elts=tuple(
                        _Val(kind="scalar", dim=d, nonneg=True)
                        for d in obj.shape))
                return _UNKNOWN
            if attr == "T":
                return _Val(kind="array", dtype=obj.dtype)
        return _UNKNOWN

    # ------------------------------------------------------------------
    # calls

    def _call(self, node: ast.Call) -> _Val:
        func = node.func
        args = [self._eval(a) for a in node.args]
        kwargs = {kw.arg: self._eval(kw.value) for kw in node.keywords
                  if kw.arg is not None}
        for kw in node.keywords:
            if kw.arg is None:
                self._eval(kw.value)
        chain = _attr_chain(func) if isinstance(func, ast.Attribute) else None
        if chain is not None and chain[0] in ("np", "numpy"):
            return self._np_call(node, chain[1:], args, kwargs)
        if chain is not None and chain[0] == "CSC" and len(chain) == 2:
            return self._csc_classmethod(chain[1], args)
        if isinstance(func, ast.Name):
            return self._name_call(node, func.id, args, kwargs)
        if isinstance(func, ast.Attribute):
            recv = self._eval(func.value)
            return self._method_call(node, recv, func.attr, args, kwargs)
        self._eval(func)
        return _UNKNOWN

    def _name_call(self, node: ast.Call, name: str, args: List[_Val],
                   kwargs: Dict[str, _Val]) -> _Val:
        if name == "len" and len(node.args) == 1:
            v = args[0]
            if v.kind == "array" and v.shape and v.shape[0] is not None:
                return _Val(kind="scalar", dim=v.shape[0], nonneg=True)
            if v.kind == "tuple" and v.elts is not None:
                return _Val(kind="scalar", dim=_d_const(len(v.elts)),
                            nonneg=True)
            if v.kind == "array":
                return _Val(kind="scalar", dim=self._len_atom(node.args[0]),
                            nonneg=True)
            return _Val(kind="scalar", nonneg=True)
        if name == "range":
            if len(args) == 1:
                v = args[0]
                return _Val(kind="range",
                            bound=v.dim if v.kind == "scalar" else None,
                            nonneg=True)
            if len(args) >= 2:
                v = args[1]
                return _Val(
                    kind="range",
                    bound=v.dim if v.kind == "scalar" else None,
                    nonneg=args[0].kind == "scalar"
                    and args[0].dim is not None and _d_nonneg(args[0].dim))
            return _Val(kind="range")
        if name == "int" and len(args) == 1:
            v = args[0]
            if v.kind == "scalar":
                return replace(v, dtype=None)
            return _Val(kind="scalar")
        if name == "float" and len(args) == 1:
            return _Val(kind="scalar", dtype="f8")
        if name in ("enumerate", "zip", "sorted", "list", "tuple", "set",
                    "dict", "reversed", "isinstance", "getattr", "hasattr",
                    "print", "repr", "str", "bool", "abs", "sum"):
            return _UNKNOWN
        if name in ("min", "max") and len(args) >= 2:
            return _Val(kind="scalar")
        if name == "CSC":
            return self._csc_ctor(args)
        contract = self.registry.resolve(name)
        if contract is not None and not contract.is_method:
            return self._contract_call(node, contract, args, kwargs)
        summ = self.summaries.get(name)
        if summ is not None:
            return summ
        return _UNKNOWN

    def _csc_ctor(self, args: List[_Val]) -> _Val:
        rows = args[0].dim if len(args) > 0 and args[0].kind == "scalar" else None
        cols = args[1].dim if len(args) > 1 and args[1].kind == "scalar" else None
        nnz = _axis0(args[4]) if len(args) > 4 else None
        return _Val(kind="csc", rows=rows, cols=cols, nnz=nnz)

    def _csc_classmethod(self, name: str, args: List[_Val]) -> _Val:
        if name == "empty" and len(args) >= 2:
            return _Val(kind="csc",
                        rows=args[0].dim if args[0].kind == "scalar" else None,
                        cols=args[1].dim if args[1].kind == "scalar" else None,
                        nnz=_d_const(0))
        if name == "identity" and len(args) >= 1:
            d = args[0].dim if args[0].kind == "scalar" else None
            return _Val(kind="csc", rows=d, cols=d, nnz=d)
        if name == "from_coo":
            return _Val(kind="csc")
        return _UNKNOWN

    def _method_call(self, node: ast.Call, recv: _Val, name: str,
                     args: List[_Val], kwargs: Dict[str, _Val]) -> _Val:
        if recv.kind == "array":
            if name == "astype":
                tgt = None
                if node.args:
                    tgt = _dtype_tag_of_expr(node.args[0])
                if tgt in _NARROW_DTYPES and self.kernel and (
                        recv.dtype is None or _is_int_dtype(recv.dtype)
                        or recv.dtype == "f8"):
                    self._emit(node, "S4",
                               "narrowing cast to %s breaks the package-wide "
                               "int64 index discipline" % tgt)
                return replace(recv, dtype=tgt if tgt else recv.dtype)
            if name == "copy":
                return recv
            if name in ("sum",):
                return _Val(kind="scalar",
                            dtype="f8" if recv.dtype == "f8" else None,
                            nonneg=recv.nonneg)
            if name in ("max", "min"):
                return _Val(kind="scalar", dtype=recv.dtype, bound=recv.bound,
                            nonneg=recv.nonneg)
            if name == "searchsorted" and args:
                return self._searchsorted(recv, args[0])
            if name == "argsort":
                return self._argsort(recv)
            if name in ("cumsum",):
                return _Val(kind="array", dtype=recv.dtype, shape=recv.shape,
                            sorted=True if recv.nonneg else None,
                            nonneg=recv.nonneg)
            if name in ("fill", "sort", "tolist", "item", "any", "all",
                        "nonzero", "reshape", "ravel", "mean", "dot",
                        "view"):
                return _UNKNOWN
        if recv.kind == "csc":
            contract = self.registry.resolve(name)
            if contract is not None and contract.is_method:
                self_spec = contract.specs.get("self")
                if self_spec is not None and self_spec.kind == "csc":
                    return self._contract_call(node, contract, args, kwargs,
                                               recv=recv)
            return _UNKNOWN
        return _UNKNOWN

    # ------------------------------------------------------------------
    # numpy model

    def _searchsorted(self, a: _Val, v: _Val) -> _Val:
        la = _axis0(a)
        bound = _d_add(la, _d_const(1)) if la is not None else None
        if v.kind == "array":
            return _Val(kind="array", dtype="i8", shape=v.shape, bound=bound,
                        nonneg=True, sorted=v.sorted)
        return _Val(kind="scalar", dtype="i8", bound=bound, nonneg=True)

    def _argsort(self, x: _Val) -> _Val:
        lx = _axis0(x)
        return _Val(kind="array", dtype="i8", shape=x.shape, bound=lx,
                    maxval=_d_sub(lx, _d_const(1)) if lx is not None else None,
                    nonneg=True, unique=True)

    def _alloc_shape(self, node: ast.Call, arg: _Val
                     ) -> Optional[Tuple[Optional[Dim], ...]]:
        if arg.kind == "scalar":
            if arg.dim is not None:
                if any(len(m) >= 2 for m in arg.dim) and self.kernel:
                    self._emit(node, "S4",
                               "flat allocation length %s is a product of "
                               "dimensions (int32-overflow hazard; allocate "
                               "2-D or pre-widen)" % _d_str(arg.dim))
                return (arg.dim,)
            return (None,)
        if arg.kind == "tuple" and arg.elts is not None:
            return tuple(e.dim if e.kind == "scalar" else None
                         for e in arg.elts)
        return None

    def _dtype_kwarg(self, node: ast.Call, default: Optional[str]
                     ) -> Optional[str]:
        for kw in node.keywords:
            if kw.arg == "dtype":
                tag = _dtype_tag_of_expr(kw.value)
                if tag in _NARROW_DTYPES and self.kernel:
                    self._emit(node, "S4",
                               "%s index array created in kernel code (the "
                               "tree is int64-only)" % tag)
                return tag if tag is not None else None
        return default

    def _np_call(self, node: ast.Call, chain: List[str], args: List[_Val],
                 kwargs: Dict[str, _Val]) -> _Val:
        if len(chain) == 2 and chain[0] in _REDUCEAT_UFUNCS:
            ufunc, meth = chain
            if meth == "reduceat" and len(args) >= 2:
                v, seg = args[0], args[1]
                lv = _axis0(v)
                if seg.kind == "array":
                    if seg.sorted is False:
                        self._emit(node, "S2",
                                   "reduceat segment starts are provably "
                                   "unsorted")
                    if seg.maxval is not None and lv is not None \
                            and _provably_nonempty(seg) \
                            and _d_lt(seg.maxval, lv) is False:
                        self._emit(node, "S2",
                                   "reduceat segment starts reach %s, "
                                   "provably >= operand length %s"
                                   % (_d_str(seg.maxval), _d_str(lv)))
                return _Val(kind="array", dtype=v.dtype,
                            shape=seg.shape if seg.kind == "array" else None)
            if meth == "at" and len(args) >= 2:
                tgt, idx = args[0], args[1]
                if idx.kind == "array":
                    self._check_gather(node, idx, _axis0(tgt), "ufunc.at")
                return _UNKNOWN
            if meth == "reduce":
                return _Val(kind="scalar")
            return _UNKNOWN
        if len(chain) != 1:
            return _UNKNOWN
        name = chain[0]
        if name in ("zeros", "empty", "ones"):
            shape = self._alloc_shape(node, args[0]) if args else None
            dtype = self._dtype_kwarg(node, "f8")
            return _Val(kind="array", dtype=dtype, shape=shape,
                        nonneg=name != "empty" and dtype != "f8")
        if name == "full":
            shape = self._alloc_shape(node, args[0]) if args else None
            fill = args[1] if len(args) > 1 else _UNKNOWN
            dtype = self._dtype_kwarg(
                node, "f8" if fill.dtype == "f8" else None)
            nonneg = fill.kind == "scalar" and fill.dim is not None \
                and _d_nonneg(fill.dim)
            return _Val(kind="array", dtype=dtype, shape=shape, nonneg=nonneg)
        if name in ("zeros_like", "empty_like", "ones_like"):
            src = args[0] if args else _UNKNOWN
            dtype = self._dtype_kwarg(node, src.dtype)
            return _Val(kind="array", dtype=dtype, shape=src.shape)
        if name == "arange":
            dtype = self._dtype_kwarg(node, "i8")
            dims = [a.dim if a.kind == "scalar" else None for a in args]
            if len(args) == 1 and dims[0] is not None:
                return _Val(kind="array", dtype=dtype, shape=(dims[0],),
                            bound=dims[0],
                            maxval=_d_sub(dims[0], _d_const(1)),
                            nonneg=True, sorted=True, unique=True)
            if len(args) == 2 and dims[0] is not None and dims[1] is not None \
                    and _d_nonneg(dims[0]) \
                    and _d_le(dims[0], dims[1]) is True:
                return _Val(kind="array", dtype=dtype,
                            shape=(_d_sub(dims[1], dims[0]),),
                            bound=dims[1],
                            maxval=_d_sub(dims[1], _d_const(1)),
                            nonneg=True, sorted=True, unique=True)
            return _Val(kind="array", dtype=dtype, sorted=None, unique=True)
        if name in ("asarray", "array", "ascontiguousarray", "asfortranarray"):
            src = args[0] if args else _UNKNOWN
            dtype = self._dtype_kwarg(node, src.dtype)
            if src.kind == "array":
                narrowed = dtype in _NARROW_DTYPES and (
                    src.dtype is None or _is_int_dtype(src.dtype)
                    or src.dtype == "f8")
                if narrowed and self.kernel:
                    pass  # already reported by _dtype_kwarg
                return replace(src, dtype=dtype if dtype else src.dtype)
            if src.kind == "tuple" and src.elts is not None:
                return _Val(kind="array", dtype=dtype,
                            shape=(_d_const(len(src.elts)),))
            return _Val(kind="array", dtype=dtype)
        if name == "flatnonzero":
            src = args[0] if args else _UNKNOWN
            return _Val(kind="array", dtype="i8", shape=(None,),
                        bound=_axis0(src), nonneg=True, sorted=True,
                        unique=True)
        if name == "concatenate":
            parts = args[0].elts if args and args[0].kind == "tuple" else None
            if parts:
                total: Optional[Dim] = _d_const(0)
                dtype = parts[0].dtype
                nonneg = True
                for p in parts:
                    d = _axis0(p)
                    total = _d_add(total, d) if (total is not None
                                                 and d is not None) else None
                    if p.dtype != dtype:
                        dtype = None
                    nonneg = nonneg and p.nonneg
                bounds = [p.bound for p in parts]
                bound = bounds[0] if bounds and all(
                    b is not None and _d_eq(b, bounds[0]) is True
                    for b in bounds) else None
                return _Val(kind="array", dtype=dtype,
                            shape=(total,) if total is not None else (None,),
                            bound=bound, nonneg=nonneg)
            return _Val(kind="array")
        if name == "repeat":
            x = args[0] if args else _UNKNOWN
            reps = args[1] if len(args) > 1 else _UNKNOWN
            out_len: Optional[Dim] = None
            lx = _axis0(x)
            if x.kind == "scalar":
                if reps.kind == "scalar" and reps.dim is not None:
                    out_len = reps.dim
                return _Val(kind="array", dtype=x.dtype,
                            shape=(out_len,) if out_len is not None else (None,),
                            nonneg=x.nonneg, sorted=True,
                            bound=None)
            mv = None
            if reps.kind == "scalar" and reps.dim is not None:
                if lx is not None:
                    out_len = _d_mul(lx, reps.dim)
                if _d_le(_d_const(1), reps.dim) is True:
                    mv = x.maxval
            return _Val(kind="array", dtype=x.dtype,
                        shape=(out_len,) if out_len is not None else (None,),
                        bound=x.bound, maxval=mv, nonneg=x.nonneg,
                        sorted=x.sorted)
        if name == "cumsum":
            x = args[0] if args else _UNKNOWN
            return _Val(kind="array", dtype=x.dtype, shape=x.shape,
                        sorted=True if x.nonneg else None, nonneg=x.nonneg)
        if name == "diff":
            x = args[0] if args else _UNKNOWN
            lx = _axis0(x)
            return _Val(kind="array", dtype=x.dtype,
                        shape=(_d_sub(lx, _d_const(1)),) if lx is not None
                        else (None,),
                        nonneg=x.sorted is True)
        if name == "searchsorted" and args:
            return self._searchsorted(args[0],
                                      args[1] if len(args) > 1 else _UNKNOWN)
        if name == "bincount":
            x = args[0] if args else _UNKNOWN
            minlength = kwargs.get("minlength")
            shape: Optional[Tuple[Optional[Dim], ...]] = (None,)
            if minlength is not None and minlength.kind == "scalar" \
                    and minlength.dim is not None and x.kind == "array" \
                    and x.bound is not None \
                    and _d_le(x.bound, minlength.dim) is True:
                shape = (minlength.dim,)
            return _Val(kind="array", dtype="i8", shape=shape, nonneg=True)
        if name in ("argsort", "lexsort"):
            if name == "lexsort":
                keys = args[0] if args else _UNKNOWN
                first = keys.elts[0] if keys.kind == "tuple" and keys.elts \
                    else _UNKNOWN
                return self._argsort(first)
            return self._argsort(args[0] if args else _UNKNOWN)
        if name == "unique":
            x = args[0] if args else _UNKNOWN
            return _Val(kind="array", dtype=x.dtype, shape=(None,),
                        bound=x.bound, maxval=x.maxval, nonneg=x.nonneg,
                        sorted=True, unique=True)
        if name == "sort":
            x = args[0] if args else _UNKNOWN
            return replace(x, sorted=True) if x.kind == "array" else _UNKNOWN
        if name in ("max", "amax", "min", "amin"):
            x = args[0] if args else _UNKNOWN
            return _Val(kind="scalar", dtype=x.dtype, bound=x.bound,
                        nonneg=x.nonneg)
        if name == "sum":
            x = args[0] if args else _UNKNOWN
            return _Val(kind="scalar",
                        dtype="f8" if x.dtype == "f8" else None,
                        nonneg=x.nonneg)
        if name in ("abs", "absolute"):
            x = args[0] if args else _UNKNOWN
            if x.kind == "array":
                return replace(x, nonneg=True, sorted=None)
            return _Val(kind="scalar", nonneg=True, dtype=x.dtype)
        if name in ("minimum", "maximum"):
            a = args[0] if args else _UNKNOWN
            b = args[1] if len(args) > 1 else _UNKNOWN
            if a.kind == "array" and b.kind == "array":
                self._conform(node, a, b, "elementwise %s" % name)
            arr = a if a.kind == "array" else b
            bound = None
            if name == "minimum":
                bound = a.bound if a.bound is not None else b.bound
            elif a.bound is not None and b.bound is not None:
                bound = a.bound if _d_le(b.bound, a.bound) is True else (
                    b.bound if _d_le(a.bound, b.bound) is True else None)
            return _Val(kind="array" if arr.kind == "array" else "scalar",
                        dtype=arr.dtype, shape=arr.shape, bound=bound,
                        nonneg=a.nonneg and b.nonneg)
        if name == "where" and len(args) == 3:
            c, a, b = args
            if a.kind == "array" and b.kind == "array":
                self._conform(node, a, b, "np.where branches")
            arr = a if a.kind == "array" else (b if b.kind == "array" else c)
            return _Val(kind="array", dtype=a.dtype if a.dtype == b.dtype
                        else None, shape=arr.shape,
                        nonneg=a.nonneg and b.nonneg)
        if name == "clip":
            x = args[0] if args else _UNKNOWN
            return _Val(kind="array", dtype=x.dtype, shape=x.shape) \
                if x.kind == "array" else _UNKNOWN
        if name in ("copy",):
            return args[0] if args else _UNKNOWN
        if name in ("all", "any"):
            return _Val(kind="scalar", dtype="b1")
        if name in ("dot", "outer", "linalg", "errstate", "isnan", "isinf",
                    "isfinite", "count_nonzero", "array_equal", "allclose",
                    "nonzero", "split", "setdiff1d", "intersect1d"):
            return _UNKNOWN
        return _UNKNOWN

    # ------------------------------------------------------------------
    # contract call sites (S5) and return instantiation

    def _contract_call(self, node: ast.Call, contract: _Contract,
                       args: List[_Val], kwargs: Dict[str, _Val],
                       recv: Optional[_Val] = None) -> _Val:
        self._cs += 1
        suffix = "@cs%d-%d" % (id(self) % 100000, self._cs)
        bindings: Dict[str, Dim] = {}

        def rename(d: Dim) -> Dim:
            out: Dim = {}
            for mono, c in d.items():
                nm = tuple(a if "(" in a else a + suffix for a in mono)
                out[nm] = out.get(nm, 0) + c
            return out

        resolver = _contract_dim_resolver(contract)

        def inst(d: Dim) -> Dim:
            return _d_subst(rename(_d_subst(d, resolver)), bindings)

        def unify(d: Dim, actual: Optional[Dim], pname: str,
                  what: str) -> None:
            if actual is None:
                return
            rd = rename(_d_subst(d, resolver))
            atom = _d_single_atom(rd)
            if atom is not None and atom not in bindings:
                bindings[atom] = actual
                return
            want = _d_subst(rd, bindings)
            if _d_eq(want, actual) is False:
                self._emit(node, "S5",
                           "call to %s(): %s of %r is %s, contract "
                           "declares %s" % (contract.name, what, pname,
                                            _d_str(actual), _d_str(want)))

        # positional/keyword parameter mapping
        params = list(contract.params)
        pairs: List[Tuple[str, _Val]] = []
        if recv is not None and contract.is_method:
            if params:
                pairs.append((params[0], recv))
                params = params[1:]
        elif contract.is_method and params:
            params = params[1:]  # plain-name call of a method: skip self
        for i, v in enumerate(args):
            if i < len(params):
                pairs.append((params[i], v))
        for k, v in kwargs.items():
            if k in contract.params:
                pairs.append((k, v))

        # Pass A: bind every named dimension (dim params, csc shapes,
        # array axes) before pass B checks qualifier constraints, so a
        # later positional argument can bind an earlier bound's atom.
        for pname, v in pairs:
            spec = contract.specs.get(pname)
            if spec is None:
                continue
            if spec.kind == "dim":
                if v.kind == "scalar":
                    unify(_d_atom(pname), v.dim, pname, "value")
                continue
            if spec.kind == "csc":
                if v.kind == "array":
                    self._emit(node, "S5",
                               "call to %s(): %r is an array, contract "
                               "declares a CSC matrix"
                               % (contract.name, pname))
                    continue
                if v.kind != "csc":
                    continue
                unify(spec.dims[0], v.rows, pname, "row count")
                unify(spec.dims[1], v.cols, pname, "column count")
                if v.nnz is not None:
                    bindings.setdefault("nnz(%s)" % pname, v.nnz)
                continue
            if spec.kind != "array":
                continue
            if v.kind == "csc":
                self._emit(node, "S5",
                           "call to %s(): %r is a CSC matrix, contract "
                           "declares an array" % (contract.name, pname))
                continue
            if v.kind != "array":
                continue
            if v.shape is not None and spec.dims is not None \
                    and len(v.shape) == len(spec.dims):
                for axis, (d, actual) in enumerate(zip(spec.dims, v.shape)):
                    unify(d, actual, pname, "axis-%d length" % axis)

        # Pass B: qualifier constraints against the full binding set.
        for pname, v in pairs:
            spec = contract.specs.get(pname)
            if spec is None or spec.kind != "array" or v.kind != "array":
                continue
            if spec.dtype is not None and v.dtype is not None \
                    and spec.dtype != v.dtype:
                conflict = (spec.dtype == "f8") != (v.dtype == "f8") \
                    or v.dtype == "b1" or spec.dtype == "b1" \
                    or (spec.dtype == "i8" and v.dtype in _NARROW_DTYPES)
                if conflict:
                    self._emit(node, "S5",
                               "call to %s(): %r has dtype %s, contract "
                               "declares %s" % (contract.name, pname,
                                                v.dtype, spec.dtype))
            if spec.sorted and v.sorted is False:
                self._emit(node, "S5",
                           "call to %s(): %r is provably unsorted, contract "
                           "declares sorted" % (contract.name, pname))
            if spec.unique and v.unique is False:
                self._emit(node, "S5",
                           "call to %s(): %r provably contains duplicates, "
                           "contract declares unique"
                           % (contract.name, pname))
            if spec.bound is not None and v.maxval is not None \
                    and _provably_nonempty(v):
                want = inst(spec.bound)
                if _d_lt(v.maxval, want) is False:
                    self._emit(node, "S5",
                               "call to %s(): %r has values reaching %s, "
                               "contract requires values < %s"
                               % (contract.name, pname, _d_str(v.maxval),
                                  _d_str(want)))

        ret = contract.returns
        if ret is None:
            return _UNKNOWN
        if ret.kind == "csc":
            return _Val(kind="csc", rows=inst(ret.dims[0]),
                        cols=inst(ret.dims[1]))
        if ret.kind == "array":
            return _Val(
                kind="array", dtype=ret.dtype,
                shape=tuple(inst(d) for d in ret.dims),
                bound=inst(ret.bound) if ret.bound is not None else None,
                nonneg=ret.bound is not None,
                sorted=True if ret.sorted else None,
                unique=True if ret.unique else None)
        if ret.kind in ("scalar", "dim"):
            return _Val(kind="scalar",
                        bound=inst(ret.bound) if ret.bound is not None
                        else None,
                        nonneg=ret.bound is not None)
        return _UNKNOWN

    # ------------------------------------------------------------------
    # declared-vs-inferred return checking (S5)

    def check_returns(self, ret_node_line: int) -> None:
        contract = self.contract
        if contract is None or contract.returns is None:
            return
        spec = contract.returns
        if spec.kind == "any":
            return
        for inferred in self.returns:
            if inferred.kind == "any":
                continue
            line = ret_node_line
            if spec.kind == "array":
                if inferred.kind == "csc":
                    self._emit_line(line, "S5",
                                    "%s(): returns a CSC matrix, contract "
                                    "declares %r" % (contract.name, spec.text))
                    continue
                if inferred.kind != "array":
                    if inferred.kind in ("scalar", "tuple"):
                        self._emit_line(
                            line, "S5",
                            "%s(): returns a %s, contract declares %r"
                            % (contract.name, inferred.kind, spec.text))
                    continue
                if spec.dtype is not None and inferred.dtype is not None \
                        and ((spec.dtype == "f8") != (inferred.dtype == "f8")):
                    self._emit_line(
                        line, "S5",
                        "%s(): returns dtype %s, contract declares %s"
                        % (contract.name, inferred.dtype, spec.dtype))
                if inferred.shape is not None and spec.dims is not None \
                        and len(inferred.shape) == len(spec.dims):
                    want = [_d_subst(d, self._resolver) for d in spec.dims]
                    for axis, (w, got) in enumerate(zip(want, inferred.shape)):
                        if _d_eq(w, got) is False:
                            self._emit_line(
                                line, "S5",
                                "%s(): returned axis-%d length is %s, "
                                "contract declares %s"
                                % (contract.name, axis, _d_str(got),
                                   _d_str(w)))
            elif spec.kind == "csc":
                if inferred.kind == "array":
                    self._emit_line(line, "S5",
                                    "%s(): returns an array, contract "
                                    "declares %r" % (contract.name, spec.text))
                elif inferred.kind == "csc":
                    want_r = _d_subst(spec.dims[0], self._resolver)
                    want_c = _d_subst(spec.dims[1], self._resolver)
                    if _d_eq(want_r, inferred.rows) is False \
                            or _d_eq(want_c, inferred.cols) is False:
                        self._emit_line(
                            line, "S5",
                            "%s(): returns a %s x %s CSC, contract declares "
                            "csc[%s,%s]" % (contract.name,
                                            _d_str(inferred.rows),
                                            _d_str(inferred.cols),
                                            _d_str(want_r), _d_str(want_c)))

    def _emit_line(self, line: int, code: str, msg: str) -> None:
        self.findings.append(ShapeFinding(self.relpath, line, code, msg))


# ======================================================================
# Drivers
# ======================================================================


@dataclass
class _FnInfo:
    relpath: str
    node: ast.FunctionDef
    contract: Optional[_Contract]
    kernel: bool
    ignore_lines: Set[int]


def _package_root() -> str:
    return os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _iter_sources(root: str) -> Iterable[Tuple[str, str]]:
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(d for d in dirnames if d != "__pycache__")
        for fname in sorted(filenames):
            if fname.endswith(".py"):
                full = os.path.join(dirpath, fname)
                rel = os.path.relpath(full, root)
                yield full, rel.replace(os.sep, "/")


def _is_shape_kernel(relpath: str) -> bool:
    parts = relpath.replace(os.sep, "/").split("/")
    return any(p in parts[:-1] for p in SHAPE_KERNEL_DIRS)


def _collect_functions(
    sources: Sequence[Tuple[str, str]],
    findings: List[ShapeFinding],
    registry: _Registry,
    kernel_override: Optional[Set[str]] = None,
) -> List[_FnInfo]:
    infos: List[_FnInfo] = []
    for source, relpath in sources:
        try:
            tree = ast.parse(source)
        except SyntaxError as exc:
            findings.append(ShapeFinding(
                relpath, exc.lineno or 0, "S5",
                "syntax error: %s" % exc.msg))
            continue
        ignore = _scan_pins(source, relpath, findings)
        kernel = _is_shape_kernel(relpath) or (
            kernel_override is not None and relpath in kernel_override)

        def visit(body: Sequence[ast.stmt], in_class: bool) -> None:
            for node in body:
                if isinstance(node, ast.FunctionDef):
                    contract = _parse_shapes_decorator(
                        node, relpath, in_class, findings)
                    if contract is not None:
                        registry.add(contract)
                    infos.append(_FnInfo(relpath, node, contract, kernel,
                                         ignore))
                    visit(node.body, in_class=False)
                elif isinstance(node, ast.AsyncFunctionDef):
                    visit(node.body, in_class=False)
                elif isinstance(node, ast.ClassDef):
                    visit(node.body, in_class=True)
                elif isinstance(node, (ast.If, ast.Try, ast.With, ast.For,
                                       ast.While)):
                    for sub in ast.iter_child_nodes(node):
                        if isinstance(sub, ast.stmt):
                            visit([sub], in_class)

        visit(tree.body, in_class=False)
    return infos


_SUMMARY_FLAGS = ("kind", "dtype", "sorted", "unique", "nonneg")


def _flags_only(v: _Val) -> _Val:
    """Strip dims from a return value so it can travel across functions
    (dimension atoms are function-local)."""
    if v.kind not in ("array", "scalar", "csc"):
        return _UNKNOWN
    return _Val(kind=v.kind, dtype=v.dtype, nonneg=v.nonneg,
                sorted=v.sorted, unique=v.unique)


def _analyze(
    sources: Sequence[Tuple[str, str]],
    report_for: Optional[Set[str]] = None,
    kernel_override: Optional[Set[str]] = None,
) -> List[ShapeFinding]:
    findings: List[ShapeFinding] = []
    registry = _Registry()
    infos = _collect_functions(sources, findings, registry, kernel_override)

    # Pass 1: infer per-function return summaries (flags only) for
    # unannotated single-definition functions, propagated call-graph
    # style: run to a short fixed point so chains of helpers converge.
    summaries: Dict[str, _Val] = {}
    names: Dict[str, int] = {}
    for info in infos:
        names[info.node.name] = names.get(info.node.name, 0) + 1
    for _ in range(2):
        changed = False
        for info in infos:
            if info.contract is not None or names[info.node.name] != 1:
                continue
            scratch: List[ShapeFinding] = []
            interp = _ShapeInterp(info.relpath, info.node, None, registry,
                                  scratch, info.kernel, summaries)
            ret = _flags_only(interp.run())
            if summaries.get(info.node.name) != ret:
                summaries[info.node.name] = ret
                changed = True
        if not changed:
            break

    # Pass 2: emit findings.
    for info in infos:
        if report_for is not None and info.relpath not in report_for:
            continue
        interp = _ShapeInterp(info.relpath, info.node, info.contract, registry,
                              findings, info.kernel, summaries)
        interp.run()
        interp.check_returns(info.node.lineno)

    ignore_by_path: Dict[str, Set[int]] = {}
    for info in infos:
        ignore_by_path.setdefault(info.relpath, set()).update(info.ignore_lines)
    out = []
    seen: Set[Tuple[str, int, str, str]] = set()
    for f in findings:
        if report_for is not None and f.path not in report_for:
            continue
        if f.line in ignore_by_path.get(f.path, ()):
            continue
        key = (f.path, f.line, f.code, f.message)
        if key in seen:
            continue
        seen.add(key)
        out.append(f)
    out.sort(key=lambda f: (f.path, f.line, f.code))
    return out


def check_shapes_source(
    source: str,
    relpath: str = "<string>",
    extra_sources: Optional[Sequence[Tuple[str, str]]] = None,
) -> List[ShapeFinding]:
    """Check one source string (treated as kernel code so S4 fires)."""
    sources = [(source, relpath)] + list(extra_sources or [])
    return _analyze(sources, report_for={relpath},
                    kernel_override={relpath})


def check_shapes_paths(paths: Sequence[str]) -> List[ShapeFinding]:
    """Check explicit files against the package's contracts.

    The package sources contribute contracts and summaries; findings
    are reported only for the given files, which are treated as kernel
    code (so fixtures exercise the int64-discipline rules)."""
    root = _package_root()
    sources: List[Tuple[str, str]] = []
    for full, rel in _iter_sources(root):
        with open(full, "r", encoding="utf-8") as fh:
            sources.append((fh.read(), rel))
    targets: Set[str] = set()
    for p in paths:
        rel = os.path.basename(p)
        with open(p, "r", encoding="utf-8") as fh:
            sources.append((fh.read(), rel))
        targets.add(rel)
    return _analyze(sources, report_for=targets, kernel_override=targets)


def check_shapes_tree(root: Optional[str] = None) -> List[ShapeFinding]:
    """Check every module of the package tree."""
    root = root or _package_root()
    sources: List[Tuple[str, str]] = []
    for full, rel in _iter_sources(root):
        with open(full, "r", encoding="utf-8") as fh:
            sources.append((fh.read(), rel))
    return _analyze(sources)


def collect_shape_contracts(
    root: Optional[str] = None,
) -> Dict[str, List[Tuple[str, int]]]:
    """Map of contract name -> [(relpath, line)] across the tree."""
    root = root or _package_root()
    sources: List[Tuple[str, str]] = []
    for full, rel in _iter_sources(root):
        with open(full, "r", encoding="utf-8") as fh:
            sources.append((fh.read(), rel))
    findings: List[ShapeFinding] = []
    registry = _Registry()
    _collect_functions(sources, findings, registry)
    out: Dict[str, List[Tuple[str, int]]] = {}
    for c in registry.all():
        out.setdefault(c.name, []).append((c.relpath, c.line))
    return out


# ======================================================================
# Plan-level buffer audits (concrete, in the style of the E4 audits)
# ======================================================================


def _aud(findings: List[ShapeFinding], label: str, code: str,
         msg: str) -> None:
    findings.append(ShapeFinding("<plan:%s>" % label, 0, code, msg))


def _chk_index(findings: List[ShapeFinding], label: str, where: str,
               arr: np.ndarray, length: int, lo: int = 0) -> None:
    if arr.size == 0:
        return
    mn, mx = int(arr.min()), int(arr.max())
    if mn < lo or mx >= length:
        _aud(findings, label, "S1",
             "%s: index range [%d, %d] outside buffer extent [%d, %d)"
             % (where, mn, mx, lo, length))


def _chk_perm(findings: List[ShapeFinding], label: str, where: str,
              arr: np.ndarray, n: int) -> None:
    if arr.size != n or (n and np.bincount(
            arr, minlength=n).max(initial=0) != 1) or (
            n and (int(arr.min()) < 0 or int(arr.max()) >= n)):
        _aud(findings, label, "S1",
             "%s: not a permutation of range(%d)" % (where, n))


def _chk_segments(findings: List[ShapeFinding], label: str, where: str,
                  seg_starts: np.ndarray, seg_tgt: np.ndarray,
                  ent_size: int, tgt_extent: int) -> None:
    if seg_starts.size != seg_tgt.size:
        _aud(findings, label, "S2",
             "%s: %d segment starts but %d targets"
             % (where, seg_starts.size, seg_tgt.size))
    if seg_starts.size:
        if int(seg_starts[0]) != 0:
            _aud(findings, label, "S2",
                 "%s: first segment start is %d, not 0"
                 % (where, int(seg_starts[0])))
        if np.any(np.diff(seg_starts) <= 0):
            _aud(findings, label, "S2",
                 "%s: segment starts not strictly increasing" % where)
        _chk_index(findings, label, where + " seg_starts", seg_starts,
                   max(ent_size, 1))
        if seg_tgt.size and np.unique(seg_tgt).size != seg_tgt.size:
            _aud(findings, label, "S2",
                 "%s: duplicate scatter targets within one level" % where)
        _chk_index(findings, label, where + " seg_tgt", seg_tgt, tgt_extent)


def _audit_triangular(sched, label: str) -> List[ShapeFinding]:
    findings: List[ShapeFinding] = []
    n, nnz = int(sched.n), int(sched.nnz)
    if sched.diag_idx.shape != (n,):
        _aud(findings, label, "S3",
             "diag_idx has shape %r, expected (%d,)"
             % (sched.diag_idx.shape, n))
    _chk_index(findings, label, "diag_idx", sched.diag_idx, nnz, lo=-1)
    for s, lv in enumerate(sched.levels):
        where = "level %d" % s
        _chk_index(findings, label, where + " cols", lv.cols, n)
        if lv.cols.size and np.unique(lv.cols).size != lv.cols.size:
            _aud(findings, label, "S2",
                 "%s: duplicate columns within a level" % where)
        if lv.scalar_cols is not None:
            for j, dj, lo, hi, rows in lv.scalar_cols:
                if not (0 <= j < n):
                    _aud(findings, label, "S1",
                         "%s: scalar column %d outside [0, %d)"
                         % (where, j, n))
                if dj < -1 or dj >= nnz:
                    _aud(findings, label, "S1",
                         "%s: scalar diag index %d outside [-1, %d)"
                         % (where, dj, nnz))
                if not (0 <= lo <= hi <= nnz):
                    _aud(findings, label, "S1",
                         "%s: scalar data slice [%d, %d) outside [0, %d]"
                         % (where, lo, hi, nnz))
                _chk_index(findings, label, where + " scalar rows",
                           np.asarray(rows), n)
            continue
        _chk_index(findings, label, where + " diag_idx", lv.diag_idx, nnz,
                   lo=-1)
        if lv.counts.size != lv.cols.size:
            _aud(findings, label, "S3",
                 "%s: %d counts for %d columns"
                 % (where, lv.counts.size, lv.cols.size))
        if lv.counts.size and int(lv.counts.min()) < 0:
            _aud(findings, label, "S2", "%s: negative entry count" % where)
        if int(lv.counts.sum()) != lv.ent_val_idx.size:
            _aud(findings, label, "S3",
                 "%s: counts sum to %d but %d entries staged"
                 % (where, int(lv.counts.sum()), lv.ent_val_idx.size))
        _chk_index(findings, label, where + " ent_val_idx", lv.ent_val_idx,
                   nnz)
        _chk_perm(findings, label, where + " ent_order", lv.ent_order,
                  lv.ent_val_idx.size)
        _chk_segments(findings, label, where, lv.seg_starts, lv.seg_tgt,
                      lv.ent_val_idx.size, n)
    return findings


def _audit_refactor(sched, label: str) -> List[ShapeFinding]:
    findings: List[ShapeFinding] = []
    n, wtotal = int(sched.n), int(sched.wtotal)
    l_nnz = sched.l_indices.size
    u_nnz = sched.u_indices.size
    _chk_perm(findings, label, "row_perm", sched.row_perm, n)
    for name, ptr, sz in (("l_indptr", sched.l_indptr, l_nnz),
                          ("u_indptr", sched.u_indptr, u_nnz),
                          ("a_indptr", sched.a_indptr,
                           sched.a_indices.size)):
        if ptr.shape != (n + 1,) or int(ptr[0]) != 0 \
                or int(ptr[-1]) != sz or np.any(np.diff(ptr) < 0):
            _aud(findings, label, "S3",
                 "%s is not a monotone pointer array of length %d ending "
                 "at %d" % (name, n + 1, sz))
    if sched.a_scatter.size != sched.a_indices.size:
        _aud(findings, label, "S3",
             "a_scatter has %d entries for %d input values"
             % (sched.a_scatter.size, sched.a_indices.size))
    _chk_index(findings, label, "a_scatter", sched.a_scatter, wtotal)
    if sched.a_scatter.size and np.unique(
            sched.a_scatter).size != sched.a_scatter.size:
        _aud(findings, label, "S2",
             "a_scatter provably contains duplicate workspace positions")
    if sched.ux_src.size != u_nnz:
        _aud(findings, label, "S3",
             "ux_src has %d entries for %d U values"
             % (sched.ux_src.size, u_nnz))
    _chk_index(findings, label, "ux_src", sched.ux_src, wtotal)
    if sched.l_diag_dst.size != n:
        _aud(findings, label, "S3",
             "l_diag_dst has %d entries for %d unit diagonals"
             % (sched.l_diag_dst.size, n))
    _chk_index(findings, label, "l_diag_dst", sched.l_diag_dst, l_nnz)
    seen_cols = np.zeros(n, dtype=np.int64)
    for s, stage in enumerate(sched.stages):
        where = "stage %d" % s
        _chk_index(findings, label, where + " cols", stage.cols, n)
        if stage.cols.size:
            seen_cols[stage.cols] += 1
        if stage.piv_wpos.size != stage.cols.size:
            _aud(findings, label, "S3",
                 "%s: %d pivot positions for %d columns"
                 % (where, stage.piv_wpos.size, stage.cols.size))
        _chk_index(findings, label, where + " piv_wpos", stage.piv_wpos,
                   wtotal)
        if stage.l_counts.size and int(stage.l_counts.min()) < 0:
            _aud(findings, label, "S2", "%s: negative l_counts" % where)
        if int(stage.l_counts.sum()) != stage.l_dst.size:
            _aud(findings, label, "S3",
                 "%s: l_counts sum to %d but %d L slots staged"
                 % (where, int(stage.l_counts.sum()), stage.l_dst.size))
        _chk_index(findings, label, where + " l_dst", stage.l_dst, l_nnz)
        if stage.l_dst.size and np.unique(
                stage.l_dst).size != stage.l_dst.size:
            _aud(findings, label, "S2",
                 "%s: duplicate L destinations within a stage" % where)
        if stage.l_src.size != stage.l_dst.size:
            _aud(findings, label, "S3",
                 "%s: %d L sources for %d destinations"
                 % (where, stage.l_src.size, stage.l_dst.size))
        _chk_index(findings, label, where + " l_src", stage.l_src, wtotal)
        _chk_index(findings, label, where + " op_src_wpos",
                   stage.op_src_wpos, wtotal)
        if stage.op_len.size != stage.op_src_wpos.size:
            _aud(findings, label, "S3",
                 "%s: %d op lengths for %d ops"
                 % (where, stage.op_len.size, stage.op_src_wpos.size))
        if stage.op_len.size and int(stage.op_len.min()) < 0:
            _aud(findings, label, "S2", "%s: negative op_len" % where)
        if int(stage.op_len.sum()) != stage.ent_lval_idx.size:
            _aud(findings, label, "S3",
                 "%s: op_len sums to %d but %d entries staged"
                 % (where, int(stage.op_len.sum()), stage.ent_lval_idx.size))
        _chk_index(findings, label, where + " ent_lval_idx",
                   stage.ent_lval_idx, l_nnz)
        _chk_perm(findings, label, where + " ent_order", stage.ent_order,
                  stage.ent_lval_idx.size)
        _chk_segments(findings, label, where, stage.seg_starts,
                      stage.seg_tgt, stage.ent_lval_idx.size, wtotal)
        if stage.op_group is not None:
            if stage.op_group.size != stage.op_len.size:
                _aud(findings, label, "S3",
                     "%s: %d op groups for %d ops"
                     % (where, stage.op_group.size, stage.op_len.size))
            _chk_index(findings, label, where + " op_group", stage.op_group,
                       int(getattr(sched, "n_groups", 1)))
    if np.any(seen_cols > 1):
        _aud(findings, label, "S2",
             "columns finalized more than once across stages: %r"
             % np.flatnonzero(seen_cols > 1)[:8].tolist())
    if np.any(seen_cols == 0) and sched.stages:
        _aud(findings, label, "S1",
             "columns never finalized by any stage: %r"
             % np.flatnonzero(seen_cols == 0)[:8].tolist())
    return findings


def audit_schedule_buffers(plan, label: Optional[str] = None
                           ) -> List[ShapeFinding]:
    """Concrete bounds audit of a compiled schedule's index buffers.

    Accepts a :class:`~repro.sparse.schedule.TriangularSchedule`,
    :class:`~repro.sparse.schedule.RefactorSchedule` or
    :class:`~repro.sparse.schedule.BlockedRefactorSchedule` and checks
    every gather/scatter/segment array against the actual workspace
    extents of the plan: indices in bounds, ``ent_order`` a valid
    permutation, ``seg_starts`` strictly increasing from 0, ``seg_tgt``
    duplicate-free per level/stage, counts consistent with staged entry
    totals.  Returns a (possibly empty) list of findings; an empty list
    means every buffer access the replay will perform is in bounds.
    """
    if hasattr(plan, "levels") and hasattr(plan, "kind"):
        return _audit_triangular(plan, label or "tri:%s" % plan.kind)
    if hasattr(plan, "stages") and hasattr(plan, "wtotal"):
        return _audit_refactor(plan, label or "refactor")
    if hasattr(plan, "schedule") and hasattr(plan, "d_gather"):
        lab = label or "blocked"
        findings = _audit_refactor(plan.schedule, lab)
        sched = plan.schedule
        if plan.d_gather.size != sched.a_indices.size:
            _aud(findings, lab, "S3",
                 "d_gather has %d entries for %d block values"
                 % (plan.d_gather.size, sched.a_indices.size))
        if plan.d_gather.size and int(plan.d_gather.min()) < 0:
            _aud(findings, lab, "S1", "d_gather contains negative indices")
        for name, ptr in (("l_ptr", plan.l_ptr), ("u_ptr", plan.u_ptr)):
            arr = np.asarray(ptr)
            if np.any(np.diff(arr) < 0):
                _aud(findings, lab, "S2",
                     "%s block boundaries not monotone" % name)
        return findings
    raise TypeError("unsupported plan object %r" % type(plan).__name__)


# ======================================================================
# Runtime shape-contract checking (differential mode)
# ======================================================================


def _rt_dim_value(d: Dim, bindings: Dict[str, int],
                  values: Dict[str, object]) -> Optional[int]:
    total = 0
    for mono, c in d.items():
        term = c
        for atom in mono:
            if atom in bindings:
                term *= bindings[atom]
            else:
                v = _rt_atom_value(atom, values)
                if v is None:
                    return None
                bindings[atom] = v
                term *= v
        total += term
    return total


def _rt_atom_value(atom: str, values: Dict[str, object]) -> Optional[int]:
    m = re.match(r"(len|nnz|rows|cols)\((\w+)\)$", atom)
    if m is None:
        return None
    func, pname = m.groups()
    if pname not in values:
        return None
    v = values[pname]
    try:
        if func == "len":
            return int(len(v))
        if func == "nnz":
            return int(v.nnz)
        if func == "rows":
            return int(v.n_rows)
        if func == "cols":
            return int(v.n_cols)
    except Exception:
        return None
    return None


_RT_DTYPES = {"f8": "float64", "i8": "int64", "i4": "int32", "i2": "int16",
              "u4": "uint32", "b1": "bool"}


def _rt_check_spec(fname: str, pname: str, spec: _Spec, value: object,
                   bindings: Dict[str, int],
                   values: Dict[str, object]) -> None:
    def bail(msg: str) -> None:
        raise ShapeContractError(
            "%s(): %s violates its shape contract %r: %s"
            % (fname, pname, spec.text, msg))

    if spec.kind == "any":
        return
    if spec.kind in ("dim", "scalar"):
        if value is None:
            return
        try:
            iv = int(value)
        except (TypeError, ValueError):
            bail("not an integer scalar")
            return
        if spec.kind == "dim":
            prev = bindings.setdefault(pname, iv)
            if prev != iv:
                bail("dimension %s bound to %d, got %d" % (pname, prev, iv))
        if spec.bound is not None:
            b = _rt_dim_value(spec.bound, bindings, values)
            if b is not None and not (0 <= iv < b):
                bail("value %d outside [0, %d)" % (iv, b))
        return
    if value is None:
        return
    if spec.kind == "csc":
        if not (hasattr(value, "n_rows") and hasattr(value, "n_cols")):
            bail("not a CSC matrix")
        for d, actual in zip(spec.dims, (value.n_rows, value.n_cols)):
            atom = _d_single_atom(d)
            if atom is not None and atom not in bindings:
                bindings[atom] = int(actual)
                continue
            want = _rt_dim_value(d, bindings, values)
            if want is not None and want != int(actual):
                bail("dimension is %d, contract requires %d"
                     % (int(actual), want))
        return
    arr = np.asarray(value)
    if spec.dtype is not None:
        want_dt = _RT_DTYPES[spec.dtype]
        if arr.dtype != np.dtype(want_dt):
            bail("dtype is %s, contract declares %s" % (arr.dtype, want_dt))
    if spec.dims is not None:
        if arr.ndim != len(spec.dims):
            bail("rank is %d, contract declares %d"
                 % (arr.ndim, len(spec.dims)))
        for axis, (d, actual) in enumerate(zip(spec.dims, arr.shape)):
            atom = _d_single_atom(d)
            if atom is not None and atom not in bindings:
                bindings[atom] = int(actual)
                continue
            want = _rt_dim_value(d, bindings, values)
            if want is not None and want != int(actual):
                bail("axis-%d length is %d, contract requires %d"
                     % (axis, int(actual), want))
    if arr.size:
        if spec.sorted and np.any(np.diff(arr) < 0):
            bail("values are not nondecreasing")
        if spec.unique and np.unique(arr).size != arr.size:
            bail("values are not pairwise distinct")
        if spec.bound is not None:
            b = _rt_dim_value(spec.bound, bindings, values)
            if b is not None:
                mn, mx = arr.min(), arr.max()
                if mn < 0 or mx >= b:
                    bail("value range [%s, %s] outside [0, %d)"
                         % (mn, mx, b))


_MISSING = object()


def check_call_contract(fn, args: tuple, kwargs: dict,
                        result: object = _MISSING) -> None:
    """Validate one concrete call against ``fn``'s ``@shapes`` contract.

    Binds the call like the interpreter would, unifies the named
    dimensions against the concrete values, and raises
    :class:`ShapeContractError` on any violation — the differential
    counterpart of the static S5 checks.  Functions without a contract
    pass trivially.
    """
    decls = getattr(fn, "__shapes__", None)
    if not decls:
        return
    try:
        sig = inspect.signature(fn)
        bound = sig.bind_partial(*args, **kwargs)
        bound.apply_defaults()
    except TypeError:
        return
    values = dict(bound.arguments)
    specs: Dict[str, _Spec] = {}
    for pname, text in decls.items():
        specs[pname] = parse_shape_spec(text)
    bindings: Dict[str, int] = {}
    for pname, spec in specs.items():
        if pname == "returns":
            continue
        if pname in values:
            _rt_check_spec(fn.__name__, pname, spec, values[pname],
                           bindings, values)
    if result is not _MISSING and "returns" in specs:
        _rt_check_spec(fn.__name__, "return value", specs["returns"], result,
                       bindings, values)


def contract_checked(fn):
    """Wrap ``fn`` so every call is validated against its ``@shapes``
    contract (parameters before the call, the return value after)."""
    import functools

    @functools.wraps(fn)
    def wrapper(*args, **kwargs):
        check_call_contract(fn, args, kwargs)
        result = fn(*args, **kwargs)
        check_call_contract(fn, args, kwargs, result=result)
        return result

    return wrapper
