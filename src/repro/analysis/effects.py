"""Interprocedural effect & parallel-safety analyzer (codes E1-E5).

The PR-1 hazard detector proves the declared ``SimTask.reads``/``writes``
sets are *consistent* with the emitted dependencies — but it trusts the
declarations.  Before the task DAG is handed to a real shared-memory
backend, an undeclared write stops being a simulator artifact and
becomes a silent data race.  This module closes the loop statically: it
infers each function's actual effects from the AST, propagates them
bottom-up through the call graph with fixed-point iteration on cycles,
and cross-checks the inferred effects against the declared contracts.

Per-function **effect summaries** (:class:`FunctionEffects`) record:

* parameters mutated in place — subscript/attribute stores (``x[...] =``,
  ``p.attr = ...``), augmented assignment through views, known mutator
  methods (``.sort()``, ``.fill()``, ``.append()``, ...), ``out=``
  keyword aliasing, and ``np.<ufunc>.at`` / ``np.copyto`` families —
  including mutation through local aliases of a parameter;
* module-global reads and writes (only *mutable* module state counts);
* whether the return value aliases a parameter (borrowed buffer) or is
  a fresh allocation;
* whether the function (transitively) emits scheduler tasks.

Finding classes::

    E0  malformed ``# effects:`` pin or @effects declaration
    E1  a task-emission site whose declared read/write key families
        miss an inferred block access in the emitting region (or that
        declares a family the module never touches)
    E2  a function declared pure (or with a declared mutates-set) via
        @repro.contracts.effects mutates a caller-visible parameter
        outside the declaration
    E3  process-unsafety for a real worker-pool backend: a kernel
        function writes mutable module-global state, or a locally
        defined closure/lambda is passed to a task-dispatch entry point
        (unpicklable payload)
    E4  a task emitted inside a loop whose declared write keys do not
        vary with the loop variable — two same-schedule-level tasks
        would declare identical (non-disjoint) write sets; also the
        plan-level audits below
    E5  numpy in-place misuse: ``out=`` aliasing an input operand of a
        non-elementwise routine, or augmented assignment through a
        broadcast view

Comment pins (real COMMENT tokens, module-wide scope)::

    # effects: blocks A=A Lb=L|LU Ub=U|LU   map block-store variables to
                                            the declared key families
    # effects: emitter builder em new_task  names whose ``.add(...)`` /
                                            ``name(...)`` calls emit tasks
    # effects: dispatch my_pool_map         extra E3 dispatch entry points
    # effects: ordered                      (trailing) this emission line
                                            is serialized across loop
                                            iterations by its deps — E4 off
    # effects: global-ok                    (trailing, read by lint R6 and
                                            E3) sanctioned module state

E1 is deliberately *regional*: an inferred access is attributed to the
closest following emission statement within the same statement list
(``if``/``with`` bodies are transparent; loop bodies and statements that
call into other task-emitting functions reset the region).  Anything the
analyzer cannot resolve — declared key lists built by helpers, emission
wrappers forwarding parameters — makes the corresponding check *open*
and silent, so an unannotated module produces no false positives.

Plan-level E4 complements the AST rule for the compiled replay plans of
:mod:`repro.sparse.schedule`: :func:`audit_triangular_schedule` and
:func:`audit_refactor_schedule` verify that within every level/stage the
finalized columns are unique and the post-grouping scatter targets are
pairwise disjoint (the symbolic precondition for running a level's
gather/scatter in parallel).

Entry points mirror :mod:`repro.analysis.domains`:
:func:`check_effects_source`, :func:`check_effects_paths` (fixtures;
treated as kernel modules), :func:`check_effects_tree` (the CI gate,
``python -m repro analyze effects``) and
:func:`collect_effect_summaries` (the differential soundness tests).
"""

from __future__ import annotations

import ast
import io
import os
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

__all__ = [
    "EffectFinding",
    "FunctionEffects",
    "check_effects_source",
    "check_effects_paths",
    "check_effects_tree",
    "collect_effect_summaries",
    "audit_triangular_schedule",
    "audit_refactor_schedule",
    "EFFECT_KERNEL_DIRS",
]

# Packages whose code is destined for the real shared-memory backend.
EFFECT_KERNEL_DIRS = ("core", "solvers", "sparse", "ordering", "graph", "parallel")

_PIN_RE = re.compile(r"#\s*effects:\s*(.+?)\s*$")

# Method names that mutate their receiver in place.
_MUTATOR_METHODS = {
    "sort", "fill", "append", "extend", "insert", "remove", "clear",
    "update", "add", "setdefault", "discard", "pop", "popitem",
    "itemset", "resize", "byteswap",
}
# ``np.<name>(dst, ...)`` routines that mutate their first argument.
_NP_ARG0_MUTATORS = {"copyto", "put", "place", "putmask", "fill_diagonal"}
# Callees for which ``out=`` aliasing an input operand is undefined
# behaviour (non-elementwise: the kernel reads operands after writing
# out).  Elementwise ufuncs like ``np.add(x, y, out=x)`` are fine.
_E5_UNSAFE_OUT = {
    "dot", "matmul", "einsum", "tensordot", "outer", "cross",
    "convolve", "correlate", "solve", "inv",
}
_BROADCAST_MAKERS = {"broadcast_to", "as_strided"}
# ``fn(payload, items)`` entry points that may ship the payload to a
# worker process (defaults; the dispatch pin adds more).
_DEFAULT_DISPATCH = {"parallel_map"}
# Value expressions that alias argument 0 (may return the same buffer).
_ALIAS_ARG0_CALLS = {"asarray", "asanyarray", "ascontiguousarray", "require"}
# Constructors whose module-level use creates mutable state (R6 / E3).
_MUTABLE_CONSTRUCTORS = {
    "dict", "list", "set", "defaultdict", "OrderedDict", "deque",
    "Counter", "bytearray",
}

# Emission kwargs: read-side and write-side key lists.
_READ_KWARGS = ("reads", "chunk_reads")
_WRITE_KWARGS = ("writes", "final_writes")


@dataclass(frozen=True)
class EffectFinding:
    """One diagnostic: ``path:line CODE message``."""

    path: str
    line: int
    code: str
    message: str

    def __str__(self) -> str:
        return "%s:%d %s %s" % (self.path, self.line, self.code, self.message)


@dataclass
class FunctionEffects:
    """Inferred effect summary of one function (after propagation)."""

    name: str
    path: str
    line: int
    params: Tuple[str, ...]
    is_method: bool
    mutates: Dict[str, int] = field(default_factory=dict)   # param -> line
    global_reads: Set[str] = field(default_factory=set)
    global_writes: Dict[str, int] = field(default_factory=dict)
    returns_params: Set[str] = field(default_factory=set)   # borrowed buffers
    allocates: bool = False
    emits: bool = False
    calls: List["_CallRef"] = field(default_factory=list)
    declared: Optional[dict] = None   # parsed @effects(...) declaration
    # global writes performed by this function's own statements (the
    # pre-propagation snapshot E3a reports on; ``global_writes`` also
    # accumulates transitive writes during propagation)
    local_global_writes: Dict[str, int] = field(default_factory=dict)

    def signature(self):
        return (
            self.params,
            frozenset(self.mutates),
            frozenset(self.global_writes),
            frozenset(self.global_reads),
            self.emits,
        )


@dataclass
class _CallRef:
    """A call site with arguments pre-resolved to caller-param roots."""

    name: str
    line: int
    recv_roots: FrozenSet[str]
    arg_roots: Tuple[FrozenSet[str], ...]
    kw_roots: Dict[str, FrozenSet[str]]


@dataclass
class _ModulePins:
    blocks: Dict[str, FrozenSet[str]] = field(default_factory=dict)
    emitters: Set[str] = field(default_factory=set)
    dispatch: Set[str] = field(default_factory=set)
    ordered_lines: Set[int] = field(default_factory=set)
    global_ok_lines: Set[int] = field(default_factory=set)


def _scan_pins(source: str, relpath: str, findings: List[EffectFinding]) -> _ModulePins:
    """Collect ``# effects:`` pins from real COMMENT tokens."""
    pins = _ModulePins()
    try:
        toks = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return pins  # the AST pass reports the syntax error
    for tok in toks:
        if tok.type != tokenize.COMMENT:
            continue
        m = _PIN_RE.search(tok.string)
        if m is None:
            continue
        lineno = tok.start[0]
        payload = m.group(1).split()
        if not payload:
            continue
        kind, rest = payload[0], payload[1:]
        if kind == "blocks":
            ok = bool(rest)
            for item in rest:
                if "=" not in item:
                    ok = False
                    continue
                name, _, fams = item.partition("=")
                fams_set = frozenset(f for f in fams.split("|") if f)
                if not name or not fams_set:
                    ok = False
                    continue
                pins.blocks[name] = pins.blocks.get(name, frozenset()) | fams_set
            if not ok:
                findings.append(EffectFinding(
                    relpath, lineno, "E0",
                    "malformed '# effects: blocks' pin (expected NAME=FAM[|FAM...] ...)"))
        elif kind == "emitter":
            if rest:
                pins.emitters.update(rest)
            else:
                findings.append(EffectFinding(
                    relpath, lineno, "E0", "'# effects: emitter' names no emitters"))
        elif kind == "dispatch":
            if rest:
                pins.dispatch.update(rest)
            else:
                findings.append(EffectFinding(
                    relpath, lineno, "E0", "'# effects: dispatch' names no functions"))
        elif kind == "ordered":
            pins.ordered_lines.add(lineno)
        elif kind == "global-ok":
            pins.global_ok_lines.add(lineno)
        else:
            findings.append(EffectFinding(
                relpath, lineno, "E0",
                "unknown '# effects:' pin kind %r" % kind))
    return pins


def _is_effect_kernel(relpath: str) -> bool:
    parts = relpath.replace(os.sep, "/").split("/")
    return any(p in parts[:-1] for p in EFFECT_KERNEL_DIRS)


def _base_name(node: ast.expr) -> Optional[str]:
    """Peel subscripts/attributes (and alias-preserving calls) down to
    the root ``Name`` — ``F[s][:w, :]`` -> ``F``, ``numeric.cache`` ->
    ``numeric``, ``np.asarray(x)`` -> ``x``."""
    while True:
        if isinstance(node, ast.Name):
            return node.id
        if isinstance(node, (ast.Subscript, ast.Attribute, ast.Starred)):
            node = node.value
        elif isinstance(node, ast.Call):
            fn = node.func
            name = fn.id if isinstance(fn, ast.Name) else (
                fn.attr if isinstance(fn, ast.Attribute) else None)
            if name in _ALIAS_ARG0_CALLS and node.args:
                node = node.args[0]
            else:
                return None
        else:
            return None


def _call_name(node: ast.Call) -> Optional[str]:
    if isinstance(node.func, ast.Name):
        return node.func.id
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    return None


def _walk_own(node: ast.AST) -> Iterable[ast.AST]:
    """Walk a subtree without descending into nested function/class
    bodies or lambdas."""
    stack = [node]
    while stack:
        cur = stack.pop()
        yield cur
        if isinstance(cur, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda,
                            ast.ClassDef)) and cur is not node:
            continue
        stack.extend(ast.iter_child_nodes(cur))


def _decorator_is_effects(dec: ast.expr) -> bool:
    if not isinstance(dec, ast.Call):
        return False
    fn = dec.func
    if isinstance(fn, ast.Name):
        return fn.id == "effects"
    if isinstance(fn, ast.Attribute):
        return fn.attr == "effects"
    return False


def _parse_effects_decorator(
    node: ast.AST, relpath: str, findings: List[EffectFinding]
) -> Optional[dict]:
    for dec in node.decorator_list:
        if not _decorator_is_effects(dec):
            continue
        pure = False
        mutates: List[str] = []
        ok = True
        for kw in dec.keywords:
            if kw.arg == "pure":
                if isinstance(kw.value, ast.Constant) and isinstance(kw.value.value, bool):
                    pure = kw.value.value
                else:
                    ok = False
            elif kw.arg == "mutates":
                if isinstance(kw.value, (ast.Tuple, ast.List)) and all(
                    isinstance(e, ast.Constant) and isinstance(e.value, str)
                    for e in kw.value.elts
                ):
                    mutates = [e.value for e in kw.value.elts]
                else:
                    ok = False
            else:
                ok = False
        if not ok:
            findings.append(EffectFinding(
                relpath, dec.lineno, "E0",
                "@effects accepts pure=<bool literal> and "
                "mutates=<tuple of string literals> only"))
            return None
        return {"pure": pure, "mutates": tuple(mutates), "line": dec.lineno}
    return None


# ---------------------------------------------------------------------------
# Per-module parse


@dataclass
class _ModuleInfo:
    relpath: str
    tree: ast.Module
    pins: _ModulePins
    mutable_globals: Dict[str, int] = field(default_factory=dict)  # name -> def line
    module_names: Set[str] = field(default_factory=set)
    functions: List[Tuple[ast.AST, FunctionEffects]] = field(default_factory=list)
    accessed_families: Set[str] = field(default_factory=set)


def _is_mutable_value(value: ast.expr) -> bool:
    if isinstance(value, (ast.Dict, ast.List, ast.Set, ast.ListComp,
                          ast.SetComp, ast.DictComp)):
        return True
    if isinstance(value, ast.Call):
        name = _call_name(value)
        return name in _MUTABLE_CONSTRUCTORS
    return False


def _collect_module_globals(info: _ModuleInfo) -> None:
    for stmt in info.tree.body:
        targets: List[ast.expr] = []
        value = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        else:
            continue
        for t in targets:
            if not isinstance(t, ast.Name):
                continue
            info.module_names.add(t.id)
            if (
                _is_mutable_value(value)
                and t.id != "__all__"
                and not (t.id.startswith("__") and t.id.endswith("__"))
                and stmt.lineno not in info.pins.global_ok_lines
            ):
                info.mutable_globals[t.id] = stmt.lineno


# ---------------------------------------------------------------------------
# Per-function effect collection


class _FnCollector:
    """One in-order pass over a function body: local effects, aliasing,
    call refs, and the purely local finding classes (E3b, E5)."""

    def __init__(
        self,
        fn: ast.AST,
        info: _ModuleInfo,
        findings: List[EffectFinding],
        kernel: bool,
    ) -> None:
        self.fn = fn
        self.info = info
        self.findings = findings
        self.kernel = kernel
        a = fn.args
        params = tuple(
            x.arg for x in a.posonlyargs + a.args + a.kwonlyargs
        ) + ((a.vararg.arg,) if a.vararg else ()) + ((a.kwarg.arg,) if a.kwarg else ())
        self.eff = FunctionEffects(
            name=fn.name, path=info.relpath, line=fn.lineno, params=params,
            is_method=bool(params) and params[0] in ("self", "cls"),
            declared=_parse_effects_decorator(fn, info.relpath, findings),
        )
        self.locals: Set[str] = set(params)
        for node in _walk_own(fn):
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
                self.locals.add(node.id)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and node is not fn:
                self.locals.add(node.name)
            elif isinstance(node, (ast.Import, ast.ImportFrom)):
                for alias in node.names:
                    self.locals.add(alias.asname or alias.name.split(".")[0])
        # comprehension targets are scoped, but treating them as locals
        # only makes the analysis more conservative about globals
        self.param_alias: Dict[str, Set[str]] = {}
        self.broadcast_names: Set[str] = set()
        self.nested_defs: Set[str] = set()
        self.declared_globals: Set[str] = set()
        self.dispatch_names = _DEFAULT_DISPATCH | info.pins.dispatch

    # -- roots ----------------------------------------------------------

    def _param_roots(self, name: Optional[str]) -> FrozenSet[str]:
        if name is None:
            return frozenset()
        if name in self.eff.params:
            return frozenset((name,))
        return frozenset(self.param_alias.get(name, ()))

    def _value_roots(self, value: ast.expr) -> Set[str]:
        """Param roots a bound value may alias.  Conditional binding
        idioms — ``led = ledger if ledger is not None else CostLedger()``
        and ``led = ledger or CostLedger()`` — alias the parameter on
        one branch, so the union over branches keeps mutation tracking
        sound."""
        if isinstance(value, ast.IfExp):
            return self._value_roots(value.body) | self._value_roots(value.orelse)
        if isinstance(value, ast.BoolOp):
            out: Set[str] = set()
            for v in value.values:
                out |= self._value_roots(v)
            return out
        if _copies_value(value):
            return set()
        return set(self._param_roots(_base_name(value)))

    def _mutate_name(self, name: Optional[str], line: int) -> None:
        if name is None:
            return
        for p in self._param_roots(name):
            self.eff.mutates.setdefault(p, line)
        if name in self.declared_globals or (
            name not in self.locals and name in self.info.mutable_globals
        ):
            self.eff.global_writes.setdefault(name, line)

    # -- statements -----------------------------------------------------

    def run(self) -> FunctionEffects:
        self._body(self.fn.body)
        self.eff.local_global_writes = dict(self.eff.global_writes)
        return self.eff

    def _body(self, stmts: Sequence[ast.stmt]) -> None:
        for stmt in stmts:
            self._stmt(stmt)

    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self.nested_defs.add(stmt.name)
            return  # nested defs are collected as their own functions
        if isinstance(stmt, ast.ClassDef):
            return
        if isinstance(stmt, ast.Global):
            self.declared_globals.update(stmt.names)
            return
        if isinstance(stmt, ast.Assign):
            self._expr(stmt.value)
            for t in stmt.targets:
                self._target(t, stmt.value, stmt.lineno)
            return
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._expr(stmt.value)
                self._target(stmt.target, stmt.value, stmt.lineno)
            return
        if isinstance(stmt, ast.AugAssign):
            self._expr(stmt.value)
            t = stmt.target
            if isinstance(t, ast.Name):
                # plain ``name += expr`` rebinds (ints, float counters);
                # only flag broadcast views (E5b has no other shape here)
                if t.id in self.broadcast_names:
                    self._report(stmt.lineno, "E5",
                                 "augmented assignment to broadcast view %r "
                                 "(silently writes through shared strides)" % t.id)
                if t.id in self.declared_globals:
                    self.eff.global_writes.setdefault(t.id, stmt.lineno)
            elif isinstance(t, (ast.Subscript, ast.Attribute)):
                self._mutate_name(_base_name(t), stmt.lineno)
                if isinstance(t, ast.Subscript):
                    root = _base_name(t.value)
                    if root in self.broadcast_names:
                        self._report(stmt.lineno, "E5",
                                     "augmented assignment through broadcast view %r" % root)
                self._expr_sub(t)
            return
        if isinstance(stmt, ast.Delete):
            for t in stmt.targets:
                if isinstance(t, (ast.Subscript, ast.Attribute)):
                    self._mutate_name(_base_name(t), stmt.lineno)
            return
        if isinstance(stmt, ast.Expr):
            self._expr(stmt.value)
            return
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._expr(stmt.value)
                base = _base_name(stmt.value)
                roots = self._param_roots(base)
                if roots:
                    self.eff.returns_params.update(roots)
                elif isinstance(stmt.value, (ast.Call, ast.Tuple, ast.List,
                                             ast.Dict, ast.BinOp)):
                    self.eff.allocates = True
            return
        if isinstance(stmt, (ast.If, ast.While)):
            self._expr(stmt.test)
            self._body(stmt.body)
            self._body(stmt.orelse)
            return
        if isinstance(stmt, ast.For):
            self._expr(stmt.iter)
            self._body(stmt.body)
            self._body(stmt.orelse)
            return
        if isinstance(stmt, ast.With):
            for item in stmt.items:
                self._expr(item.context_expr)
            self._body(stmt.body)
            return
        if isinstance(stmt, ast.Try):
            self._body(stmt.body)
            for h in stmt.handlers:
                self._body(h.body)
            self._body(stmt.orelse)
            self._body(stmt.finalbody)
            return
        if isinstance(stmt, (ast.Assert, ast.Raise)):
            for sub in ast.iter_child_nodes(stmt):
                if isinstance(sub, ast.expr):
                    self._expr(sub)
            return
        # pass/break/continue/import: inert (imports already in locals)

    def _target(self, t: ast.expr, value: ast.expr, line: int) -> None:
        if isinstance(t, ast.Name):
            if t.id in self.declared_globals:
                self.eff.global_writes.setdefault(t.id, line)
            # alias bookkeeping: Name = <view of param> / broadcast view
            roots = self._value_roots(value)
            if roots:
                self.param_alias[t.id] = set(roots)
            else:
                self.param_alias.pop(t.id, None)
            if isinstance(value, ast.Call) and _call_name(value) in _BROADCAST_MAKERS:
                self.broadcast_names.add(t.id)
            else:
                self.broadcast_names.discard(t.id)
        elif isinstance(t, (ast.Tuple, ast.List)):
            for elt in t.elts:
                self._target(elt, ast.Constant(value=None), line)
        elif isinstance(t, (ast.Subscript, ast.Attribute)):
            self._mutate_name(_base_name(t), line)
            self._expr_sub(t)
        elif isinstance(t, ast.Starred):
            self._target(t.value, ast.Constant(value=None), line)

    # -- expressions ----------------------------------------------------

    def _expr_sub(self, node: ast.expr) -> None:
        """Scan the sub-expressions of a store target (indices etc.)."""
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr) and not isinstance(child, ast.expr_context):
                self._expr(child)

    def _expr(self, node: ast.expr) -> None:
        for sub in _walk_own(node):
            if isinstance(sub, ast.Call):
                self._call(sub)
            elif isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load):
                if sub.id not in self.locals and sub.id in self.info.mutable_globals:
                    self.eff.global_reads.add(sub.id)

    def _call(self, node: ast.Call) -> None:
        name = _call_name(node)
        line = node.lineno
        # receiver-mutating methods
        if isinstance(node.func, ast.Attribute) and node.func.attr in _MUTATOR_METHODS:
            self._mutate_name(_base_name(node.func.value), line)
        # np.<ufunc>.at(dst, ...) and np.copyto-style arg0 mutators
        if node.args:
            arg0 = _base_name(node.args[0])
            if isinstance(node.func, ast.Attribute) and (
                node.func.attr == "at" or node.func.attr in _NP_ARG0_MUTATORS
                or (isinstance(node.func.value, ast.Name)
                    and node.func.value.id in ("np", "numpy")
                    and node.func.attr in _NP_ARG0_MUTATORS)
            ):
                self._mutate_name(arg0, line)
        # out= aliasing: always a mutation of the target ...
        out_base = None
        for kw in node.keywords:
            if kw.arg == "out":
                out_base = _base_name(kw.value)
                self._mutate_name(out_base, line)
        # ... and E5 when it aliases an input of a non-elementwise routine
        if out_base is not None and name in _E5_UNSAFE_OUT:
            for a in node.args:
                if _base_name(a) == out_base:
                    self._report(line, "E5",
                                 "out=%s aliases an input operand of %s() — "
                                 "non-elementwise kernels read operands after "
                                 "writing out" % (out_base, name))
                    break
        # E3b: locally defined callables shipped to a dispatch point
        if name in self.dispatch_names and self.kernel:
            for a in list(node.args) + [kw.value for kw in node.keywords]:
                if isinstance(a, ast.Lambda):
                    self._report(line, "E3",
                                 "lambda passed to %s() — unpicklable task "
                                 "payload for a process backend" % name)
                elif isinstance(a, ast.Name) and a.id in self.nested_defs:
                    self._report(line, "E3",
                                 "locally defined closure %r passed to %s() — "
                                 "unpicklable task payload for a process "
                                 "backend (hoist it to module level)" % (a.id, name))
        # call ref for interprocedural propagation
        if name is not None:
            recv = frozenset()
            if isinstance(node.func, ast.Attribute):
                recv = self._param_roots(_base_name(node.func.value))
            arg_roots = tuple(self._param_roots(_base_name(a)) for a in node.args)
            kw_roots = {
                kw.arg: self._param_roots(_base_name(kw.value))
                for kw in node.keywords if kw.arg is not None
            }
            self.eff.calls.append(_CallRef(name, line, recv, arg_roots, kw_roots))

    def _report(self, line: int, code: str, message: str) -> None:
        self.findings.append(EffectFinding(self.info.relpath, line, code, message))


def _copies_value(value: ast.expr) -> bool:
    """True for expressions that produce a fresh buffer even though the
    root name peels through (``x.copy()``, ``np.array(x)``)."""
    if isinstance(value, ast.Call):
        name = _call_name(value)
        if name in ("copy", "astype", "array", "deepcopy", "tolist"):
            return True
    return False


# ---------------------------------------------------------------------------
# Emission sites: E1 (declared vs inferred) and E4 (loop-varying keys)


def _emission_calls(stmt: ast.stmt, pins: _ModulePins) -> List[ast.Call]:
    """Direct task-emission calls in *stmt* (not inside nested defs):
    ``SimTask(...)``, ``<emitter>.add(...)``, ``<emitter>(...)``."""
    out = []
    for node in _walk_own(stmt):
        if not isinstance(node, ast.Call):
            continue
        fn = node.func
        if isinstance(fn, ast.Name):
            if fn.id == "SimTask" or fn.id in pins.emitters:
                out.append(node)
        elif isinstance(fn, ast.Attribute):
            if fn.attr == "SimTask":
                out.append(node)
            elif fn.attr == "add" and isinstance(fn.value, ast.Name) \
                    and fn.value.id in pins.emitters:
                out.append(node)
    return out


def _calls_emitting_fn(stmt: ast.stmt, emitting_names: Set[str]) -> bool:
    for node in _walk_own(stmt):
        if isinstance(node, ast.Call):
            name = _call_name(node)
            if name is not None and name in emitting_names:
                return True
    return False


def _resolve_families(
    expr: Optional[ast.expr],
    env: Dict[str, List[ast.expr]],
    _seen: Optional[Set[str]] = None,
) -> Tuple[Set[str], bool]:
    """Resolve a declared key-list expression to the set of key families
    (first tuple components).  Returns ``(families, open)``; *open*
    means something could not be resolved and the corresponding checks
    must stay silent."""
    if expr is None:
        return set(), False
    seen = _seen if _seen is not None else set()
    fams: Set[str] = set()
    opened = False

    def walk(e: ast.expr, depth: int) -> None:
        nonlocal opened
        if depth > 8:
            opened = True
            return
        if isinstance(e, ast.Tuple):
            if e.elts and isinstance(e.elts[0], ast.Constant) \
                    and isinstance(e.elts[0].value, str):
                fams.add(e.elts[0].value)
                return
            for elt in e.elts:
                walk(elt, depth + 1)
            return
        if isinstance(e, (ast.List, ast.Set)):
            for elt in e.elts:
                walk(elt, depth + 1)
            return
        if isinstance(e, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            walk(e.elt, depth + 1)
            return
        if isinstance(e, ast.BinOp) and isinstance(e.op, ast.Add):
            walk(e.left, depth + 1)
            walk(e.right, depth + 1)
            return
        if isinstance(e, ast.Name):
            if e.id in seen:
                return
            values = env.get(e.id)
            if not values:
                opened = True
                return
            seen.add(e.id)
            for v in values:
                walk(v, depth + 1)
            return
        if isinstance(e, ast.Call):
            name = _call_name(e)
            if name in ("list", "tuple", "sorted", "set"):
                for a in e.args:
                    walk(a, depth + 1)
                return
            opened = True
            return
        if isinstance(e, ast.IfExp):
            walk(e.body, depth + 1)
            walk(e.orelse, depth + 1)
            return
        if isinstance(e, ast.Constant) and e.value in ((), None):
            return
        opened = True

    walk(expr, 0)
    return fams, opened


def _names_in(expr: ast.expr) -> Set[str]:
    return {n.id for n in ast.walk(expr) if isinstance(n, ast.Name)}


class _EmissionChecker:
    """E1/E4 over one function: regional attribution of block-store
    accesses to the closest following emission statement."""

    def __init__(
        self,
        fn: ast.AST,
        info: _ModuleInfo,
        emitting_names: Set[str],
        findings: List[EffectFinding],
    ) -> None:
        self.fn = fn
        self.info = info
        self.pins = info.pins
        self.emitting_names = emitting_names
        self.findings = findings
        self.params = {
            x.arg for x in fn.args.posonlyargs + fn.args.args + fn.args.kwonlyargs
        }
        # Name -> every expr ever assigned to it in this function
        self.env: Dict[str, List[ast.expr]] = {}
        for node in _walk_own(fn):
            if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name):
                self.env.setdefault(node.targets[0].id, []).append(node.value)

    def run(self) -> None:
        self._body(self.fn.body, [], [])

    # pending: statements since the last emission/breaker in this list.
    # loops: enclosing for-loop target-name sets (innermost last).
    def _body(self, stmts: Sequence[ast.stmt], pending: List[ast.stmt],
              loops: List[Set[str]]) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                # a def executes nothing here; its body is checked as its
                # own function and must not leak into this region
                continue
            emissions = _emission_calls(stmt, self.pins)
            if emissions:
                if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign,
                                     ast.Expr, ast.Return)):
                    region = pending + [stmt]
                    for call in emissions:
                        self._check_site(call, region, loops)
                    pending.clear()
                elif isinstance(stmt, (ast.If, ast.With, ast.Try)):
                    # transparent: carry the pending region into bodies
                    for body in _sub_bodies(stmt):
                        self._body(body, list(pending), loops)
                    pending.clear()
                elif isinstance(stmt, (ast.For, ast.While)):
                    tnames = _names_in(stmt.target) if isinstance(stmt, ast.For) else set()
                    for body in _sub_bodies(stmt):
                        self._body(body, [], loops + ([tnames] if tnames else []))
                    pending.clear()
                else:
                    pending.clear()
            elif _calls_emitting_fn(stmt, self.emitting_names):
                pending.clear()
            else:
                pending.append(stmt)

    def _check_site(self, call: ast.Call, region: List[ast.stmt],
                    loops: List[Set[str]]) -> None:
        kwargs = {kw.arg: kw.value for kw in call.keywords if kw.arg}
        read_fams: Set[str] = set()
        write_fams: Set[str] = set()
        opened = {"r": False, "w": False}
        for kw in _READ_KWARGS:
            fams, op = _resolve_families(kwargs.get(kw), self.env)
            read_fams |= fams
            opened["r"] |= op
        for kw in _WRITE_KWARGS:
            fams, op = _resolve_families(kwargs.get(kw), self.env)
            write_fams |= fams
            opened["w"] |= op
        # writes cover reads, so an open write side also mutes read checks
        opened["r"] |= opened["w"]

        # E1a: inferred accesses in the region vs declared families
        if self.pins.blocks:
            reads, writes = self._region_accesses(region)
            read_cover = read_fams | write_fams
            for line, store, fams in writes:
                if not opened["w"] and not (fams & write_fams):
                    self._report(line, "E1",
                                 "store %r (families %s) is written in the "
                                 "region of the task emitted at line %d but "
                                 "the declared writes %s do not cover it"
                                 % (store, _fmt(fams), call.lineno,
                                    _fmt(write_fams)))
            for line, store, fams in reads:
                if not opened["r"] and not (fams & read_cover):
                    self._report(line, "E1",
                                 "store %r (families %s) is read in the "
                                 "region of the task emitted at line %d but "
                                 "the declared reads/writes %s do not cover it"
                                 % (store, _fmt(fams), call.lineno,
                                    _fmt(read_cover)))
        # E1b: declared families that map to pinned stores but are never
        # touched anywhere in the module
        image = set()
        for fams in self.pins.blocks.values():
            image |= fams
        for fam in sorted((read_fams | write_fams) & image):
            if fam not in self.info.accessed_families:
                self._report(call.lineno, "E1",
                             "task declares key family %r but no pinned "
                             "block store of that family is ever accessed "
                             "in this module" % fam)

        # E4: write keys must vary with every enclosing loop variable
        if loops and (set(kwargs) & set(_WRITE_KWARGS)) \
                and call.lineno not in self.pins.ordered_lines:
            referenced, op = self._write_key_names(kwargs)
            if not op:
                for tnames in loops:
                    if not (tnames & referenced):
                        self._report(
                            call.lineno, "E4",
                            "task emitted in a loop over %s declares write "
                            "keys that do not vary with it — same-level "
                            "tasks would declare identical write sets "
                            "(add '# effects: ordered' if deps serialize "
                            "the iterations)" % "/".join(sorted(tnames)))
                        break

    def _write_key_names(self, kwargs: Dict[str, ast.expr]) -> Tuple[Set[str], bool]:
        names: Set[str] = set()
        opened = False
        frontier: List[str] = []
        for kw in _WRITE_KWARGS:
            if kw in kwargs:
                for n in _names_in(kwargs[kw]):
                    names.add(n)
                    frontier.append(n)
        seen: Set[str] = set()
        depth = 0
        while frontier and depth < 6:
            nxt: List[str] = []
            for n in frontier:
                if n in seen:
                    continue
                seen.add(n)
                if n in self.params:
                    opened = True  # wrapper forwarding declared keys
                    continue
                for v in self.env.get(n, ()):
                    for m in _names_in(v):
                        if m not in names:
                            names.add(m)
                            nxt.append(m)
            frontier = nxt
            depth += 1
        return names, opened

    def _region_accesses(self, region: List[ast.stmt]):
        reads: List[Tuple[int, str, FrozenSet[str]]] = []
        writes: List[Tuple[int, str, FrozenSet[str]]] = []
        for stmt in region:
            for node in _walk_own(stmt):
                if not isinstance(node, ast.Subscript):
                    continue
                base = _base_name(node.value)
                if base is None or base not in self.pins.blocks:
                    continue
                fams = self.pins.blocks[base]
                rec = (node.lineno, base, fams)
                if isinstance(node.ctx, (ast.Store, ast.Del)):
                    writes.append(rec)
                else:
                    reads.append(rec)
        return reads, writes

    def _report(self, line: int, code: str, message: str) -> None:
        self.findings.append(EffectFinding(self.info.relpath, line, code, message))


def _sub_bodies(stmt: ast.stmt) -> List[List[ast.stmt]]:
    out = []
    for attr in ("body", "orelse", "finalbody"):
        body = getattr(stmt, attr, None)
        if body:
            out.append(body)
    for h in getattr(stmt, "handlers", ()):
        out.append(h.body)
    return out


def _fmt(fams: Iterable[str]) -> str:
    fams = sorted(fams)
    return "{%s}" % ", ".join(fams) if fams else "{}"


# ---------------------------------------------------------------------------
# Interprocedural propagation


class _Registry:
    def __init__(self) -> None:
        self.by_name: Dict[str, List[FunctionEffects]] = {}

    def add(self, eff: FunctionEffects) -> None:
        self.by_name.setdefault(eff.name, []).append(eff)

    def resolve(self, name: str) -> Optional[FunctionEffects]:
        group = self.by_name.get(name)
        if not group:
            return None
        sig = group[0].signature()
        for other in group[1:]:
            if other.signature() != sig:
                return None  # ambiguous: disagreeing summaries
        return group[0]

    def emitting_names(self) -> Set[str]:
        return {
            name for name, group in self.by_name.items()
            if group and all(e.emits for e in group)
        }


def _propagate(registry: _Registry, functions: List[FunctionEffects]) -> None:
    for _ in range(30):
        changed = False
        for f in functions:
            for call in f.calls:
                callee = registry.resolve(call.name)
                if callee is None or callee is f:
                    continue
                mutated = set(callee.mutates)
                pos_params = list(callee.params)
                if callee.is_method and call.recv_roots is not None:
                    if "self" in mutated or "cls" in mutated:
                        for p in call.recv_roots:
                            if p not in f.mutates:
                                f.mutates[p] = call.line
                                changed = True
                    pos_params = pos_params[1:]
                for i, roots in enumerate(call.arg_roots):
                    if i < len(pos_params) and pos_params[i] in mutated:
                        for p in roots:
                            if p not in f.mutates:
                                f.mutates[p] = call.line
                                changed = True
                for kw_name, roots in call.kw_roots.items():
                    if kw_name in mutated:
                        for p in roots:
                            if p not in f.mutates:
                                f.mutates[p] = call.line
                                changed = True
                for g, line in callee.global_writes.items():
                    if g not in f.global_writes:
                        f.global_writes[g] = call.line
                        changed = True
                new_reads = callee.global_reads - f.global_reads
                if new_reads:
                    f.global_reads |= new_reads
                    changed = True
                if callee.emits and not f.emits:
                    f.emits = True
                    changed = True
        if not changed:
            return


# ---------------------------------------------------------------------------
# E2 / E3a


def _check_declarations(
    functions: List[Tuple[_ModuleInfo, ast.AST, FunctionEffects]],
    findings: List[EffectFinding],
    kernel_paths: Set[str],
) -> None:
    for info, _node, eff in functions:
        if eff.declared is not None:
            declared = set(eff.declared["mutates"])
            label = "pure" if eff.declared["pure"] else \
                "effects(mutates=%s)" % _fmt(declared)
            for p, line in sorted(eff.mutates.items()):
                if p not in declared:
                    findings.append(EffectFinding(
                        info.relpath, eff.line, "E2",
                        "%s() is declared %s but mutates parameter %r "
                        "(line %d)" % (eff.name, label, p, line)))
        if info.relpath in kernel_paths:
            # Only writes performed by this function's own statements
            # (the snapshot) — transitive writes would re-report the
            # same defect at every caller.
            for g, line in sorted(eff.local_global_writes.items()):
                findings.append(EffectFinding(
                    info.relpath, line, "E3",
                    "%s() writes mutable module-global %r — "
                    "process-unsafe for a worker-pool backend "
                    "(pin the definition '# effects: global-ok' "
                    "if intentional)" % (eff.name, g)))


# ---------------------------------------------------------------------------
# drivers


def _package_root() -> str:
    return os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _iter_sources(root: str) -> Iterable[Tuple[str, str]]:
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(d for d in dirnames if d != "__pycache__")
        for fname in sorted(filenames):
            if fname.endswith(".py"):
                full = os.path.join(dirpath, fname)
                rel = os.path.relpath(full, root)
                yield full, rel.replace(os.sep, "/")


def _parse_modules(
    sources: Sequence[Tuple[str, str]],
    findings: List[EffectFinding],
    kernel_override: Optional[Set[str]] = None,
) -> List[_ModuleInfo]:
    infos: List[_ModuleInfo] = []
    for source, relpath in sources:
        try:
            tree = ast.parse(source)
        except SyntaxError as exc:
            findings.append(EffectFinding(
                relpath, exc.lineno or 0, "E0", "syntax error: %s" % exc.msg))
            continue
        pins = _scan_pins(source, relpath, findings)
        info = _ModuleInfo(relpath=relpath, tree=tree, pins=pins)
        _collect_module_globals(info)
        kernel = _is_effect_kernel(relpath) or (
            kernel_override is not None and relpath in kernel_override)
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                collector = _FnCollector(node, info, findings, kernel)
                eff = collector.run()
                info.functions.append((node, eff))
        # module-wide accessed key families (for E1b)
        for node in ast.walk(tree):
            if isinstance(node, ast.Subscript):
                base = _base_name(node.value)
                if base is not None and base in pins.blocks:
                    info.accessed_families |= pins.blocks[base]
        # direct emission marks (before propagation)
        for node, eff in info.functions:
            for stmt in ast.walk(node):
                if isinstance(stmt, ast.Call) and _emission_calls_direct(stmt, pins):
                    eff.emits = True
                    break
        infos.append(info)
    return infos


def _emission_calls_direct(node: ast.Call, pins: _ModulePins) -> bool:
    fn = node.func
    if isinstance(fn, ast.Name):
        return fn.id == "SimTask" or fn.id in pins.emitters
    if isinstance(fn, ast.Attribute):
        return fn.attr == "SimTask" or (
            fn.attr == "add" and isinstance(fn.value, ast.Name)
            and fn.value.id in pins.emitters)
    return False


def _analyze(
    sources: Sequence[Tuple[str, str]],
    report_for: Optional[Set[str]] = None,
    kernel_override: Optional[Set[str]] = None,
) -> Tuple[List[EffectFinding], List[FunctionEffects]]:
    findings: List[EffectFinding] = []
    infos = _parse_modules(sources, findings, kernel_override)

    registry = _Registry()
    flat: List[Tuple[_ModuleInfo, ast.AST, FunctionEffects]] = []
    for info in infos:
        for node, eff in info.functions:
            registry.add(eff)
            flat.append((info, node, eff))
    _propagate(registry, [eff for _i, _n, eff in flat])

    kernel_paths = {
        info.relpath for info in infos
        if _is_effect_kernel(info.relpath) or (
            kernel_override is not None and info.relpath in kernel_override)
    }
    _check_declarations(flat, findings, kernel_paths)

    emitting = registry.emitting_names()
    for info in infos:
        for node, _eff in info.functions:
            _EmissionChecker(node, info, emitting, findings).run()

    if report_for is not None:
        findings = [f for f in findings if f.path in report_for]
    unique = sorted(set(findings), key=lambda f: (f.path, f.line, f.code, f.message))
    summaries = [eff for _i, _n, eff in flat]
    return unique, summaries


def check_effects_source(
    source: str,
    relpath: str = "<string>",
    extra_sources: Optional[Sequence[Tuple[str, str]]] = None,
) -> List[EffectFinding]:
    """Check a single source string (plus optional companions).  The
    primary source is treated as a kernel module so every finding class
    is live — the unit-test entry point."""
    pairs = [(source, relpath)] + list(extra_sources or ())
    findings, _ = _analyze(
        pairs, report_for={relpath}, kernel_override={relpath})
    return findings


def check_effects_paths(
    paths: Sequence[str], package_root: Optional[str] = None
) -> List[EffectFinding]:
    """Check explicit files with summaries drawn from the package *plus*
    those files; findings are reported only for the given files.  The
    files are treated as kernel modules (this is the fixture entry
    point — a seeded violation must fire regardless of where the
    fixture happens to live on disk)."""
    root = package_root or _package_root()
    sources: List[Tuple[str, str]] = []
    for full, rel in _iter_sources(root):
        with open(full, "r", encoding="utf-8") as fh:
            sources.append((fh.read(), rel))
    targets: Set[str] = set()
    for path in paths:
        with open(path, "r", encoding="utf-8") as fh:
            sources.append((fh.read(), path))
        targets.add(path)
    findings, _ = _analyze(sources, report_for=targets, kernel_override=targets)
    return findings


def check_effects_tree(root: Optional[str] = None) -> List[EffectFinding]:
    """Check every module of the package — the CI gate."""
    root = root or _package_root()
    sources = []
    for full, rel in _iter_sources(root):
        with open(full, "r", encoding="utf-8") as fh:
            sources.append((fh.read(), rel))
    findings, _ = _analyze(sources)
    return findings


def collect_effect_summaries(root: Optional[str] = None) -> List[FunctionEffects]:
    """Propagated effect summaries for every function in the package.

    The differential soundness tests look functions up by
    ``(path, name)`` and assert dynamically observed mutations are a
    subset of ``summary.mutates``."""
    root = root or _package_root()
    sources = []
    for full, rel in _iter_sources(root):
        with open(full, "r", encoding="utf-8") as fh:
            sources.append((fh.read(), rel))
    _findings, summaries = _analyze(sources)
    return summaries


def summary_for(
    summaries: Sequence[FunctionEffects], path_suffix: str, name: str
) -> FunctionEffects:
    """The unique summary whose path ends with *path_suffix* and whose
    function name is *name* (raises if absent or ambiguous)."""
    hits = [s for s in summaries if s.name == name and s.path.endswith(path_suffix)]
    if len(hits) != 1:
        raise KeyError("expected exactly one summary for %s::%s, found %d"
                       % (path_suffix, name, len(hits)))
    return hits[0]


__all__.append("summary_for")


# ---------------------------------------------------------------------------
# Plan-level E4: disjointness audits on compiled schedules


def audit_triangular_schedule(sched, label: str = "<TriangularSchedule>"):
    """Symbolically verify per-level disjointness of a compiled
    :class:`repro.sparse.schedule.TriangularSchedule`.

    Every column is finalized in exactly one level, the post-grouping
    scatter targets of a vectorized level (``seg_tgt``) are pairwise
    distinct, and every scatter lands in a strictly later level — the
    write-disjointness precondition for executing a level's columns as
    parallel same-level tasks.  Scalar (narrow) levels replay
    sequentially, so only their level-ordering is checked.  Returns a
    list of E4 :class:`EffectFinding`.
    """
    import numpy as np

    findings: List[EffectFinding] = []
    level_of = np.full(sched.n, -1, dtype=np.int64)
    for lv_idx, lv in enumerate(sched.levels):
        for j in np.asarray(lv.cols, dtype=np.int64):
            j = int(j)
            if level_of[j] >= 0:
                findings.append(EffectFinding(
                    label, lv_idx, "E4",
                    "column %d finalized in levels %d and %d — parallel "
                    "column tasks would write the same x entry"
                    % (j, int(level_of[j]), lv_idx)))
            level_of[j] = lv_idx
    uncovered = np.flatnonzero(level_of < 0)
    if uncovered.size:
        findings.append(EffectFinding(
            label, 0, "E4",
            "column %d is never finalized by any level" % int(uncovered[0])))

    def check_targets(lv_idx, tgt, require_unique):
        tgt = np.asarray(tgt, dtype=np.int64)
        if not tgt.size:
            return
        if require_unique and np.unique(tgt).size != tgt.size:
            findings.append(EffectFinding(
                label, lv_idx, "E4",
                "level %d has duplicate post-grouping scatter targets — "
                "the reduceat segments are not disjoint" % lv_idx))
        bad = tgt[level_of[tgt] <= lv_idx]
        if bad.size:
            findings.append(EffectFinding(
                label, lv_idx, "E4",
                "level %d scatters into row %d of level %d — an update "
                "targets a row finalized no later than its producer"
                % (lv_idx, int(bad[0]), int(level_of[int(bad[0])]))))

    for lv_idx, lv in enumerate(sched.levels):
        if lv.scalar_cols is not None:
            for (_j, _dj, _lo, _hi, rows) in lv.scalar_cols:
                check_targets(lv_idx, rows, require_unique=False)
        else:
            check_targets(lv_idx, lv.seg_tgt, require_unique=True)
    return findings


def audit_refactor_schedule(sched, label: str = "<RefactorSchedule>"):
    """Per-stage disjointness audit of a compiled
    :class:`repro.sparse.schedule.RefactorSchedule`: every column is
    finalized in exactly one stage and within a stage the grouped
    workspace scatter targets and L-destination slots are pairwise
    distinct.  Returns a list of E4 :class:`EffectFinding`."""
    import numpy as np

    findings: List[EffectFinding] = []
    seen_cols: Set[int] = set()
    for st_idx, st in enumerate(sched.stages):
        cols = [int(c) for c in st.cols]
        for j in cols:
            if j in seen_cols:
                findings.append(EffectFinding(
                    label, st_idx, "E4",
                    "column %d finalized in more than one stage" % j))
            seen_cols.add(j)
        if np.unique(st.cols).size != st.cols.size:
            findings.append(EffectFinding(
                label, st_idx, "E4",
                "stage %d finalizes a column twice" % st_idx))
        if st.seg_tgt.size and np.unique(st.seg_tgt).size != st.seg_tgt.size:
            findings.append(EffectFinding(
                label, st_idx, "E4",
                "stage %d has duplicate post-grouping scatter targets "
                "in the update workspace" % st_idx))
        if st.l_dst.size and np.unique(st.l_dst).size != st.l_dst.size:
            findings.append(EffectFinding(
                label, st_idx, "E4",
                "stage %d writes an Lx slot twice" % st_idx))
    return findings
