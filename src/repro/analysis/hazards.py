"""Happens-before race detector for the simulated task DAG.

Basker replaces barriers with point-to-point synchronization: a task
waits only for its declared dependencies (paper §III-D, the ~11 %
saving of Figure 6).  That is *correct* exactly when the dependency
edges order every conflicting pair of block accesses.  Each
:class:`~repro.parallel.sim.SimTask` emitted by the numeric
factorization declares its read-set and write-set of logical block
keys; this module computes the happens-before relation

    HB = transitive closure of (deps  ∪  per-thread program order)

and reports every read/write or write/write pair on the same block
that HB leaves unordered — a data race under the p2p scheme.  Program
order covers tasks pinned to the same thread: Basker's schedule is
static, each thread executes its task list in emission (tid) order, so
two same-thread tasks can never overlap.  Free tasks (``thread=None``)
get no program-order edges.

Chunked (pipelined) tasks refine block keys with a ``("c", k)`` suffix:
``base + ("c", k)`` is the k-th column chunk of ``base``.  A chunk
conflicts with the whole block and with the same chunk, but not with
sibling chunks — their column ranges are disjoint.  That is what lets
the detector prove the per-column pipeline race-free rather than
flagging every overlapped stage.

The detector also reports structural defects that would hang or crash
the runtime: dependency cycles (deadlock), dangling dependency ids and
duplicate task ids.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..parallel.sim import SimTask

__all__ = ["Hazard", "HazardReport", "check_hazards", "happens_before"]

_CHUNK_TAG = "c"


def _base_chunk(key: tuple) -> Tuple[tuple, Optional[int]]:
    """Split a block key into (base, chunk); chunk is None for whole."""
    if len(key) >= 2 and key[-2] == _CHUNK_TAG and isinstance(key[-1], int):
        return key[:-2], key[-1]
    return key, None


@dataclass
class Hazard:
    """One finding.  ``kind`` is 'race', 'cycle', 'dangling' or
    'duplicate'; races carry the conflicting block and both tasks."""

    kind: str
    message: str
    block: Optional[tuple] = None
    tid_a: Optional[int] = None
    tid_b: Optional[int] = None
    label_a: str = ""
    label_b: str = ""


@dataclass
class HazardReport:
    """Outcome of :func:`check_hazards`."""

    n_tasks: int
    n_pairs_checked: int = 0
    hazards: List[Hazard] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.hazards

    @property
    def races(self) -> List[Hazard]:
        return [h for h in self.hazards if h.kind == "race"]

    @property
    def structural(self) -> List[Hazard]:
        return [h for h in self.hazards if h.kind != "race"]

    def describe(self) -> str:
        lines = [
            f"{self.n_tasks} tasks, {self.n_pairs_checked} conflicting "
            f"access pairs checked: "
            + ("OK — p2p synchronization is sufficient" if self.ok
               else f"{len(self.hazards)} hazard(s)")
        ]
        for h in self.hazards:
            lines.append(f"  [{h.kind}] {h.message}")
        return "\n".join(lines)


def _structure(tasks: Sequence[SimTask]) -> Tuple[Dict[int, int], List[List[int]], List[Hazard]]:
    """Index tasks, validate ids/deps, build successor lists
    (deps + same-thread program order).  Returns (pos_of, succs, hazards)."""
    hazards: List[Hazard] = []
    pos_of: Dict[int, int] = {}
    for t in tasks:
        if t.tid in pos_of:
            hazards.append(Hazard(
                kind="duplicate",
                message=f"duplicate task id {t.tid} ({t.label})",
                tid_a=t.tid, label_a=t.label,
            ))
        else:
            pos_of[t.tid] = len(pos_of)

    n = len(pos_of)
    succs: List[List[int]] = [[] for _ in range(n)]
    for t in tasks:
        p = pos_of[t.tid]
        for d in t.deps:
            if d not in pos_of:
                hazards.append(Hazard(
                    kind="dangling",
                    message=(
                        f"task {t.tid} ({t.label}) depends on unknown "
                        f"task id {d}"
                    ),
                    tid_a=t.tid, label_a=t.label,
                ))
                continue
            succs[pos_of[d]].append(p)

    # Program order: each pinned thread executes its tasks in emission
    # (tid) order — chain consecutive tasks of every thread.
    by_thread: Dict[int, List[SimTask]] = {}
    for t in tasks:
        if t.thread is not None:
            by_thread.setdefault(t.thread, []).append(t)
    for seq in by_thread.values():
        seq.sort(key=lambda t: t.tid)
        for a, b_ in zip(seq, seq[1:]):
            succs[pos_of[a.tid]].append(pos_of[b_.tid])
    return pos_of, succs, hazards


def happens_before(tasks: Sequence[SimTask]) -> Optional[List[int]]:
    """Strict-descendant bitmasks of the happens-before DAG.

    Returns ``desc`` where bit ``q`` of ``desc[p]`` is set iff task at
    position ``p`` happens strictly before task at position ``q``
    (positions follow the order of ``tasks``).  Returns None if the
    graph is cyclic (happens-before is then undefined).
    """
    pos_of, succs, hazards = _structure(tasks)
    if any(h.kind == "duplicate" for h in hazards):
        return None
    n = len(succs)
    indeg = [0] * n
    for vs in succs:
        for w in vs:
            indeg[w] += 1
    order: List[int] = [v for v in range(n) if indeg[v] == 0]
    head = 0
    indeg_w = list(indeg)
    while head < len(order):
        v = order[head]
        head += 1
        for w in succs[v]:
            indeg_w[w] -= 1
            if indeg_w[w] == 0:
                order.append(w)
    if len(order) != n:
        return None
    desc = [0] * n
    for v in reversed(order):
        m = 0
        for w in succs[v]:
            m |= desc[w] | (1 << w)
        desc[v] = m
    return desc


def check_hazards(tasks: Sequence[SimTask]) -> HazardReport:
    """Race + deadlock + dangling-dependency analysis of a task DAG.

    Reports every unordered conflicting access pair (read/write or
    write/write on the same block key) under happens-before = declared
    deps + per-thread program order.  Tasks that declare no
    read/write sets simply contribute no conflicts — the structural
    checks (cycles, dangling ids) still apply.
    """
    report = HazardReport(n_tasks=len(tasks))
    if not tasks:
        return report
    pos_of, succs, structural = _structure(tasks)
    report.hazards.extend(structural)
    if any(h.kind == "duplicate" for h in structural):
        return report

    desc = happens_before(tasks)
    if desc is None:
        # Name a few tasks on a cycle to make the report actionable.
        n = len(succs)
        indeg = [0] * n
        for vs in succs:
            for w in vs:
                indeg[w] += 1
        order = [v for v in range(n) if indeg[v] == 0]
        head = 0
        while head < len(order):
            v = order[head]
            head += 1
            for w in succs[v]:
                indeg[w] -= 1
                if indeg[w] == 0:
                    order.append(w)
        stuck = sorted(set(range(n)) - set(order))
        labels = [tasks[p].label or str(tasks[p].tid) for p in stuck[:6]]
        report.hazards.append(Hazard(
            kind="cycle",
            message=(
                f"dependency cycle involving {len(stuck)} task(s), "
                f"e.g. {labels} — the p2p runtime would deadlock"
            ),
        ))
        return report

    # Bucket accesses by base block key.
    accesses: Dict[tuple, List[Tuple[int, Optional[int], bool]]] = {}
    for t in tasks:
        p = pos_of[t.tid]
        seen: Dict[Tuple[tuple, Optional[int]], bool] = {}
        for key in t.writes:
            base, chunk = _base_chunk(tuple(key))
            seen[(base, chunk)] = True
        for key in t.reads:
            base, chunk = _base_chunk(tuple(key))
            seen.setdefault((base, chunk), False)
        for (base, chunk), is_write in seen.items():
            accesses.setdefault(base, []).append((p, chunk, is_write))

    pairs = 0
    for base, accs in accesses.items():
        if not any(w for _, _, w in accs):
            continue
        for i in range(len(accs)):
            pa, ca, wa = accs[i]
            for k in range(i + 1, len(accs)):
                pb, cb, wb = accs[k]
                if pa == pb or not (wa or wb):
                    continue
                if ca is not None and cb is not None and ca != cb:
                    continue  # disjoint column chunks of the same block
                pairs += 1
                if (desc[pa] >> pb) & 1 or (desc[pb] >> pa) & 1:
                    continue
                ta, tb = tasks[pa], tasks[pb]
                kind_a = "write" if wa else "read"
                kind_b = "write" if wb else "read"
                report.hazards.append(Hazard(
                    kind="race",
                    message=(
                        f"unordered {kind_a}/{kind_b} on block {base}: "
                        f"task {ta.tid} ({ta.label or 'unlabeled'}, thread "
                        f"{ta.thread}) vs task {tb.tid} "
                        f"({tb.label or 'unlabeled'}, thread {tb.thread})"
                    ),
                    block=base,
                    tid_a=ta.tid, tid_b=tb.tid,
                    label_a=ta.label, label_b=tb.label,
                ))
    report.n_pairs_checked = pairs
    return report
