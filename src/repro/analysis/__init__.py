"""Static verification layer for the Basker reproduction.

Basker's headline claim — point-to-point synchronization over the ND
dependency tree is *sufficient*, no barriers needed — is a correctness
claim about the task DAG: every pair of conflicting block accesses must
be ordered by the declared dependencies (plus each thread's static
program order).  This package turns that claim into checkable
machinery:

* :mod:`repro.analysis.hazards` — happens-before race detector over
  the declared read/write sets of every :class:`~repro.parallel.sim.SimTask`,
  plus dependency-cycle (deadlock) and dangling-dependency detection;
* :mod:`repro.analysis.conservation` — verifies no work is dropped or
  double counted (sum of per-task ledgers + declared overhead equals
  the whole-factorization ledger) and that a simulated
  :class:`~repro.parallel.sim.Schedule` is self-consistent;
* :mod:`repro.analysis.lint` — AST lint enforcing the repo's
  cost-model discipline (no wall clocks in kernels, ledgers flow
  through parameters, no bare ``except``, no mutable defaults, no
  nondeterminism in kernels);
* :mod:`repro.analysis.domains` — interprocedural index-domain checker
  that tracks which index space (``global``, ``btf``, ``nd``,
  ``local:block``) each permutation and index array lives in, using the
  :func:`repro.contracts.domains` annotations on the solver's public
  functions, and flags cross-space mixups (block-local indices applied
  to global arrays, double permutation application, mismatched
  ``compose`` chains);
* :mod:`repro.analysis.effects` — interprocedural effect-and-aliasing
  analyzer that infers each kernel function's real side effects
  (in-place parameter mutation, module-global state, task emission) and
  checks them against the declared contracts: ``SimTask`` read/write
  sets (E1), :func:`repro.contracts.effects` purity declarations (E2),
  process-safety for a real worker-pool backend (E3), same-level
  write-set disjointness including symbolic audits of the compiled
  :mod:`repro.sparse.schedule` plans (E4), and numpy in-place misuse
  (E5);
* :mod:`repro.analysis.shapes` — symbolic shape/bounds/dtype abstract
  interpreter assigning every array a symbolic shape in a lattice of
  named dimensions plus an index-range interval, checked against
  :func:`repro.contracts.shapes` declarations: gather out-of-bounds
  (S1), scatter/``reduceat`` precondition violations (S2), shape
  conformance across elementwise ops (S3), index-width hazards (S4)
  and declared-vs-inferred contract mismatches (S5), plus concrete
  ``audit_schedule_buffers`` bounds audits of compiled
  :mod:`repro.sparse.schedule` plans and a runtime differential
  contract checker;
* :mod:`repro.analysis.baseline` — fingerprinted finding baselines so
  ``repro analyze <checker> --baseline FILE`` fails only on *new*
  findings (the CI regression gate).

All checkers are exposed as ``python -m repro analyze
{hazards,conservation,lint,domains,effects,shapes}`` (``--format
json`` for machine consumption), combined under ``python -m repro
analyze all``, and run in CI.
"""

from .baseline import (
    apply_baseline,
    finding_fingerprint,
    load_baseline,
    write_baseline,
    write_baseline_many,
)
from .conservation import ConservationReport, check_conservation, check_schedule
from .domains import (
    Domain,
    DomainFinding,
    check_domains_paths,
    check_domains_source,
    check_domains_tree,
    parse_domain,
)
from .effects import (
    EffectFinding,
    FunctionEffects,
    audit_refactor_schedule,
    audit_triangular_schedule,
    check_effects_paths,
    check_effects_source,
    check_effects_tree,
    collect_effect_summaries,
    summary_for,
)
from .hazards import Hazard, HazardReport, check_hazards, happens_before
from .lint import LintFinding, lint_paths, lint_source, lint_tree
from .shapes import (
    ShapeContractError,
    ShapeFinding,
    audit_schedule_buffers,
    check_call_contract,
    check_shapes_paths,
    check_shapes_source,
    check_shapes_tree,
    collect_shape_contracts,
    contract_checked,
)

__all__ = [
    "Hazard",
    "HazardReport",
    "check_hazards",
    "happens_before",
    "ConservationReport",
    "check_conservation",
    "check_schedule",
    "LintFinding",
    "lint_paths",
    "lint_source",
    "lint_tree",
    "Domain",
    "DomainFinding",
    "parse_domain",
    "check_domains_source",
    "check_domains_paths",
    "check_domains_tree",
    "EffectFinding",
    "FunctionEffects",
    "check_effects_source",
    "check_effects_paths",
    "check_effects_tree",
    "collect_effect_summaries",
    "summary_for",
    "audit_triangular_schedule",
    "audit_refactor_schedule",
    "ShapeContractError",
    "ShapeFinding",
    "check_shapes_source",
    "check_shapes_paths",
    "check_shapes_tree",
    "collect_shape_contracts",
    "audit_schedule_buffers",
    "check_call_contract",
    "contract_checked",
    "finding_fingerprint",
    "load_baseline",
    "apply_baseline",
    "write_baseline",
    "write_baseline_many",
]
