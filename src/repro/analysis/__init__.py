"""Static verification layer for the Basker reproduction.

Basker's headline claim — point-to-point synchronization over the ND
dependency tree is *sufficient*, no barriers needed — is a correctness
claim about the task DAG: every pair of conflicting block accesses must
be ordered by the declared dependencies (plus each thread's static
program order).  This package turns that claim into checkable
machinery:

* :mod:`repro.analysis.hazards` — happens-before race detector over
  the declared read/write sets of every :class:`~repro.parallel.sim.SimTask`,
  plus dependency-cycle (deadlock) and dangling-dependency detection;
* :mod:`repro.analysis.conservation` — verifies no work is dropped or
  double counted (sum of per-task ledgers + declared overhead equals
  the whole-factorization ledger) and that a simulated
  :class:`~repro.parallel.sim.Schedule` is self-consistent;
* :mod:`repro.analysis.lint` — AST lint enforcing the repo's
  cost-model discipline (no wall clocks in kernels, ledgers flow
  through parameters, no bare ``except``, no mutable defaults, no
  nondeterminism in kernels);
* :mod:`repro.analysis.domains` — interprocedural index-domain checker
  that tracks which index space (``global``, ``btf``, ``nd``,
  ``local:block``) each permutation and index array lives in, using the
  :func:`repro.contracts.domains` annotations on the solver's public
  functions, and flags cross-space mixups (block-local indices applied
  to global arrays, double permutation application, mismatched
  ``compose`` chains).

All four are exposed as ``python -m repro analyze
{hazards,conservation,lint,domains}`` (``--format json`` for machine
consumption) and run in CI.
"""

from .conservation import ConservationReport, check_conservation, check_schedule
from .domains import (
    Domain,
    DomainFinding,
    check_domains_paths,
    check_domains_source,
    check_domains_tree,
    parse_domain,
)
from .hazards import Hazard, HazardReport, check_hazards, happens_before
from .lint import LintFinding, lint_paths, lint_source, lint_tree

__all__ = [
    "Hazard",
    "HazardReport",
    "check_hazards",
    "happens_before",
    "ConservationReport",
    "check_conservation",
    "check_schedule",
    "LintFinding",
    "lint_paths",
    "lint_source",
    "lint_tree",
    "Domain",
    "DomainFinding",
    "parse_domain",
    "check_domains_source",
    "check_domains_paths",
    "check_domains_tree",
]
