"""Static verification layer for the Basker reproduction.

Basker's headline claim — point-to-point synchronization over the ND
dependency tree is *sufficient*, no barriers needed — is a correctness
claim about the task DAG: every pair of conflicting block accesses must
be ordered by the declared dependencies (plus each thread's static
program order).  This package turns that claim into checkable
machinery:

* :mod:`repro.analysis.hazards` — happens-before race detector over
  the declared read/write sets of every :class:`~repro.parallel.sim.SimTask`,
  plus dependency-cycle (deadlock) and dangling-dependency detection;
* :mod:`repro.analysis.conservation` — verifies no work is dropped or
  double counted (sum of per-task ledgers + declared overhead equals
  the whole-factorization ledger) and that a simulated
  :class:`~repro.parallel.sim.Schedule` is self-consistent;
* :mod:`repro.analysis.lint` — AST lint enforcing the repo's
  cost-model discipline (no wall clocks in kernels, ledgers flow
  through parameters, no bare ``except``, no mutable defaults).

All three are exposed as ``python -m repro analyze
{hazards,conservation,lint}`` and run in CI.
"""

from .conservation import ConservationReport, check_conservation, check_schedule
from .hazards import Hazard, HazardReport, check_hazards, happens_before
from .lint import LintFinding, lint_paths, lint_source, lint_tree

__all__ = [
    "Hazard",
    "HazardReport",
    "check_hazards",
    "happens_before",
    "ConservationReport",
    "check_conservation",
    "check_schedule",
    "LintFinding",
    "lint_paths",
    "lint_source",
    "lint_tree",
]
