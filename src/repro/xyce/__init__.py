"""Mini transistor-level circuit simulator (the Xyce substrate)."""

from .circuits import diode_clipper_bank, rc_ladder, xyce1_analog
from .devices import (
    CCCS,
    CCVS,
    Capacitor,
    Diode,
    Inductor,
    ISource,
    MOSFET,
    Resistor,
    VCCS,
    VCVS,
    VSource,
    pulse,
    pwl,
)
from .netlist import Circuit
from .parser import NetlistError, ParsedDeck, parse_netlist, parse_value
from .transient import (
    TransientResult,
    dc_operating_point,
    matrix_sequence,
    run_transient,
    run_transient_adaptive,
)

__all__ = [
    "Circuit",
    "Resistor",
    "Capacitor",
    "VSource",
    "Inductor",
    "pulse",
    "pwl",
    "dc_operating_point",
    "ISource",
    "Diode",
    "VCCS",
    "VCVS",
    "CCCS",
    "CCVS",
    "MOSFET",
    "parse_netlist",
    "parse_value",
    "ParsedDeck",
    "NetlistError",
    "run_transient",
    "run_transient_adaptive",
    "matrix_sequence",
    "TransientResult",
    "rc_ladder",
    "diode_clipper_bank",
    "xyce1_analog",
]
