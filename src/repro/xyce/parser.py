"""SPICE netlist parser.

Turns a SPICE-format deck into a :class:`~repro.xyce.netlist.Circuit`,
so existing netlists can drive the transient substrate directly:

.. code-block:: text

    * RC lowpass driven by a pulse
    V1 1 0 PULSE(0 5 0 1u 1u 100u 200u)
    R1 1 2 1k
    C1 2 0 1n
    .tran 1u 500u
    .end

Supported cards: R, C, L, V, I (DC / SIN / PULSE / PWL), D, M (level-1
NMOS), G (VCCS), E (VCVS), F (CCCS), H (CCVS), comments (``*``, ``;``),
line continuation (``+``), ``.tran``, ``.end``.  Standard engineering
suffixes (f p n u m k meg g t) are accepted on values.  Node names may
be arbitrary tokens; ``0`` / ``gnd`` is ground.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from .devices import (
    CCCS,
    CCVS,
    Capacitor,
    Diode,
    ISource,
    Inductor,
    MOSFET,
    Resistor,
    VCCS,
    VCVS,
    VSource,
    pulse,
    pwl,
)
from .netlist import Circuit

__all__ = ["parse_netlist", "ParsedDeck", "parse_value", "NetlistError"]


class NetlistError(ValueError):
    """Raised on malformed netlist input, with the offending line."""


_SUFFIXES = [
    ("meg", 1e6),
    ("t", 1e12), ("g", 1e9), ("k", 1e3),
    ("m", 1e-3), ("u", 1e-6), ("n", 1e-9), ("p", 1e-12), ("f", 1e-15),
]


def parse_value(tok: str) -> float:
    """Parse a SPICE value with an optional engineering suffix."""
    t = tok.strip().lower()
    m = re.match(r"^([+-]?[0-9]*\.?[0-9]+(?:e[+-]?[0-9]+)?)([a-z]*)$", t)
    if not m:
        raise NetlistError(f"cannot parse value {tok!r}")
    base = float(m.group(1))
    suffix = m.group(2)
    if not suffix:
        return base
    for name, scale in _SUFFIXES:
        if suffix.startswith(name):
            return base * scale
    # Unknown trailing letters (e.g. 'ohm', 'v') are units: ignore.
    return base


@dataclass
class ParsedDeck:
    circuit: Circuit
    node_names: Dict[str, int]          # name -> 1-based node id (ground absent)
    title: str = ""
    tran: Optional[Tuple[float, float]] = None   # (dt, t_end)
    device_names: Dict[str, object] = field(default_factory=dict)

    def node(self, name: str) -> int:
        key = name.lower()
        if key in ("0", "gnd"):
            return 0
        return self.node_names[key]


def _source_waveform(tokens: List[str], line: str):
    """Parse the source spec: DC value, SIN(...), PULSE(...), PWL(...)."""
    joined = " ".join(tokens)
    m = re.match(r"(?i)^\s*(sin|pulse|pwl)\s*\((.*)\)\s*$", joined)
    if m:
        kind = m.group(1).lower()
        args = [parse_value(t) for t in m.group(2).replace(",", " ").split()]
        if kind == "sin":
            off = args[0] if len(args) > 0 else 0.0
            amp = args[1] if len(args) > 1 else 0.0
            freq = args[2] if len(args) > 2 else 1.0
            delay = args[3] if len(args) > 3 else 0.0
            return lambda t: off + amp * np.sin(2 * np.pi * freq * max(t - delay, 0.0))
        if kind == "pulse":
            if len(args) < 7:
                raise NetlistError(f"PULSE needs 7 arguments: {line!r}")
            return pulse(*args[:7])
        pts = list(zip(args[0::2], args[1::2]))
        return pwl(pts)
    # DC forms: "DC 5", "5", "DC 5V"
    toks = [t for t in tokens if t.lower() != "dc"]
    if len(toks) != 1:
        raise NetlistError(f"cannot parse source spec in {line!r}")
    v = parse_value(toks[0])
    return lambda t: v


def parse_netlist(text: str) -> ParsedDeck:
    """Parse a SPICE deck into a ready-to-simulate circuit."""
    raw_lines = text.splitlines()
    # Join continuations, strip comments.
    lines: List[str] = []
    for ln in raw_lines:
        ln = ln.split(";")[0].rstrip()
        if not ln.strip():
            continue
        if ln.lstrip().startswith("*"):
            continue
        if ln.lstrip().startswith("+") and lines:
            lines[-1] += " " + ln.lstrip()[1:]
        else:
            lines.append(ln.strip())

    title = ""
    # Collect node names first (two passes keep ids stable and let the
    # controlled sources resolve forward references).
    node_names: Dict[str, int] = {}

    def intern(name: str) -> None:
        key = name.lower()
        if key in ("0", "gnd") or key in node_names:
            return
        node_names[key] = len(node_names) + 1

    cards: List[List[str]] = []
    tran = None
    for ln in lines:
        toks = ln.split()
        head = toks[0].lower()
        if head.startswith("."):
            if head == ".tran":
                if len(toks) < 3:
                    raise NetlistError(f".tran needs dt and t_end: {ln!r}")
                tran = (parse_value(toks[1]), parse_value(toks[2]))
            elif head == ".end":
                break
            elif head == ".title":
                title = " ".join(toks[1:])
            else:
                raise NetlistError(f"unsupported directive {toks[0]!r}")
            continue
        kind = head[0]
        n_nodes = {"r": 2, "c": 2, "l": 2, "v": 2, "i": 2, "d": 2,
                   "g": 4, "e": 4, "f": 2, "h": 2, "m": 3}.get(kind)
        if n_nodes is None:
            raise NetlistError(f"unknown device card {toks[0]!r}")
        if len(toks) < 1 + n_nodes:
            raise NetlistError(f"too few tokens in {ln!r}")
        for nm in toks[1 : 1 + n_nodes]:
            intern(nm)
        cards.append(toks)

    ckt = Circuit(n_nodes=max(len(node_names), 1))

    def node(name: str) -> int:
        key = name.lower()
        return 0 if key in ("0", "gnd") else node_names[key]

    named: Dict[str, object] = {}
    pending_ctrl: List[Tuple[str, object]] = []

    for toks in cards:
        name = toks[0]
        kind = name[0].lower()
        line = " ".join(toks)
        if kind == "r":
            dev = Resistor(node(toks[1]), node(toks[2]), parse_value(toks[3]))
        elif kind == "c":
            dev = Capacitor(node(toks[1]), node(toks[2]), parse_value(toks[3]))
        elif kind == "l":
            dev = Inductor(node(toks[1]), node(toks[2]), parse_value(toks[3]))
        elif kind == "v":
            dev = VSource(node(toks[1]), node(toks[2]), _source_waveform(toks[3:], line))
        elif kind == "i":
            dev = ISource(node(toks[1]), node(toks[2]), _source_waveform(toks[3:], line))
        elif kind == "d":
            dev = Diode(node(toks[1]), node(toks[2]))
        elif kind == "m":
            params = {}
            for t in toks[4:]:
                if "=" in t:
                    k, v = t.split("=", 1)
                    params[k.lower()] = parse_value(v)
            dev = MOSFET(
                node(toks[1]), node(toks[2]), node(toks[3]),
                k=params.get("k", 2e-4), vt=params.get("vt", 0.7),
                lam=params.get("lambda", 0.02),
            )
        elif kind == "g":
            dev = VCCS(node(toks[1]), node(toks[2]), node(toks[3]), node(toks[4]),
                       gm=parse_value(toks[5]))
        elif kind == "e":
            dev = VCVS(node(toks[1]), node(toks[2]), node(toks[3]), node(toks[4]),
                       gain=parse_value(toks[5]))
        elif kind == "f":
            dev = CCCS(node(toks[1]), node(toks[2]), ctrl=None, gain=parse_value(toks[4]))
            pending_ctrl.append((toks[3], dev))
        elif kind == "h":
            dev = CCVS(node(toks[1]), node(toks[2]), ctrl=None, r=parse_value(toks[4]))
            pending_ctrl.append((toks[3], dev))
        else:  # pragma: no cover - guarded above
            raise NetlistError(f"unknown device card {name!r}")
        ckt.add(dev)
        named[name.lower()] = dev

    for ctrl_name, dev in pending_ctrl:
        ctrl = named.get(ctrl_name.lower())
        if ctrl is None or ctrl.unknowns() == 0:
            raise NetlistError(
                f"controlled source references {ctrl_name!r}, which is not a "
                "branch device (V source or inductor)"
            )
        dev.ctrl = ctrl

    return ParsedDeck(circuit=ckt, node_names=node_names, title=title,
                      tran=tran, device_names=named)
