"""Device models for the mini transistor-level circuit simulator.

Xyce performs SPICE-style modified nodal analysis (MNA): every device
*stamps* conductances into the Jacobian and currents into the residual.
The reproduction implements the devices needed to generate realistic
matrix sequences: linear R/C, independent sources, an exponential diode
(the nonlinearity that makes every Newton iteration produce a new
matrix), and a voltage-controlled current source (the classic source of
structural *unsymmetry* and one-way coupling in circuit Jacobians).

Node 0 is ground and is eliminated from the system.  Voltage sources
add a branch-current unknown (standard MNA).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Tuple

import numpy as np

__all__ = [
    "Resistor",
    "Capacitor",
    "Inductor",
    "VSource",
    "ISource",
    "Diode",
    "VCCS",
    "VCVS",
    "CCCS",
    "CCVS",
    "MOSFET",
    "Device",
    "pulse",
    "pwl",
]


def pulse(v0: float, v1: float, delay: float, rise: float, fall: float,
          width: float, period: float) -> Callable[[float], float]:
    """SPICE PULSE waveform factory."""

    def wave(t: float) -> float:
        if t < delay:
            return v0
        tm = (t - delay) % period
        if tm < rise:
            return v0 + (v1 - v0) * tm / max(rise, 1e-30)
        if tm < rise + width:
            return v1
        if tm < rise + width + fall:
            return v1 + (v0 - v1) * (tm - rise - width) / max(fall, 1e-30)
        return v0

    return wave


def pwl(points: List[Tuple[float, float]]) -> Callable[[float], float]:
    """SPICE piecewise-linear waveform factory."""
    if not points:
        raise ValueError("pwl needs at least one (t, v) point")
    ts = [p[0] for p in points]
    if any(b <= a for a, b in zip(ts, ts[1:])):
        raise ValueError("pwl times must be strictly increasing")

    def wave(t: float) -> float:
        if t <= points[0][0]:
            return points[0][1]
        for (t0, v0), (t1, v1) in zip(points, points[1:]):
            if t <= t1:
                return v0 + (v1 - v0) * (t - t0) / (t1 - t0)
        return points[-1][1]

    return wave


class Device:
    """Base class; subclasses implement the stamp methods.

    ``stamp_static`` contributes the operating-point-independent
    Jacobian entries; ``stamp_dynamic`` contributes capacitive terms
    scaled by ``1/dt``; ``stamp_nonlinear`` linearizes around ``x``.
    All stamps append COO triplets (pattern identical across calls — the
    precondition for symbolic reuse).
    """

    def unknowns(self) -> int:
        """Extra (branch-current) unknowns this device introduces."""
        return 0

    def stamp_static(self, J, rhs_fn) -> None:  # pragma: no cover - interface
        pass

    def stamp_dynamic(self, J, inv_dt: float) -> None:
        pass

    def stamp_nonlinear(self, J, x: np.ndarray, F: np.ndarray) -> None:
        pass

    def residual_static(self, x: np.ndarray, F: np.ndarray, t: float) -> None:
        pass

    def residual_dynamic(self, x: np.ndarray, x_prev: np.ndarray, inv_dt: float, F: np.ndarray) -> None:
        pass

    def residual_dynamic_trap(self, x, x_prev, inv2dt: float, F, state: dict) -> None:
        """Trapezoidal-rule dynamic residual (Xyce's default
        integrator).  ``inv2dt = 2/dt``; ``state`` holds per-device
        history (e.g. the capacitor current of the previous step)."""

    def update_dynamic_state(self, x, x_prev, inv2dt: float, state: dict) -> None:
        """Commit per-device integrator history after an accepted
        trapezoidal step."""

    def seed_state_be(self, x, x_prev, inv_dt: float, state: dict) -> None:
        """Initialize integrator history from a backward-Euler step
        (the standard trapezoidal startup)."""


class _Stamper:
    """COO accumulator with ground elimination (node 0 dropped)."""

    def __init__(self) -> None:
        self.rows: List[int] = []
        self.cols: List[int] = []
        self.vals: List[float] = []

    def add(self, i: int, j: int, v: float) -> None:
        if i > 0 and j > 0:
            self.rows.append(i - 1)
            self.cols.append(j - 1)
            self.vals.append(v)


@dataclass
class Resistor(Device):
    a: int
    b: int
    r: float

    def stamp_static(self, J: _Stamper, t: float = 0.0) -> None:
        g = 1.0 / self.r
        J.add(self.a, self.a, g)
        J.add(self.b, self.b, g)
        J.add(self.a, self.b, -g)
        J.add(self.b, self.a, -g)

    def residual_static(self, x, F, t):
        va = x[self.a - 1] if self.a else 0.0
        vb = x[self.b - 1] if self.b else 0.0
        i = (va - vb) / self.r
        if self.a:
            F[self.a - 1] += i
        if self.b:
            F[self.b - 1] -= i


@dataclass
class Capacitor(Device):
    a: int
    b: int
    c: float

    def stamp_dynamic(self, J: _Stamper, inv_dt: float) -> None:
        g = self.c * inv_dt
        J.add(self.a, self.a, g)
        J.add(self.b, self.b, g)
        J.add(self.a, self.b, -g)
        J.add(self.b, self.a, -g)

    def residual_dynamic(self, x, x_prev, inv_dt, F):
        va = x[self.a - 1] if self.a else 0.0
        vb = x[self.b - 1] if self.b else 0.0
        pa = x_prev[self.a - 1] if self.a else 0.0
        pb = x_prev[self.b - 1] if self.b else 0.0
        i = self.c * inv_dt * ((va - vb) - (pa - pb))
        if self.a:
            F[self.a - 1] += i
        if self.b:
            F[self.b - 1] -= i

    def _trap_current(self, x, x_prev, inv2dt, state):
        va = x[self.a - 1] if self.a else 0.0
        vb = x[self.b - 1] if self.b else 0.0
        pa = x_prev[self.a - 1] if self.a else 0.0
        pb = x_prev[self.b - 1] if self.b else 0.0
        i_prev = state.get(id(self), 0.0)
        # (i + i_prev)/2 = C dv/dt  =>  i = (2C/dt)(v - v_prev) - i_prev
        return self.c * inv2dt * ((va - vb) - (pa - pb)) - i_prev

    def residual_dynamic_trap(self, x, x_prev, inv2dt, F, state):
        i = self._trap_current(x, x_prev, inv2dt, state)
        if self.a:
            F[self.a - 1] += i
        if self.b:
            F[self.b - 1] -= i

    def update_dynamic_state(self, x, x_prev, inv2dt, state):
        state[id(self)] = self._trap_current(x, x_prev, inv2dt, state)

    def seed_state_be(self, x, x_prev, inv_dt, state):
        va = x[self.a - 1] if self.a else 0.0
        vb = x[self.b - 1] if self.b else 0.0
        pa = x_prev[self.a - 1] if self.a else 0.0
        pb = x_prev[self.b - 1] if self.b else 0.0
        state[id(self)] = self.c * inv_dt * ((va - vb) - (pa - pb))


@dataclass
class ISource(Device):
    """Independent current source ``waveform(t)`` flowing a -> b."""

    a: int
    b: int
    waveform: Callable[[float], float]

    def residual_static(self, x, F, t):
        i = self.waveform(t)
        if self.a:
            F[self.a - 1] += i
        if self.b:
            F[self.b - 1] -= i


@dataclass
class VSource(Device):
    """Independent voltage source; adds one branch-current unknown."""

    a: int
    b: int
    waveform: Callable[[float], float]
    branch_index: int = -1  # assigned by the circuit (0-based unknown id)

    def unknowns(self) -> int:
        return 1

    def stamp_static(self, J: _Stamper, t: float = 0.0) -> None:
        k = self.branch_index + 1  # stamper uses 1-based with ground 0
        J.add(self.a, k, 1.0)
        J.add(self.b, k, -1.0)
        J.add(k, self.a, 1.0)
        J.add(k, self.b, -1.0)

    def residual_static(self, x, F, t):
        ib = x[self.branch_index]
        if self.a:
            F[self.a - 1] += ib
        if self.b:
            F[self.b - 1] -= ib
        va = x[self.a - 1] if self.a else 0.0
        vb = x[self.b - 1] if self.b else 0.0
        F[self.branch_index] += (va - vb) - self.waveform(t)


@dataclass
class Inductor(Device):
    """Inductor with a branch-current unknown (MNA group 2).

    Backward Euler: ``v_a - v_b - (L/dt)(i - i_prev) = 0`` plus the KCL
    contributions of the branch current.
    """

    a: int
    b: int
    l: float
    branch_index: int = -1

    def unknowns(self) -> int:
        return 1

    def stamp_static(self, J: _Stamper, t: float = 0.0) -> None:
        k = self.branch_index + 1
        J.add(self.a, k, 1.0)
        J.add(self.b, k, -1.0)
        J.add(k, self.a, 1.0)
        J.add(k, self.b, -1.0)

    def stamp_dynamic(self, J: _Stamper, inv_dt: float) -> None:
        k = self.branch_index + 1
        J.add(k, k, -self.l * inv_dt)

    def residual_static(self, x, F, t):
        ib = x[self.branch_index]
        if self.a:
            F[self.a - 1] += ib
        if self.b:
            F[self.b - 1] -= ib
        va = x[self.a - 1] if self.a else 0.0
        vb = x[self.b - 1] if self.b else 0.0
        F[self.branch_index] += va - vb

    def residual_dynamic(self, x, x_prev, inv_dt, F):
        di = x[self.branch_index] - x_prev[self.branch_index]
        F[self.branch_index] -= self.l * inv_dt * di

    def residual_dynamic_trap(self, x, x_prev, inv2dt, F, state):
        # (v + v_prev)/2 = L di/dt; the static residual supplies v, so
        # add v_prev and the 2L/dt history term here.
        pa = x_prev[self.a - 1] if self.a else 0.0
        pb = x_prev[self.b - 1] if self.b else 0.0
        di = x[self.branch_index] - x_prev[self.branch_index]
        F[self.branch_index] += (pa - pb) - self.l * inv2dt * di


@dataclass
class Diode(Device):
    """Exponential diode with junction-voltage limiting."""

    a: int
    b: int
    i_s: float = 1e-12
    vt: float = 0.02585
    emission: float = 1.5
    gmin: float = 1e-12

    def _iv(self, v: float) -> Tuple[float, float]:
        nvt = self.emission * self.vt
        vlim = min(v, 40.0 * nvt)  # exponent limiting
        e = np.exp(vlim / nvt)
        i = self.i_s * (e - 1.0) + self.gmin * v
        g = self.i_s * e / nvt + self.gmin
        return float(i), float(g)

    def stamp_nonlinear(self, J: _Stamper, x: np.ndarray, F: np.ndarray) -> None:
        va = x[self.a - 1] if self.a else 0.0
        vb = x[self.b - 1] if self.b else 0.0
        i, g = self._iv(va - vb)
        J.add(self.a, self.a, g)
        J.add(self.b, self.b, g)
        J.add(self.a, self.b, -g)
        J.add(self.b, self.a, -g)
        if self.a:
            F[self.a - 1] += i
        if self.b:
            F[self.b - 1] -= i


@dataclass
class VCCS(Device):
    """Voltage-controlled current source: ``gm * (V_c - V_d)`` from a to b.

    The control nodes appear in the row of the output nodes but not
    vice versa — a structurally unsymmetric, one-way coupling (this is
    what produces BTF structure in real circuit Jacobians).
    """

    a: int
    b: int
    c: int
    d: int
    gm: float

    def stamp_static(self, J: _Stamper, t: float = 0.0) -> None:
        J.add(self.a, self.c, self.gm)
        J.add(self.a, self.d, -self.gm)
        J.add(self.b, self.c, -self.gm)
        J.add(self.b, self.d, self.gm)

    def residual_static(self, x, F, t):
        vc = x[self.c - 1] if self.c else 0.0
        vd = x[self.d - 1] if self.d else 0.0
        i = self.gm * (vc - vd)
        if self.a:
            F[self.a - 1] += i
        if self.b:
            F[self.b - 1] -= i


@dataclass
class VCVS(Device):
    """Voltage-controlled voltage source (SPICE ``E``):
    ``V(a) - V(b) = gain * (V(c) - V(d))``.  Adds a branch current."""

    a: int
    b: int
    c: int
    d: int
    gain: float
    branch_index: int = -1

    def unknowns(self) -> int:
        return 1

    def stamp_static(self, J: _Stamper, t: float = 0.0) -> None:
        k = self.branch_index + 1
        J.add(self.a, k, 1.0)
        J.add(self.b, k, -1.0)
        J.add(k, self.a, 1.0)
        J.add(k, self.b, -1.0)
        J.add(k, self.c, -self.gain)
        J.add(k, self.d, self.gain)

    def residual_static(self, x, F, t):
        ib = x[self.branch_index]
        if self.a:
            F[self.a - 1] += ib
        if self.b:
            F[self.b - 1] -= ib
        va = x[self.a - 1] if self.a else 0.0
        vb = x[self.b - 1] if self.b else 0.0
        vc = x[self.c - 1] if self.c else 0.0
        vd = x[self.d - 1] if self.d else 0.0
        F[self.branch_index] += (va - vb) - self.gain * (vc - vd)


@dataclass
class CCCS(Device):
    """Current-controlled current source (SPICE ``F``): the output
    current is ``gain * i(ctrl)`` where ``ctrl`` is a branch device
    (voltage source / inductor) carrying the sensed current."""

    a: int
    b: int
    ctrl: "Device" = None
    gain: float = 1.0

    def stamp_static(self, J: _Stamper, t: float = 0.0) -> None:
        k = self.ctrl.branch_index + 1
        J.add(self.a, k, self.gain)
        J.add(self.b, k, -self.gain)

    def residual_static(self, x, F, t):
        i = self.gain * x[self.ctrl.branch_index]
        if self.a:
            F[self.a - 1] += i
        if self.b:
            F[self.b - 1] -= i


@dataclass
class CCVS(Device):
    """Current-controlled voltage source (SPICE ``H``):
    ``V(a) - V(b) = r * i(ctrl)``.  Adds its own branch current."""

    a: int
    b: int
    ctrl: "Device" = None
    r: float = 1.0
    branch_index: int = -1

    def unknowns(self) -> int:
        return 1

    def stamp_static(self, J: _Stamper, t: float = 0.0) -> None:
        k = self.branch_index + 1
        kc = self.ctrl.branch_index + 1
        J.add(self.a, k, 1.0)
        J.add(self.b, k, -1.0)
        J.add(k, self.a, 1.0)
        J.add(k, self.b, -1.0)
        J.add(k, kc, -self.r)

    def residual_static(self, x, F, t):
        ib = x[self.branch_index]
        if self.a:
            F[self.a - 1] += ib
        if self.b:
            F[self.b - 1] -= ib
        va = x[self.a - 1] if self.a else 0.0
        vb = x[self.b - 1] if self.b else 0.0
        F[self.branch_index] += (va - vb) - self.r * x[self.ctrl.branch_index]


@dataclass
class MOSFET(Device):
    """Level-1 (square-law) NMOS: drain, gate, source (bulk tied to source).

    Regions: cutoff (gmin leak), triode and saturation with channel-
    length modulation.  Stamps the 2x3 Jacobian block (rows d, s;
    columns d, g, s) — the classic source of structural unsymmetry in
    transistor circuit matrices.
    """

    d: int
    g: int
    s: int
    k: float = 2e-4          # transconductance parameter (A/V^2)
    vt: float = 0.7          # threshold voltage
    lam: float = 0.02        # channel-length modulation
    gmin: float = 1e-12

    def _ids(self, vgs: float, vds: float):
        """Returns (ids, gm, gds) for vds >= 0 (symmetric swap outside)."""
        if vgs <= self.vt:
            return self.gmin * vds, 0.0, self.gmin
        vov = vgs - self.vt
        if vds < vov:  # triode
            ids = self.k * (vov * vds - 0.5 * vds * vds)
            gm = self.k * vds
            gds = self.k * (vov - vds) + self.gmin
        else:  # saturation
            ids = 0.5 * self.k * vov * vov * (1.0 + self.lam * vds)
            gm = self.k * vov * (1.0 + self.lam * vds)
            gds = 0.5 * self.k * vov * vov * self.lam + self.gmin
        return ids + self.gmin * vds, gm, gds

    def stamp_nonlinear(self, J: _Stamper, x: np.ndarray, F: np.ndarray) -> None:
        vd = x[self.d - 1] if self.d else 0.0
        vg = x[self.g - 1] if self.g else 0.0
        vs = x[self.s - 1] if self.s else 0.0
        # Handle vds < 0 by swapping drain/source (symmetric device).
        if vd >= vs:
            dd, ss = self.d, self.s
            ids, gm, gds = self._ids(vg - vs, vd - vs)
            sign = 1.0
        else:
            dd, ss = self.s, self.d
            ids, gm, gds = self._ids(vg - vd, vs - vd)
            sign = -1.0
        # Current flows dd -> ss inside the device (into dd terminal).
        if self.d:
            F[self.d - 1] += sign * ids
        if self.s:
            F[self.s - 1] -= sign * ids
        # d ids / d v: rows dd (+) and ss (-), columns dd, g, ss.
        J.add(dd, dd, gds)
        J.add(dd, self.g, gm)
        J.add(dd, ss, -(gds + gm))
        J.add(ss, dd, -gds)
        J.add(ss, self.g, -gm)
        J.add(ss, ss, gds + gm)
        # Note: the stamped position set {d,s} x {d,g,s} is identical
        # under the drain/source swap, so the Jacobian pattern stays
        # constant across Newton iterations and polarity changes.
