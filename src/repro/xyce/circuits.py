"""Prebuilt circuits for the transient experiments.

``xyce1_analog`` plays the role of the circuit behind the paper's
Xyce1 matrix sequence (§V-F): a transistor-level network whose
Jacobians defeat preconditioned iterative methods and whose transient
was bottlenecked by serial KLU.  The analog is a bank of nonlinear
diode/RC subcircuits driven through one-way VCCS couplings from a
meshed linear core — big enough to have one large irreducible block
plus fine BTF structure, nonlinear enough that every Newton matrix has
genuinely different values.
"""

from __future__ import annotations

import numpy as np

from .devices import Capacitor, Diode, ISource, Resistor, VCCS, VSource
from .netlist import Circuit

__all__ = ["rc_ladder", "diode_clipper_bank", "xyce1_analog"]


def rc_ladder(n_stages: int, r: float = 1e3, c: float = 1e-6, vamp: float = 5.0) -> Circuit:
    """Classic RC transmission-line ladder driven by a sine source."""
    ckt = Circuit(n_nodes=n_stages + 1)
    ckt.add(VSource(1, 0, lambda t: vamp * np.sin(2e3 * np.pi * t)))
    for k in range(1, n_stages + 1):
        ckt.add(Resistor(k, k + 1, r * (1 + 0.1 * (k % 5))))
        ckt.add(Capacitor(k + 1, 0, c * (1 + 0.05 * (k % 7))))
    return ckt


def diode_clipper_bank(n_clippers: int, rng: np.random.Generator | None = None) -> Circuit:
    """Independent diode clipper stages: strong fine-BTF structure."""
    rng = rng or np.random.default_rng(0)
    # Nodes per clipper: in, mid, out (3), all referenced to ground.
    n_nodes = 3 * n_clippers
    ckt = Circuit(n_nodes=n_nodes)
    for k in range(n_clippers):
        a, b, c = 3 * k + 1, 3 * k + 2, 3 * k + 3
        phase = float(rng.uniform(0, 2 * np.pi))
        amp = float(rng.uniform(2e-3, 6e-3))  # mA-scale drive
        ckt.add(ISource(0, a, lambda t, amp=amp, ph=phase: amp * np.sin(4e3 * np.pi * t + ph)))
        ckt.add(Resistor(a, b, float(rng.uniform(500, 2000))))
        ckt.add(Diode(b, 0))
        ckt.add(Diode(0, b))
        ckt.add(Resistor(b, c, float(rng.uniform(500, 2000))))
        ckt.add(Capacitor(c, 0, float(rng.uniform(0.5e-6, 2e-6))))
        ckt.add(Resistor(c, 0, 1e4))
    return ckt


def xyce1_analog(
    n_core: int = 400,
    n_subckts: int = 120,
    rng: np.random.Generator | None = None,
) -> Circuit:
    """The §V-F sequence circuit: meshed core + driven nonlinear banks.

    * core: nodes 1..n_core, a resistive small-world mesh with
      capacitive loading and a few drive sources — one big irreducible
      Jacobian block;
    * subcircuits: 3-node diode clippers, each *driven from* the core
      through a VCCS (one-way coupling: the subcircuits see the core,
      the core never sees them) — fine BTF blocks.
    """
    rng = rng or np.random.default_rng(7)
    n_nodes = n_core + 3 * n_subckts
    ckt = Circuit(n_nodes=n_nodes)

    # Core mesh: ring + random chords + loading.
    ckt.add(VSource(1, 0, lambda t: 5.0 * np.sin(2e3 * np.pi * t)))
    ckt.add(VSource(2, 0, lambda t: 3.3))
    for k in range(1, n_core):
        ckt.add(Resistor(k, k + 1, float(rng.uniform(100, 1000))))
    for _ in range(n_core):
        a = int(rng.integers(1, n_core + 1))
        # Local chords only: interconnect parasitics couple nearby
        # nodes, which is also what keeps ND separators small.
        b = a + int(rng.integers(-15, 16))
        if 1 <= b <= n_core and a != b:
            ckt.add(Resistor(a, b, float(rng.uniform(500, 5000))))
    for k in range(1, n_core + 1):
        if k % 3 == 0:
            ckt.add(Capacitor(k, 0, float(rng.uniform(0.1e-6, 1e-6))))
        if k % 11 == 0:
            ckt.add(Diode(k, 0, i_s=1e-13))
        ckt.add(Resistor(k, 0, 1e5))

    # Driven nonlinear subcircuits.
    for s in range(n_subckts):
        a = n_core + 3 * s + 1
        b = a + 1
        c = a + 2
        ctrl = int(rng.integers(1, n_core + 1))
        ckt.add(VCCS(0, a, ctrl, 0, gm=float(rng.uniform(1e-4, 1e-3))))
        ckt.add(Resistor(a, b, float(rng.uniform(500, 2000))))
        ckt.add(Diode(b, 0))
        ckt.add(Diode(0, b))
        ckt.add(Resistor(b, c, float(rng.uniform(500, 2000))))
        ckt.add(Capacitor(c, 0, float(rng.uniform(0.5e-6, 2e-6))))
        ckt.add(Resistor(c, 0, 1e4))
        ckt.add(Resistor(a, 0, 2e3))
    return ckt
