"""Circuit container and MNA assembly."""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..sparse.csc import CSC
from .devices import Device, _Stamper

__all__ = ["Circuit"]


class Circuit:
    """A flat netlist over nodes ``0..n_nodes`` (0 = ground).

    Unknown ordering: node voltages ``v_1..v_n`` first, then one branch
    current per voltage source.  The Jacobian pattern is fixed by the
    netlist, which is what lets the solvers reuse one symbolic analysis
    across an entire transient (paper §V-F).
    """

    def __init__(self, n_nodes: int):
        if n_nodes < 1:
            raise ValueError("need at least one non-ground node")
        self.n_nodes = n_nodes
        self.devices: List[Device] = []
        self._n_branches = 0

    def add(self, dev: Device) -> "Circuit":
        if dev.unknowns():
            # Branch-current unknowns (voltage sources, inductors) are
            # appended after the node voltages.
            dev.branch_index = self.n_nodes + self._n_branches
            self._n_branches += dev.unknowns()
        self.devices.append(dev)
        return self

    @property
    def n_unknowns(self) -> int:
        return self.n_nodes + self._n_branches

    # ------------------------------------------------------------------
    def assemble(
        self,
        x: np.ndarray,
        x_prev: np.ndarray,
        t: float,
        dt: float,
        method: str = "be",
        state: dict | None = None,
    ) -> Tuple[CSC, np.ndarray]:
        """Newton system at state ``x`` for one integration step.

        ``method`` selects backward Euler (``"be"``) or the trapezoidal
        rule (``"trap"``, Xyce's default; needs the integrator ``state``
        dict for device history).  Returns ``(J, F)`` with
        ``J dx = -F``; J's pattern is identical for every call (same
        devices stamp the same entries, both methods).
        """
        n = self.n_unknowns
        if x.shape != (n,) or x_prev.shape != (n,):
            raise ValueError("state vector has wrong length")
        if method not in ("be", "trap"):
            raise ValueError("method must be 'be' or 'trap'")
        J = _Stamper()
        F = np.zeros(n, dtype=np.float64)
        if method == "be":
            inv_dt = 1.0 / dt
            for dev in self.devices:
                dev.stamp_static(J, t)
                dev.stamp_dynamic(J, inv_dt)
                dev.stamp_nonlinear(J, x, F)
                dev.residual_static(x, F, t)
                dev.residual_dynamic(x, x_prev, inv_dt, F)
        else:
            inv2dt = 2.0 / dt
            st = state if state is not None else {}
            for dev in self.devices:
                dev.stamp_static(J, t)
                dev.stamp_dynamic(J, inv2dt)  # trap conductance = 2C/dt
                dev.stamp_nonlinear(J, x, F)
                dev.residual_static(x, F, t)
                dev.residual_dynamic_trap(x, x_prev, inv2dt, F, st)
        A = CSC.from_coo(J.rows, J.cols, J.vals, (n, n))
        return A, F

    def commit_dynamic_state(self, x, x_prev, dt: float, state: dict) -> None:
        """Update per-device trapezoidal history after an accepted step."""
        inv2dt = 2.0 / dt
        for dev in self.devices:
            dev.update_dynamic_state(x, x_prev, inv2dt, state)

    def seed_dynamic_state(self, x, x_prev, dt: float, state: dict) -> None:
        """Seed trapezoidal history from a backward-Euler first step."""
        inv_dt = 1.0 / dt
        for dev in self.devices:
            dev.seed_state_be(x, x_prev, inv_dt, state)

    def dc_pattern(self) -> CSC:
        """The Jacobian pattern (values from a zero operating point)."""
        x = np.zeros(self.n_unknowns)
        A, _ = self.assemble(x, x, t=0.0, dt=1.0)
        return A
