"""Backward-Euler transient analysis with Newton iterations.

A transient run is exactly the workload of paper §V-F: numerical
integration produces a sequence of nonlinear solves, each of which
produces a sequence of linear systems *with identical structure and
significantly different values*.  ``matrix_sequence`` records that
sequence so the benches can replay it through every solver's
refactorization path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

import numpy as np

from ..errors import NumericalHealthError, RecoveryExhaustedError, ReproError
from ..obs.tracer import get_tracer
from ..parallel.ledger import CostLedger
from ..resilience.recovery import run_ladder
from ..solvers.klu import KLU
from ..sparse.csc import CSC
from .netlist import Circuit

__all__ = [
    "TransientResult",
    "run_transient",
    "run_transient_adaptive",
    "matrix_sequence",
    "dc_operating_point",
]


@dataclass
class TransientResult:
    times: np.ndarray                 # accepted time points
    states: np.ndarray                # (n_steps+1, n_unknowns)
    matrices: List[CSC]               # every Newton Jacobian, in order
    newton_iters: List[int]           # iterations per accepted step
    converged: bool
    rejected_steps: int = 0           # steps retried at a smaller dt
    recovery_events: List[dict] = field(default_factory=list)


def dc_operating_point(
    circuit: Circuit,
    newton_tol: float = 1e-10,
    max_newton: int = 50,
    max_dx: float = 0.6,
) -> np.ndarray:
    """DC operating point: Newton with the dynamic stamps disabled.

    Capacitors become opens and inductors shorts (``1/dt = 0``), which
    is the standard SPICE ``.OP`` analysis.
    """
    n = circuit.n_unknowns
    x = np.zeros(n)
    klu = KLU()
    symbolic = None
    for _ in range(max_newton):
        J, F = circuit.assemble(x, x, t=0.0, dt=float("inf"))
        if symbolic is None:
            symbolic = klu.analyze(J)
        numeric = klu.factor(J, symbolic=symbolic)
        dx = klu.solve(numeric, -F)
        big = float(np.max(np.abs(dx), initial=0.0))
        if big > max_dx:
            dx = dx * (max_dx / big)
        x = x + dx
        if big < newton_tol * (1.0 + float(np.max(np.abs(x)))):
            return x
    raise RuntimeError("DC operating point did not converge")


def run_transient(
    circuit: Circuit,
    t_end: float,
    dt: float,
    newton_tol: float = 1e-9,
    max_newton: int = 25,
    max_dx: float = 0.6,
    x0: Optional[np.ndarray] = None,
    record_matrices: bool = True,
    max_matrices: Optional[int] = None,
    method: str = "be",
    recovery: bool = False,
    dt_min: Optional[float] = None,
    recovery_tol: float = 1e-10,
    flight=None,
    flight_machine=None,
) -> TransientResult:
    """Integrate the circuit with backward Euler or the trapezoidal rule.

    ``method="be"`` (first order, L-stable) or ``"trap"`` (second
    order, Xyce's default).  Uses the in-package KLU for the inner
    solves (the reference configuration for Xyce).  Every assembled
    Jacobian is recorded; the list is the input to the sequence
    benchmark.

    With ``recovery=True``, a linear solve that fails (any
    :class:`~repro.errors.ReproError`, or a non-finite Newton update)
    is retried through the recovery ladder
    (:func:`repro.resilience.recovery.run_ladder`); if the ladder is
    exhausted the step is *rejected* SPICE-style — the state rolls back
    to ``x_prev`` and the step retries at ``dt/2``, down to ``dt_min``
    (default ``dt/64``), where
    :class:`~repro.errors.RecoveryExhaustedError` propagates.  Ladder
    runs and rejections are summarized in
    ``TransientResult.recovery_events`` / ``rejected_steps``.

    Pass a :class:`~repro.obs.flight.FlightRecorder` as ``flight`` to
    record one entry per *accepted* step: the step's factorization cost
    (modeled seconds on ``flight_machine``, default SandyBridge),
    health gauges, metric counter deltas, and any recovery events the
    step triggered.  Each step's Newton iterations are also grouped
    under a ``transient.step`` span when tracing is enabled.
    """
    n = circuit.n_unknowns
    x = np.zeros(n) if x0 is None else np.array(x0, dtype=np.float64)
    x_prev = x.copy()
    times = [0.0]
    states = [x.copy()]
    matrices: List[CSC] = []
    iters: List[int] = []
    converged = True
    rejected = 0
    recovery_events: List[dict] = []
    if dt_min is None:
        dt_min = dt / 64.0

    klu = KLU()
    make_variant = lambda **ov: KLU(**ov)  # noqa: E731 — ladder variant factory
    symbolic = None
    dyn_state: dict = {}
    tracer = get_tracer()
    metrics = tracer.metrics
    if flight is not None and flight_machine is None:
        from ..parallel.machine import SANDY_BRIDGE
        flight_machine = SANDY_BRIDGE
    ev_mark = 0

    t = 0.0
    step_dt_next = dt
    while t < t_end - 1e-15:
        if record_matrices and max_matrices is not None and len(matrices) >= max_matrices:
            break  # recorded enough; no need to integrate further
        t_next = min(t + step_dt_next, t_end)
        step_dt = t_next - t
        x_prev = x.copy()
        ok = False
        failure: Optional[RecoveryExhaustedError] = None
        # Trapezoidal startup: the first step runs backward Euler and
        # seeds the device history (the unknown initial currents).
        step_method = "be" if (method == "trap" and not times[1:]) else method
        step_ledger = CostLedger()
        with tracer.span("transient.step") as step_sp:
            if tracer.enabled:
                step_sp.set(t=t_next)
            for it in range(1, max_newton + 1):
                J, F = circuit.assemble(x, x_prev, t_next, step_dt, method=step_method, state=dyn_state)
                if record_matrices and (max_matrices is None or len(matrices) < max_matrices):
                    matrices.append(J)
                if symbolic is None:
                    symbolic = klu.analyze(J)
                if not recovery:
                    numeric = klu.factor(J, symbolic=symbolic)
                    step_ledger.add(numeric.ledger)
                    dx = klu.solve(numeric, -F)
                else:
                    try:
                        numeric = klu.factor(J, symbolic=symbolic)
                        step_ledger.add(numeric.ledger)
                        dx = klu.solve(numeric, -F)
                        if not np.all(np.isfinite(dx)):
                            raise NumericalHealthError(
                                "Newton update contains non-finite values", what="solve"
                            )
                    except ReproError as exc:
                        try:
                            dx, _num, report = run_ladder(
                                klu, J, -F,
                                symbolic=symbolic,
                                make_variant=make_variant,
                                tol=recovery_tol,
                                label=f"t={t_next:g}",
                            )
                            step_ledger.add(report.ledger)
                            recovery_events.append(
                                {"t": t_next, "newton_iter": it, "trigger": type(exc).__name__,
                                 **report.to_dict()}
                            )
                        except RecoveryExhaustedError as exhausted:
                            recovery_events.append(
                                {"t": t_next, "newton_iter": it,
                                 "trigger": type(exc).__name__, "ok": False,
                                 "attempts": [a.to_dict() for a in exhausted.attempts]}
                            )
                            failure = exhausted
                            break
                # SPICE-style step limiting keeps the diode exponentials in
                # Newton's basin of attraction.
                big = float(np.max(np.abs(dx), initial=0.0))
                if big > max_dx:
                    dx = dx * (max_dx / big)
                x = x + dx
                if float(np.max(np.abs(dx), initial=0.0)) < newton_tol * (1.0 + float(np.max(np.abs(x)))):
                    ok = True
                    iters.append(it)
                    break
        if failure is not None:
            # Reject the step: roll back and retry at half the step.
            rejected += 1
            metrics.incr("resilience.transient.rejected")
            x = x_prev.copy()
            if step_dt * 0.5 < dt_min:
                raise RecoveryExhaustedError(
                    f"transient step at t={t_next:g} failed and dt reached "
                    f"dt_min={dt_min:g}",
                    attempts=failure.attempts,
                ) from failure
            step_dt_next = step_dt * 0.5
            continue
        if not ok:
            converged = False
            iters.append(max_newton)
        if method == "trap":
            if step_method == "be":
                circuit.seed_dynamic_state(x, x_prev, step_dt, dyn_state)
            else:
                circuit.commit_dynamic_state(x, x_prev, step_dt, dyn_state)
        t = t_next
        times.append(t)
        states.append(x.copy())
        step_dt_next = dt
        if flight is not None:
            flight.record_step(
                step=len(times) - 2,
                modeled_s=flight_machine.seconds(step_ledger),
                wall_s=getattr(step_sp, "wall_seconds", None),
                events=recovery_events[ev_mark:],
                metrics=metrics,
            )
            ev_mark = len(recovery_events)

    return TransientResult(
        times=np.asarray(times),
        states=np.asarray(states),
        matrices=matrices,
        newton_iters=iters,
        converged=converged,
        rejected_steps=rejected,
        recovery_events=recovery_events,
    )


def run_transient_adaptive(
    circuit: Circuit,
    t_end: float,
    dt0: float,
    dt_min: float | None = None,
    dt_max: float | None = None,
    newton_tol: float = 1e-9,
    max_newton: int = 25,
    max_dx: float = 0.6,
    grow: float = 1.6,
    shrink: float = 0.4,
    target_iters: int = 6,
    x0: np.ndarray | None = None,
    flight=None,
    flight_machine=None,
) -> TransientResult:
    """Transient with Xyce-style iteration-count step control.

    The classic SPICE heuristic: if Newton converges in few iterations
    the step grows by ``grow``; if it needs more than ``target_iters``
    the step shrinks; if it fails to converge the step is rejected and
    retried at ``shrink * dt`` (down to ``dt_min``, where the step is
    accepted with a warning flag just like fixed-step mode).

    ``flight``/``flight_machine`` record one
    :class:`~repro.obs.flight.FlightRecorder` entry per accepted step,
    as in :func:`run_transient`; rejected inner retries fold into the
    accepted step's cost.
    """
    n = circuit.n_unknowns
    dt_min = dt_min if dt_min is not None else dt0 / 256.0
    dt_max = dt_max if dt_max is not None else dt0 * 16.0
    x = np.zeros(n) if x0 is None else np.array(x0, dtype=np.float64)
    times = [0.0]
    states = [x.copy()]
    matrices: List[CSC] = []
    iters: List[int] = []
    converged = True
    klu = KLU()
    symbolic = None
    tracer = get_tracer()
    if flight is not None and flight_machine is None:
        from ..parallel.machine import SANDY_BRIDGE
        flight_machine = SANDY_BRIDGE

    t, dt = 0.0, dt0
    while t < t_end - 1e-15:
        dt = min(dt, t_end - t)
        x_prev = x.copy()
        step_ledger = CostLedger()
        with tracer.span("transient.step") as step_sp:
            if tracer.enabled:
                step_sp.set(t=t + dt)
            while True:
                x_try = x_prev.copy()
                ok = False
                used = max_newton
                for it in range(1, max_newton + 1):
                    J, F = circuit.assemble(x_try, x_prev, t + dt, dt)
                    matrices.append(J)
                    if symbolic is None:
                        symbolic = klu.analyze(J)
                    numeric = klu.factor(J, symbolic=symbolic)
                    step_ledger.add(numeric.ledger)
                    dx = klu.solve(numeric, -F)
                    big = float(np.max(np.abs(dx), initial=0.0))
                    if big > max_dx:
                        dx = dx * (max_dx / big)
                    x_try = x_try + dx
                    if big < newton_tol * (1.0 + float(np.max(np.abs(x_try)))):
                        ok = True
                        used = it
                        break
                if ok or dt <= dt_min * (1 + 1e-12):
                    if not ok:
                        converged = False
                    break
                dt = max(dt * shrink, dt_min)  # reject and retry smaller
        x = x_try
        t += dt
        times.append(t)
        states.append(x.copy())
        iters.append(used)
        if flight is not None:
            flight.record_step(
                step=len(times) - 2,
                modeled_s=flight_machine.seconds(step_ledger),
                wall_s=getattr(step_sp, "wall_seconds", None),
                metrics=get_tracer().metrics,
            )
        # Step-size controller.
        if used <= max(2, target_iters // 2):
            dt = min(dt * grow, dt_max)
        elif used > target_iters:
            dt = max(dt * shrink, dt_min)

    return TransientResult(
        times=np.asarray(times),
        states=np.asarray(states),
        matrices=matrices,
        newton_iters=iters,
        converged=converged,
    )


def matrix_sequence(circuit: Circuit, n_matrices: int, dt: float = 1e-4) -> List[CSC]:
    """Run the transient just long enough to record ``n_matrices``
    same-pattern Jacobians (the paper's 1000-matrix sequence)."""
    # Generous horizon; recording stops at n_matrices.
    result = run_transient(
        circuit,
        t_end=dt * max(4 * n_matrices, 10),
        dt=dt,
        record_matrices=True,
        max_matrices=n_matrices,
    )
    seq = result.matrices
    if len(seq) < n_matrices:
        # Newton converged too fast; extend by re-running with smaller dt.
        result2 = run_transient(
            circuit, t_end=dt * 4 * n_matrices, dt=dt / 3, record_matrices=True,
            max_matrices=n_matrices - len(seq),
        )
        seq = seq + result2.matrices
    return seq[:n_matrices]
