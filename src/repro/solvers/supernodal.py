"""Supernodal sparse LU — the PMKL (Intel MKL Pardiso) stand-in.

Pardiso is closed source; per DESIGN.md this module implements a real
supernodal solver with the properties the paper attributes to PMKL:

* no BTF — the whole matrix factors as one (the memory blow-up on
  BTF-rich circuit matrices in Table I);
* MC64-style matching + fill-reducing ND ordering, static pivoting with
  diagonal perturbation (Pardiso's default unsymmetric pipeline);
* symbolic structure from the Cholesky pattern of ``A + A.T`` — L and
  U^T share one supernodal pattern, so structural zeros inside panels
  are computed on (the supernodal inefficiency on low fill-in
  matrices: "PMKL has a speedup less than 1 in serial for four
  problems", §V-D);
* dense panel kernels — work lands in the cheap ``dense_flops`` ledger
  bucket (the BLAS-3 advantage on high fill-in matrices);
* right-looking Schur updates with a fork-join task DAG (etree +
  pipeline parallelism) for the simulated schedule.

A cost-variant constructor :func:`slu_mt` models SuperLU-MT: same
algorithm with 1-D-layout penalties (inflated panel cost,
partial-pivoting search overhead), *no* MC64-style matching and no
static perturbation — so structural zero diagonals are fatal, which is
how the Fig. 5 footnote ("fails on rajat21") reproduces.  An optional
fill cap additionally fails extreme-fill inputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import SingularMatrixError, StructureError
from ..graph.etree import etree, postorder, symbolic_cholesky_counts, symmetric_pattern
from ..graph.matching import mwcm_row_permutation
from ..ordering.amd import amd_order
from ..ordering.nd import nd_order
from ..ordering.perm import compose, invert
from ..parallel.ledger import CostLedger
from ..parallel.machine import MachineModel
from ..parallel.sim import Schedule, SimTask, simulate
from ..sparse.csc import CSC
from ..sparse.schedule import (
    ScheduleCompileError,
    adopt_solve_schedules,
    compile_refactor_schedule,
    permutation_gather,
)
from .triangular import lu_solve_factors

# effects: blocks F=F G=G
# effects: emitter new_task

__all__ = ["SupernodalSymbolic", "SupernodalNumeric", "SupernodalLU", "slu_mt", "SolverFailure"]


class SolverFailure(RuntimeError):
    """Raised when a solver gives up (e.g. SLU-MT's fill cap)."""


@dataclass
class SupernodalSymbolic:
    """Pattern analysis: ordering, supernodes and their row patterns."""

    n: int
    row_pre: np.ndarray          # MWCM + fill ordering (rows)
    col_perm: np.ndarray         # fill ordering (columns)
    parent: np.ndarray           # postordered elimination tree
    sn_starts: np.ndarray        # supernode column boundaries, len nsup+1
    sn_of: np.ndarray            # column -> supernode id
    sn_rows: List[np.ndarray]    # per supernode: sorted L-pattern rows >= first col
    ledger: CostLedger = field(default_factory=CostLedger)

    @property
    def n_supernodes(self) -> int:
        return len(self.sn_starts) - 1

    @property
    def factor_nnz_estimate(self) -> int:
        """|L + U| of the supernodal pattern (both triangles, diag once)."""
        total = 0
        for s in range(self.n_supernodes):
            w = int(self.sn_starts[s + 1] - self.sn_starts[s])
            below = self.sn_rows[s].size - w
            # L: dense trapezoid; U: transpose; diagonal block counted once.
            total += w * w + 2 * below * w
        return total


@dataclass
class SupernodalNumeric:
    symbolic: SupernodalSymbolic
    L: CSC
    U: CSC
    row_perm: np.ndarray
    col_perm: np.ndarray
    tasks: List[SimTask]
    ledger: CostLedger
    perturbed_pivots: int
    # Input value-gather + compiled elimination schedule reused by
    # refactor_fast across a fixed-pattern sequence (None until then).
    refactor_cache: Optional[dict] = None

    @property
    def factor_nnz(self) -> int:
        return self.L.nnz + self.U.nnz - self.L.n_cols

    @property
    def factor_bytes(self) -> int:
        """Approximate bytes held by the factors (supernodal storage is
        denser per entry in the real code; CSC-equivalent used here)."""
        return 16 * (self.L.nnz + self.U.nnz) + 16 * (self.L.n_cols + 1)

    def schedule(self, machine: MachineModel, n_threads: int, sync_mode: str = "p2p") -> Schedule:
        return simulate(self.tasks, machine, n_threads, sync_mode=sync_mode)

    def factor_seconds(self, machine: MachineModel, n_threads: int = 1) -> float:
        return self.schedule(machine, n_threads).makespan


class SupernodalLU:
    """Supernodal LU with static pivoting (PMKL stand-in)."""

    def __init__(
        self,
        ordering: str = "nd",
        relax: int = 2,
        max_supernode: int = 96,
        perturb_scale: float = 1e-10,
        dense_cost_factor: float = 1.0,
        pivot_overhead: float = 0.0,
        fill_cap: Optional[float] = None,
        use_mwcm: bool = True,
        name: str = "PMKL",
    ):
        """``relax``: amalgamation slack (extra rows tolerated when
        merging a column into the running supernode).  ``fill_cap``:
        fail if the symbolic |L+U| exceeds ``fill_cap * |A|``."""
        if ordering not in ("nd", "amd", "natural"):
            raise StructureError("ordering must be 'nd', 'amd' or 'natural'")
        self.ordering = ordering
        self.relax = int(relax)
        self.max_supernode = int(max_supernode)
        self.perturb_scale = float(perturb_scale)
        self.dense_cost_factor = float(dense_cost_factor)
        self.pivot_overhead = float(pivot_overhead)
        self.fill_cap = fill_cap
        self.use_mwcm = use_mwcm
        self.name = name

    # ------------------------------------------------------------------
    def analyze(self, A: CSC) -> SupernodalSymbolic:
        n = A.n_rows
        if A.n_cols != n:
            raise StructureError("supernodal LU requires a square matrix")
        led = CostLedger()

        if self.use_mwcm:
            pm = mwcm_row_permutation(A)
            A1 = A.permute(row_perm=pm)
            led.dfs_steps += 2 * A.nnz
        else:
            # SuperLU-MT mode: no MC64-style matching; the diagonal is
            # whatever the input provides (its partial pivoting is not
            # modelled, so zero pivots become failures).
            pm = np.arange(n, dtype=np.int64)
            A1 = A

        if self.ordering == "nd":
            pf = nd_order(A1)
        elif self.ordering == "amd":
            pf = amd_order(A1)
        else:
            pf = np.arange(n, dtype=np.int64)
        led.dfs_steps += 4 * A.nnz

        B = symmetric_pattern(A1.permute(pf, pf))
        parent = etree(B)
        post = postorder(parent)
        # Fold the postorder into the fill ordering so supernode
        # columns are contiguous.
        pf = compose(pf, post)
        B = symmetric_pattern(A1.permute(pf, pf))
        parent = etree(B)
        counts = symbolic_cholesky_counts(B, parent)
        led.dfs_steps += int(counts.sum())

        # Supernode detection with relaxed amalgamation.
        sn_starts = [0]
        for j in range(1, n):
            prev = j - 1
            width = j - sn_starts[-1]
            mergeable = (
                parent[prev] == j
                and counts[prev] <= counts[j] + 1 + self.relax
                and width < self.max_supernode
            )
            if not mergeable:
                sn_starts.append(j)
        sn_starts.append(n)
        sn_starts = np.asarray(sn_starts, dtype=np.int64)
        nsup = len(sn_starts) - 1
        sn_of = np.empty(n, dtype=np.int64)
        for s in range(nsup):
            sn_of[sn_starts[s] : sn_starts[s + 1]] = s

        # Per-supernode row patterns (exact symbolic Cholesky, by the
        # child-union recurrence in topological order).
        sn_rows: List[np.ndarray] = [None] * nsup  # type: ignore
        children: List[List[int]] = [[] for _ in range(nsup)]
        for s in range(nsup):
            c0, c1 = int(sn_starts[s]), int(sn_starts[s + 1])
            pieces = [np.arange(c0, c1, dtype=np.int64)]
            for c in range(c0, c1):
                rows, _ = B.col(c)
                pieces.append(rows[rows >= c0])
            for d in children[s]:
                rd = sn_rows[d]
                pieces.append(rd[rd >= c0])
            rows_s = np.unique(np.concatenate(pieces))
            sn_rows[s] = rows_s
            led.dfs_steps += rows_s.size
            beyond = rows_s[rows_s >= c1]
            if beyond.size:
                children[int(sn_of[beyond[0]])].append(s)

        sym = SupernodalSymbolic(
            n=n,
            row_pre=compose(pm, pf),
            col_perm=pf,
            parent=parent,
            sn_starts=sn_starts,
            sn_of=sn_of,
            sn_rows=sn_rows,
            ledger=led,
        )
        if self.fill_cap is not None and sym.factor_nnz_estimate > self.fill_cap * max(A.nnz, 1):
            raise SolverFailure(
                f"{self.name}: symbolic fill {sym.factor_nnz_estimate} exceeds "
                f"{self.fill_cap}x nnz(A) = {self.fill_cap * A.nnz:.3g}"
            )
        return sym

    # ------------------------------------------------------------------
    def factor(self, A: CSC, symbolic: Optional[SupernodalSymbolic] = None) -> SupernodalNumeric:
        if symbolic is None:
            symbolic = self.analyze(A)
        sym = symbolic
        n = sym.n
        M = A.permute(sym.row_pre, sym.col_perm)
        nsup = sym.n_supernodes
        starts, sn_of, sn_rows = sym.sn_starts, sym.sn_of, sym.sn_rows

        # Allocate panels.  F: (|rows| x w) column side (diag block + L
        # below).  G: (w x |beyond|) row side (U beyond the diagonal).
        F: List[np.ndarray] = []
        G: List[np.ndarray] = []
        for s in range(nsup):
            w = int(starts[s + 1] - starts[s])
            nr = sn_rows[s].size
            F.append(np.zeros((nr, w)))
            G.append(np.zeros((w, nr - w)))

        # Scatter A into the panels — grouped by owning supernode so
        # each group lands with one bulk searchsorted + fancy store.
        acols = np.repeat(np.arange(n, dtype=np.int64), np.diff(M.indptr))
        arows = M.indices
        avals = M.data
        scol = sn_of[acols]
        lower = arows >= starts[scol]
        # Column side: entry (r, j) with r >= c0 of j's supernode goes
        # to F[s].  ``scol`` is non-decreasing (columns scanned in
        # order), so group boundaries come straight from searchsorted.
        ls, lr, lc, lv = scol[lower], arows[lower], acols[lower], avals[lower]
        bounds = np.searchsorted(ls, np.arange(nsup + 1))
        for s in range(nsup):
            lo, hi = int(bounds[s]), int(bounds[s + 1])
            if lo < hi:
                pos = np.searchsorted(sn_rows[s], lr[lo:hi])
                F[s][pos, lc[lo:hi] - int(starts[s])] = lv[lo:hi]
        # Row side: entry (r, j) above the diagonal block goes to the
        # G panel of r's supernode; sort (stably) by that supernode.
        upper = ~lower
        ur, uc, uv = arows[upper], acols[upper], avals[upper]
        us = sn_of[ur]
        order = np.argsort(us, kind="stable")
        us, ur, uc, uv = us[order], ur[order], uc[order], uv[order]
        bounds = np.searchsorted(us, np.arange(nsup + 1))
        for s in range(nsup):
            lo, hi = int(bounds[s]), int(bounds[s + 1])
            if lo < hi:
                wr = int(starts[s + 1] - starts[s])
                pos = np.searchsorted(sn_rows[s][wr:], uc[lo:hi])
                G[s][ur[lo:hi] - int(starts[s]), pos] = uv[lo:hi]

        total = CostLedger()
        total.mem_words += A.nnz
        tasks: List[SimTask] = []
        fac_tid: Dict[int, int] = {}
        upd_into: Dict[int, List[int]] = {s: [] for s in range(nsup)}
        perturbed = 0
        anorm = max(A.max_abs(), 1.0)
        eps = self.perturb_scale * anorm

        def new_task(ledger, deps, ws, reads=(), writes=()):
            tid = len(tasks)
            tasks.append(
                SimTask(
                    tid=tid,
                    ledger=ledger,
                    deps=deps,
                    thread=None,
                    working_set=ws,
                    reads=reads,
                    writes=writes,
                )
            )
            return tid

        # Work quantum for splitting large dense tasks: real supernodal
        # codes parallelize the panel solves and Schur GEMMs with
        # threaded BLAS; chunked subtasks let the list scheduler spread
        # that work the same way.
        FLOP_CHUNK = 150_000.0
        MAX_CHUNKS = 64

        def chunked(total_flops: float) -> int:
            return max(1, min(MAX_CHUNKS, int(np.ceil(total_flops / FLOP_CHUNK))))

        for s in range(nsup):
            c0, c1 = int(starts[s]), int(starts[s + 1])
            w = c1 - c0
            rows_s = sn_rows[s]
            beyond = rows_s[w:]
            nb = beyond.size
            ws_bytes = 8.0 * (F[s].size + G[s].size)

            # Dense LU of the diagonal block, no pivoting, perturbed.
            # Strictly sequential (w is capped at max_supernode).
            D = F[s][:w, :]
            for k in range(w):
                piv = D[k, k]
                if abs(piv) < eps or piv == 0.0:
                    if self.perturb_scale <= 0.0:
                        raise SolverFailure(
                            f"{self.name}: zero pivot at column {c0 + k} "
                            "(no matching, no perturbation)"
                        )
                    # Static pivot perturbation (Pardiso-style).
                    piv = eps if piv >= 0 else -eps
                    D[k, k] = piv
                    perturbed += 1
                if k + 1 < w:
                    D[k + 1 :, k] /= piv
                    D[k + 1 :, k + 1 :] -= np.outer(D[k + 1 :, k], D[k, k + 1 :])
            diag_led = CostLedger()
            diag_led.dense_flops += (w * w * w / 3.0 + w * w) * self.dense_cost_factor
            diag_led.columns += w
            tid_diag = new_task(
                diag_led,
                list(upd_into[s]),
                ws_bytes,
                reads=[("F", s), ("G", s)],
                writes=[("F", s)],
            )
            total.add(diag_led)

            if nb == 0:
                fac_tid[s] = tid_diag
                continue

            # Panel triangular solves (row-parallel in threaded BLAS):
            # L below: X * U_D = F_below;  U beyond: L_D * Y = G.
            Lsub = F[s][w:, :]
            for k in range(w):
                if k:
                    Lsub[:, k] -= Lsub[:, :k] @ D[:k, k]
                Lsub[:, k] /= D[k, k]
            Gs = G[s]
            for k in range(1, w):
                Gs[k, :] -= D[k, :k] @ Gs[:k, :]
            panel_flops = (2.0 * nb * w * w) * self.dense_cost_factor
            npanel = chunked(panel_flops)
            panel_led = CostLedger()
            panel_led.dense_flops += panel_flops / npanel
            panel_led.sparse_flops += self.pivot_overhead * nb * w / npanel
            # Panel chunks carve disjoint row ranges of F[s][w:]/G[s];
            # they all read the factored diagonal block, which gets the
            # reserved chunk id ``npanel`` (never a sibling's id), so
            # the chunk keys prove panels race-free among themselves
            # while still conflicting with whole-block F[s] accesses.
            panel_tids = []
            for pk in range(npanel):
                panel_tids.append(
                    new_task(
                        panel_led.copy(),
                        [tid_diag],
                        ws_bytes,
                        reads=[("F", s, "c", npanel)],
                        writes=[("F", s, "c", pk), ("G", s, "c", pk)],
                    )
                )
            total.add(panel_led.scaled(npanel))
            fac_tid[s] = tid_diag  # diag completion gates nothing extra

            # Right-looking Schur update: W = L_below @ U_beyond,
            # scattered into ancestor panels by the min(r, c) rule.
            W = F[s][w:, :] @ G[s]
            upd_led = CostLedger()
            upd_led.dense_flops += float(nb) * nb * w * self.dense_cost_factor
            upd_led.mem_words += float(nb) * nb

            seg_start = 0
            while seg_start < nb:
                t = int(sn_of[beyond[seg_start]])
                t0, t1 = int(starts[t]), int(starts[t + 1])
                seg_end = int(np.searchsorted(beyond, t1))
                cols_seg = beyond[seg_start:seg_end]          # columns of W in t's range
                ci = np.arange(seg_start, seg_end)
                rows_t = sn_rows[t]
                wt = t1 - t0
                # (a) column side: r >= c0_t, c in J_t.
                ri = np.arange(seg_start, nb)                 # rows beyond >= t0 (sorted)
                rpos = np.searchsorted(rows_t, beyond[seg_start:])
                F[t][np.ix_(rpos, cols_seg - t0)] -= W[np.ix_(ri, ci)]
                # (b) row side: r in J_t, c beyond t's columns.
                if seg_end < nb:
                    cbey = beyond[seg_end:]
                    cpos = np.searchsorted(rows_t[wt:], cbey)
                    G[t][np.ix_(cols_seg - t0, cpos)] -= W[np.ix_(ci, np.arange(seg_end, nb))]
                seg_start = seg_end

            # Update tasks: per (s -> target) edge, chunked so large
            # GEMMs spread over cores (threaded-BLAS model).
            targets = sorted({int(sn_of[r]) for r in beyond})
            share_flops = upd_led.dense_flops / len(targets)
            share = upd_led.scaled(1.0 / len(targets))
            for t in targets:
                nchunk = chunked(share_flops)
                piece = share.scaled(1.0 / nchunk)
                for _ in range(nchunk):
                    # All update chunks into the same target accumulate
                    # into the same F[t]/G[t] panels, so each chains on
                    # the previous one (ordered accumulation, like the
                    # real code's per-panel locks) — hence the pin.
                    deps = list(panel_tids)
                    if upd_into[t]:
                        deps.append(upd_into[t][-1])
                    tid = new_task(  # effects: ordered
                        piece.copy(),
                        deps,
                        8.0 * nb * w,
                        reads=[("F", s), ("G", s)],
                        writes=[("F", t), ("G", t)],
                    )
                    upd_into[t].append(tid)
            total.add(upd_led)

        # Extract CSC factors — per-supernode bulk index arithmetic, in
        # the same column-by-column emission order as the scalar loops.
        _ei = np.zeros(0, dtype=np.int64)
        _ev = np.zeros(0, dtype=np.float64)
        Lr, Lc, Lv = [_ei], [_ei], [_ev]
        Ur, Uc, Uv = [_ei], [_ei], [_ev]
        for s in range(nsup):
            c0, c1 = int(starts[s]), int(starts[s + 1])
            w = c1 - c0
            rows_s = sn_rows[s]
            nr = rows_s.size
            beyond = rows_s[w:]
            nb = nr - w
            D = F[s][:w, :]
            # U: upper triangle of the diag block incl diagonal, col by
            # col (tril_indices read as (col, row) walks columns).
            ku, ru = np.tril_indices(w)
            Ur.append(c0 + ru)
            Uc.append(c0 + ku)
            Uv.append(D[ru, ku])
            # L: unit-diagonal trapezoid — for column k, rows rows_s[k:]
            # with values F[s][k:, k], the diagonal replaced by 1.0.
            kl, rl = np.nonzero(np.arange(w)[:, None] <= np.arange(nr)[None, :])
            lvals = F[s][rl, kl]
            lvals[rl == kl] = 1.0
            Lr.append(rows_s[rl])
            Lc.append(c0 + kl)
            Lv.append(lvals)
            # U beyond: rows c0..c1, columns = beyond.
            Ur.append(np.tile(np.arange(c0, c1, dtype=np.int64), nb))
            Uc.append(np.repeat(beyond, w))
            Uv.append(G[s].ravel(order="F"))
        L = CSC.from_coo(
            np.concatenate(Lr), np.concatenate(Lc), np.concatenate(Lv),
            (n, n), sum_duplicates=False,
        )
        U = CSC.from_coo(
            np.concatenate(Ur), np.concatenate(Uc), np.concatenate(Uv),
            (n, n), sum_duplicates=False,
        )
        total.mem_words += L.nnz + U.nnz

        return SupernodalNumeric(
            symbolic=sym,
            L=L,
            U=U,
            row_perm=sym.row_pre,
            col_perm=sym.col_perm,
            tasks=tasks,
            ledger=total,
            perturbed_pivots=perturbed,
        )

    # ------------------------------------------------------------------
    def refactor(self, A: CSC, numeric: SupernodalNumeric) -> SupernodalNumeric:
        return self.factor(A, symbolic=numeric.symbolic)

    # ------------------------------------------------------------------
    def refactor_fast(self, A: CSC, numeric: SupernodalNumeric) -> SupernodalNumeric:
        """Values-only refactorization on the fixed supernodal pattern.

        Replays the whole factor through a cached elimination schedule
        (:mod:`repro.sparse.schedule`) — pure value gathers plus
        level-scheduled vectorized elimination.  Falls back to
        :meth:`refactor` (full factor, static pivoting re-applied) when
        the prior factor relied on perturbed pivots, a reused pivot
        falls to zero, or the amalgamated pattern cannot be scheduled.
        The result carries no task DAG (modelled parallel times come
        from :meth:`refactor`); this is the wall-clock sequence path.
        """
        # Perturbed pivots mean the stored factors are not an exact LU
        # of M; an exact replay would divide by near-zero pivots.
        if numeric.perturbed_pivots:
            return self.refactor(A, numeric)
        sym = numeric.symbolic
        n = sym.n
        cache = numeric.refactor_cache
        if (
            cache is None
            or not np.array_equal(A.indptr, cache["a_indptr"])
            or not np.array_equal(A.indices, cache["a_indices"])
        ):
            m_indptr, m_indices, m_gather = permutation_gather(
                A, numeric.row_perm, numeric.col_perm
            )
            M0 = CSC(n, n, m_indptr, m_indices, np.zeros(m_indices.size))
            try:
                # row_perm is pre-applied in M, so the pivot order is
                # the identity (static pivoting: no numeric pivoting).
                sched = compile_refactor_schedule(
                    numeric.L, numeric.U, M0, np.arange(n, dtype=np.int64)
                )
            except ScheduleCompileError:
                return self.refactor(A, numeric)
            cache = {
                "a_indptr": A.indptr,
                "a_indices": A.indices,
                "m_gather": m_gather,
                "sched": sched,
            }
            numeric.refactor_cache = cache
        led = CostLedger()
        led.mem_words += A.nnz  # permutation / scatter traffic
        try:
            Lx, Ux = cache["sched"].run(A.data[cache["m_gather"]], led)
        except SingularMatrixError:
            return self.refactor(A, numeric)
        Lnew = CSC(n, n, numeric.L.indptr.copy(), numeric.L.indices.copy(), Lx)
        Unew = CSC(n, n, numeric.U.indptr.copy(), numeric.U.indices.copy(), Ux)
        adopt_solve_schedules(numeric.L, Lnew)
        adopt_solve_schedules(numeric.U, Unew)
        return SupernodalNumeric(
            symbolic=sym,
            L=Lnew,
            U=Unew,
            row_perm=numeric.row_perm,
            col_perm=numeric.col_perm,
            tasks=[],
            ledger=led,
            perturbed_pivots=0,
            refactor_cache=cache,
        )

    def solve(self, numeric: SupernodalNumeric, b: np.ndarray) -> np.ndarray:
        b = np.asarray(b, dtype=np.float64)
        if b.shape != (numeric.symbolic.n,):
            raise StructureError("right-hand side has wrong length")
        c = b[numeric.row_perm]
        z = lu_solve_factors(numeric.L, numeric.U, c)
        x = np.empty_like(z)
        x[numeric.col_perm] = z
        return x


def slu_mt(fill_cap: Optional[float] = 60.0) -> SupernodalLU:
    """SuperLU-MT cost variant: 1-D layout, partial pivoting overhead,
    weaker BLAS utilization, fails past a fill cap (Fig. 5 behaviour)."""
    return SupernodalLU(
        ordering="nd",
        relax=1,
        dense_cost_factor=1.8,
        pivot_overhead=0.6,
        fill_cap=fill_cap,
        use_mwcm=False,
        perturb_scale=0.0,
        name="SLU-MT",
    )
