"""Solver amenities matching the real KLU/Basker user API.

The reference KLU exposes more than plain solve: ``klu_tsolve``
(transpose solves, needed by adjoint/sensitivity analysis in circuit
simulators), multiple right-hand sides, iterative refinement, and the
numerical-quality diagnostics ``klu_rgrowth`` / ``klu_condest``.  These
work uniformly on this package's KLU, Basker and supernodal numeric
objects through a tiny structural adapter.
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple

import numpy as np

from ..errors import RefinementDivergedError, StructureError
from ..sparse.csc import CSC
from ..sparse.ops import unit_lower_solve_T, upper_solve_T
from ..sparse.verify import validate_rhs

__all__ = [
    "solve_multi",
    "refine_solve",
    "solve_transpose",
    "rgrowth",
    "condest",
]


# ----------------------------------------------------------------------
# Structural adapter over the three numeric-object flavours
# ----------------------------------------------------------------------


def _blocked_view(numeric) -> Tuple[np.ndarray, List[Tuple[CSC, CSC]], CSC, np.ndarray, np.ndarray]:
    """(block_splits, [(L, U)], M, row_perm, col_perm) for any numeric."""
    if hasattr(numeric, "block_lu"):  # KLUNumeric
        splits = numeric.symbolic.block_splits
        blocks = [(lu.L, lu.U) for lu in numeric.block_lu]
        return splits, blocks, numeric.M, numeric.row_perm, numeric.col_perm
    if hasattr(numeric, "block_factors"):  # BaskerNumeric
        splits = numeric.symbolic.block_splits
        blocks = [numeric.block_factors(k) for k in range(len(splits) - 1)]
        return splits, blocks, numeric.M, numeric.row_perm, numeric.col_perm
    # SupernodalNumeric: one block covering the whole matrix.
    n = numeric.L.n_rows
    splits = np.array([0, n], dtype=np.int64)
    M = None  # not needed: single block has no off-diagonal coupling
    return splits, [(numeric.L, numeric.U)], M, numeric.row_perm, numeric.col_perm


def solve_transpose(numeric, b: np.ndarray) -> np.ndarray:
    """Solve ``A.T x = b`` from the factors of ``A``.

    With ``M = A[rp][:, cp] = (block upper triangular, diag = L_k U_k)``,
    ``A.T x = b`` becomes ``M.T z = b[cp]`` with ``x[rp] = z`` — a
    *forward* sweep over the block structure using transposed
    triangular solves.
    """
    splits, blocks, M, row_perm, col_perm = _blocked_view(numeric)
    b = np.asarray(b, dtype=np.float64)
    n = int(splits[-1])
    if b.shape != (n,):
        raise StructureError("right-hand side has wrong length")
    c = b[col_perm].copy()
    z = np.zeros(n, dtype=np.float64)
    for k in range(len(blocks)):
        lo, hi = int(splits[k]), int(splits[k + 1])
        if hi == lo:
            continue
        if M is not None and lo > 0:
            # (M.T z)_i for i in block k picks up M[r, i] z[r] for rows
            # r in earlier blocks (M is block upper triangular).
            for i in range(lo, hi):
                rows, vals = M.col(i)
                cut = int(np.searchsorted(rows, lo))
                if cut:
                    c[i] -= float(vals[:cut] @ z[rows[:cut]])
        L, U = blocks[k]
        w = upper_solve_T(U, c[lo:hi])
        z[lo:hi] = unit_lower_solve_T(L, w)
    x = np.empty(n, dtype=np.float64)
    x[row_perm] = z
    scale = getattr(numeric, "row_scale", None)
    if scale is not None:
        # Factors are of R A: (RA)^T y = b  =>  A^T (R y) = b.
        x = x * scale
    return x


def solve_multi(solver, numeric, B: np.ndarray) -> np.ndarray:
    """Solve ``A X = B`` for a dense block of right-hand sides."""
    B = np.asarray(B, dtype=np.float64)
    if B.ndim == 1:
        return solver.solve(numeric, B)
    if B.ndim != 2:
        raise StructureError("B must be a vector or a 2-D block of RHS")
    X = np.empty_like(B)
    for j in range(B.shape[1]):
        X[:, j] = solver.solve(numeric, B[:, j])
    return X


def refine_solve(
    solver,
    numeric,
    A: CSC,
    b: np.ndarray,
    max_steps: int = 3,
    tol: float = 1e-14,
) -> Tuple[np.ndarray, List[float]]:
    """Iterative refinement: repeat ``x += A_fact^{-1} (b - A x)``.

    Returns the refined solution and the history of scaled residual
    norms (one entry per evaluation, including the initial solve).
    Stops early once the residual stagnates (shrinking by less than
    10% per step) and raises
    :class:`~repro.errors.RefinementDivergedError` when it grows past
    10x the initial residual or turns non-finite — a diverging
    correction means the factorization is too inaccurate to refine.
    """
    b = validate_rhs(b, A.n_rows)
    x = solver.solve(numeric, b)
    denom = A.one_norm() * max(float(np.max(np.abs(x), initial=0.0)), 1e-300) + float(
        np.max(np.abs(b), initial=0.0)
    )
    history: List[float] = []
    best_x, best_res = x, float("inf")
    for _ in range(max_steps + 1):
        r = b - A.matvec(x)
        res = float(np.max(np.abs(r), initial=0.0)) / denom
        if not np.isfinite(res):
            raise RefinementDivergedError(
                "iterative refinement produced a non-finite residual",
                history=history + [res],
            )
        history.append(res)
        if res < best_res:
            best_res, best_x = res, x
        if res <= tol:
            break
        if len(history) > 1:
            if res > 2.0 * history[-2] and res > history[0]:
                raise RefinementDivergedError(
                    f"iterative refinement diverged: residual "
                    f"{history[0]:.3e} -> {res:.3e}",
                    history=history,
                )
            if res > 0.9 * history[-2]:
                break  # stagnated: further corrections are noise
        x = x + solver.solve(numeric, r)
    return best_x, history


# ----------------------------------------------------------------------
# Diagnostics (klu_rgrowth / klu_condest analogues)
# ----------------------------------------------------------------------


def rgrowth(A: CSC, numeric) -> float:
    """Reciprocal pivot growth, KLU-style.

    ``min_j ( max_i |A(:, j)| / max_i |U(:, j)| )`` over the factored
    columns, computed in the factorization's permuted coordinates.
    Values near 1 mean no element growth; tiny values signal numerical
    trouble.
    """
    splits, blocks, M, row_perm, col_perm = _blocked_view(numeric)
    Aperm = A.permute(row_perm, col_perm)
    worst = np.inf
    for k in range(len(blocks)):
        lo, hi = int(splits[k]), int(splits[k + 1])
        _, U = blocks[k]
        for j in range(hi - lo):
            arows, avals = Aperm.col(lo + j)
            urows, uvals = U.col(j)
            amax = float(np.max(np.abs(avals), initial=0.0))
            umax = float(np.max(np.abs(uvals), initial=0.0))
            if umax > 0.0 and amax > 0.0:
                worst = min(worst, amax / umax)
    return worst if np.isfinite(worst) else 1.0


def condest(solver, numeric, A: CSC, maxiter: int = 5) -> float:
    """1-norm condition estimate ``||A||_1 * est(||A^{-1}||_1)``.

    Hager/Higham power iteration on ``|A^{-1}|`` using one solve and
    one transpose solve per step — the same algorithm as
    ``klu_condest``.
    """
    n = A.n_cols
    if n == 0:
        return 0.0
    x = np.full(n, 1.0 / n)
    est = 0.0
    for _ in range(maxiter):
        y = solver.solve(numeric, x)
        new_est = float(np.abs(y).sum())
        xi = np.sign(y)
        xi[xi == 0.0] = 1.0
        z = solve_transpose(numeric, xi)
        j = int(np.argmax(np.abs(z)))
        if new_est <= est or float(np.abs(z[j])) <= float(z @ x):
            est = max(est, new_est)
            break
        est = new_est
        x = np.zeros(n)
        x[j] = 1.0
    return est * A.one_norm()
