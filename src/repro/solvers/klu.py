"""KLU reimplementation: the serial baseline solver.

KLU (Davis & Natarajan, ACM TOMS 907 — ref. [5] of the paper) is the
state-of-the-art *serial* circuit solver and the paper's speedup
baseline: permute to BTF (MWCM + strongly connected components), order
every diagonal block with AMD, factor each block with Gilbert–Peierls,
and never factor the off-diagonal blocks.  Basker was designed to
replace it; reproducing KLU faithfully is therefore as load-bearing as
reproducing Basker itself.

The class follows the analyze / factor / refactor / solve life cycle
that circuit simulators rely on: ``analyze`` is pattern-only and done
once per circuit; ``factor`` is repeated for every Newton iteration
with fresh values (re-pivoting each time, reusing all orderings).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..contracts import domains, shapes
from ..obs.tracer import get_tracer
from ..ordering.amd import amd_order
from ..ordering.btf import BTFResult, btf
from ..errors import SingularMatrixError, StructureError
from ..ordering.perm import invert
from ..parallel.ledger import CostLedger
from ..resilience.faults import fault_values as _fault_values
from ..parallel.machine import MachineModel
from ..sparse.blocking import DensePlan
from ..sparse.csc import CSC
from ..sparse.schedule import (
    BlockedRefactorSchedule,
    ScheduleCompileError,
    adopt_solve_schedules,
    diagonal_block_gathers,
    drop_solve_schedules,
    permutation_gather,
)
from .gp import GP_DEFAULT_PIVOT_TOL, GPResult, gp_factor, gp_refactor
from .triangular import lu_solve_factors

__all__ = ["KLUSymbolic", "KLUNumeric", "KLU"]


@dataclass
class _KLURefactorCache:
    """Fixed-pattern value-gather maps for the refactor_fast sequence.

    Compiled once per (input pattern, final row permutation): turning
    ``A.permute(row_perm, col_perm)`` and every diagonal-block
    ``submatrix`` into pure value gathers, with no CSC reconstruction
    per step.
    """

    a_indptr: np.ndarray
    a_indices: np.ndarray
    row_perm: np.ndarray
    m_indptr: np.ndarray
    m_indices: np.ndarray
    m_gather: np.ndarray
    blocks: List[tuple]        # per block: (indptr, indices, gather into M.data)
    # Flattened all-blocks elimination schedule (compiled lazily from a
    # numeric object's factor patterns) plus the exact pattern arrays it
    # was compiled for, used to revalidate cheaply (object identity
    # along a sequence, full comparison otherwise).
    replay: Optional[BlockedRefactorSchedule] = None
    replay_patterns: Optional[List[tuple]] = None

    def matches(self, A: CSC, row_perm: np.ndarray) -> bool:
        return (
            (A.indptr is self.a_indptr or np.array_equal(A.indptr, self.a_indptr))
            and (A.indices is self.a_indices
                 or np.array_equal(A.indices, self.a_indices))
            and (row_perm is self.row_perm
                 or np.array_equal(row_perm, self.row_perm))
        )

    def replay_matches(self, numeric: "KLUNumeric") -> bool:
        """True when ``replay`` was compiled for exactly the factor
        patterns held by ``numeric``'s blocks."""
        pats = self.replay_patterns
        if pats is None or len(pats) != len(numeric.block_lu):
            return False
        for lu, (lp, li, up, ui) in zip(numeric.block_lu, pats):
            L, U = lu.L, lu.U
            if L.indptr is lp and L.indices is li and U.indptr is up and U.indices is ui:
                continue
            if not (
                np.array_equal(L.indptr, lp)
                and np.array_equal(L.indices, li)
                and np.array_equal(U.indptr, up)
                and np.array_equal(U.indices, ui)
            ):
                return False
        return True


@dataclass
class KLUSymbolic:
    """Pattern-only analysis: BTF structure + per-block AMD orderings.

    ``generation`` supports shared-cache eviction protocols: a borrower
    records the generation at borrow time and any later
    :meth:`invalidate` (cache eviction, explicit flush) bumps it, so a
    stale lease is *detected* (typed
    :class:`~repro.errors.CacheInvalidatedError` in the serving layer)
    instead of silently recomputing against dropped plans.
    """

    n: int
    btf_result: BTFResult
    row_perm_pre: np.ndarray   # BTF + AMD rows (before numerical pivoting)
    col_perm: np.ndarray       # BTF + AMD columns (final)
    ledger: CostLedger = field(default_factory=CostLedger)
    # Per-block dense-tail blocking plans for the blocked gp_factor,
    # cached on first factorization (pattern-only, so they survive any
    # number of refactor / pivot-fallback cycles on the fixed pattern).
    dense_plans: Optional[List[Optional[DensePlan]]] = None
    generation: int = 0

    @property
    def n_blocks(self) -> int:
        return self.btf_result.n_blocks

    @property
    def block_splits(self) -> np.ndarray:
        return self.btf_result.block_splits

    def invalidate(self) -> int:
        """Drop derived pattern caches and bump the generation counter.

        Returns the new generation.  Called by cache-eviction hooks; any
        lease taken at an older generation must fail typed rather than
        recompute under the borrower.
        """
        self.dense_plans = None
        self.generation += 1
        get_tracer().metrics.incr("klu.symbolic.evictions")
        return self.generation


@dataclass
class KLUNumeric:
    """Factors of one matrix: per-block LU plus the permuted matrix."""

    symbolic: KLUSymbolic
    block_lu: List[GPResult]
    row_perm: np.ndarray       # final rows, including per-block pivoting
    col_perm: np.ndarray
    M: CSC                     # (scaled) A[row_perm][:, col_perm], block upper triangular
    ledger: CostLedger
    block_ledgers: List[CostLedger]
    block_working_sets: List[float]
    row_scale: Optional[np.ndarray] = None  # equilibration factors, or None
    # Value-gather maps reused by refactor_fast across a fixed-pattern
    # sequence (None until the first refactor_fast, or after a pivot
    # fallback changed the row permutation).
    refactor_cache: Optional[_KLURefactorCache] = None

    @property
    def factor_nnz(self) -> int:
        """|L + U| counting each block's factors (diagonal stored once)."""
        total = 0
        for lu in self.block_lu:
            total += lu.L.nnz + lu.U.nnz - lu.L.n_cols  # unit diagonal of L not counted twice
        return total

    @property
    def factor_bytes(self) -> int:
        """Approximate bytes held by the factors (CSC: 8B value + 8B
        index per entry, 8B per column pointer) plus the retained
        permuted matrix used by the solve phase."""
        total = 0
        for lu in self.block_lu:
            total += 16 * (lu.L.nnz + lu.U.nnz) + 16 * (lu.L.n_cols + 1)
        total += 16 * self.M.nnz + 8 * (self.M.n_cols + 1)
        return total

    def factor_seconds(self, machine: MachineModel) -> float:
        """Serial numeric-factorization time on the given machine."""
        t = 0.0
        for led, ws in zip(self.block_ledgers, self.block_working_sets):
            t += machine.seconds(led, ws)
        return t

    def invalidate_caches(self) -> int:
        """Eviction hook: drop every derived cache hanging off this
        numeric object — the refactor value-gather/replay cache and the
        compiled triangular solve schedules on the factor matrices.

        Returns the number of compiled solve schedules released.  Does
        *not* touch the factors themselves (the object stays usable; it
        just recompiles on next use) and does not bump the symbolic
        generation — callers evicting a shared-cache entry combine this
        with :meth:`KLUSymbolic.invalidate`.
        """
        self.refactor_cache = None
        dropped = drop_solve_schedules(self.M)
        for lu in self.block_lu:
            dropped += drop_solve_schedules(lu.L)
            dropped += drop_solve_schedules(lu.U)
        return dropped


class KLU:
    """BTF + AMD + Gilbert–Peierls serial sparse LU.

    ``scale`` applies KLU-style row equilibration before factoring:
    ``"max"`` divides each row by its largest magnitude, ``"sum"`` by
    its 1-norm, ``None`` disables scaling.  (The reference KLU defaults
    to max-scaling; here the default is off so that unscaled and scaled
    paths are both first-class.)
    """

    name = "KLU"

    def __init__(
        self,
        pivot_tol: float = GP_DEFAULT_PIVOT_TOL,
        use_btf: bool = True,
        scale: str | None = None,
        static_perturb: float = 0.0,
    ):
        if scale not in (None, "max", "sum"):
            raise StructureError("scale must be None, 'max' or 'sum'")
        self.pivot_tol = float(pivot_tol)
        self.use_btf = use_btf
        self.scale = scale
        self.static_perturb = float(static_perturb)

    def _row_scale(self, A: CSC) -> np.ndarray:
        """Row equilibration factors r with R = diag(r)."""
        n = A.n_rows
        agg = np.zeros(n, dtype=np.float64)
        if self.scale == "max":
            np.maximum.at(agg, A.indices, np.abs(A.data))
        else:
            np.add.at(agg, A.indices, np.abs(A.data))
        agg[agg == 0.0] = 1.0
        return 1.0 / agg

    # ------------------------------------------------------------------
    @domains(A="matrix[global]")
    @shapes(A="csc[n,n]")
    def analyze(self, A: CSC) -> KLUSymbolic:
        """Pattern analysis: MWCM + BTF + per-block AMD."""
        n = A.n_rows
        if A.n_cols != n:
            raise StructureError("KLU requires a square matrix")
        tr = get_tracer()
        with tr.span("symbolic") as sp:
            led = CostLedger()
            if self.use_btf:
                res = btf(A)
            else:
                ident = np.arange(n, dtype=np.int64)
                res = BTFResult(ident, ident.copy(), np.array([0, n], dtype=np.int64), True)
            led.dfs_steps += A.nnz  # matching + SCC traversals, order nnz

            B = A.permute(res.row_perm, res.col_perm)  # domain: matrix[btf]
            row_pre = res.row_perm.copy()  # domain: perm[global->btf]
            col_perm = res.col_perm.copy()  # domain: perm[global->btf]
            splits = res.block_splits
            for k in range(res.n_blocks):
                lo, hi = int(splits[k]), int(splits[k + 1])
                if hi - lo <= 1:
                    continue
                blk = B.submatrix(lo, hi, lo, hi)
                p = amd_order(blk)
                led.dfs_steps += 4 * blk.nnz
                row_pre[lo:hi] = row_pre[lo:hi][p]
                col_perm[lo:hi] = col_perm[lo:hi][p]
            sp.attach(led)
        return KLUSymbolic(n=n, btf_result=res, row_perm_pre=row_pre, col_perm=col_perm, ledger=led)

    # ------------------------------------------------------------------
    @domains(A="matrix[global]")
    @shapes(A="csc[n,n]")
    def factor(self, A: CSC, symbolic: Optional[KLUSymbolic] = None) -> KLUNumeric:
        """Numeric factorization (with per-block partial pivoting)."""
        if symbolic is None:
            symbolic = self.analyze(A)
        splits = symbolic.block_splits
        tr = get_tracer()
        sp = tr.span("numeric.gp")
        with sp:
            r = None
            if self.scale is not None:
                r = self._row_scale(A)
                A = CSC(A.n_rows, A.n_cols, A.indptr.copy(), A.indices.copy(),
                        A.data * r[A.indices])
            B = A.permute(symbolic.row_perm_pre, symbolic.col_perm)
            total = CostLedger()
            overhead = CostLedger()
            overhead.mem_words += A.nnz  # permutation / block scatter traffic
            if r is not None:
                overhead.mem_words += A.nnz  # scaling pass
            total.add(overhead)
            sp.attach_overhead(overhead)

            block_lu: List[GPResult] = []
            block_ledgers: List[CostLedger] = []
            block_ws: List[float] = []
            row_perm = symbolic.row_perm_pre.copy()  # domain: perm[global->btf]
            if symbolic.dense_plans is None:
                symbolic.dense_plans = [None] * symbolic.n_blocks
            for k in range(symbolic.n_blocks):
                lo, hi = int(splits[k]), int(splits[k + 1])
                blk = B.submatrix(lo, hi, lo, hi)
                led = CostLedger()
                with tr.span("numeric.gp.block") as bsp:
                    if tr.enabled:
                        bsp.set(block=k, n=hi - lo)
                    lu = gp_factor(blk, pivot_tol=self.pivot_tol,
                                   static_perturb=self.static_perturb, ledger=led,
                                   dense_plan=symbolic.dense_plans[k])
                symbolic.dense_plans[k] = lu.dense_plan
                bsp.attach(led)
                block_lu.append(lu)
                block_ledgers.append(led)
                block_ws.append((lu.L.nnz + lu.U.nnz) * 12.0 + (hi - lo) * 8.0)
                total.add(led)
                # Fold the block's pivot permutation into the global rows.
                row_perm[lo:hi] = row_perm[lo:hi][lu.row_perm]

            M = A.permute(row_perm, symbolic.col_perm)
            sp.attach(total)
        return KLUNumeric(
            symbolic=symbolic,
            block_lu=block_lu,
            row_perm=row_perm,
            col_perm=symbolic.col_perm,
            M=M,
            ledger=total,
            block_ledgers=block_ledgers,
            block_working_sets=block_ws,
            row_scale=r,
        )

    # ------------------------------------------------------------------
    @domains(A="matrix[global]")
    @shapes(A="csc[n,n]")
    def refactor(self, A: CSC, numeric: KLUNumeric) -> KLUNumeric:
        """Factor a matrix with the same pattern, reusing the analysis.

        This is the hot path of the Xyce transient experiment (paper
        §V-F): the symbolic analysis is computed once and reused for
        every matrix of the sequence, while pivoting is redone per
        matrix.
        """
        return self.factor(A, symbolic=numeric.symbolic)

    # ------------------------------------------------------------------
    @domains(A="matrix[global]")
    @shapes(A="csc[n,n]")
    def refactor_fast(self, A: CSC, numeric: KLUNumeric) -> KLUNumeric:
        """``klu_refactor``: values-only update on fixed patterns/pivots.

        Reuses the previous numeric object's per-block patterns *and*
        pivot orders — no reach DFS, no pivot search.  Any block whose
        reused pivot degenerates falls back to a full Gilbert–Peierls
        factorization of that block (fresh pivoting), matching the
        recommended klu_refactor/klu_factor usage pattern.

        Across a fixed-pattern sequence, the permute/submatrix maps and
        the per-block elimination schedules are compiled on the first
        call and cached on the numeric objects, so every later matrix
        is pure value gathers plus vectorized level-scheduled replay.
        """
        symbolic = numeric.symbolic
        splits = symbolic.block_splits
        n = symbolic.n
        tr = get_tracer()
        metrics = tr.metrics
        sp = tr.span("refactor.replay")
        with sp:
            r = None
            if self.scale is not None:
                r = self._row_scale(A)
                A = CSC(A.n_rows, A.n_cols, A.indptr.copy(), A.indices.copy(),
                        A.data * r[A.indices])
            # Reuse the *final* row permutation (pivoting included): the
            # permuted diagonal blocks then refactor pivot-free.  The
            # permutation and block extraction are fixed-pattern, so they
            # reduce to cached value gathers.
            cache = numeric.refactor_cache
            if cache is None:
                metrics.incr("klu.refactor.gather.miss")
            elif not cache.matches(A, numeric.row_perm):
                metrics.incr("klu.refactor.gather.invalidate")
                cache = None
            else:
                metrics.incr("klu.refactor.gather.hit")
            if cache is None:
                m_indptr, m_indices, m_gather = permutation_gather(
                    A, numeric.row_perm, symbolic.col_perm
                )
                cache = _KLURefactorCache(
                    a_indptr=A.indptr,
                    a_indices=A.indices,
                    row_perm=numeric.row_perm,
                    m_indptr=m_indptr,
                    m_indices=m_indices,
                    m_gather=m_gather,
                    blocks=diagonal_block_gathers(m_indptr, m_indices, splits),
                )
                numeric.refactor_cache = cache
            m_data = _fault_values("klu.refactor.values", A.data)[cache.m_gather]
            M = CSC(n, n, cache.m_indptr, cache.m_indices, m_data)
            total = CostLedger()
            overhead = CostLedger()
            overhead.mem_words += A.nnz
            total.add(overhead)
            sp.attach_overhead(overhead)

            # Hot path: one flattened schedule replays every block at once
            # (compiled on the first call, revalidated by object identity
            # along the sequence).  Falls back to the per-block loop when a
            # reused pivot degenerates or the patterns resist compilation.
            if cache.replay is None:
                metrics.incr("klu.refactor.schedule.miss")
            elif not cache.replay_matches(numeric):
                metrics.incr("klu.refactor.schedule.invalidate")
                cache.replay = None
                cache.replay_patterns = None
            else:
                metrics.incr("klu.refactor.schedule.hit")
            if cache.replay is None:
                pats = [(lu.L.indptr, lu.L.indices, lu.U.indptr, lu.U.indices)
                        for lu in numeric.block_lu]
                try:
                    cache.replay = BlockedRefactorSchedule(splits, pats, cache.blocks)
                    cache.replay_patterns = pats
                except ScheduleCompileError:
                    cache.replay = None
                    cache.replay_patterns = None
            if cache.replay is not None:
                try:
                    out = self._replay_refactor(numeric, cache, m_data, M, total, r)
                    sp.attach(out.ledger)
                    return out
                except SingularMatrixError:
                    # per-block loop below re-pivots where needed
                    metrics.incr("klu.refactor.singular_fallback")

            block_lu: List[GPResult] = []
            block_ledgers: List[CostLedger] = []
            block_ws: List[float] = []
            row_perm = numeric.row_perm.copy()
            fell_back = False
            for k in range(symbolic.n_blocks):
                lo, hi = int(splits[k]), int(splits[k + 1])
                bptr, brows, bgather = cache.blocks[k]
                blk = CSC(hi - lo, hi - lo, bptr, brows, m_data[bgather])
                led = CostLedger()
                prior = numeric.block_lu[k]
                try:
                    # Identity pivot order within the pre-pivoted block.
                    fixed = GPResult(prior.L, prior.U,
                                     np.arange(hi - lo, dtype=np.int64), led,
                                     schedule=prior.schedule)
                    lu = gp_refactor(blk, fixed, ledger=led)
                    # Persist the compiled schedule on the prior numeric too
                    # (covers callers that keep refactoring from one object).
                    prior.schedule = lu.schedule
                except SingularMatrixError:
                    metrics.incr("klu.refactor.block_fallback")
                    plans = symbolic.dense_plans
                    lu = gp_factor(blk, pivot_tol=self.pivot_tol,
                                   static_perturb=self.static_perturb, ledger=led,
                                   dense_plan=plans[k] if plans else None)
                    if plans is not None:
                        plans[k] = lu.dense_plan
                    row_perm[lo:hi] = row_perm[lo:hi][lu.row_perm]
                    fell_back = True
                block_lu.append(lu)
                block_ledgers.append(led)
                block_ws.append((lu.L.nnz + lu.U.nnz) * 12.0 + (hi - lo) * 8.0)
                total.add(led)

            if fell_back:
                # The row permutation changed: gathers keyed to the old one
                # no longer apply to the result.
                Mfinal = A.permute(row_perm, symbolic.col_perm)
                new_cache = None
            else:
                Mfinal = M
                new_cache = cache
            sp.attach(total)
            return KLUNumeric(
                symbolic=symbolic,
                block_lu=block_lu,
                row_perm=row_perm,
                col_perm=symbolic.col_perm,
                M=Mfinal,
                ledger=total,
                block_ledgers=block_ledgers,
                block_working_sets=block_ws,
                row_scale=r,
                refactor_cache=new_cache,
            )

    # ------------------------------------------------------------------
    def _replay_refactor(
        self,
        numeric: KLUNumeric,
        cache: _KLURefactorCache,
        m_data: np.ndarray,
        M: CSC,
        total: CostLedger,
        r: Optional[np.ndarray],
    ) -> KLUNumeric:
        """One flattened sequence step: all blocks in a single replay.

        Per-block ledgers are rebuilt from the schedule's grouped flop
        attribution and are identical to running :func:`gp_refactor`
        block by block.
        """
        symbolic = numeric.symbolic
        splits = symbolic.block_splits
        replay = cache.replay
        Lx, Ux, gflops = replay.run(m_data)
        sched = replay.schedule
        gdiv = sched.group_div_flops
        gcols = sched.group_columns
        gmem = sched.group_mem_words
        l_ptr, u_ptr = replay.l_ptr, replay.u_ptr
        block_lu: List[GPResult] = []
        block_ledgers: List[CostLedger] = []
        block_ws: List[float] = []
        for k in range(symbolic.n_blocks):
            lo, hi = int(splits[k]), int(splits[k + 1])
            lp, li, up, ui = cache.replay_patterns[k]
            led = CostLedger()
            led.sparse_flops += float(gflops[k]) + float(gdiv[k])
            led.columns += int(gcols[k])
            led.mem_words += int(gmem[k])
            prior = numeric.block_lu[k]
            Lb = CSC(hi - lo, hi - lo, lp, li, Lx[l_ptr[k]:l_ptr[k + 1]])
            Ub = CSC(hi - lo, hi - lo, up, ui, Ux[u_ptr[k]:u_ptr[k + 1]])
            adopt_solve_schedules(prior.L, Lb)
            adopt_solve_schedules(prior.U, Ub)
            # Identity pivot order within the pre-pivoted block, same
            # as the per-block gp_refactor path.
            lu = GPResult(Lb, Ub, np.arange(hi - lo, dtype=np.int64), led,
                          schedule=prior.schedule)
            block_lu.append(lu)
            block_ledgers.append(led)
            block_ws.append((Lb.nnz + Ub.nnz) * 12.0 + (hi - lo) * 8.0)
            total.add(led)
        return KLUNumeric(
            symbolic=symbolic,
            block_lu=block_lu,
            row_perm=numeric.row_perm,
            col_perm=symbolic.col_perm,
            M=M,
            ledger=total,
            block_ledgers=block_ledgers,
            block_working_sets=block_ws,
            row_scale=r,
            refactor_cache=cache,
        )

    # ------------------------------------------------------------------
    @domains(b="vec[global]", returns="vec[global]")
    @shapes(returns="f8[n]")
    def solve(self, numeric: KLUNumeric, b: np.ndarray) -> np.ndarray:
        """Solve ``A x = b`` by block back-substitution over the BTF."""
        b = np.asarray(b, dtype=np.float64)
        n = numeric.symbolic.n
        if b.shape != (n,):
            raise StructureError("right-hand side has wrong length")
        with get_tracer().span("solve.tri"):
            splits = numeric.symbolic.block_splits
            if numeric.row_scale is not None:
                b = b * numeric.row_scale  # solve (R A) x = R b
            c = b[numeric.row_perm].copy()
            z = np.zeros(n, dtype=np.float64)
            M = numeric.M
            for k in range(numeric.symbolic.n_blocks - 1, -1, -1):
                lo, hi = int(splits[k]), int(splits[k + 1])
                lu = numeric.block_lu[k]
                # row_perm already folds in the block pivoting, so the
                # diagonal block of M is exactly L_k @ U_k.
                zk = lu_solve_factors(lu.L, lu.U, c[lo:hi])
                z[lo:hi] = zk
                # Subtract this block's contribution from the rows above
                # (block upper triangular: only rows < lo are affected).
                for j in range(lo, hi):
                    rows, vals = M.col(j)
                    cut = np.searchsorted(rows, lo)
                    if cut:
                        c[rows[:cut]] -= vals[:cut] * z[j]
            x = np.empty(n, dtype=np.float64)
            x[numeric.col_perm] = z
        return x
