"""Solve phase shared by the LU solvers.

All factorizations in this package expose ``A[row_perm][:, col_perm] =
L U``; this module turns that into ``x`` for ``A x = b`` and counts the
solve-phase work (the paper only times numeric factorization, but the
solve path is exercised by the examples and the Xyce transient loop).
"""

from __future__ import annotations

import numpy as np

from ..contracts import domains, shapes
from ..parallel.ledger import CostLedger
from ..sparse.csc import CSC
from ..sparse.ops import lower_solve, upper_solve

__all__ = ["lu_solve", "lu_solve_factors"]


@domains(L="matrix[S]", U="matrix[S]", b_perm="vec[S]", returns="vec[S]")
@shapes(L="csc[n,n]", U="csc[n,n]", b_perm="f8[n]", returns="f8[n]")
def lu_solve_factors(
    L: CSC,
    U: CSC,
    b_perm: np.ndarray,
    unit_diag_L: bool = True,
    ledger: CostLedger | None = None,
) -> np.ndarray:
    """Solve ``L U z = b_perm`` (b already row-permuted)."""
    y = lower_solve(L, b_perm, unit_diag=unit_diag_L)
    z = upper_solve(U, y)
    if ledger is not None:
        ledger.sparse_flops += L.nnz + U.nnz
        ledger.columns += 2 * L.n_cols
    return z


@domains(row_perm="perm[A->B]", col_perm="perm[A->C]", b="vec[A]")
@shapes(L="csc[n,n]", U="csc[n,n]", returns="f8[n]")
def lu_solve(
    L: CSC,
    U: CSC,
    row_perm: np.ndarray | None,
    col_perm: np.ndarray | None,
    b: np.ndarray,
    ledger: CostLedger | None = None,
) -> np.ndarray:
    """Solve ``A x = b`` given ``A[row_perm][:, col_perm] = L U``."""
    b = np.asarray(b, dtype=np.float64)
    c = b[row_perm] if row_perm is not None else b
    z = lu_solve_factors(L, U, c, ledger=ledger)
    if col_perm is None:
        return z
    x = np.empty_like(z)
    x[np.asarray(col_perm, dtype=np.int64)] = z
    return x
