"""Dense LU kernel for high fill-in blocks.

The paper's future work (§VI): "adding supernodes to the hierarchy
structure to improve performance on high fill-in matrices".  This
module provides the building block: a dense partial-pivoting LU whose
work lands in the cheap ``dense_flops`` ledger bucket, used by Basker's
``supernodal_separators`` mode to factor separator diagonal blocks that
have filled in past the point where Gilbert–Peierls' sparse bookkeeping
pays off.
"""

from __future__ import annotations

import numpy as np

from ..errors import SingularMatrixError, StructureError
from ..parallel.ledger import CostLedger
from ..sparse.csc import CSC
from .gp import GPResult

__all__ = ["dense_lu_factor", "DENSE_SEPARATOR_THRESHOLD"]

# Fill density (nnz / n^2 of the reduced block) above which the dense
# kernel is preferred by Basker's supernodal-separator mode.
DENSE_SEPARATOR_THRESHOLD = 0.22


def dense_lu_factor(
    A: CSC,
    static_perturb: float = 0.0,
    drop_tol: float = 0.0,
    ledger: CostLedger | None = None,
) -> GPResult:
    """Dense LU with partial pivoting, returned in the GP result format.

    The factors are converted back to CSC; entries with magnitude
    <= ``drop_tol`` are dropped from the stored factors (0 keeps the
    full dense triangles — the honest memory cost of going dense).
    """
    n = A.n_cols
    if A.n_rows != n:
        raise StructureError("dense LU requires a square matrix")
    led = ledger if ledger is not None else CostLedger()
    if n == 0:
        e = CSC.empty(0, 0)
        return GPResult(e, e, np.empty(0, dtype=np.int64), led)

    M = A.to_dense()
    led.mem_words += A.nnz + n * n / 8.0  # scatter + zero init (words)
    perm = np.arange(n, dtype=np.int64)
    eps = static_perturb

    for k in range(n):
        # Partial pivoting: largest magnitude in the remaining column.
        p = k + int(np.argmax(np.abs(M[k:, k])))
        if M[p, k] == 0.0:
            if eps > 0.0:
                M[p, k] = eps
            else:
                raise SingularMatrixError(f"dense LU: zero pivot column {k}", column=k)
        if p != k:
            M[[k, p], :] = M[[p, k], :]
            perm[[k, p]] = perm[[p, k]]
        if k + 1 < n:
            M[k + 1 :, k] /= M[k, k]
            M[k + 1 :, k + 1 :] -= np.outer(M[k + 1 :, k], M[k, k + 1 :])
    led.dense_flops += 2.0 * n**3 / 3.0
    led.columns += n

    L = np.tril(M, -1)
    np.fill_diagonal(L, 1.0)
    U = np.triu(M)
    Lc = CSC.from_dense(L, drop_tol=drop_tol)
    Uc = CSC.from_dense(U, drop_tol=drop_tol)
    # Keep the diagonals even under aggressive dropping.
    led.mem_words += Lc.nnz + Uc.nnz
    row_perm = perm  # rows of A in pivot order: A[perm] = L @ U
    return GPResult(Lc, Uc, row_perm, led)
