"""Serial and baseline solvers: GP kernel, KLU, supernodal (PMKL/SLU-MT)."""

from .gp import GP_DEFAULT_PIVOT_TOL, GPResult, gp_factor
from .klu import KLU, KLUNumeric, KLUSymbolic
from .supernodal import SolverFailure, SupernodalLU, SupernodalNumeric, SupernodalSymbolic, slu_mt
from .triangular import lu_solve, lu_solve_factors

__all__ = [
    "gp_factor",
    "GPResult",
    "GP_DEFAULT_PIVOT_TOL",
    "KLU",
    "KLUSymbolic",
    "KLUNumeric",
    "SupernodalLU",
    "SupernodalSymbolic",
    "SupernodalNumeric",
    "SolverFailure",
    "slu_mt",
    "lu_solve",
    "lu_solve_factors",
]
