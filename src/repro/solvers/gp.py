"""The Gilbert–Peierls sparse LU kernel (Algorithm 1 of the paper).

Left-looking column factorization with partial pivoting whose total
work is proportional to the arithmetic operations performed (Gilbert &
Peierls, SISSC 1988).  For every column ``k``:

1.  the fill pattern of column ``k`` is the reach of ``pattern(A(:,k))``
    in the graph of the partially built L (a stamped DFS emitting
    topological order — :func:`repro.graph.dfs.topo_reach`);
2.  a sparse lower-triangular solve updates the column values in that
    order;
3.  a pivot is chosen (threshold partial pivoting with diagonal
    preference, KLU-style) and the column is split into L and U.

The implementation mirrors CSparse's ``cs_lu``: L's row indices stay in
*original* numbering during factorization (``pinv`` maps a row to the
column it became pivot of) and are renumbered at the end.  Every
operation is counted into a :class:`~repro.parallel.ledger.CostLedger`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..contracts import domains, effects, shapes
from ..errors import SingularMatrixError, StructureError
from ..graph.dfs import ReachWorkspace, topo_reach
from ..obs.tracer import get_tracer
from ..parallel.ledger import CostLedger
from ..resilience.faults import fault_values as _fault_values
from ..sparse.csc import CSC
from ..sparse.schedule import (
    RefactorSchedule,
    adopt_solve_schedules,
    compile_refactor_schedule,
)

__all__ = [
    "GPResult",
    "gp_factor",
    "gp_refactor",
    "gp_refactor_reference",
    "ensure_refactor_schedule",
    "GP_DEFAULT_PIVOT_TOL",
]

GP_DEFAULT_PIVOT_TOL = 0.001  # KLU's default diagonal-preference threshold


@dataclass
class GPResult:
    """LU factorization ``A[row_perm, :] = L @ U``.

    ``L`` is unit lower triangular (unit diagonal stored explicitly),
    ``U`` upper triangular.  ``row_perm`` follows the fancy-index
    convention: row ``i`` of the factored matrix is row ``row_perm[i]``
    of the input.
    """

    L: CSC
    U: CSC
    row_perm: np.ndarray
    ledger: CostLedger
    # Compiled elimination schedule for values-only refactorization on
    # this pattern (see :mod:`repro.sparse.schedule`).  Populated lazily
    # by :func:`ensure_refactor_schedule` and propagated to the results
    # of :func:`gp_refactor`, so a sequence of same-pattern matrices
    # compiles once and replays vectorized thereafter.
    schedule: Optional[RefactorSchedule] = None

    @property
    def n(self) -> int:
        return self.L.n_rows

    @property
    def factor_nnz(self) -> int:
        return self.L.nnz + self.U.nnz


def _grow(arr: np.ndarray, needed: int) -> np.ndarray:
    if needed <= arr.size:
        return arr
    new = max(needed, 2 * arr.size, 16)
    out = np.empty(new, dtype=arr.dtype)
    out[: arr.size] = arr
    return out


@effects(mutates=("prior",))
@shapes(A="csc[n,n]")
def ensure_refactor_schedule(prior: GPResult, A: CSC) -> RefactorSchedule:
    """The compiled refactor schedule for ``prior``'s pattern against
    ``A``'s pattern, compiling and caching it on ``prior`` if absent or
    stale (pattern / pivot-order change ⇒ recompile)."""
    metrics = get_tracer().metrics
    sched = prior.schedule
    if sched is None:
        metrics.incr("schedule.refactor.miss")
    elif not sched.matches(prior.L, prior.U, A, prior.row_perm):
        metrics.incr("schedule.refactor.invalidate")
        sched = None
    else:
        metrics.incr("schedule.refactor.hit")
    if sched is None:
        sched = compile_refactor_schedule(prior.L, prior.U, A, prior.row_perm)
        prior.schedule = sched
    return sched


@domains(A="matrix[S]")
@effects(mutates=("ledger", "prior"))
@shapes(A="csc[n,n]")
def gp_refactor(
    A: CSC,
    prior: GPResult,
    ledger: CostLedger | None = None,
    pivot_floor: float = 0.0,
) -> GPResult:
    """Values-only refactorization on a fixed pattern and pivot order.

    The ``klu_refactor`` fast path: reuse the previous factorization's
    nonzero pattern *and* row permutation, recompute only the values —
    no reach DFS, no pivot search.  Raises
    :class:`SingularMatrixError` when a reused pivot falls to zero (or
    below ``pivot_floor``); callers then fall back to a full
    :func:`gp_factor` with fresh pivoting, exactly like KLU users do.

    Vectorized level-scheduled replay of :func:`gp_refactor_reference`
    through a compiled :class:`~repro.sparse.schedule.RefactorSchedule`
    (cached on ``prior`` and propagated to the result, so sequences of
    same-pattern matrices compile once).  Values match the reference up
    to summation order; ledger counts are identical.  Differences on
    *failure* only: the reported singular column is the first in
    schedule order (not necessarily the smallest), and no partial costs
    are recorded (the reference loop records the columns it completed).
    """
    n = A.n_cols
    if A.n_rows != n:
        raise StructureError("GP refactorization requires a square matrix")
    if prior.L.shape != (n, n):
        raise StructureError("prior factors have the wrong shape")
    led = ledger if ledger is not None else CostLedger()
    if n == 0:
        e = CSC.empty(0, 0)
        return GPResult(e, e, np.empty(0, dtype=np.int64), led)
    sched = ensure_refactor_schedule(prior, A)
    a_data = _fault_values("gp.refactor.values", A.data)
    Lx, Ux = sched.run(a_data, led, pivot_floor=pivot_floor)
    metrics = get_tracer().metrics
    if metrics.enabled:
        # Amortized health gauge: one vectorized pass per refactor step.
        amax = float(np.max(np.abs(a_data), initial=0.0))
        umax = float(np.max(np.abs(Ux), initial=0.0))
        metrics.set_gauge("gp.pivot_growth", umax / amax if amax else 0.0)
    L, U = prior.L, prior.U
    # Pattern arrays and the row permutation are shared with the prior
    # factors (immutable by convention): across a fixed-pattern
    # sequence, schedule revalidation then succeeds on object identity
    # instead of O(nnz) comparisons.
    Lnew = CSC(n, n, L.indptr, L.indices, Lx)
    Unew = CSC(n, n, U.indptr, U.indices, Ux)
    # Keep compiled triangular-solve schedules warm across refactors.
    adopt_solve_schedules(L, Lnew)
    adopt_solve_schedules(U, Unew)
    return GPResult(Lnew, Unew, prior.row_perm, led, schedule=sched)


@domains(A="matrix[S]")
@effects(mutates=("ledger",))
@shapes(A="csc[n,n]")
def gp_refactor_reference(
    A: CSC,
    prior: GPResult,
    ledger: CostLedger | None = None,
    pivot_floor: float = 0.0,
) -> GPResult:
    """Reference per-column loop for :func:`gp_refactor` (oracle)."""
    n = A.n_cols
    if A.n_rows != n:
        raise StructureError("GP refactorization requires a square matrix")
    if prior.L.shape != (n, n):
        raise StructureError("prior factors have the wrong shape")
    led = ledger if ledger is not None else CostLedger()
    if n == 0:
        e = CSC.empty(0, 0)
        return GPResult(e, e, np.empty(0, dtype=np.int64), led)

    L, U = prior.L, prior.U
    row_perm = prior.row_perm
    # A in pivot order: row i of B is row row_perm[i] of A.
    B = A.permute(row_perm=row_perm)

    Lx = np.zeros(L.nnz, dtype=np.float64)
    Ux = np.zeros(U.nnz, dtype=np.float64)
    x = np.zeros(n, dtype=np.float64)

    for k in range(n):
        lrows = L.indices[L.indptr[k] : L.indptr[k + 1]]
        urows = U.indices[U.indptr[k] : U.indptr[k + 1]]
        # Scatter column k of B onto the union pattern.
        x[lrows] = 0.0
        x[urows] = 0.0
        arows, avals = B.col(k)
        x[arows] = avals
        # Sparse triangular solve along the *known* pattern: the rows
        # of U(:, k) above the diagonal are exactly the pivotal columns
        # that update column k, already in increasing (= topological
        # for a fixed pivot order) order.
        for t in range(urows.size - 1):  # last entry is the diagonal
            j = int(urows[t])
            xj = x[j]
            if xj == 0.0:
                continue
            lo, hi = int(L.indptr[j]), int(L.indptr[j + 1])
            rows_view = L.indices[lo + 1 : hi]
            x[rows_view] -= Lx[lo + 1 : hi] * xj
            led.sparse_flops += hi - lo - 1
        led.columns += 1
        # Split into U (pivotal rows) and L (below, divided by pivot).
        Ux[U.indptr[k] : U.indptr[k + 1]] = x[urows]
        piv = x[k]
        if abs(piv) <= pivot_floor or piv == 0.0:
            raise SingularMatrixError(
                f"refactor: reused pivot at column {k} is unusable "
                f"({piv!r}); refactor with fresh pivoting",
                column=k,
            )
        lo, hi = int(L.indptr[k]), int(L.indptr[k + 1])
        Lx[lo] = 1.0
        Lx[lo + 1 : hi] = x[L.indices[lo + 1 : hi]] / piv
        led.sparse_flops += hi - lo - 1
    led.mem_words += L.nnz + U.nnz

    Lnew = CSC(n, n, L.indptr.copy(), L.indices.copy(), Lx)
    Unew = CSC(n, n, U.indptr.copy(), U.indices.copy(), Ux)
    return GPResult(Lnew, Unew, row_perm.copy(), led)


@domains(A="matrix[S]")
@effects(mutates=("ledger",))
@shapes(A="csc[n,n]")
def gp_factor(
    A: CSC,
    pivot_tol: float = GP_DEFAULT_PIVOT_TOL,
    static_perturb: float = 0.0,
    ledger: CostLedger | None = None,
) -> GPResult:
    """Factor a square sparse matrix with Gilbert–Peierls LU.

    Parameters
    ----------
    A
        Square CSC matrix.
    pivot_tol
        Diagonal-preference threshold in [0, 1]: the diagonal entry is
        kept as pivot when ``|A_kk| >= pivot_tol * max|column|``
        (KLU semantics; 1.0 = strict partial pivoting, 0 < tol << 1
        trusts the MWCM ordering and preserves sparsity).
    static_perturb
        If > 0 and a column has no usable pivot, a pivot of magnitude
        ``static_perturb`` is substituted instead of raising
        :class:`SingularMatrixError` (the static-pivoting escape hatch
        used by the supernodal baseline; Basker/KLU leave it at 0).
    ledger
        Optional ledger to accumulate into (a fresh one otherwise).
    """
    n = A.n_cols
    if A.n_rows != n:
        raise StructureError("GP factorization requires a square matrix")
    led = ledger if ledger is not None else CostLedger()
    a_fault = _fault_values("gp.factor.values", A.data)
    if a_fault is not A.data:
        A = CSC(n, n, A.indptr, A.indices, a_fault)

    if n == 0:
        e = CSC.empty(0, 0)
        return GPResult(e, e, np.empty(0, dtype=np.int64), led)

    # Growing factor storage.
    cap = max(4 * A.nnz + n, 16)
    Lp = np.zeros(n + 1, dtype=np.int64)
    Li = np.empty(cap, dtype=np.int64)
    Lx = np.empty(cap, dtype=np.float64)
    Up = np.zeros(n + 1, dtype=np.int64)
    Ui = np.empty(cap, dtype=np.int64)
    Ux = np.empty(cap, dtype=np.float64)
    lnz = unz = 0

    pinv = np.full(n, -1, dtype=np.int64)
    x = np.zeros(n, dtype=np.float64)
    ws = ReachWorkspace(n)
    xi = ws.xi
    offdiag_swaps = 0

    for k in range(n):
        arows, avals = A.col(k)
        ws.next_stamp()
        top, steps = topo_reach(Lp, Li, arows, pinv, ws)
        led.dfs_steps += steps + arows.size
        led.columns += 1

        # Clear + scatter the column values onto the reach pattern.
        pat = xi[top:n]
        x[pat] = 0.0
        x[arows] = avals

        # Sparse triangular solve in topological order.
        for t in range(top, n):
            j = int(xi[t])
            jcol = int(pinv[j])
            if jcol < 0:
                continue
            xj = x[j]
            if xj == 0.0:
                continue
            lo = int(Lp[jcol])
            hi = int(Lp[jcol + 1])
            # First entry of each L column is its (unit) pivot row.
            rows_view = Li[lo + 1 : hi]
            x[rows_view] -= Lx[lo + 1 : hi] * xj
            led.sparse_flops += hi - lo - 1

        # Pivot search among non-pivotal rows of the pattern.
        ipiv = -1
        pivmag = -1.0
        diag_val = None
        for t in range(top, n):
            i = int(xi[t])
            if pinv[i] >= 0:
                continue
            mag = abs(x[i])
            if mag > pivmag:
                pivmag = mag
                ipiv = i
            if i == k:
                diag_val = x[i]
        if diag_val is not None and pivmag > 0.0 and abs(diag_val) >= pivot_tol * pivmag:
            ipiv = k
        if ipiv < 0 or x[ipiv] == 0.0:
            if static_perturb > 0.0:
                # Choose any non-pivotal row (prefer the diagonal row if
                # free) and install a tiny pivot.
                if ipiv < 0:
                    if pinv[k] < 0:
                        ipiv = k
                    else:
                        free = np.flatnonzero(pinv < 0)
                        ipiv = int(free[0])
                    # ensure ipiv is in the pattern for the stores below
                    if ws.mark[ipiv] != ws.stamp:
                        ws.mark[ipiv] = ws.stamp
                        top -= 1
                        xi[top] = ipiv
                        x[ipiv] = 0.0
                x[ipiv] = static_perturb if x[ipiv] == 0.0 else x[ipiv]
            else:
                raise SingularMatrixError(
                    f"no usable pivot in column {k} (structurally or numerically singular)",
                    column=k,
                )
        pivval = x[ipiv]
        if ipiv != k:
            offdiag_swaps += 1
        pinv[ipiv] = k

        # Store U column k (rows already pivotal, in pivot numbering).
        ucount = 1
        for t in range(top, n):
            i = int(xi[t])
            if pinv[i] >= 0 and i != ipiv:
                ucount += 1
        Ui = _grow(Ui, unz + ucount)
        Ux = _grow(Ux, unz + ucount)
        for t in range(top, n):
            i = int(xi[t])
            pi = int(pinv[i])
            if pi >= 0 and i != ipiv:
                Ui[unz] = pi
                Ux[unz] = x[i]
                unz += 1
        Ui[unz] = k
        Ux[unz] = pivval
        unz += 1
        Up[k + 1] = unz

        # Store L column k (non-pivotal rows, original numbering),
        # pivot first with value 1.
        lcount = 1
        for t in range(top, n):
            i = int(xi[t])
            if pinv[i] < 0:
                lcount += 1
        Li = _grow(Li, lnz + lcount)
        Lx = _grow(Lx, lnz + lcount)
        Li[lnz] = ipiv
        Lx[lnz] = 1.0
        lnz += 1
        for t in range(top, n):
            i = int(xi[t])
            if pinv[i] < 0:
                Li[lnz] = i
                Lx[lnz] = x[i] / pivval
                lnz += 1
                led.sparse_flops += 1
        Lp[k + 1] = lnz
        led.mem_words += lcount + ucount

    # Any rows never chosen (possible only with static perturbation on
    # a singular matrix) get the remaining pivot slots.
    free_rows = np.flatnonzero(pinv < 0)
    if free_rows.size:
        free_cols = np.setdiff1d(np.arange(n), pinv[pinv >= 0])
        pinv[free_rows] = free_cols

    metrics = get_tracer().metrics
    if metrics.enabled:
        metrics.incr("gp.offdiag_pivots", offdiag_swaps)
        metrics.incr("gp.fill_nnz", max(0, lnz + unz - A.nnz))
        amax = float(np.max(np.abs(A.data), initial=0.0))
        umax = float(np.max(np.abs(Ux[:unz]), initial=0.0))
        metrics.set_gauge("gp.pivot_growth", umax / amax if amax else 0.0)

    # Renumber L's rows into pivot order and sort both factors.
    Lfinal = CSC(n, n, Lp, pinv[Li[:lnz]], Lx[:lnz].copy()).sort_indices()
    Ufinal = CSC(n, n, Up, Ui[:unz].copy(), Ux[:unz].copy()).sort_indices()
    row_perm = np.empty(n, dtype=np.int64)
    row_perm[pinv] = np.arange(n, dtype=np.int64)
    return GPResult(Lfinal, Ufinal, row_perm, led)
