"""The Gilbert–Peierls sparse LU kernel (Algorithm 1 of the paper).

Left-looking column factorization with partial pivoting whose total
work is proportional to the arithmetic operations performed (Gilbert &
Peierls, SISSC 1988).  For every column ``k``:

1.  the fill pattern of column ``k`` is the reach of ``pattern(A(:,k))``
    in the graph of the partially built L (a stamped DFS emitting
    topological order — :func:`repro.graph.dfs.topo_reach`);
2.  a sparse lower-triangular solve updates the column values in that
    order;
3.  a pivot is chosen (threshold partial pivoting with diagonal
    preference, KLU-style) and the column is split into L and U.

The implementation mirrors CSparse's ``cs_lu``: L's row indices stay in
*original* numbering during factorization (``pinv`` maps a row to the
column it became pivot of) and are renumbered at the end.  Every
operation is counted into a :class:`~repro.parallel.ledger.CostLedger`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..contracts import domains, effects, shapes
from ..errors import SingularMatrixError, StructureError
from ..graph.dfs import ReachGraph, ReachWorkspace, topo_reach
from ..obs.tracer import get_tracer
from ..parallel.ledger import CostLedger
from ..resilience.faults import fault_values as _fault_values
from ..sparse.blocking import DensePlan, detect_dense_tail
from ..sparse.csc import CSC
from ..sparse.schedule import (
    RefactorSchedule,
    adopt_solve_schedules,
    compile_refactor_schedule,
)

__all__ = [
    "GPResult",
    "gp_factor",
    "gp_factor_reference",
    "gp_refactor",
    "gp_refactor_reference",
    "ensure_refactor_schedule",
    "GP_DEFAULT_PIVOT_TOL",
]

GP_DEFAULT_PIVOT_TOL = 0.001  # KLU's default diagonal-preference threshold


@dataclass
class GPResult:
    """LU factorization ``A[row_perm, :] = L @ U``.

    ``L`` is unit lower triangular (unit diagonal stored explicitly),
    ``U`` upper triangular.  ``row_perm`` follows the fancy-index
    convention: row ``i`` of the factored matrix is row ``row_perm[i]``
    of the input.
    """

    L: CSC
    U: CSC
    row_perm: np.ndarray
    ledger: CostLedger
    # Compiled elimination schedule for values-only refactorization on
    # this pattern (see :mod:`repro.sparse.schedule`).  Populated lazily
    # by :func:`ensure_refactor_schedule` and propagated to the results
    # of :func:`gp_refactor`, so a sequence of same-pattern matrices
    # compiles once and replays vectorized thereafter.
    schedule: Optional[RefactorSchedule] = None
    # Dense-tail blocking plan used (or detected) by :func:`gp_factor`;
    # pattern-only, so callers holding a fixed pattern (KLU's per-block
    # symbolic) can cache and resupply it across factorizations.
    dense_plan: Optional[DensePlan] = None

    @property
    def n(self) -> int:
        return self.L.n_rows

    @property
    def factor_nnz(self) -> int:
        return self.L.nnz + self.U.nnz


def _grow(arr: np.ndarray, needed: int) -> np.ndarray:
    if needed <= arr.size:
        return arr
    new = max(needed, 2 * arr.size, 16)
    out = np.empty(new, dtype=arr.dtype)
    out[: arr.size] = arr
    return out


@effects(mutates=("prior",))
@shapes(A="csc[n,n]")
def ensure_refactor_schedule(prior: GPResult, A: CSC) -> RefactorSchedule:
    """The compiled refactor schedule for ``prior``'s pattern against
    ``A``'s pattern, compiling and caching it on ``prior`` if absent or
    stale (pattern / pivot-order change ⇒ recompile)."""
    metrics = get_tracer().metrics
    sched = prior.schedule
    if sched is None:
        metrics.incr("schedule.refactor.miss")
    elif not sched.matches(prior.L, prior.U, A, prior.row_perm):
        metrics.incr("schedule.refactor.invalidate")
        sched = None
    else:
        metrics.incr("schedule.refactor.hit")
    if sched is None:
        sched = compile_refactor_schedule(prior.L, prior.U, A, prior.row_perm)
        prior.schedule = sched
    return sched


@domains(A="matrix[S]")
@effects(mutates=("ledger", "prior"))
@shapes(A="csc[n,n]")
def gp_refactor(
    A: CSC,
    prior: GPResult,
    ledger: CostLedger | None = None,
    pivot_floor: float = 0.0,
) -> GPResult:
    """Values-only refactorization on a fixed pattern and pivot order.

    The ``klu_refactor`` fast path: reuse the previous factorization's
    nonzero pattern *and* row permutation, recompute only the values —
    no reach DFS, no pivot search.  Raises
    :class:`SingularMatrixError` when a reused pivot falls to zero (or
    below ``pivot_floor``); callers then fall back to a full
    :func:`gp_factor` with fresh pivoting, exactly like KLU users do.

    Vectorized level-scheduled replay of :func:`gp_refactor_reference`
    through a compiled :class:`~repro.sparse.schedule.RefactorSchedule`
    (cached on ``prior`` and propagated to the result, so sequences of
    same-pattern matrices compile once).  Values match the reference up
    to summation order; ledger counts are identical.  Differences on
    *failure* only: the reported singular column is the first in
    schedule order (not necessarily the smallest), and no partial costs
    are recorded (the reference loop records the columns it completed).
    """
    n = A.n_cols
    if A.n_rows != n:
        raise StructureError("GP refactorization requires a square matrix")
    if prior.L.shape != (n, n):
        raise StructureError("prior factors have the wrong shape")
    led = ledger if ledger is not None else CostLedger()
    if n == 0:
        e = CSC.empty(0, 0)
        return GPResult(e, e, np.empty(0, dtype=np.int64), led)
    sched = ensure_refactor_schedule(prior, A)
    a_data = _fault_values("gp.refactor.values", A.data)
    Lx, Ux = sched.run(a_data, led, pivot_floor=pivot_floor)
    metrics = get_tracer().metrics
    if metrics.enabled:
        # Amortized health gauge: one vectorized pass per refactor step.
        amax = float(np.max(np.abs(a_data), initial=0.0))
        umax = float(np.max(np.abs(Ux), initial=0.0))
        metrics.set_gauge("gp.pivot_growth", umax / amax if amax else 0.0)
    L, U = prior.L, prior.U
    # Pattern arrays and the row permutation are shared with the prior
    # factors (immutable by convention): across a fixed-pattern
    # sequence, schedule revalidation then succeeds on object identity
    # instead of O(nnz) comparisons.
    Lnew = CSC(n, n, L.indptr, L.indices, Lx)
    Unew = CSC(n, n, U.indptr, U.indices, Ux)
    # Keep compiled triangular-solve schedules warm across refactors.
    adopt_solve_schedules(L, Lnew)
    adopt_solve_schedules(U, Unew)
    return GPResult(Lnew, Unew, prior.row_perm, led, schedule=sched)


@domains(A="matrix[S]")
@effects(mutates=("ledger",))
@shapes(A="csc[n,n]")
def gp_refactor_reference(
    A: CSC,
    prior: GPResult,
    ledger: CostLedger | None = None,
    pivot_floor: float = 0.0,
) -> GPResult:
    """Reference per-column loop for :func:`gp_refactor` (oracle)."""
    n = A.n_cols
    if A.n_rows != n:
        raise StructureError("GP refactorization requires a square matrix")
    if prior.L.shape != (n, n):
        raise StructureError("prior factors have the wrong shape")
    led = ledger if ledger is not None else CostLedger()
    if n == 0:
        e = CSC.empty(0, 0)
        return GPResult(e, e, np.empty(0, dtype=np.int64), led)

    L, U = prior.L, prior.U
    row_perm = prior.row_perm
    # A in pivot order: row i of B is row row_perm[i] of A.
    B = A.permute(row_perm=row_perm)

    Lx = np.zeros(L.nnz, dtype=np.float64)
    Ux = np.zeros(U.nnz, dtype=np.float64)
    x = np.zeros(n, dtype=np.float64)

    for k in range(n):
        lrows = L.indices[L.indptr[k] : L.indptr[k + 1]]
        urows = U.indices[U.indptr[k] : U.indptr[k + 1]]
        # Scatter column k of B onto the union pattern.
        x[lrows] = 0.0
        x[urows] = 0.0
        arows, avals = B.col(k)
        x[arows] = avals
        # Sparse triangular solve along the *known* pattern: the rows
        # of U(:, k) above the diagonal are exactly the pivotal columns
        # that update column k, already in increasing (= topological
        # for a fixed pivot order) order.
        for t in range(urows.size - 1):  # last entry is the diagonal
            j = int(urows[t])
            xj = x[j]
            if xj == 0.0:
                continue
            lo, hi = int(L.indptr[j]), int(L.indptr[j + 1])
            rows_view = L.indices[lo + 1 : hi]
            x[rows_view] -= Lx[lo + 1 : hi] * xj
            led.sparse_flops += hi - lo - 1
        led.columns += 1
        # Split into U (pivotal rows) and L (below, divided by pivot).
        Ux[U.indptr[k] : U.indptr[k + 1]] = x[urows]
        piv = x[k]
        if abs(piv) <= pivot_floor or piv == 0.0:
            raise SingularMatrixError(
                f"refactor: reused pivot at column {k} is unusable "
                f"({piv!r}); refactor with fresh pivoting",
                column=k,
            )
        lo, hi = int(L.indptr[k]), int(L.indptr[k + 1])
        Lx[lo] = 1.0
        Lx[lo + 1 : hi] = x[L.indices[lo + 1 : hi]] / piv
        led.sparse_flops += hi - lo - 1
    led.mem_words += L.nnz + U.nnz

    Lnew = CSC(n, n, L.indptr.copy(), L.indices.copy(), Lx)
    Unew = CSC(n, n, U.indptr.copy(), U.indices.copy(), Ux)
    return GPResult(Lnew, Unew, row_perm.copy(), led)


@domains(A="matrix[S]")
@effects(mutates=("ledger",))
@shapes(A="csc[n,n]")
def gp_factor_reference(
    A: CSC,
    pivot_tol: float = GP_DEFAULT_PIVOT_TOL,
    static_perturb: float = 0.0,
    ledger: CostLedger | None = None,
) -> GPResult:
    """Reference per-column loop for :func:`gp_factor` (oracle).

    The seed implementation: scalar reach + triangular solve + pivot
    search per column.  :func:`gp_factor` must reproduce its pattern,
    permutation and CostLedger bit-identically (values up to summation
    order inside the dense tail); the parity tests in
    ``tests/test_blocking.py`` enforce exactly that.

    Parameters
    ----------
    A
        Square CSC matrix.
    pivot_tol
        Diagonal-preference threshold in [0, 1]: the diagonal entry is
        kept as pivot when ``|A_kk| >= pivot_tol * max|column|``
        (KLU semantics; 1.0 = strict partial pivoting, 0 < tol << 1
        trusts the MWCM ordering and preserves sparsity).
    static_perturb
        If > 0 and a column has no usable pivot, a pivot of magnitude
        ``static_perturb`` is substituted instead of raising
        :class:`SingularMatrixError` (the static-pivoting escape hatch
        used by the supernodal baseline; Basker/KLU leave it at 0).
    ledger
        Optional ledger to accumulate into (a fresh one otherwise).
    """
    n = A.n_cols
    if A.n_rows != n:
        raise StructureError("GP factorization requires a square matrix")
    led = ledger if ledger is not None else CostLedger()
    a_fault = _fault_values("gp.factor.values", A.data)
    if a_fault is not A.data:
        A = CSC(n, n, A.indptr, A.indices, a_fault)

    if n == 0:
        e = CSC.empty(0, 0)
        return GPResult(e, e, np.empty(0, dtype=np.int64), led)

    # Growing factor storage.
    cap = max(4 * A.nnz + n, 16)
    Lp = np.zeros(n + 1, dtype=np.int64)
    Li = np.empty(cap, dtype=np.int64)
    Lx = np.empty(cap, dtype=np.float64)
    Up = np.zeros(n + 1, dtype=np.int64)
    Ui = np.empty(cap, dtype=np.int64)
    Ux = np.empty(cap, dtype=np.float64)
    lnz = unz = 0

    pinv = np.full(n, -1, dtype=np.int64)
    x = np.zeros(n, dtype=np.float64)
    ws = ReachWorkspace(n)
    xi = ws.xi
    offdiag_swaps = 0

    for k in range(n):
        arows, avals = A.col(k)
        ws.next_stamp()
        top, steps = topo_reach(Lp, Li, arows, pinv, ws)
        led.dfs_steps += steps + arows.size
        led.columns += 1

        # Clear + scatter the column values onto the reach pattern.
        pat = xi[top:n]
        x[pat] = 0.0
        x[arows] = avals

        # Sparse triangular solve in topological order.
        for t in range(top, n):
            j = int(xi[t])
            jcol = int(pinv[j])
            if jcol < 0:
                continue
            xj = x[j]
            if xj == 0.0:
                continue
            lo = int(Lp[jcol])
            hi = int(Lp[jcol + 1])
            # First entry of each L column is its (unit) pivot row.
            rows_view = Li[lo + 1 : hi]
            x[rows_view] -= Lx[lo + 1 : hi] * xj
            led.sparse_flops += hi - lo - 1

        # Pivot search among non-pivotal rows of the pattern.
        ipiv = -1
        pivmag = -1.0
        diag_val = None
        for t in range(top, n):
            i = int(xi[t])
            if pinv[i] >= 0:
                continue
            mag = abs(x[i])
            if mag > pivmag:
                pivmag = mag
                ipiv = i
            if i == k:
                diag_val = x[i]
        if diag_val is not None and pivmag > 0.0 and abs(diag_val) >= pivot_tol * pivmag:
            ipiv = k
        if ipiv < 0 or x[ipiv] == 0.0:
            if static_perturb > 0.0:
                # Choose any non-pivotal row (prefer the diagonal row if
                # free) and install a tiny pivot.
                if ipiv < 0:
                    if pinv[k] < 0:
                        ipiv = k
                    else:
                        free = np.flatnonzero(pinv < 0)
                        ipiv = int(free[0])
                    # ensure ipiv is in the pattern for the stores below
                    if ws.mark[ipiv] != ws.stamp:
                        ws.mark[ipiv] = ws.stamp
                        top -= 1
                        xi[top] = ipiv
                        x[ipiv] = 0.0
                x[ipiv] = static_perturb if x[ipiv] == 0.0 else x[ipiv]
            else:
                raise SingularMatrixError(
                    f"no usable pivot in column {k} (structurally or numerically singular)",
                    column=k,
                )
        pivval = x[ipiv]
        if ipiv != k:
            offdiag_swaps += 1
        pinv[ipiv] = k

        # Store U column k (rows already pivotal, in pivot numbering).
        ucount = 1
        for t in range(top, n):
            i = int(xi[t])
            if pinv[i] >= 0 and i != ipiv:
                ucount += 1
        Ui = _grow(Ui, unz + ucount)
        Ux = _grow(Ux, unz + ucount)
        for t in range(top, n):
            i = int(xi[t])
            pi = int(pinv[i])
            if pi >= 0 and i != ipiv:
                Ui[unz] = pi
                Ux[unz] = x[i]
                unz += 1
        Ui[unz] = k
        Ux[unz] = pivval
        unz += 1
        Up[k + 1] = unz

        # Store L column k (non-pivotal rows, original numbering),
        # pivot first with value 1.
        lcount = 1
        for t in range(top, n):
            i = int(xi[t])
            if pinv[i] < 0:
                lcount += 1
        Li = _grow(Li, lnz + lcount)
        Lx = _grow(Lx, lnz + lcount)
        Li[lnz] = ipiv
        Lx[lnz] = 1.0
        lnz += 1
        for t in range(top, n):
            i = int(xi[t])
            if pinv[i] < 0:
                Li[lnz] = i
                Lx[lnz] = x[i] / pivval
                lnz += 1
                led.sparse_flops += 1
        Lp[k + 1] = lnz
        led.mem_words += lcount + ucount

    # Any rows never chosen (possible only with static perturbation on
    # a singular matrix) get the remaining pivot slots.
    free_rows = np.flatnonzero(pinv < 0)
    if free_rows.size:
        free_cols = np.setdiff1d(np.arange(n), pinv[pinv >= 0])
        pinv[free_rows] = free_cols

    metrics = get_tracer().metrics
    if metrics.enabled:
        metrics.incr("gp.offdiag_pivots", offdiag_swaps)
        metrics.incr("gp.fill_nnz", max(0, lnz + unz - A.nnz))
        amax = float(np.max(np.abs(A.data), initial=0.0))
        umax = float(np.max(np.abs(Ux[:unz]), initial=0.0))
        metrics.set_gauge("gp.pivot_growth", umax / amax if amax else 0.0)

    # Renumber L's rows into pivot order and sort both factors.
    Lfinal = CSC(n, n, Lp, pinv[Li[:lnz]], Lx[:lnz].copy()).sort_indices()
    Ufinal = CSC(n, n, Up, Ui[:unz].copy(), Ux[:unz].copy()).sort_indices()
    row_perm = np.empty(n, dtype=np.int64)
    row_perm[pinv] = np.arange(n, dtype=np.int64)
    return GPResult(Lfinal, Ufinal, row_perm, led)


@domains(A="matrix[S]")
@effects(mutates=("ledger",))
@shapes(A="csc[n,n]")
def gp_factor(
    A: CSC,
    pivot_tol: float = GP_DEFAULT_PIVOT_TOL,
    static_perturb: float = 0.0,
    ledger: CostLedger | None = None,
    dense_plan: DensePlan | None = None,
) -> GPResult:
    """Factor a square sparse matrix with blocked Gilbert–Peierls LU.

    Structure-aware dense blocking over :func:`gp_factor_reference`:
    a pattern-only analysis (:func:`repro.sparse.blocking.detect_dense_tail`)
    splits the elimination at a switch column ``k*``.  Columns before
    the switch run the reference left-looking recipe with the list-based
    reach of :class:`~repro.graph.dfs.ReachGraph`; the trailing columns
    are gathered into one contiguous panel (U-top block over the Schur
    block) and eliminated with dense kernels — a bulk left-looking
    update by the leading columns followed by right-looking rank-1
    updates with LAPACK-style partial pivoting confined to the panel.

    Contract versus the reference oracle (the PR-3 discipline):

    * identical nonzero patterns and row permutation (pivot choice uses
      the same threshold rule, the same reach-order tie-break, and NaNs
      can never win a pivot search);
    * bit-identical :class:`~repro.parallel.ledger.CostLedger` — the
      reference skips exact-zero update sources, and the dense kernels
      preserve exact zeros (``x - l*0 == x``), so the counted work is
      recovered exactly from the final values and the pattern;
    * values equal up to floating-point summation order inside the
      dense tail, bit-identical before the switch;
    * the first failing column of a singular matrix raises the same
      :class:`SingularMatrixError`.

    ``static_perturb > 0`` (the supernodal escape hatch) rewrites the
    pattern mid-flight, so that path delegates to the reference loop.
    ``dense_plan`` lets callers with a fixed pattern (KLU's per-block
    symbolic) skip re-detection; a stale plan is re-detected, never
    trusted.  The dense phase is traced as a ``numeric.gp.panel`` span
    whose ledger, plus the scalar phase attached to the caller's span
    as overhead, conserves against the total.
    """
    if static_perturb > 0.0:
        return gp_factor_reference(
            A, pivot_tol=pivot_tol, static_perturb=static_perturb, ledger=ledger
        )
    n = A.n_cols
    if A.n_rows != n:
        raise StructureError("GP factorization requires a square matrix")
    led = ledger if ledger is not None else CostLedger()
    a_fault = _fault_values("gp.factor.values", A.data)
    if a_fault is not A.data:
        A = CSC(n, n, A.indptr, A.indices, a_fault)

    if n == 0:
        e = CSC.empty(0, 0)
        return GPResult(e, e, np.empty(0, dtype=np.int64), led)

    if dense_plan is None or not dense_plan.matches(A):
        dense_plan = detect_dense_tail(A)
    ks = dense_plan.switch

    # Phase ledgers: scalar head (caller-span overhead) and dense tail
    # (the numeric.gp.panel span); both fold into the caller's ledger.
    lscal = CostLedger()
    lpan = CostLedger()

    cap = max(4 * A.nnz + n, 16)
    Lp = np.zeros(n + 1, dtype=np.int64)
    Li = np.empty(cap, dtype=np.int64)
    Lx = np.empty(cap, dtype=np.float64)
    Up = np.zeros(n + 1, dtype=np.int64)
    Ui = np.empty(cap, dtype=np.int64)
    Ux = np.empty(cap, dtype=np.float64)
    lnz = unz = 0

    pinv = np.full(n, -1, dtype=np.int64)
    pinv_l = [-1] * n          # Python mirror, read by the list DFS
    lp_l = [0] * (n + 1)       # Python mirror of Lp
    x = np.zeros(n, dtype=np.float64)
    graph = ReachGraph(n)
    xi = graph.xi
    Ap, Ai, Ax = A.indptr, A.indices, A.data
    offdiag_swaps = 0

    # ---- Scalar head: left-looking columns [0, ks), reference recipe
    # with the list-based reach (same traversal, same counts).
    for k in range(ks):
        p0, p1 = int(Ap[k]), int(Ap[k + 1])
        arows = Ai[p0:p1]
        graph.stamp += 1
        top, steps = graph.reach(arows.tolist(), pinv_l)
        lscal.dfs_steps += steps + (p1 - p0)
        lscal.columns += 1

        pat = xi[top:n]
        x[pat] = 0.0
        x[arows] = Ax[p0:p1]

        # Sparse triangular solve in topological order.
        for j in pat:
            jc = pinv_l[j]
            if jc < 0:
                continue
            xj = x[j]
            if xj == 0.0:
                continue
            lo = lp_l[jc] + 1
            hi = lp_l[jc + 1]
            x[Li[lo:hi]] -= Lx[lo:hi] * xj
            lscal.sparse_flops += hi - lo

        # Pivot search among non-pivotal rows of the pattern.
        ipiv = -1
        pivmag = -1.0
        diag_val = None
        for i in pat:
            if pinv_l[i] >= 0:
                continue
            mag = abs(x[i])
            if mag > pivmag:
                pivmag = mag
                ipiv = i
            if i == k:
                diag_val = x[i]
        if diag_val is not None and pivmag > 0.0 and abs(diag_val) >= pivot_tol * pivmag:
            ipiv = k
        if ipiv < 0 or x[ipiv] == 0.0:
            raise SingularMatrixError(
                f"no usable pivot in column {k} (structurally or numerically singular)",
                column=k,
            )
        pivval = x[ipiv]
        if ipiv != k:
            offdiag_swaps += 1
        pinv[ipiv] = k
        pinv_l[ipiv] = k

        # Store U column k (rows already pivotal, in pivot numbering).
        psz = len(pat)
        Ui = _grow(Ui, unz + psz)
        Ux = _grow(Ux, unz + psz)
        ucount = 1
        for i in pat:
            pi = pinv_l[i]
            if pi >= 0 and i != ipiv:
                Ui[unz] = pi
                Ux[unz] = x[i]
                unz += 1
                ucount += 1
        Ui[unz] = k
        Ux[unz] = pivval
        unz += 1
        Up[k + 1] = unz

        # Store L column k (non-pivotal rows, original numbering),
        # pivot first with value 1.
        Li = _grow(Li, lnz + psz)
        Lx = _grow(Lx, lnz + psz)
        Li[lnz] = ipiv
        Lx[lnz] = 1.0
        lnz += 1
        lcol = [ipiv]
        for i in pat:
            if pinv_l[i] < 0:
                Li[lnz] = i
                Lx[lnz] = x[i] / pivval
                lnz += 1
                lcol.append(i)
                lscal.sparse_flops += 1
        Lp[k + 1] = lnz
        lp_l[k + 1] = lnz
        graph.append_column(lcol)
        lscal.mem_words += len(lcol) + ucount

    # ---- Dense tail: columns [ks, n) as one gathered panel.
    tr = get_tracer()
    if ks < n:
        with tr.span("numeric.gp.panel") as psp:
            m = n - ks
            free = np.flatnonzero(pinv < 0)            # the m unpivoted rows
            slot_of = np.full(n, -1, dtype=np.int64)   # row -> panel slot
            slot_of[free] = np.arange(m, dtype=np.int64)
            slot2row = free.copy()

            # Combined panel P: rows [0, ks) are pivotal rows in pivot
            # numbering (the U top block), rows [ks, n) the not-yet-
            # pivotal rows in slot numbering (the Schur block S).
            p0, p1 = int(Ap[ks]), int(Ap[n])
            arows_t = Ai[p0:p1]
            avals_t = _fault_values("gp.panel", Ax[p0:p1])
            acols_t = np.repeat(np.arange(m, dtype=np.int64), np.diff(Ap[ks:]))
            P = np.zeros((n, m), dtype=np.float64)
            comb = np.where(pinv[arows_t] >= 0,
                            pinv[arows_t], ks + slot_of[arows_t])
            P[comb, acols_t] = avals_t

            # Bulk left-looking update by the leading columns in pivot
            # (= topological) order, each vectorized across the tail.
            # Exact zeros propagate exactly (x - l*0 == x), so entries
            # outside a column's reach stay 0.0 — the property the
            # ledger emulation below relies on.
            liL = Li[:lnz]
            tgt = np.where(pinv[liL] >= 0, pinv[liL], ks + slot_of[liL])
            for j in range(ks):
                lo = lp_l[j] + 1
                hi = lp_l[j + 1]
                if lo < hi:
                    P[tgt[lo:hi]] -= Lx[lo:hi, None] * P[j]
            S = P[ks:]

            for t in range(m):
                k = ks + t
                graph.stamp += 1
                brows = Ai[int(Ap[k]): int(Ap[k + 1])].tolist()
                top, steps = graph.reach(brows, pinv_l)
                lpan.dfs_steps += steps + len(brows)
                lpan.columns += 1
                pat = np.array(xi[top:n], dtype=np.int64)
                pivotal = pinv[pat] >= 0
                upat = pat[pivotal]          # reach order, like the oracle
                cand = pat[~pivotal]

                # Pivot search: argmax keeps the first maximum, which is
                # the reference's strict-greater scan in reach order;
                # NaN magnitudes are demoted so they can never win.
                if cand.size == 0:
                    raise SingularMatrixError(
                        f"no usable pivot in column {k} "
                        "(structurally or numerically singular)",
                        column=k,
                    )
                mags = np.abs(S[slot_of[cand], t])
                mags = np.where(np.isnan(mags), -1.0, mags)
                am = int(np.argmax(mags))
                pivmag = float(mags[am])
                ipiv = int(cand[am])
                if graph.mark[k] == graph.stamp and pinv_l[k] < 0:
                    diag_val = float(S[slot_of[k], t])
                    if pivmag > 0.0 and abs(diag_val) >= pivot_tol * pivmag:
                        ipiv = k
                if pivmag < 0.0 or S[slot_of[ipiv], t] == 0.0:
                    raise SingularMatrixError(
                        f"no usable pivot in column {k} "
                        "(structurally or numerically singular)",
                        column=k,
                    )
                pivval = float(S[slot_of[ipiv], t])
                if ipiv != k:
                    offdiag_swaps += 1
                pinv[ipiv] = k
                pinv_l[ipiv] = k

                # Row swap confined to the panel: the pivot row moves to
                # slot t (columns before t are dead, already harvested).
                sp = int(slot_of[ipiv])
                if sp != t:
                    rt = int(slot2row[t])
                    S[[t, sp], t:] = S[[sp, t], t:]
                    slot2row[t], slot2row[sp] = ipiv, rt
                    slot_of[ipiv], slot_of[rt] = t, sp

                # Harvest U: pivotal pattern rows; a value lives at
                # combined row pinv[r] for the top block and for
                # already-eliminated tail rows alike (the swap parked
                # tail pivot j at slot j - ks).
                ucols = pinv[upat]
                uvals = P[ucols, t]
                usz = int(ucols.size)
                Ui = _grow(Ui, unz + usz + 1)
                Ux = _grow(Ux, unz + usz + 1)
                Ui[unz: unz + usz] = ucols
                Ux[unz: unz + usz] = uvals
                unz += usz
                Ui[unz] = k
                Ux[unz] = pivval
                unz += 1
                Up[k + 1] = unz

                # Ledger emulation, bit-identical to the oracle: the
                # reference counts |L(:,j)|-1 multiply-adds for every
                # reached pivotal j whose source value is nonzero at use
                # time — which is its final U value here.
                nzsrc = ucols[uvals != 0.0]
                if nzsrc.size:
                    lpan.sparse_flops += float(
                        np.sum(Lp[nzsrc + 1] - Lp[nzsrc] - 1)
                    )

                # Harvest L: remaining pattern rows in reach order,
                # divided by the pivot (the panel division also feeds
                # the rank-1 update below).
                lrows = cand[cand != ipiv]
                lsz = int(lrows.size)
                S[t + 1:, t] /= pivval
                lvals = S[slot_of[lrows], t]
                Li = _grow(Li, lnz + lsz + 1)
                Lx = _grow(Lx, lnz + lsz + 1)
                Li[lnz] = ipiv
                Lx[lnz] = 1.0
                lnz += 1
                Li[lnz: lnz + lsz] = lrows
                Lx[lnz: lnz + lsz] = lvals
                lnz += lsz
                Lp[k + 1] = lnz
                lp_l[k + 1] = lnz
                graph.append_column([ipiv] + lrows.tolist())
                lpan.sparse_flops += lsz
                lpan.mem_words += lsz + usz + 2

                # Right-looking rank-1 update of the remaining block.
                if t + 1 < m:
                    S[t + 1:, t + 1:] -= np.outer(S[t + 1:, t], S[t, t + 1:])

            psp.attach(lpan)
            if tr.enabled:
                psp.set(switch=ks, cols=m,
                        predicted_density=dense_plan.density)
        if tr.enabled:
            parent = tr.current()
            if parent is not None:
                # Conservation: caller attaches the inclusive ledger;
                # the scalar head is its own-work not covered by the
                # panel child span.
                parent.attach_overhead(lscal)

    led.add(lscal)
    led.add(lpan)

    metrics = tr.metrics
    if metrics.enabled:
        metrics.incr("gp.offdiag_pivots", offdiag_swaps)
        metrics.incr("gp.fill_nnz", max(0, lnz + unz - A.nnz))
        if ks < n:
            metrics.incr("gp.panel.cols", n - ks)
        amax = float(np.max(np.abs(A.data), initial=0.0))
        umax = float(np.max(np.abs(Ux[:unz]), initial=0.0))
        metrics.set_gauge("gp.pivot_growth", umax / amax if amax else 0.0)

    # Renumber L's rows into pivot order and sort both factors.
    Lfinal = CSC(n, n, Lp, pinv[Li[:lnz]], Lx[:lnz].copy()).sort_indices()
    Ufinal = CSC(n, n, Up, Ui[:unz].copy(), Ux[:unz].copy()).sort_indices()
    row_perm = np.empty(n, dtype=np.int64)
    row_perm[pinv] = np.arange(n, dtype=np.int64)
    return GPResult(Lfinal, Ufinal, row_perm, led, dense_plan=dense_plan)
