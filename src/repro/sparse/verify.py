"""Numeric verification helpers.

Every factorization in this package is checked against these residuals
in the test suite; the benches also spot-check them so that a "fast"
configuration can never silently be a wrong one.
"""

from __future__ import annotations

import numpy as np

from .csc import CSC
from .ops import matmat

__all__ = ["factorization_residual", "solve_residual", "relative_error"]


def factorization_residual(
    A: CSC,
    L: CSC,
    U: CSC,
    row_perm: np.ndarray | None = None,
    col_perm: np.ndarray | None = None,
) -> float:
    """``||P A Q - L U||_F / max(||A||_F, eps)``.

    ``row_perm`` / ``col_perm`` follow the fancy-index convention of
    :meth:`CSC.permute`: the factorization claims
    ``A[row_perm][:, col_perm] == L @ U``.
    """
    PAQ = A.permute(row_perm, col_perm)
    LU = matmat(L, U)
    diff = PAQ.add(LU.scale(-1.0))
    denom = max(A.fro_norm(), np.finfo(np.float64).eps)
    return diff.fro_norm() / denom


def solve_residual(A: CSC, x: np.ndarray, b: np.ndarray) -> float:
    """``||A x - b||_inf / (||A||_1 ||x||_inf + ||b||_inf)`` (scaled residual)."""
    r = A.matvec(x) - b
    denom = A.one_norm() * float(np.max(np.abs(x), initial=0.0)) + float(
        np.max(np.abs(b), initial=0.0)
    )
    if denom == 0.0:
        return float(np.max(np.abs(r), initial=0.0))
    return float(np.max(np.abs(r), initial=0.0)) / denom


def relative_error(x: np.ndarray, x_ref: np.ndarray) -> float:
    """``||x - x_ref||_inf / ||x_ref||_inf`` (0/0 -> 0)."""
    num = float(np.max(np.abs(x - x_ref), initial=0.0))
    den = float(np.max(np.abs(x_ref), initial=0.0))
    if den == 0.0:
        return num
    return num / den
