"""Numeric verification helpers.

Every factorization in this package is checked against these residuals
in the test suite; the benches also spot-check them so that a "fast"
configuration can never silently be a wrong one.
"""

from __future__ import annotations

import numpy as np

from ..errors import StructureError
from .csc import CSC
from .ops import matmat

__all__ = [
    "factorization_residual",
    "solve_residual",
    "relative_error",
    "componentwise_backward_error",
    "validate_rhs",
]


def factorization_residual(
    A: CSC,
    L: CSC,
    U: CSC,
    row_perm: np.ndarray | None = None,
    col_perm: np.ndarray | None = None,
) -> float:
    """``||P A Q - L U||_F / max(||A||_F, eps)``.

    ``row_perm`` / ``col_perm`` follow the fancy-index convention of
    :meth:`CSC.permute`: the factorization claims
    ``A[row_perm][:, col_perm] == L @ U``.
    """
    for M in (A, L, U):
        M.check()
    PAQ = A.permute(row_perm, col_perm)
    LU = matmat(L, U)
    diff = PAQ.add(LU.scale(-1.0))
    denom = max(A.fro_norm(), np.finfo(np.float64).eps)
    return diff.fro_norm() / denom


def solve_residual(A: CSC, x: np.ndarray, b: np.ndarray) -> float:
    """``||A x - b||_inf / (||A||_1 ||x||_inf + ||b||_inf)`` (scaled residual)."""
    r = A.matvec(x) - b
    denom = A.one_norm() * float(np.max(np.abs(x), initial=0.0)) + float(
        np.max(np.abs(b), initial=0.0)
    )
    if denom == 0.0:
        return float(np.max(np.abs(r), initial=0.0))
    return float(np.max(np.abs(r), initial=0.0)) / denom


def relative_error(x: np.ndarray, x_ref: np.ndarray) -> float:
    """``||x - x_ref||_inf / ||x_ref||_inf`` (0/0 -> 0)."""
    num = float(np.max(np.abs(x - x_ref), initial=0.0))
    den = float(np.max(np.abs(x_ref), initial=0.0))
    if den == 0.0:
        return num
    return num / den


def componentwise_backward_error(A: CSC, x: np.ndarray, b: np.ndarray) -> float:
    """Oettli–Prager componentwise backward error.

    ``omega = max_i |A x - b|_i / (|A| |x| + |b|)_i`` — the size of the
    smallest componentwise relative perturbation of (A, b) for which
    ``x`` is an exact solution.  0/0 components contribute 0; a nonzero
    residual over a zero denominator (or any non-finite value in ``x``)
    yields ``inf``.
    """
    x = np.asarray(x, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if not np.all(np.isfinite(x)):
        return float("inf")
    r = np.abs(A.matvec(x) - b)
    absA = CSC(A.n_rows, A.n_cols, A.indptr, A.indices, np.abs(A.data))
    denom = absA.matvec(np.abs(x)) + np.abs(b)
    zero = denom == 0.0
    if np.any(zero & (r > 0.0)):
        return float("inf")
    safe = np.where(zero, 1.0, denom)
    ratios = np.where(zero, 0.0, r / safe)
    if ratios.size == 0:
        return 0.0
    return float(np.max(ratios))


def validate_rhs(b: np.ndarray, n: int, what: str = "b") -> np.ndarray:
    """Validate a right-hand side: shape ``(n,)`` (or ``(n, k)``), a
    real dtype castable to float64, and all entries finite.  Raises
    :class:`~repro.errors.StructureError` otherwise (instead of letting
    numpy broadcast a wrong shape or propagate NaN silently).  Returns
    the float64 view/copy."""
    arr = np.asarray(b)
    if arr.dtype == object or np.iscomplexobj(arr):
        raise StructureError(
            f"{what} must be a real array, got dtype {arr.dtype}"
        )
    try:
        arr = np.asarray(arr, dtype=np.float64)
    except (TypeError, ValueError) as exc:
        raise StructureError(f"{what} is not castable to float64: {exc}") from exc
    if arr.ndim not in (1, 2) or arr.shape[0] != n:
        raise StructureError(
            f"{what} has shape {arr.shape}, expected ({n},) or ({n}, k)"
        )
    if not np.all(np.isfinite(arr)):
        bad = int(np.flatnonzero(~np.isfinite(arr).reshape(-1))[0])
        raise StructureError(
            f"{what} contains a non-finite value (flat index {bad})"
        )
    return arr
