"""Save/load CSC matrices and factorizations as ``.npz`` archives.

Circuit-simulation workflows checkpoint factors between runs (Xyce's
restart files); this module provides the equivalent: a compact,
versioned NumPy archive for a matrix or for per-block LU factors.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Tuple, Union

import numpy as np

from .csc import CSC

__all__ = ["save_csc", "load_csc", "save_factors", "load_factors"]

_FORMAT_VERSION = 1


def save_csc(A: CSC, path: Union[str, Path]) -> None:
    """Write one CSC matrix to a ``.npz`` archive."""
    np.savez_compressed(
        path,
        version=np.int64(_FORMAT_VERSION),
        shape=np.asarray(A.shape, dtype=np.int64),
        indptr=A.indptr,
        indices=A.indices,
        data=A.data,
    )


def load_csc(path: Union[str, Path]) -> CSC:
    with np.load(path) as z:
        if int(z["version"]) != _FORMAT_VERSION:
            raise ValueError(f"unsupported archive version {int(z['version'])}")
        n_rows, n_cols = (int(v) for v in z["shape"])
        return CSC(n_rows, n_cols, z["indptr"].copy(), z["indices"].copy(), z["data"].copy())


def save_factors(
    path: Union[str, Path],
    blocks: List[Tuple[CSC, CSC]],
    row_perm: np.ndarray,
    col_perm: np.ndarray,
    block_splits: np.ndarray,
) -> None:
    """Write per-block (L, U) factors plus the permutations.

    Works for any of the package's numeric objects via their blocked
    view (KLU block list, Basker coarse blocks, supernodal single
    block).
    """
    payload: Dict[str, np.ndarray] = {
        "version": np.int64(_FORMAT_VERSION),
        "n_blocks": np.int64(len(blocks)),
        "row_perm": np.asarray(row_perm, dtype=np.int64),
        "col_perm": np.asarray(col_perm, dtype=np.int64),
        "block_splits": np.asarray(block_splits, dtype=np.int64),
    }
    for k, (L, U) in enumerate(blocks):
        for tag, M in (("L", L), ("U", U)):
            payload[f"b{k}_{tag}_shape"] = np.asarray(M.shape, dtype=np.int64)
            payload[f"b{k}_{tag}_indptr"] = M.indptr
            payload[f"b{k}_{tag}_indices"] = M.indices
            payload[f"b{k}_{tag}_data"] = M.data
    np.savez_compressed(path, **payload)


def load_factors(path: Union[str, Path]):
    """Read back ``(blocks, row_perm, col_perm, block_splits)``."""
    with np.load(path) as z:
        if int(z["version"]) != _FORMAT_VERSION:
            raise ValueError(f"unsupported archive version {int(z['version'])}")
        nb = int(z["n_blocks"])
        blocks = []
        for k in range(nb):
            pair = []
            for tag in ("L", "U"):
                r, c = (int(v) for v in z[f"b{k}_{tag}_shape"])
                pair.append(
                    CSC(r, c, z[f"b{k}_{tag}_indptr"].copy(),
                        z[f"b{k}_{tag}_indices"].copy(), z[f"b{k}_{tag}_data"].copy())
                )
            blocks.append((pair[0], pair[1]))
        return blocks, z["row_perm"].copy(), z["col_perm"].copy(), z["block_splits"].copy()
