"""Compressed-sparse-column matrix container.

This is the storage substrate used throughout the Basker reproduction.
Basker stores both the input matrix and the LU factors as a hierarchy of
CSC blocks (paper, section IV "Data Layout"), so the container here is
deliberately minimal and predictable: three NumPy arrays (``indptr``,
``indices``, ``data``) with row indices sorted within each column.

The class is self-contained (no SciPy dependency); SciPy is used only in
the test suite as an independent oracle.
"""

from __future__ import annotations

from typing import Iterable, Tuple

import numpy as np

from ..contracts import domains, shapes
from ..errors import StructureError

__all__ = ["CSC"]


class CSC:
    """A sparse matrix in compressed-sparse-column format.

    Invariants (enforced by :meth:`check`):

    * ``indptr`` has length ``n_cols + 1``, starts at 0, is nondecreasing
      and ends at ``nnz``.
    * ``indices[indptr[j]:indptr[j+1]]`` holds the row indices of column
      ``j`` in strictly increasing order (no duplicates).
    * ``data`` is aligned with ``indices``.

    Explicitly stored zeros are allowed (they arise naturally from
    numerical cancellation during factorization).
    """

    # ``_solve_schedules`` caches compiled triangular-solve schedules
    # (see :mod:`repro.sparse.schedule`); patterns are immutable by
    # convention, so the cache is valid for the object's lifetime.
    __slots__ = ("n_rows", "n_cols", "indptr", "indices", "data", "_solve_schedules")

    def __init__(
        self,
        n_rows: int,
        n_cols: int,
        indptr: np.ndarray,
        indices: np.ndarray,
        data: np.ndarray,
    ) -> None:
        self.n_rows = int(n_rows)
        self.n_cols = int(n_cols)
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.indices = np.asarray(indices, dtype=np.int64)
        self.data = np.asarray(data, dtype=np.float64)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def empty(cls, n_rows: int, n_cols: int) -> "CSC":
        """An all-zero matrix with the given shape."""
        return cls(
            n_rows,
            n_cols,
            np.zeros(n_cols + 1, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.float64),
        )

    @classmethod
    def identity(cls, n: int, scale: float = 1.0) -> "CSC":
        """The ``n`` x ``n`` identity matrix (optionally scaled)."""
        return cls(
            n,
            n,
            np.arange(n + 1, dtype=np.int64),
            np.arange(n, dtype=np.int64),
            np.full(n, float(scale)),
        )

    @classmethod
    def from_coo(
        cls,
        rows: Iterable[int],
        cols: Iterable[int],
        vals: Iterable[float],
        shape: Tuple[int, int],
        sum_duplicates: bool = True,
    ) -> "CSC":
        """Build from coordinate triplets.

        Duplicate entries are summed (the natural semantics for
        finite-element / circuit-stamp assembly) unless
        ``sum_duplicates`` is False, in which case the last value wins.
        """
        n_rows, n_cols = shape
        r = np.asarray(list(rows) if not isinstance(rows, np.ndarray) else rows, dtype=np.int64)
        c = np.asarray(list(cols) if not isinstance(cols, np.ndarray) else cols, dtype=np.int64)
        v = np.asarray(list(vals) if not isinstance(vals, np.ndarray) else vals, dtype=np.float64)
        if not (r.shape == c.shape == v.shape):
            raise StructureError("rows, cols, vals must have the same length")
        if r.size and (r.min() < 0 or r.max() >= n_rows):
            raise StructureError("row index out of range")
        if c.size and (c.min() < 0 or c.max() >= n_cols):
            raise StructureError("column index out of range")

        # Sort by (col, row); stable so later duplicates stay later.
        order = np.lexsort((r, c))
        r, c, v = r[order], c[order], v[order]

        if r.size:
            new_group = np.empty(r.size, dtype=bool)
            new_group[0] = True
            new_group[1:] = (r[1:] != r[:-1]) | (c[1:] != c[:-1])
            if sum_duplicates:
                group_id = np.cumsum(new_group) - 1
                n_groups = int(group_id[-1]) + 1
                vv = np.zeros(n_groups, dtype=np.float64)
                np.add.at(vv, group_id, v)
                r, c, v = r[new_group], c[new_group], vv
            else:
                # Keep the last duplicate: reverse, keep first, re-reverse.
                keep = np.zeros(r.size, dtype=bool)
                last_of_group = np.empty(r.size, dtype=bool)
                last_of_group[:-1] = new_group[1:]
                last_of_group[-1] = True
                keep[:] = last_of_group
                r, c, v = r[keep], c[keep], v[keep]

        indptr = np.zeros(n_cols + 1, dtype=np.int64)
        np.add.at(indptr, c + 1, 1)
        np.cumsum(indptr, out=indptr)
        return cls(n_rows, n_cols, indptr, r, v)

    @classmethod
    def from_dense(cls, a: np.ndarray, drop_tol: float = 0.0) -> "CSC":
        """Build from a dense array, dropping entries with |a| <= drop_tol."""
        a = np.asarray(a, dtype=np.float64)
        if a.ndim != 2:
            raise StructureError("expected a 2-D array")
        mask = np.abs(a) > drop_tol
        r, c = np.nonzero(mask)
        return cls.from_coo(r, c, a[r, c], a.shape)

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, int]:
        return (self.n_rows, self.n_cols)

    @property
    def nnz(self) -> int:
        return int(self.indptr[-1])

    @shapes(self="csc[r,c]", j="scalar < c")
    def col(self, j: int) -> Tuple[np.ndarray, np.ndarray]:
        """Views of the (row-indices, values) of column ``j``."""
        lo, hi = self.indptr[j], self.indptr[j + 1]
        return self.indices[lo:hi], self.data[lo:hi]

    def col_nnz(self, j: int) -> int:
        return int(self.indptr[j + 1] - self.indptr[j])

    def diagonal(self) -> np.ndarray:
        """The main diagonal as a dense vector (zeros where unstored)."""
        d = np.zeros(min(self.n_rows, self.n_cols), dtype=np.float64)
        for j in range(d.size):
            rows, vals = self.col(j)
            k = np.searchsorted(rows, j)
            if k < rows.size and rows[k] == j:
                d[j] = vals[k]
        return d

    def get(self, i: int, j: int) -> float:
        """Value at (i, j); 0.0 if not stored. O(log col_nnz)."""
        rows, vals = self.col(j)
        k = np.searchsorted(rows, i)
        if k < rows.size and rows[k] == i:
            return float(vals[k])
        return 0.0

    # ------------------------------------------------------------------
    # Structure manipulation
    # ------------------------------------------------------------------
    @shapes(self="csc[r,c]", returns="csc[r,c]")
    def copy(self) -> "CSC":
        return CSC(self.n_rows, self.n_cols, self.indptr.copy(), self.indices.copy(), self.data.copy())

    @shapes(self="csc[r,c]", returns="csc[r,c]")
    def sort_indices(self) -> "CSC":
        """Return a copy with row indices sorted within each column.

        One stable ``lexsort`` over (column, row) — equivalent to a
        stable per-column argsort (duplicates keep their relative
        order), without the per-column Python loop.
        """
        indptr = self.indptr
        col_of = np.repeat(np.arange(self.n_cols, dtype=np.int64), np.diff(indptr))
        order = np.lexsort((self.indices, col_of))
        return CSC(self.n_rows, self.n_cols, indptr.copy(),
                   self.indices[order], self.data[order])

    @shapes(self="csc[r,c]", returns="csc[r,c]")
    def drop_zeros(self, tol: float = 0.0) -> "CSC":
        """Return a copy without entries of magnitude <= ``tol``."""
        keep = np.abs(self.data) > tol
        new_indptr = np.zeros(self.n_cols + 1, dtype=np.int64)
        col_of = np.repeat(np.arange(self.n_cols), np.diff(self.indptr))
        kept_cols = col_of[keep]
        np.add.at(new_indptr, kept_cols + 1, 1)
        np.cumsum(new_indptr, out=new_indptr)
        return CSC(self.n_rows, self.n_cols, new_indptr, self.indices[keep], self.data[keep])

    @shapes(self="csc[r,c]", returns="csc[c,r]")
    def transpose(self) -> "CSC":
        """The transpose, also in CSC (equivalently, this matrix in CSR)."""
        n_rows, n_cols = self.n_rows, self.n_cols
        indptr = np.zeros(n_rows + 1, dtype=np.int64)
        np.add.at(indptr, self.indices + 1, 1)
        np.cumsum(indptr, out=indptr)
        col_of = np.repeat(np.arange(n_cols), np.diff(self.indptr))
        # Stable sort by input row keeps input-column order within each
        # output column, so the result is sorted without a second pass.
        order = np.argsort(self.indices, kind="stable")
        return CSC(n_cols, n_rows, indptr, col_of[order], self.data[order])

    @domains(row_perm="perm[A->B]", col_perm="perm[C->D]")
    @shapes(self="csc[r,c]", returns="csc[r,c]")
    def permute(self, row_perm: np.ndarray | None = None, col_perm: np.ndarray | None = None) -> "CSC":
        """Return ``B`` with ``B[i, j] = A[row_perm[i], col_perm[j]]``.

        This is the NumPy fancy-index convention ``A[p][:, q]``.  Either
        permutation may be None (identity).
        """
        a = self
        if col_perm is not None:
            q = np.asarray(col_perm, dtype=np.int64)
            counts = np.diff(a.indptr)[q]
            indptr = np.zeros(a.n_cols + 1, dtype=np.int64)
            indptr[1:] = np.cumsum(counts)
            indices = np.empty(a.nnz, dtype=np.int64)
            data = np.empty(a.nnz, dtype=np.float64)
            for newj, oldj in enumerate(q):
                lo, hi = a.indptr[oldj], a.indptr[oldj + 1]
                nlo = indptr[newj]
                indices[nlo : nlo + (hi - lo)] = a.indices[lo:hi]
                data[nlo : nlo + (hi - lo)] = a.data[lo:hi]
            a = CSC(a.n_rows, a.n_cols, indptr, indices, data)
        if row_perm is not None:
            p = np.asarray(row_perm, dtype=np.int64)
            # inverse map: old row r appears at new position inv[r]
            inv = np.empty(a.n_rows, dtype=np.int64)
            inv[p] = np.arange(a.n_rows)
            indices = inv[a.indices]
            a = CSC(a.n_rows, a.n_cols, a.indptr.copy(), indices, a.data.copy())
            a = a.sort_indices()
        elif col_perm is not None:
            pass  # row order within columns unchanged, still sorted
        else:
            a = a.copy()
        return a

    @domains(returns="matrix[local:block]")
    def submatrix(self, r0: int, r1: int, c0: int, c1: int) -> "CSC":
        """Extract the contiguous block ``A[r0:r1, c0:c1]``.

        Contiguous extraction is the common case in Basker: after the
        BTF/ND reorderings every 2-D block is an index range.
        """
        if not (0 <= r0 <= r1 <= self.n_rows and 0 <= c0 <= c1 <= self.n_cols):
            raise StructureError("block bounds out of range")
        ncols = c1 - c0
        indptr = np.zeros(ncols + 1, dtype=np.int64)
        chunks_idx = []
        chunks_val = []
        for j in range(c0, c1):
            lo, hi = self.indptr[j], self.indptr[j + 1]
            rows = self.indices[lo:hi]
            a = np.searchsorted(rows, r0)
            b = np.searchsorted(rows, r1)
            indptr[j - c0 + 1] = indptr[j - c0] + (b - a)
            if b > a:
                chunks_idx.append(rows[a:b] - r0)
                chunks_val.append(self.data[lo + a : lo + b])
        if chunks_idx:
            indices = np.concatenate(chunks_idx)
            data = np.concatenate(chunks_val)
        else:
            indices = np.empty(0, dtype=np.int64)
            data = np.empty(0, dtype=np.float64)
        return CSC(r1 - r0, ncols, indptr, indices, data)

    @domains(rows="index[R]", cols="index[C]", returns="matrix[local:block]")
    @shapes(self="csc[r,c]", rows="i8[p] unique < r", cols="i8[q] < c", returns="csc[p,q]")
    def extract(self, rows: np.ndarray, cols: np.ndarray) -> "CSC":
        """General (non-contiguous) submatrix ``A[np.ix_(rows, cols)]``."""
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        pos = np.full(self.n_rows, -1, dtype=np.int64)
        pos[rows] = np.arange(rows.size)
        out_r, out_c, out_v = [], [], []
        for newj, oldj in enumerate(cols):
            ri, vv = self.col(oldj)
            sel = pos[ri] >= 0
            if np.any(sel):
                out_r.append(pos[ri[sel]])
                out_c.append(np.full(int(sel.sum()), newj, dtype=np.int64))
                out_v.append(vv[sel])
        if out_r:
            return CSC.from_coo(
                np.concatenate(out_r), np.concatenate(out_c), np.concatenate(out_v),
                (rows.size, cols.size), sum_duplicates=False,
            )
        return CSC.empty(rows.size, cols.size)

    # ------------------------------------------------------------------
    # Numeric helpers
    # ------------------------------------------------------------------
    @shapes(self="csc[r,c]", returns="f8[r,c]")
    def to_dense(self) -> np.ndarray:
        out = np.zeros((self.n_rows, self.n_cols), dtype=np.float64)
        col_of = np.repeat(np.arange(self.n_cols), np.diff(self.indptr))
        np.add.at(out, (self.indices, col_of), self.data)
        return out

    @shapes(self="csc[r,c]", x="f8[c]", returns="f8[r]")
    def matvec(self, x: np.ndarray) -> np.ndarray:
        """y = A @ x."""
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.n_cols,):
            raise StructureError(f"x has shape {x.shape}, expected ({self.n_cols},)")
        y = np.zeros(self.n_rows, dtype=np.float64)
        col_of = np.repeat(np.arange(self.n_cols), np.diff(self.indptr))
        np.add.at(y, self.indices, self.data * x[col_of])
        return y

    @shapes(self="csc[r,c]", x="f8[r]", returns="f8[c]")
    def rmatvec(self, x: np.ndarray) -> np.ndarray:
        """y = A.T @ x."""
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.n_rows,):
            raise StructureError(f"x has shape {x.shape}, expected ({self.n_rows},)")
        col_of = np.repeat(np.arange(self.n_cols), np.diff(self.indptr))
        y = np.zeros(self.n_cols, dtype=np.float64)
        np.add.at(y, col_of, self.data * x[self.indices])
        return y

    @shapes(self="csc[r,c]", returns="csc[r,c]")
    def scale(self, alpha: float) -> "CSC":
        out = self.copy()
        out.data *= alpha
        return out

    @shapes(self="csc[r,c]", other="csc[r,c]", returns="csc[r,c]")
    def add(self, other: "CSC") -> "CSC":
        """Entrywise sum (structural union)."""
        if self.shape != other.shape:
            raise StructureError("shape mismatch")
        col_a = np.repeat(np.arange(self.n_cols), np.diff(self.indptr))
        col_b = np.repeat(np.arange(other.n_cols), np.diff(other.indptr))
        return CSC.from_coo(
            np.concatenate([self.indices, other.indices]),
            np.concatenate([col_a, col_b]),
            np.concatenate([self.data, other.data]),
            self.shape,
        )

    def fro_norm(self) -> float:
        return float(np.sqrt(np.sum(self.data**2)))

    def max_abs(self) -> float:
        return float(np.max(np.abs(self.data))) if self.data.size else 0.0

    def one_norm(self) -> float:
        """Maximum absolute column sum."""
        if self.nnz == 0:
            return 0.0
        col_of = np.repeat(np.arange(self.n_cols), np.diff(self.indptr))
        sums = np.zeros(self.n_cols)
        np.add.at(sums, col_of, np.abs(self.data))
        return float(sums.max())

    # ------------------------------------------------------------------
    # Invariants / dunder
    # ------------------------------------------------------------------
    def check(self) -> None:
        """Validate every structural invariant, raising
        :class:`~repro.errors.StructureError` on the first violation.

        Checked: ``indptr`` is int64 of shape ``(n_cols + 1,)``, starts
        at 0, is nondecreasing and ends at ``nnz``; ``indices`` is int64
        and aligned with float64 ``data``; row indices lie in
        ``[0, n_rows)`` and are strictly increasing within each column.
        All checks are vectorized (no per-column Python loop), so this
        is cheap enough to run on every loader/verifier path.
        """
        if self.indptr.dtype != np.int64:
            raise StructureError(f"indptr dtype is {self.indptr.dtype}, expected int64")
        if self.indices.dtype != np.int64:
            raise StructureError(f"indices dtype is {self.indices.dtype}, expected int64")
        if self.data.dtype != np.float64:
            raise StructureError(f"data dtype is {self.data.dtype}, expected float64")
        if self.indptr.shape != (self.n_cols + 1,):
            raise StructureError(
                f"indptr has shape {self.indptr.shape}, expected ({self.n_cols + 1},)"
            )
        if self.indptr[0] != 0:
            raise StructureError(f"indptr[0] is {int(self.indptr[0])}, expected 0")
        widths = np.diff(self.indptr)
        if widths.size and widths.min() < 0:
            j = int(np.flatnonzero(widths < 0)[0])
            raise StructureError(f"indptr decreases at column {j}")
        if not (int(self.indptr[-1]) == self.indices.size == self.data.size):
            raise StructureError(
                f"indptr[-1]={int(self.indptr[-1])} but indices.size="
                f"{self.indices.size}, data.size={self.data.size}"
            )
        if self.indices.size:
            if self.indices.min() < 0 or self.indices.max() >= self.n_rows:
                raise StructureError(
                    f"row indices span [{int(self.indices.min())}, "
                    f"{int(self.indices.max())}], expected [0, {self.n_rows})"
                )
            # Strictly increasing within each column: every adjacent pair
            # must either grow or straddle a column boundary.
            step = np.diff(self.indices)
            col_of = np.repeat(np.arange(self.n_cols), widths)
            bad = (step <= 0) & (col_of[1:] == col_of[:-1])
            if np.any(bad):
                j = int(col_of[int(np.flatnonzero(bad)[0])])
                raise StructureError(f"column {j} rows not strictly increasing")

    def same_pattern(self, other: "CSC") -> bool:
        return (
            self.shape == other.shape
            and np.array_equal(self.indptr, other.indptr)
            and np.array_equal(self.indices, other.indices)
        )

    def __repr__(self) -> str:
        return f"CSC(shape={self.shape}, nnz={self.nnz})"
