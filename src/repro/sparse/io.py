"""Matrix-Market I/O.

The paper's test suite comes from the UF (SuiteSparse) collection, which
distributes Matrix-Market files.  This reader/writer lets externally
obtained matrices be dropped straight into the benches; the offline
reproduction itself uses the synthetic generators in
:mod:`repro.matrices`.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import TextIO, Union

import numpy as np

from .csc import CSC

__all__ = ["read_matrix_market", "write_matrix_market"]


def _open(path_or_file: Union[str, Path, TextIO], mode: str):
    if isinstance(path_or_file, (str, Path)):
        return open(path_or_file, mode), True
    return path_or_file, False


def read_matrix_market(path_or_file: Union[str, Path, TextIO]) -> CSC:
    """Read a Matrix-Market coordinate file into a CSC matrix.

    Supports real/integer/pattern fields and general/symmetric/
    skew-symmetric symmetry (symmetric halves are mirrored).
    """
    f, should_close = _open(path_or_file, "r")
    try:
        header = f.readline()
        if not header.startswith("%%MatrixMarket"):
            raise ValueError("not a MatrixMarket file")
        parts = header.strip().split()
        if len(parts) < 5:
            raise ValueError(f"malformed header: {header!r}")
        _, obj, fmt, field, symmetry = parts[:5]
        if obj.lower() != "matrix" or fmt.lower() != "coordinate":
            raise ValueError("only coordinate matrices are supported")
        field = field.lower()
        symmetry = symmetry.lower()
        if field == "complex":
            raise ValueError("complex matrices are not supported")

        line = f.readline()
        while line.startswith("%") or not line.strip():
            line = f.readline()
        n_rows, n_cols, nnz = (int(t) for t in line.split())

        rows = np.empty(nnz, dtype=np.int64)
        cols = np.empty(nnz, dtype=np.int64)
        vals = np.empty(nnz, dtype=np.float64)
        k = 0
        for line in f:
            line = line.strip()
            if not line or line.startswith("%"):
                continue
            toks = line.split()
            rows[k] = int(toks[0]) - 1
            cols[k] = int(toks[1]) - 1
            vals[k] = 1.0 if field == "pattern" else float(toks[2])
            k += 1
        if k != nnz:
            raise ValueError(f"expected {nnz} entries, found {k}")

        if symmetry in ("symmetric", "skew-symmetric"):
            off = rows != cols
            sign = -1.0 if symmetry == "skew-symmetric" else 1.0
            rows = np.concatenate([rows, cols[off]])
            cols = np.concatenate([cols, rows[: nnz][off]])
            vals = np.concatenate([vals, sign * vals[off]])
        elif symmetry != "general":
            raise ValueError(f"unsupported symmetry {symmetry!r}")
        A = CSC.from_coo(rows, cols, vals, (n_rows, n_cols), sum_duplicates=False)
        A.check()
        return A
    finally:
        if should_close:
            f.close()


def write_matrix_market(A: CSC, path_or_file: Union[str, Path, TextIO], comment: str = "") -> None:
    """Write a CSC matrix as a real general coordinate Matrix-Market file."""
    f, should_close = _open(path_or_file, "w")
    try:
        f.write("%%MatrixMarket matrix coordinate real general\n")
        for line in comment.splitlines():
            f.write(f"% {line}\n")
        f.write(f"{A.n_rows} {A.n_cols} {A.nnz}\n")
        buf = io.StringIO()
        for j in range(A.n_cols):
            rows, vals = A.col(j)
            for t in range(rows.size):
                buf.write(f"{int(rows[t]) + 1} {j + 1} {vals[t]:.17g}\n")
        f.write(buf.getvalue())
    finally:
        if should_close:
            f.close()
