"""Structure-aware detection of dense blocks in the predicted pattern.

The blocked first-time factorization (arXiv:2512.04389's idea applied
to the Gilbert–Peierls kernel) needs to know, *before* numeric work
starts, which region of the factor will be dense enough that a
contiguous numpy panel beats per-column scatter loops.  Basker's own
hierarchy (paper §IV) says where to look: the fill of a left-looking
LU concentrates in the trailing columns — the ND separator borders and
the final Schur complement — so the candidate region is a *dense tail*
``[k*, n)`` of the elimination order.

Detection is purely symbolic and pivot-free: the Cholesky column
counts of ``A + A.T`` (:func:`repro.graph.etree.symbolic_cholesky_counts`)
upper-bound the L pattern for any diagonal-preserving pivot sequence,
so the predicted density of the trailing ``m x m`` LU block is

    density(k) = (2 * sum_{j >= k} counts[j] - m) / m**2,   m = n - k.

:func:`detect_dense_tail` picks the largest tail whose predicted
density clears a threshold.  Correctness never depends on the choice:
the blocked kernel produces the same factors for *any* switch column
(the panel path is an exact reorganization of the reference update
order), so the threshold is purely a performance knob — which is also
what makes the parity tests in ``tests/test_blocking.py`` free to
randomize the switch point.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..contracts import effects, shapes
from ..graph.etree import etree, symbolic_cholesky_counts, symmetric_pattern
from .csc import CSC

__all__ = [
    "DensePlan",
    "detect_dense_tail",
    "predicted_tail_density",
    "DENSE_TAIL_THRESHOLD",
    "DENSE_TAIL_MIN_COLS",
    "DENSE_TAIL_MAX_WORDS",
]

# Predicted-density floor for switching to the dense panel.
DENSE_TAIL_THRESHOLD = 0.5
# Tails smaller than this stay on the scalar path (panel setup cost).
DENSE_TAIL_MIN_COLS = 16
# Cap on the gathered panel footprint (n * m float64 words).
DENSE_TAIL_MAX_WORDS = 1 << 24


@dataclass(frozen=True)
class DensePlan:
    """A symbolic blocking decision for one matrix pattern.

    ``switch`` is the first column of the dense tail (``switch == n``
    means no tail: the whole factorization stays on the scalar path).
    The pattern arrays are kept by reference so a cached plan can be
    revalidated against a fresh extraction of the same block
    (:meth:`matches`), mirroring the schedule cache-key discipline of
    :mod:`repro.sparse.schedule`.
    """

    n: int
    switch: int
    density: float          # predicted density of the chosen tail (0 if none)
    threshold: float
    min_cols: int
    indptr: np.ndarray      # pattern identity for cache revalidation
    indices: np.ndarray

    @property
    def tail_cols(self) -> int:
        return self.n - self.switch

    @property
    def has_tail(self) -> bool:
        return self.switch < self.n

    def matches(self, A: CSC) -> bool:
        """Does this plan describe ``A``'s pattern?  Object-identity
        fast path first; O(nnz) comparison otherwise."""
        if A.n_cols != self.n or A.indices.size != self.indices.size:
            return False
        if A.indptr is self.indptr and A.indices is self.indices:
            return True
        return bool(
            np.array_equal(A.indptr, self.indptr)
            and np.array_equal(A.indices, self.indices)
        )


@effects(pure=True)
def predicted_tail_density(counts: np.ndarray) -> np.ndarray:
    """Predicted LU density of every trailing block.

    ``counts`` are symbolic Cholesky column counts (diagonal included)
    of the symmetrized pattern; the returned ``density[k]`` estimates
    ``nnz(L[k:, k:] + U[k:, k:]) / (n - k)**2`` for the tail starting
    at column ``k`` (L and U^T share the counts, the diagonal is
    counted once).
    """
    n = counts.size
    if n == 0:
        return np.zeros(0, dtype=np.float64)
    m = np.arange(n, 0, -1, dtype=np.float64)  # tail widths n-k
    tail_nnz = np.cumsum(counts[::-1].astype(np.float64))[::-1]
    return (2.0 * tail_nnz - m) / (m * m)


@effects(pure=True)
@shapes(A="csc[n,n]")
def detect_dense_tail(
    A: CSC,
    threshold: float = DENSE_TAIL_THRESHOLD,
    min_cols: int = DENSE_TAIL_MIN_COLS,
    max_words: int = DENSE_TAIL_MAX_WORDS,
) -> DensePlan:
    """Choose the dense-tail switch column for ``A``'s pattern.

    The largest tail whose predicted density clears ``threshold`` wins,
    subject to ``min_cols`` (shorter tails don't amortize the panel
    gather) and ``max_words`` (the gathered panel is ``n * m`` words;
    the switch moves right until it fits).  Pattern-only — values never
    matter, so one plan serves a whole fixed-pattern sequence.
    """
    n = A.n_cols
    if A.n_rows != n:
        raise ValueError("dense-tail detection requires a square matrix")
    switch = n
    density = 0.0
    if n >= min_cols and min_cols > 0:
        B = symmetric_pattern(A)
        parent = etree(B)
        counts = symbolic_cholesky_counts(B, parent)
        dens = predicted_tail_density(counts)
        # Largest tail (smallest k) that is predicted dense enough.
        ok = np.flatnonzero(dens >= threshold)
        ok = ok[(n - ok) >= min_cols]
        if ok.size:
            switch = int(ok[0])
            # Panel footprint cap: shrink the tail until n*m fits.
            if max_words > 0:
                max_m = max(int(max_words // max(n, 1)), 0)
                if n - switch > max_m:
                    switch = n - max_m
            if n - switch < min_cols:
                switch = n
            else:
                density = float(dens[switch])
    return DensePlan(
        n=n,
        switch=switch,
        density=density,
        threshold=float(threshold),
        min_cols=int(min_cols),
        indptr=A.indptr,
        indices=A.indices,
    )
