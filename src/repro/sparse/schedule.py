"""Elimination schedule compiler: level-scheduled vectorized kernels.

The numeric hot paths of this package — values-only refactorization on a
fixed L/U pattern (``gp_refactor``) and the dense-RHS triangular solves
— are per-column Python loops in their reference form.  On a *fixed*
pattern all of their control flow is known ahead of time, so it can be
compiled once into flat gather/scatter/segment index arrays and replayed
with whole-level NumPy operations (GLU-style level scheduling: group
columns into dependency levels from the factor patterns, then execute
one level per vector operation batch).

Two compiled objects are produced:

* :class:`TriangularSchedule` — levels of a triangular matrix for the
  dense-RHS solves :func:`~repro.sparse.ops.lower_solve` /
  :func:`~repro.sparse.ops.upper_solve`.  Cached on the
  :class:`~repro.sparse.csc.CSC` object itself (patterns are immutable
  by convention), so repeated solves against the same factor compile
  once.
* :class:`RefactorSchedule` — the full elimination schedule for
  values-only refactorization against fixed ``L``/``U`` factors, a
  fixed input pattern and a fixed pivot order.  Levels are computed on
  the union graph of L's below-diagonal and U's above-diagonal
  patterns: an edge ``j -> k`` (``j < k``) exists when ``L[k, j] != 0``
  or ``U[j, k] != 0``.  That graph dominates *both* the cross-column
  dependencies (column ``k`` consumes finished L columns ``j`` with
  ``U[j, k] != 0``) and the within-column read-after-write ordering of
  the sparse triangular solve (``x[j]`` is read after updates through
  ``L[j, j'']``), so one level sweep — finalize this level's columns,
  then apply every update they source — replays the reference
  column-by-column loop exactly.

The replay keeps :class:`~repro.parallel.ledger.CostLedger` counts
*identical* to the reference loops (updates whose source value is zero
are counted out, exactly as the loops skip them); the reference
implementations remain available as ``*_reference`` oracles.

Compilation is pattern-only and costs one pass over the factors;
sequences of same-pattern matrices (the Xyce transient workload) compile
once and replay vectorized for every subsequent matrix.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from ..contracts import domains, shapes
from ..errors import SingularMatrixError, StructureError, ZeroPivotError
from ..obs.tracer import get_tracer
from ..resilience.faults import active_plan as _fault_plan
from .csc import CSC

__all__ = [
    "ScheduleCompileError",
    "TriangularSchedule",
    "compile_triangular_schedule",
    "triangular_schedule",
    "adopt_solve_schedules",
    "drop_solve_schedules",
    "RefactorSchedule",
    "compile_refactor_schedule",
    "permutation_gather",
    "diagonal_block_gathers",
]


class ScheduleCompileError(StructureError):
    """The given pattern cannot be compiled into an elimination schedule
    (missing structural diagonal, pattern not closed under the update
    paths, or input entries outside the factor pattern)."""


@shapes(starts="i8[m]", counts="i8[m]")
def _concat_ranges(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """``concatenate([arange(s, s + c) for s, c in zip(starts, counts)])``
    without a Python loop."""
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    cum0 = np.concatenate(([0], np.cumsum(counts)[:-1]))
    return np.repeat(starts - cum0, counts) + np.arange(total, dtype=np.int64)


@shapes(positions="i8[k]")
def _segment(positions: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Sort scatter targets and mark segment boundaries for reduceat.

    Returns ``(order, seg_starts, seg_tgt)`` such that accumulating
    ``vals`` into ``positions`` is ``x[seg_tgt] -=
    add.reduceat(vals[order], seg_starts)``.
    """
    order = np.argsort(positions, kind="stable")
    srt = positions[order]
    if srt.size == 0:
        return order, np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    new = np.empty(srt.size, dtype=bool)
    new[0] = True
    new[1:] = srt[1:] != srt[:-1]
    seg_starts = np.flatnonzero(new)
    return order, seg_starts, srt[seg_starts]


# ======================================================================
# Triangular solve schedules
# ======================================================================


# Levels at most this wide run as a per-column scalar loop instead of
# the whole-level vector path: deep factors produce long runs of 1-2
# column levels where the fixed cost of the vector calls dominates.
_SCALAR_LEVEL_WIDTH = 4


@dataclass
class _TriLevel:
    cols: np.ndarray        # columns finalized at this level
    diag_idx: np.ndarray    # data index of each column's diagonal (-1 if absent)
    counts: np.ndarray      # off-diagonal update entries per column
    ent_val_idx: np.ndarray  # data indices of the update entries, grouped by column
    ent_order: np.ndarray
    seg_starts: np.ndarray
    seg_tgt: np.ndarray     # target rows of x
    # Narrow levels only: per column ``(j, diag, lo, hi, rows)`` with
    # ``lo:hi`` the data slice of the update entries and ``rows`` their
    # target rows; the vector arrays above are left empty then.
    scalar_cols: Optional[list] = None


@dataclass
class TriangularSchedule:
    """Level schedule of a triangular CSC pattern for dense-RHS solves."""

    kind: str               # "lower" or "upper"
    n: int
    nnz: int
    diag_idx: np.ndarray    # per column, -1 when no stored diagonal
    col_empty: np.ndarray   # per column, True when the column stores nothing
    levels: List[_TriLevel]

    @property
    def n_levels(self) -> int:
        return len(self.levels)

    def matches(self, M: CSC) -> bool:
        """Cheap pattern identity check (patterns are immutable by
        convention; a different object with the same shape/nnz would
        need :func:`compile_triangular_schedule` anew)."""
        return M.n_rows == self.n and M.n_cols == self.n and M.nnz == self.nnz

    # ------------------------------------------------------------------
    @shapes(M="csc[n,n]", b="f8[n]", returns="f8[n]")
    def solve(self, M: CSC, b: np.ndarray, unit_diag: bool = False) -> np.ndarray:
        """Replay the schedule: solve ``M x = b`` level by level."""
        n = self.n
        x = np.array(b, dtype=np.float64, copy=True)
        if x.shape != (n,):
            raise StructureError("dimension mismatch")
        data = M.data
        use_diag = not unit_diag
        if use_diag:
            # Validate every diagonal up front, reporting the column the
            # reference sweep would have hit first.
            missing = self.diag_idx < 0
            dvals = np.zeros(n, dtype=np.float64)
            dvals[~missing] = data[self.diag_idx[~missing]]
            bad = missing | (dvals == 0.0)
            if np.any(bad):
                which = np.flatnonzero(bad)
                j = int(which.max() if self.kind == "upper" else which.min())
                if self.kind == "lower" and self.col_empty[j]:
                    raise ZeroPivotError(f"empty column {j} in lower solve", column=j)
                raise ZeroPivotError(f"zero diagonal at column {j}", column=j)
        for lv in self.levels:
            scalars = lv.scalar_cols
            if scalars is not None:
                for j, dj, lo, hi, rows in scalars:
                    xj = x[j]
                    if use_diag:
                        xj = x[j] = xj / data[dj]
                    if xj != 0.0 and lo != hi:
                        x[rows] -= data[lo:hi] * xj
                continue
            if use_diag:
                x[lv.cols] /= data[lv.diag_idx]
            if lv.ent_val_idx.size:
                xj = np.repeat(x[lv.cols], lv.counts)
                prods = data[lv.ent_val_idx] * xj
                x[lv.seg_tgt] -= np.add.reduceat(prods[lv.ent_order], lv.seg_starts)
        return x


@shapes(M="csc[n,n]")
def compile_triangular_schedule(M: CSC, kind: str) -> TriangularSchedule:
    """Compile the level schedule of a triangular CSC pattern.

    ``kind`` is ``"lower"`` (forward sweep; entries strictly below the
    diagonal propagate) or ``"upper"`` (backward sweep; entries strictly
    above propagate).  Entries on the wrong side of the diagonal are
    ignored, exactly as the reference loops ignore them.
    """
    if kind not in ("lower", "upper"):
        raise StructureError("kind must be 'lower' or 'upper'")
    if M.n_rows != M.n_cols:
        raise StructureError("triangular schedule requires a square matrix")
    n = M.n_cols
    indptr, indices = M.indptr, M.indices
    lev = np.zeros(n, dtype=np.int64)
    diag_idx = np.full(n, -1, dtype=np.int64)
    off_lo = np.zeros(n, dtype=np.int64)
    off_hi = np.zeros(n, dtype=np.int64)
    col_order = range(n) if kind == "lower" else range(n - 1, -1, -1)
    for j in col_order:
        lo, hi = int(indptr[j]), int(indptr[j + 1])
        rows = indices[lo:hi]
        k = int(np.searchsorted(rows, j))
        has_diag = k < rows.size and rows[k] == j
        if has_diag:
            diag_idx[j] = lo + k
        if kind == "lower":
            off_lo[j] = lo + k + (1 if has_diag else 0)
            off_hi[j] = hi
        else:
            off_lo[j] = lo
            off_hi[j] = lo + k
        off = indices[off_lo[j] : off_hi[j]]
        if off.size:
            lev[off] = np.maximum(lev[off], lev[j] + 1)

    order = np.argsort(lev, kind="stable")
    n_levels = int(lev.max()) + 1 if n else 0
    sizes = np.bincount(lev, minlength=n_levels) if n else np.empty(0, dtype=np.int64)
    metrics = get_tracer().metrics
    if metrics.enabled:
        metrics.set_gauge(f"schedule.tri.{kind}.n_levels", n_levels)
        for width in sizes:
            metrics.observe("schedule.tri.level_width", int(width))
    ptr = np.concatenate(([0], np.cumsum(sizes)))
    levels: List[_TriLevel] = []
    empty = np.empty(0, dtype=np.int64)
    for s in range(n_levels):
        cols = order[ptr[s] : ptr[s + 1]]
        if cols.size <= _SCALAR_LEVEL_WIDTH:
            scalars = [
                (int(j), int(diag_idx[j]), int(off_lo[j]), int(off_hi[j]),
                 indices[off_lo[j] : off_hi[j]])
                for j in cols
            ]
            levels.append(_TriLevel(
                cols=cols, diag_idx=empty, counts=empty, ent_val_idx=empty,
                ent_order=empty, seg_starts=empty, seg_tgt=empty,
                scalar_cols=scalars,
            ))
            continue
        counts = off_hi[cols] - off_lo[cols]
        ent_val_idx = _concat_ranges(off_lo[cols], counts)
        ent_order, seg_starts, seg_tgt = _segment(indices[ent_val_idx])
        levels.append(_TriLevel(
            cols=cols,
            diag_idx=diag_idx[cols],
            counts=counts,
            ent_val_idx=ent_val_idx,
            ent_order=ent_order,
            seg_starts=seg_starts,
            seg_tgt=seg_tgt,
        ))
    return TriangularSchedule(
        kind=kind,
        n=n,
        nnz=M.nnz,
        diag_idx=diag_idx,
        col_empty=np.diff(indptr) == 0,
        levels=levels,
    )


@shapes(M="csc[n,n]")
def triangular_schedule(M: CSC, kind: str) -> TriangularSchedule:
    """Compiled schedule for ``M``, cached on the matrix object.

    CSC patterns are immutable by convention in this package (every
    structural operation returns a new object), so the cache lives for
    the lifetime of the matrix; new objects start cold.
    """
    cache = getattr(M, "_solve_schedules", None)
    if cache is None:
        cache = {}
        M._solve_schedules = cache
    metrics = get_tracer().metrics
    sched = cache.get(kind)
    if sched is None:
        metrics.incr("schedule.tri.miss")
    elif not sched.matches(M):
        metrics.incr("schedule.tri.invalidate")
        sched = None
    else:
        metrics.incr("schedule.tri.hit")
    if sched is None:
        sched = compile_triangular_schedule(M, kind)
        cache[kind] = sched
    return sched


def adopt_solve_schedules(src: CSC, dst: CSC) -> None:
    """Share ``src``'s compiled solve schedules with ``dst``.

    Only valid when both matrices have the same pattern (the caller
    guarantees it — e.g. a values-only refactorization result).
    """
    cache = getattr(src, "_solve_schedules", None)
    if cache:
        dst._solve_schedules = dict(cache)


def drop_solve_schedules(M: CSC) -> int:
    """Eviction hook: discard every compiled solve schedule cached on
    ``M`` and return how many were dropped.

    Used by shared-cache eviction (the serving layer's pattern cache)
    so evicted factors release their compiled gather/scatter plans
    instead of pinning them alive.  Each dropped schedule counts as a
    ``schedule.tri.evictions`` event — the same counter family the
    flight recorder's ``cache_hit_drop`` drift detector scans.
    """
    cache = getattr(M, "_solve_schedules", None)
    if not cache:
        return 0
    n = len(cache)
    M._solve_schedules = {}
    get_tracer().metrics.incr("schedule.tri.evictions", n)
    return n


# ======================================================================
# Refactorization schedules
# ======================================================================


@dataclass
class _RefactorStage:
    cols: np.ndarray        # columns finalized at this stage
    piv_wpos: np.ndarray    # workspace position of each column's pivot
    l_counts: np.ndarray    # below-diagonal entries per column
    l_dst: np.ndarray       # indices into Lx for the below-diagonal values
    l_src: np.ndarray       # workspace positions of those values
    op_src_wpos: np.ndarray  # per update op: workspace position of x_k[j]
    op_len: np.ndarray      # per update op: |L(:, j)| - 1
    ent_lval_idx: np.ndarray  # indices into Lx, grouped per op
    ent_order: np.ndarray
    seg_starts: np.ndarray
    seg_tgt: np.ndarray     # workspace positions receiving the sums
    # Column-group attribution (grouped compiles only): group of each
    # update op's target column, and the all-ops-counted flop total per
    # group (the common case, so run() skips the bincount).
    op_group: Optional[np.ndarray] = None
    op_group_flops: Optional[np.ndarray] = None


def _same_pattern(a: np.ndarray, b: np.ndarray) -> bool:
    """Array equality with an identity fast path.

    Patterns are immutable by convention and shared across the objects
    of a fixed-pattern sequence, so ``a is b`` almost always decides.
    """
    return a is b or np.array_equal(a, b)


@dataclass
class RefactorSchedule:
    """Compiled elimination schedule for values-only refactorization.

    Bound to one (L pattern, U pattern, input pattern, row permutation)
    quadruple; :meth:`matches` re-validates all four so a pattern change
    forces recompilation.
    """

    n: int
    l_indptr: np.ndarray
    l_indices: np.ndarray
    u_indptr: np.ndarray
    u_indices: np.ndarray
    a_indptr: np.ndarray
    a_indices: np.ndarray
    row_perm: np.ndarray
    wtotal: int
    a_scatter: np.ndarray   # A data index -> workspace position
    ux_src: np.ndarray      # workspace position of every U value
    l_diag_dst: np.ndarray  # Lx indices of the unit diagonal
    div_flops: float        # sum over columns of |L(:, k)| - 1
    stages: List[_RefactorStage] = field(default_factory=list)
    # Optional per-column-group cost attribution (compiled with
    # ``col_group``): used by the blocked replay to rebuild per-block
    # ledgers identical to running the blocks one by one.
    n_groups: int = 1
    group_div_flops: Optional[np.ndarray] = None
    group_columns: Optional[np.ndarray] = None
    group_mem_words: Optional[np.ndarray] = None

    @property
    def n_stages(self) -> int:
        return len(self.stages)

    # ------------------------------------------------------------------
    def matches(self, L: CSC, U: CSC, A: CSC, row_perm: np.ndarray) -> bool:
        """True when the schedule was compiled for exactly these
        patterns and this pivot order."""
        return (
            L.shape == (self.n, self.n)
            and U.shape == (self.n, self.n)
            and A.shape == (self.n, self.n)
            and _same_pattern(L.indptr, self.l_indptr)
            and _same_pattern(L.indices, self.l_indices)
            and _same_pattern(U.indptr, self.u_indptr)
            and _same_pattern(U.indices, self.u_indices)
            and _same_pattern(A.indptr, self.a_indptr)
            and _same_pattern(A.indices, self.a_indices)
            and _same_pattern(np.asarray(row_perm, dtype=np.int64), self.row_perm)
        )

    # ------------------------------------------------------------------
    @shapes(a_data="f8[k]")
    def run(
        self,
        a_data: np.ndarray,
        ledger,
        pivot_floor: float = 0.0,
        group_flops: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Replay the schedule on new values; returns ``(Lx, Ux)``.

        Ledger counts are identical to the reference column loop
        (:func:`~repro.solvers.gp.gp_refactor_reference`): updates whose
        source value is exactly zero are excluded from ``sparse_flops``.
        Raises :class:`~repro.errors.SingularMatrixError` when a reused
        pivot is unusable; with several unusable pivots the reported
        column is the first one *in schedule order*, which may differ
        from the reference loop's (always the smallest failing column).

        With ``group_flops`` (an array of ``n_groups`` zeros, grouped
        compiles only) the masked update flops are additionally
        attributed to each target column's group.
        """
        if group_flops is not None and self.group_columns is None:
            raise StructureError("schedule was compiled without column groups")
        xwork = np.zeros(self.wtotal, dtype=np.float64)
        xwork[self.a_scatter] = a_data
        plan = _fault_plan()
        if plan is not None:  # fault-injection harness only; free when idle
            pivots = (
                np.concatenate([st.piv_wpos for st in self.stages])
                if self.stages else np.empty(0, dtype=np.int64)
            )
            plan.apply_workspace("schedule.replay.workspace", xwork, pivots)
        Lx = np.empty(self.l_indices.size, dtype=np.float64)
        Ux = np.empty(self.u_indices.size, dtype=np.float64)
        Lx[self.l_diag_dst] = 1.0
        update_flops = 0.0
        for stage in self.stages:
            piv = xwork[stage.piv_wpos]
            bad = (np.abs(piv) <= pivot_floor) | (piv == 0.0)
            if np.any(bad):
                k = int(stage.cols[np.flatnonzero(bad).min()])
                raise SingularMatrixError(
                    f"refactor: reused pivot at column {k} is unusable "
                    f"({piv[np.flatnonzero(bad).min()]!r}); refactor with fresh pivoting",
                    column=k,
                )
            if stage.l_dst.size:
                Lx[stage.l_dst] = xwork[stage.l_src] / np.repeat(piv, stage.l_counts)
            if stage.op_src_wpos.size:
                sv = xwork[stage.op_src_wpos]
                nz = sv != 0.0
                if not np.all(nz):
                    counted = stage.op_len[nz]
                    update_flops += float(counted.sum())
                    if group_flops is not None:
                        group_flops += np.bincount(
                            stage.op_group[nz], weights=counted,
                            minlength=group_flops.size,
                        )
                else:
                    update_flops += float(stage.op_len.sum())
                    if group_flops is not None:
                        group_flops += stage.op_group_flops
                prods = Lx[stage.ent_lval_idx] * np.repeat(sv, stage.op_len)
                if stage.seg_starts.size:
                    xwork[stage.seg_tgt] -= np.add.reduceat(
                        prods[stage.ent_order], stage.seg_starts
                    )
        Ux[:] = xwork[self.ux_src]
        ledger.sparse_flops += update_flops + self.div_flops
        ledger.columns += self.n
        ledger.mem_words += self.l_indices.size + self.u_indices.size
        return Lx, Ux


@domains(A="matrix[S]", row_perm="perm[A->B]")
@shapes(L="csc[n,n]", U="csc[n,n]", A="csc[n,n]", row_perm="i8[n] unique < n")
def compile_refactor_schedule(
    L: CSC,
    U: CSC,
    A: CSC,
    row_perm: np.ndarray,
    col_group: Optional[np.ndarray] = None,
    n_groups: Optional[int] = None,
) -> RefactorSchedule:
    """Compile the elimination schedule for refactoring matrices with
    ``A``'s pattern against the fixed factors ``L``/``U`` and pivot
    order ``row_perm``.

    ``col_group`` (optional) assigns every column to a group; the
    schedule then supports per-group flop attribution at replay time
    (see :class:`BlockedRefactorSchedule`).

    Requirements (all raised as :class:`ScheduleCompileError`):

    * every L column stores its unit diagonal first, every U column its
      diagonal last (the layout produced by every factorization here);
    * the factor patterns are closed under the update paths
      (``L[i, j] != 0`` and ``U[j, k] != 0`` implies ``(i, k)`` is in
      the pattern) — true for any pattern produced by a reach-based or
      symbolic factorization of the same input pattern;
    * every input entry lands inside the factor pattern after the row
      permutation.
    """
    n = L.n_cols
    if L.shape != (n, n) or U.shape != (n, n) or A.shape != (n, n):
        raise StructureError("refactor schedule requires square, same-shape factors")
    row_perm = np.asarray(row_perm, dtype=np.int64)
    if row_perm.shape != (n,):
        raise StructureError("row_perm has the wrong length")
    if col_group is not None:
        col_group = np.asarray(col_group, dtype=np.int64)
        if col_group.shape != (n,):
            raise StructureError("col_group has the wrong length")
        if n_groups is None:
            n_groups = int(col_group.max()) + 1 if n else 0
    Lp, Li = L.indptr, L.indices
    Up, Ui = U.indptr, U.indices
    lcnt = np.diff(Lp)
    ucnt = np.diff(Up)
    if n:
        if np.any(lcnt < 1) or not np.array_equal(Li[Lp[:-1]], np.arange(n)):
            raise ScheduleCompileError(
                "L must store the unit diagonal as the first entry of every column"
            )
        if np.any(ucnt < 1) or not np.array_equal(Ui[Up[1:] - 1], np.arange(n)):
            raise ScheduleCompileError(
                "U must store the diagonal as the last entry of every column"
            )

    # Workspace layout: column k's slice holds its above-diagonal U rows
    # followed by its L rows (pivot first) — the union pattern in
    # ascending row order.
    wcnt = ucnt - 1 + lcnt
    wptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(wcnt, out=wptr[1:])
    wtotal = int(wptr[-1])
    union_rows = np.empty(wtotal, dtype=np.int64)
    col_of_u = np.repeat(np.arange(n), ucnt)
    pos_u = np.arange(Ui.size, dtype=np.int64) - np.repeat(Up[:-1], ucnt)
    above = pos_u < (ucnt[col_of_u] - 1)
    union_rows[wptr[col_of_u[above]] + pos_u[above]] = Ui[above]
    col_of_l = np.repeat(np.arange(n), lcnt)
    pos_l = np.arange(Li.size, dtype=np.int64) - np.repeat(Lp[:-1], lcnt)
    union_rows[wptr[col_of_l] + (ucnt[col_of_l] - 1) + pos_l] = Li
    union_key = np.repeat(np.arange(n), wcnt) * n + union_rows
    if union_key.size > 1 and not np.all(np.diff(union_key) > 0):
        raise ScheduleCompileError("factor columns are not sorted triangular patterns")

    # Input scatter: A entry (r, k) lands at pivot row inv[r] of column k.
    inv = np.empty(n, dtype=np.int64)
    inv[row_perm] = np.arange(n, dtype=np.int64)
    col_of_a = np.repeat(np.arange(n), np.diff(A.indptr))
    a_key = col_of_a * n + inv[A.indices]
    a_scatter = np.searchsorted(union_key, a_key)
    if a_scatter.size and (
        np.any(a_scatter >= wtotal)
        or not np.array_equal(union_key[np.minimum(a_scatter, wtotal - 1)], a_key)
    ):
        raise ScheduleCompileError(
            "input entries fall outside the factor pattern (pattern changed?)"
        )

    # Levels on the union graph of L-below and U-above edges.
    lev = np.zeros(n, dtype=np.int64)
    for k in range(n):
        ua = Ui[Up[k] : Up[k + 1] - 1]
        if ua.size:
            lev[k] = max(int(lev[k]), int(lev[ua].max()) + 1)
        lb = Li[Lp[k] + 1 : Lp[k + 1]]
        if lb.size:
            lev[lb] = np.maximum(lev[lb], lev[k] + 1)
    n_stages = int(lev.max()) + 1 if n else 0
    col_order = np.argsort(lev, kind="stable")
    stage_sizes = np.bincount(lev, minlength=n_stages) if n else np.empty(0, dtype=np.int64)
    col_ptr = np.concatenate(([0], np.cumsum(stage_sizes)))

    # One update op per above-diagonal U entry; grouped by source level.
    op_src = Ui[above]
    op_tgt = col_of_u[above]
    op_wpos = (wptr[col_of_u] + pos_u)[above]
    op_stage = lev[op_src]
    op_order = np.argsort(op_stage, kind="stable")
    op_sizes = np.bincount(op_stage, minlength=n_stages) if op_src.size else np.zeros(
        n_stages, dtype=np.int64
    )
    op_ptr = np.concatenate(([0], np.cumsum(op_sizes)))

    stages: List[_RefactorStage] = []
    for s in range(n_stages):
        cols = col_order[col_ptr[s] : col_ptr[s + 1]]
        l_counts = lcnt[cols] - 1
        l_dst = _concat_ranges(Lp[cols] + 1, l_counts)
        l_src = _concat_ranges(wptr[cols] + ucnt[cols], l_counts)

        ops = op_order[op_ptr[s] : op_ptr[s + 1]]
        src = op_src[ops]
        tgt = op_tgt[ops]
        op_len = lcnt[src] - 1
        ent_lval_idx = _concat_ranges(Lp[src] + 1, op_len)
        ent_row = Li[ent_lval_idx]
        ent_key = np.repeat(tgt, op_len) * n + ent_row
        ent_pos = np.searchsorted(union_key, ent_key)
        if ent_pos.size and (
            np.any(ent_pos >= wtotal)
            or not np.array_equal(union_key[np.minimum(ent_pos, wtotal - 1)], ent_key)
        ):
            raise ScheduleCompileError(
                "factor pattern is not closed under the update paths"
            )
        ent_order, seg_starts, seg_tgt = _segment(ent_pos)
        op_group = op_group_flops = None
        if col_group is not None:
            op_group = col_group[tgt]
            op_group_flops = np.bincount(
                op_group, weights=op_len.astype(np.float64), minlength=n_groups
            )
        stages.append(_RefactorStage(
            cols=cols,
            piv_wpos=wptr[cols] + ucnt[cols] - 1,
            l_counts=l_counts,
            l_dst=l_dst,
            l_src=l_src,
            op_src_wpos=op_wpos[ops],
            op_len=op_len,
            ent_lval_idx=ent_lval_idx,
            ent_order=ent_order,
            seg_starts=seg_starts,
            seg_tgt=seg_tgt,
            op_group=op_group,
            op_group_flops=op_group_flops,
        ))

    group_div = group_cols = group_mem = None
    if col_group is not None:
        group_div = np.bincount(
            col_group, weights=(lcnt - 1).astype(np.float64), minlength=n_groups
        )
        group_cols = np.bincount(col_group, minlength=n_groups)
        group_mem = np.bincount(col_group, weights=(lcnt + ucnt).astype(np.float64),
                                minlength=n_groups).astype(np.int64)

    ux_src = wptr[col_of_u] + pos_u
    return RefactorSchedule(
        n=n,
        l_indptr=Lp,
        l_indices=Li,
        u_indptr=Up,
        u_indices=Ui,
        a_indptr=A.indptr,
        a_indices=A.indices,
        # Stored without copying: patterns and permutations are
        # immutable by convention, and keeping the caller's objects
        # lets matches() succeed on identity across a sequence.
        row_perm=row_perm,
        wtotal=wtotal,
        a_scatter=a_scatter,
        ux_src=ux_src,
        l_diag_dst=Lp[:-1].copy(),
        div_flops=float((lcnt - 1).sum()) if n else 0.0,
        stages=stages,
        n_groups=int(n_groups) if col_group is not None else 1,
        group_div_flops=group_div,
        group_columns=group_cols,
        group_mem_words=group_mem,
    )


class _ScratchCounts:
    """Minimal ledger shim for the blocked replay's internal run.

    The total counts it receives are re-attributed per block by the
    caller (their sum is identical by construction), so the shim is
    never read.
    """

    __slots__ = ("sparse_flops", "columns", "mem_words")

    def __init__(self) -> None:
        self.sparse_flops = 0.0
        self.columns = 0
        self.mem_words = 0


class BlockedRefactorSchedule:
    """One flattened schedule replaying every diagonal block at once.

    A BTF decomposition of a circuit matrix yields hundreds of tiny
    diagonal blocks; refactoring them one Python call at a time costs
    more in interpreter overhead than in arithmetic.  This compiles the
    *block-diagonal* union of all per-block factor patterns into a
    single :class:`RefactorSchedule` — independent blocks share level
    stages, so one sequence step is a handful of whole-matrix numpy
    calls regardless of the block count.  Grouped flop attribution
    recovers per-block ledgers identical to running
    :func:`~repro.solvers.gp.gp_refactor` block by block.

    Parameters
    ----------
    splits
        Block boundaries (``nblocks + 1`` entries, as in BTF).
    block_patterns
        Per block, ``(Lp, Li, Up, Ui)`` of its fixed factors.
    block_gathers
        Per block, ``(indptr, indices, gather)`` from
        :func:`diagonal_block_gathers` — the gather maps the permuted
        matrix's data array onto the block's values.
    """

    def __init__(self, splits, block_patterns, block_gathers) -> None:
        splits = np.asarray(splits, dtype=np.int64)
        nb = splits.size - 1
        base = int(splits[0])
        n = int(splits[-1]) - base
        lcols, lrows, ucols, urows = [], [], [], []
        dcols, drows, dgather = [], [], []
        l_nnz = np.zeros(nb + 1, dtype=np.int64)
        u_nnz = np.zeros(nb + 1, dtype=np.int64)
        for k in range(nb):
            lo = int(splits[k]) - base
            Lp, Li, Up, Ui = block_patterns[k]
            bptr, brows, bg = block_gathers[k]
            lcols.append(np.diff(Lp))
            lrows.append(Li + lo)
            ucols.append(np.diff(Up))
            urows.append(Ui + lo)
            dcols.append(np.diff(bptr))
            drows.append(brows + lo)
            dgather.append(bg)
            l_nnz[k + 1] = Li.size
            u_nnz[k + 1] = Ui.size

        def _cat(parts):
            return np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)

        def _ptr(count_parts):
            ptr = np.zeros(n + 1, dtype=np.int64)
            if count_parts:
                np.cumsum(_cat(count_parts), out=ptr[1:])
            return ptr

        zeros = np.zeros  # values are irrelevant for pattern-only compile
        L = CSC(n, n, _ptr(lcols), _cat(lrows), zeros(int(l_nnz.sum())))
        U = CSC(n, n, _ptr(ucols), _cat(urows), zeros(int(u_nnz.sum())))
        dr = _cat(drows)
        D = CSC(n, n, _ptr(dcols), dr, zeros(dr.size))
        col_group = np.repeat(np.arange(nb), np.diff(splits))
        self.schedule = compile_refactor_schedule(
            L, U, D, np.arange(n, dtype=np.int64),
            col_group=col_group, n_groups=nb,
        )
        self.n_blocks = nb
        self.d_gather = _cat(dgather)
        # Per-block slices of the flattened factor values.
        self.l_ptr = np.cumsum(l_nnz)
        self.u_ptr = np.cumsum(u_nnz)

    # ------------------------------------------------------------------
    def run(
        self, m_data: np.ndarray, pivot_floor: float = 0.0
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Replay on the permuted matrix's values.

        Returns ``(Lx, Ux, group_flops)``: block ``k``'s factor values
        are ``Lx[l_ptr[k]:l_ptr[k+1]]`` / ``Ux[u_ptr[k]:u_ptr[k+1]]``
        and its masked update flops ``group_flops[k]`` (divisions,
        columns and memory words per block come from the schedule's
        group arrays).  Raises
        :class:`~repro.errors.SingularMatrixError` as
        :meth:`RefactorSchedule.run` does; callers fall back to a
        per-block loop with fresh pivoting where needed.
        """
        group_flops = np.zeros(self.n_blocks, dtype=np.float64)
        Lx, Ux = self.schedule.run(
            m_data[self.d_gather], _ScratchCounts(),
            pivot_floor=pivot_floor, group_flops=group_flops,
        )
        return Lx, Ux, group_flops


# ======================================================================
# Fixed-pattern value gathers (sequence replay helpers)
# ======================================================================


@domains(row_perm="perm[A->B]", col_perm="perm[C->D]")
@shapes(A="csc[r,c]")
def permutation_gather(
    A: CSC,
    row_perm: Optional[np.ndarray] = None,
    col_perm: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Pattern and value-gather of ``A.permute(row_perm, col_perm)``.

    Returns ``(indptr, indices, gather)`` such that for any matrix ``B``
    with ``A``'s pattern, ``CSC(n_rows, n_cols, indptr, indices,
    B.data[gather])`` equals ``B.permute(row_perm, col_perm)`` — a
    values-only permutation with no per-step CSC reconstruction.
    """
    n_rows, n_cols = A.n_rows, A.n_cols
    col_of = np.repeat(np.arange(n_cols), np.diff(A.indptr))
    if col_perm is not None:
        invc = np.empty(n_cols, dtype=np.int64)
        invc[np.asarray(col_perm, dtype=np.int64)] = np.arange(n_cols, dtype=np.int64)
        newcol = invc[col_of]
    else:
        newcol = col_of
    if row_perm is not None:
        invr = np.empty(n_rows, dtype=np.int64)
        invr[np.asarray(row_perm, dtype=np.int64)] = np.arange(n_rows, dtype=np.int64)
        newrow = invr[A.indices]
    else:
        newrow = A.indices
    gather = np.lexsort((newrow, newcol))
    indptr = np.zeros(n_cols + 1, dtype=np.int64)
    np.cumsum(np.bincount(newcol, minlength=n_cols), out=indptr[1:])
    return indptr, newrow[gather], gather


@shapes(indptr="i8[q] sorted", indices="i8[m]", splits="i8[s] sorted")
def diagonal_block_gathers(
    indptr: np.ndarray, indices: np.ndarray, splits: np.ndarray
) -> List[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """Per-diagonal-block patterns and value gathers of a blocked matrix.

    ``splits`` are the block boundaries (as in a BTF decomposition).
    For block ``b`` spanning ``lo:hi``, the returned ``(indptr, indices,
    gather)`` satisfies ``M.submatrix(lo, hi, lo, hi).data ==
    M.data[gather]`` for any matrix ``M`` with this pattern, with
    ``indptr``/``indices`` the (fixed) local block pattern.
    """
    n = indptr.size - 1
    splits = np.asarray(splits, dtype=np.int64)
    nblocks = splits.size - 1
    col_of = np.repeat(np.arange(n), np.diff(indptr))
    blk_of_col = np.searchsorted(splits, col_of, side="right") - 1
    blk_of_row = np.searchsorted(splits, indices, side="right") - 1
    on_diag = blk_of_col == blk_of_row
    didx = np.flatnonzero(on_diag)           # CSC order preserved per block
    dblk = blk_of_col[didx]
    bounds = np.searchsorted(dblk, np.arange(nblocks + 1))
    out: List[Tuple[np.ndarray, np.ndarray, np.ndarray]] = []
    for b in range(nblocks):
        lo, hi = int(splits[b]), int(splits[b + 1])
        gather = didx[bounds[b] : bounds[b + 1]]
        local_rows = indices[gather] - lo
        local_cols = col_of[gather] - lo
        bptr = np.zeros(hi - lo + 1, dtype=np.int64)
        np.cumsum(np.bincount(local_cols, minlength=hi - lo), out=bptr[1:])
        out.append((bptr, local_rows, gather))
    return out
