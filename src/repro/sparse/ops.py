"""Sparse kernels operating on :class:`~repro.sparse.csc.CSC` matrices.

These are the numeric building blocks shared by every solver in the
package: dense-RHS triangular solves, sparse matrix-matrix products, and
the scatter/gather column operations used by the blocked factorization.

The dense-RHS triangular solves execute level-by-level through a
compiled :class:`~repro.sparse.schedule.TriangularSchedule` (cached on
the matrix object, so repeated solves against one factor compile once).
The original per-column loops remain as ``lower_solve_reference`` /
``upper_solve_reference`` — the oracles the vectorized versions are
property-tested against.
"""

from __future__ import annotations

import numpy as np

from ..contracts import domains, shapes
from ..errors import StructureError, ZeroPivotError
from .csc import CSC
from .schedule import triangular_schedule

__all__ = [
    "lower_solve",
    "upper_solve",
    "lower_solve_reference",
    "upper_solve_reference",
    "unit_lower_solve_T",
    "upper_solve_T",
    "matmat",
    "scatter_column",
    "spmv_accumulate",
]


@domains(L="matrix[S]", b="vec[S]", returns="vec[S]")
@shapes(L="csc[r,c]", b="f8[c]", returns="f8[c]")
def lower_solve(L: CSC, b: np.ndarray, unit_diag: bool = True) -> np.ndarray:
    """Solve ``L x = b`` for dense ``b``, L lower triangular in CSC.

    With ``unit_diag`` the stored diagonal (if any) is ignored and taken
    to be 1; the LU factors produced by this package store L with an
    explicit unit diagonal, so the default matches them.

    Vectorized level-scheduled replay of :func:`lower_solve_reference`
    (same results up to summation order; same error behavior).
    """
    if L.n_rows != L.n_cols:
        return lower_solve_reference(L, b, unit_diag=unit_diag)
    return triangular_schedule(L, "lower").solve(L, b, unit_diag=unit_diag)


@domains(U="matrix[S]", b="vec[S]", returns="vec[S]")
@shapes(U="csc[r,c]", b="f8[c]", returns="f8[c]")
def upper_solve(U: CSC, b: np.ndarray) -> np.ndarray:
    """Solve ``U x = b`` for dense ``b``, U upper triangular in CSC.

    Vectorized level-scheduled replay of :func:`upper_solve_reference`
    (same results up to summation order; same error behavior).
    """
    if U.n_rows != U.n_cols:
        return upper_solve_reference(U, b)
    return triangular_schedule(U, "upper").solve(U, b, unit_diag=False)


@domains(L="matrix[S]", b="vec[S]", returns="vec[S]")
@shapes(L="csc[r,c]", b="f8[c]", returns="f8[c]")
def lower_solve_reference(L: CSC, b: np.ndarray, unit_diag: bool = True) -> np.ndarray:
    """Reference per-column loop for :func:`lower_solve` (oracle)."""
    n = L.n_cols
    x = np.array(b, dtype=np.float64, copy=True)
    if x.shape != (n,):
        raise StructureError("dimension mismatch")
    for j in range(n):
        rows, vals = L.col(j)
        if rows.size == 0:
            if not unit_diag:
                raise ZeroPivotError(f"empty column {j} in lower solve", column=j)
            continue
        k = np.searchsorted(rows, j)
        has_diag = k < rows.size and rows[k] == j
        if not unit_diag:
            if not has_diag or vals[k] == 0.0:
                raise ZeroPivotError(f"zero diagonal at column {j}", column=j)
            x[j] /= vals[k]
        xj = x[j]
        if xj != 0.0:
            start = k + 1 if has_diag else k
            if start < rows.size:
                x[rows[start:]] -= vals[start:] * xj
    return x


@domains(U="matrix[S]", b="vec[S]", returns="vec[S]")
@shapes(U="csc[r,c]", b="f8[c]", returns="f8[c]")
def upper_solve_reference(U: CSC, b: np.ndarray) -> np.ndarray:
    """Reference per-column loop for :func:`upper_solve` (oracle)."""
    n = U.n_cols
    x = np.array(b, dtype=np.float64, copy=True)
    if x.shape != (n,):
        raise StructureError("dimension mismatch")
    for j in range(n - 1, -1, -1):
        rows, vals = U.col(j)
        k = np.searchsorted(rows, j)
        if k >= rows.size or rows[k] != j or vals[k] == 0.0:
            raise ZeroPivotError(f"zero diagonal at column {j}", column=j)
        x[j] /= vals[k]
        xj = x[j]
        if xj != 0.0 and k > 0:
            x[rows[:k]] -= vals[:k] * xj
    return x


@domains(L="matrix[S]", b="vec[S]", returns="vec[S]")
@shapes(L="csc[n,n]", b="f8[n]", returns="f8[n]")
def unit_lower_solve_T(L: CSC, b: np.ndarray) -> np.ndarray:
    """Solve ``L.T x = b`` with unit-diagonal lower-triangular L (CSC).

    Columns of L are rows of L.T, so this is a backward sweep of dot
    products — no transpose materialization needed.
    """
    n = L.n_cols
    x = np.array(b, dtype=np.float64, copy=True)
    for j in range(n - 1, -1, -1):
        rows, vals = L.col(j)
        k = np.searchsorted(rows, j)
        has_diag = k < rows.size and rows[k] == j
        start = k + 1 if has_diag else k
        if start < rows.size:
            x[j] -= float(vals[start:] @ x[rows[start:]])
    return x


@domains(U="matrix[S]", b="vec[S]", returns="vec[S]")
@shapes(U="csc[n,n]", b="f8[n]", returns="f8[n]")
def upper_solve_T(U: CSC, b: np.ndarray) -> np.ndarray:
    """Solve ``U.T x = b`` with upper-triangular U (CSC), forward sweep."""
    n = U.n_cols
    x = np.array(b, dtype=np.float64, copy=True)
    for j in range(n):
        rows, vals = U.col(j)
        k = np.searchsorted(rows, j)
        if k >= rows.size or rows[k] != j or vals[k] == 0.0:
            raise ZeroPivotError(f"zero diagonal at column {j}", column=j)
        if k > 0:
            x[j] -= float(vals[:k] @ x[rows[:k]])
        x[j] /= vals[k]
    return x


@shapes(A="csc[m,k]", B="csc[k,p]", returns="csc[m,p]")
def matmat(A: CSC, B: CSC) -> CSC:
    """Sparse product ``A @ B`` using a dense accumulator per column."""
    if A.n_cols != B.n_rows:
        raise StructureError("dimension mismatch")
    acc = np.zeros(A.n_rows, dtype=np.float64)
    mark = np.full(A.n_rows, -1, dtype=np.int64)
    indptr = np.zeros(B.n_cols + 1, dtype=np.int64)
    out_rows, out_vals = [], []
    for j in range(B.n_cols):
        brows, bvals = B.col(j)
        pattern = []
        for t in range(brows.size):
            k = brows[t]
            bv = bvals[t]
            arows, avals = A.col(int(k))
            for s in range(arows.size):
                i = int(arows[s])
                if mark[i] != j:
                    mark[i] = j
                    acc[i] = 0.0
                    pattern.append(i)
                acc[i] += avals[s] * bv
        pattern.sort()
        indptr[j + 1] = indptr[j] + len(pattern)
        if pattern:
            p = np.asarray(pattern, dtype=np.int64)
            out_rows.append(p)
            out_vals.append(acc[p].copy())
    if out_rows:
        indices = np.concatenate(out_rows)
        data = np.concatenate(out_vals)
    else:
        indices = np.empty(0, dtype=np.int64)
        data = np.empty(0, dtype=np.float64)
    return CSC(A.n_rows, B.n_cols, indptr, indices, data)


@shapes(A="csc[r,c]", j="scalar < cols(A)", work="f8[r]", mark="i8[r]")
def scatter_column(
    A: CSC, j: int, work: np.ndarray, mark: np.ndarray, stamp: int, pattern: list
) -> None:
    """Scatter column ``j`` of A into the dense work vector.

    ``mark[i] == stamp`` records that row ``i`` is already in
    ``pattern``; new rows are appended.  This is the standard sparse
    accumulator idiom used throughout the numeric kernels.
    """
    rows, vals = A.col(j)
    for t in range(rows.size):
        i = int(rows[t])
        if mark[i] != stamp:
            mark[i] = stamp
            work[i] = vals[t]
            pattern.append(i)
        else:
            work[i] += vals[t]


@shapes(A="csc[r,c]", xrows="i8[k] < cols(A)", xvals="f8[k]",
        work="f8[r]", mark="i8[r]")
def spmv_accumulate(
    A: CSC,
    xrows: np.ndarray,
    xvals: np.ndarray,
    work: np.ndarray,
    mark: np.ndarray,
    stamp: int,
    pattern: list,
    sign: float = -1.0,
) -> int:
    """Accumulate ``work += sign * A @ x`` for a sparse x.

    ``x`` is given by parallel arrays (row indices into A's column
    space, values).  Returns the number of multiply-add operations,
    which callers feed into their cost ledgers.
    """
    ops = 0
    for t in range(xrows.size):
        k = int(xrows[t])
        xv = xvals[t] * sign
        if xv == 0.0:
            continue
        arows, avals = A.col(k)
        ops += arows.size
        for s in range(arows.size):
            i = int(arows[s])
            if mark[i] != stamp:
                mark[i] = stamp
                work[i] = 0.0
                pattern.append(i)
            work[i] += avals[s] * xv
    return ops
