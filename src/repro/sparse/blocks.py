"""Two-dimensional block views of sparse matrices.

Basker's central data-layout idea (paper §IV) is a *hierarchy of 2-D
sparse blocks*: after the BTF and ND reorderings, the matrix is a grid of
contiguous index ranges, each stored as its own CSC matrix.  This module
provides the partitioned container plus split/assemble round-trips.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from ..contracts import domains
from .csc import CSC

__all__ = ["BlockMatrix"]


class BlockMatrix:
    """A sparse matrix partitioned into a grid of CSC blocks.

    ``row_splits`` / ``col_splits`` are monotone offset arrays of length
    ``nblocks + 1`` (like ``indptr`` for the block grid).  Blocks are
    stored sparsely: an absent (i, j) entry is an all-zero block.
    """

    def __init__(self, row_splits: np.ndarray, col_splits: np.ndarray) -> None:
        self.row_splits = np.asarray(row_splits, dtype=np.int64)
        self.col_splits = np.asarray(col_splits, dtype=np.int64)
        if self.row_splits[0] != 0 or self.col_splits[0] != 0:
            raise ValueError("splits must start at 0")
        if np.any(np.diff(self.row_splits) < 0) or np.any(np.diff(self.col_splits) < 0):
            raise ValueError("splits must be nondecreasing")
        self.blocks: Dict[Tuple[int, int], CSC] = {}

    # ------------------------------------------------------------------
    @property
    def n_block_rows(self) -> int:
        return len(self.row_splits) - 1

    @property
    def n_block_cols(self) -> int:
        return len(self.col_splits) - 1

    @property
    def shape(self) -> Tuple[int, int]:
        return (int(self.row_splits[-1]), int(self.col_splits[-1]))

    def block_shape(self, i: int, j: int) -> Tuple[int, int]:
        return (
            int(self.row_splits[i + 1] - self.row_splits[i]),
            int(self.col_splits[j + 1] - self.col_splits[j]),
        )

    def get(self, i: int, j: int) -> CSC:
        """Block (i, j); an empty CSC of the right shape if unset."""
        blk = self.blocks.get((i, j))
        if blk is None:
            r, c = self.block_shape(i, j)
            return CSC.empty(r, c)
        return blk

    def set(self, i: int, j: int, blk: CSC) -> None:
        if blk.shape != self.block_shape(i, j):
            raise ValueError(
                f"block ({i},{j}) must have shape {self.block_shape(i, j)}, got {blk.shape}"
            )
        self.blocks[(i, j)] = blk

    def has(self, i: int, j: int) -> bool:
        return (i, j) in self.blocks and self.blocks[(i, j)].nnz > 0

    @property
    def nnz(self) -> int:
        return sum(b.nnz for b in self.blocks.values())

    # ------------------------------------------------------------------
    @classmethod
    @domains(A="matrix[S]", row_splits="index[S]", col_splits="index[S]")
    def from_matrix(cls, A: CSC, row_splits: np.ndarray, col_splits: np.ndarray) -> "BlockMatrix":
        """Partition a CSC matrix along contiguous index ranges.

        Blocks that come out structurally empty are not stored.
        """
        bm = cls(row_splits, col_splits)
        if A.shape != bm.shape:
            raise ValueError(f"matrix shape {A.shape} != splits shape {bm.shape}")
        for bi in range(bm.n_block_rows):
            r0, r1 = int(row_splits[bi]), int(row_splits[bi + 1])
            for bj in range(bm.n_block_cols):
                c0, c1 = int(col_splits[bj]), int(col_splits[bj + 1])
                blk = A.submatrix(r0, r1, c0, c1)
                if blk.nnz > 0:
                    bm.blocks[(bi, bj)] = blk
        return bm

    def assemble(self) -> CSC:
        """Reassemble the full CSC matrix from the blocks."""
        rows, cols, vals = [], [], []
        for (bi, bj), blk in self.blocks.items():
            if blk.nnz == 0:
                continue
            r_off = int(self.row_splits[bi])
            c_off = int(self.col_splits[bj])
            col_of = np.repeat(np.arange(blk.n_cols), np.diff(blk.indptr))
            rows.append(blk.indices + r_off)
            cols.append(col_of + c_off)
            vals.append(blk.data)
        if not rows:
            return CSC.empty(*self.shape)
        return CSC.from_coo(
            np.concatenate(rows), np.concatenate(cols), np.concatenate(vals),
            self.shape, sum_duplicates=False,
        )

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """y = A @ x computed blockwise (exercises the 2-D layout)."""
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.shape[1],):
            raise ValueError("dimension mismatch")
        y = np.zeros(self.shape[0], dtype=np.float64)
        for (bi, bj), blk in self.blocks.items():
            c0, c1 = int(self.col_splits[bj]), int(self.col_splits[bj + 1])
            r0 = int(self.row_splits[bi])
            y[r0 : r0 + blk.n_rows] += blk.matvec(x[c0:c1])
        return y

    def __repr__(self) -> str:
        return (
            f"BlockMatrix(grid={self.n_block_rows}x{self.n_block_cols}, "
            f"shape={self.shape}, stored_blocks={len(self.blocks)}, nnz={self.nnz})"
        )
