"""Sparse-matrix substrate: CSC storage, kernels, 2-D blocks, I/O."""

from .blocks import BlockMatrix
from .build import block_diag, diags, hstack, kron, random_like, vstack
from .csc import CSC
from .io import read_matrix_market, write_matrix_market
from .ops import (
    lower_solve,
    lower_solve_reference,
    matmat,
    upper_solve,
    upper_solve_reference,
)
from .schedule import (
    BlockedRefactorSchedule,
    RefactorSchedule,
    ScheduleCompileError,
    TriangularSchedule,
    compile_refactor_schedule,
    compile_triangular_schedule,
    permutation_gather,
    triangular_schedule,
)
from .serialize import load_csc, load_factors, save_csc, save_factors
from .stats import MatrixStats, degree_stats, matrix_stats, structural_symmetry
from .verify import factorization_residual, relative_error, solve_residual

__all__ = [
    "CSC",
    "BlockMatrix",
    "lower_solve",
    "upper_solve",
    "lower_solve_reference",
    "upper_solve_reference",
    "matmat",
    "TriangularSchedule",
    "RefactorSchedule",
    "BlockedRefactorSchedule",
    "ScheduleCompileError",
    "compile_triangular_schedule",
    "compile_refactor_schedule",
    "triangular_schedule",
    "permutation_gather",
    "read_matrix_market",
    "write_matrix_market",
    "factorization_residual",
    "solve_residual",
    "relative_error",
    "matrix_stats",
    "MatrixStats",
    "structural_symmetry",
    "degree_stats",
    "save_csc",
    "load_csc",
    "save_factors",
    "load_factors",
    "hstack",
    "vstack",
    "block_diag",
    "kron",
    "diags",
    "random_like",
]
