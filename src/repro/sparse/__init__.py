"""Sparse-matrix substrate: CSC storage, kernels, 2-D blocks, I/O."""

from .blocks import BlockMatrix
from .build import block_diag, diags, hstack, kron, random_like, vstack
from .csc import CSC
from .io import read_matrix_market, write_matrix_market
from .ops import lower_solve, matmat, upper_solve
from .serialize import load_csc, load_factors, save_csc, save_factors
from .stats import MatrixStats, degree_stats, matrix_stats, structural_symmetry
from .verify import factorization_residual, relative_error, solve_residual

__all__ = [
    "CSC",
    "BlockMatrix",
    "lower_solve",
    "upper_solve",
    "matmat",
    "read_matrix_market",
    "write_matrix_market",
    "factorization_residual",
    "solve_residual",
    "relative_error",
    "matrix_stats",
    "MatrixStats",
    "structural_symmetry",
    "degree_stats",
    "save_csc",
    "load_csc",
    "save_factors",
    "load_factors",
    "hstack",
    "vstack",
    "block_diag",
    "kron",
    "diags",
    "random_like",
]
