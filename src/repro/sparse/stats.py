"""Structural statistics of sparse matrices.

The quantities the paper's Table I and the surrounding discussion rely
on: structural symmetry (supernodal solvers symmetrize, so it predicts
their overhead), degree distributions (semi-dense rows/columns), BTF
coverage, and fill-in density.  Used by the CLI, the suite report and
the generators' own tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .csc import CSC

__all__ = ["MatrixStats", "matrix_stats", "structural_symmetry", "degree_stats"]


def structural_symmetry(A: CSC) -> float:
    """Fraction of off-diagonal entries whose transpose is also present."""
    if A.n_rows != A.n_cols:
        raise ValueError("symmetry is defined for square matrices")
    col_of = np.repeat(np.arange(A.n_cols), np.diff(A.indptr))
    off = A.indices != col_of
    n_off = int(off.sum())
    if n_off == 0:
        return 1.0
    present = set(zip(A.indices[off].tolist(), col_of[off].tolist()))
    matched = sum(1 for (i, j) in present if (j, i) in present)
    return matched / len(present)


def degree_stats(A: CSC) -> dict:
    """Row/column degree summary, including semi-dense outliers."""
    n = A.n_rows
    col_deg = np.diff(A.indptr)
    row_deg = np.zeros(n, dtype=np.int64)
    np.add.at(row_deg, A.indices, 1)
    dense_cut = max(16, int(0.1 * n))
    return dict(
        max_row_degree=int(row_deg.max(initial=0)),
        max_col_degree=int(col_deg.max(initial=0)),
        mean_degree=float(A.nnz / max(n, 1)),
        semi_dense_rows=int((row_deg > dense_cut).sum()),
        semi_dense_cols=int((col_deg > dense_cut).sum()),
    )


@dataclass
class MatrixStats:
    n: int
    nnz: int
    structural_symmetry: float
    mean_degree: float
    max_row_degree: int
    max_col_degree: int
    semi_dense_rows: int
    semi_dense_cols: int
    btf_blocks: Optional[int] = None
    btf_percent: Optional[float] = None
    largest_block: Optional[int] = None
    fill_density: Optional[float] = None

    def describe(self) -> str:
        lines = [
            f"n = {self.n}, nnz = {self.nnz} ({self.mean_degree:.2f}/row)",
            f"structural symmetry = {self.structural_symmetry:.3f}",
            f"max degrees: row {self.max_row_degree}, col {self.max_col_degree} "
            f"(semi-dense: {self.semi_dense_rows} rows, {self.semi_dense_cols} cols)",
        ]
        if self.btf_blocks is not None:
            lines.append(
                f"BTF: {self.btf_blocks} blocks, largest {self.largest_block}, "
                f"{self.btf_percent:.1f}% rows in small blocks"
            )
        if self.fill_density is not None:
            lines.append(f"KLU fill density = {self.fill_density:.2f}")
        return "\n".join(lines)


def matrix_stats(A: CSC, with_btf: bool = False, with_fill: bool = False) -> MatrixStats:
    """Compute the statistics bundle (optionally BTF / KLU-fill, which
    cost a decomposition / a factorization)."""
    deg = degree_stats(A)
    stats = MatrixStats(
        n=A.n_rows,
        nnz=A.nnz,
        structural_symmetry=structural_symmetry(A),
        mean_degree=deg["mean_degree"],
        max_row_degree=deg["max_row_degree"],
        max_col_degree=deg["max_col_degree"],
        semi_dense_rows=deg["semi_dense_rows"],
        semi_dense_cols=deg["semi_dense_cols"],
    )
    if with_btf:
        from ..ordering.btf import btf

        res = btf(A)
        stats.btf_blocks = res.n_blocks
        stats.btf_percent = res.btf_percent(96)
        stats.largest_block = res.largest_block
    if with_fill:
        from ..solvers.klu import KLU

        stats.fill_density = KLU().factor(A).factor_nnz / max(A.nnz, 1)
    return stats
