"""Structured construction utilities for CSC matrices.

Block stacking, Kronecker products and diagonal embedding — the
building blocks the matrix generators compose (a 2-D grid operator is
``kron(I, T) + kron(T, I)``, a BTF composite is a block-diagonal stack
plus coupling, etc.).
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from .csc import CSC

__all__ = ["hstack", "vstack", "block_diag", "kron", "diags", "random_like"]


def _coo_of(A: CSC):
    col_of = np.repeat(np.arange(A.n_cols), np.diff(A.indptr))
    return A.indices, col_of, A.data


def hstack(mats: Sequence[CSC]) -> CSC:
    """Concatenate matrices horizontally (same row count)."""
    if not mats:
        raise ValueError("need at least one matrix")
    n_rows = mats[0].n_rows
    if any(m.n_rows != n_rows for m in mats):
        raise ValueError("row counts differ")
    indptr = [np.zeros(1, dtype=np.int64)]
    indices, data = [], []
    offset = 0
    for m in mats:
        indptr.append(m.indptr[1:] + offset)
        offset += m.nnz
        indices.append(m.indices)
        data.append(m.data)
    return CSC(
        n_rows,
        sum(m.n_cols for m in mats),
        np.concatenate(indptr),
        np.concatenate(indices) if indices else np.empty(0, dtype=np.int64),
        np.concatenate(data) if data else np.empty(0, dtype=np.float64),
    )


def vstack(mats: Sequence[CSC]) -> CSC:
    """Concatenate matrices vertically (same column count)."""
    if not mats:
        raise ValueError("need at least one matrix")
    n_cols = mats[0].n_cols
    if any(m.n_cols != n_cols for m in mats):
        raise ValueError("column counts differ")
    rows, cols, vals = [], [], []
    offset = 0
    for m in mats:
        r, c, v = _coo_of(m)
        rows.append(r + offset)
        cols.append(c)
        vals.append(v)
        offset += m.n_rows
    return CSC.from_coo(
        np.concatenate(rows) if rows else np.empty(0, dtype=np.int64),
        np.concatenate(cols) if cols else np.empty(0, dtype=np.int64),
        np.concatenate(vals) if vals else np.empty(0, dtype=np.float64),
        (offset, n_cols),
        sum_duplicates=False,
    )


def block_diag(mats: Sequence[CSC]) -> CSC:
    """Direct sum: matrices along the diagonal, zeros elsewhere."""
    rows, cols, vals = [], [], []
    r_off = c_off = 0
    for m in mats:
        r, c, v = _coo_of(m)
        rows.append(r + r_off)
        cols.append(c + c_off)
        vals.append(v)
        r_off += m.n_rows
        c_off += m.n_cols
    if not rows:
        return CSC.empty(0, 0)
    return CSC.from_coo(
        np.concatenate(rows), np.concatenate(cols), np.concatenate(vals),
        (r_off, c_off), sum_duplicates=False,
    )


def kron(A: CSC, B: CSC) -> CSC:
    """Kronecker product ``A (x) B``."""
    ra, ca, va = _coo_of(A)
    rb, cb, vb = _coo_of(B)
    if A.nnz == 0 or B.nnz == 0:
        return CSC.empty(A.n_rows * B.n_rows, A.n_cols * B.n_cols)
    rows = (ra[:, None] * B.n_rows + rb[None, :]).ravel()
    cols = (ca[:, None] * B.n_cols + cb[None, :]).ravel()
    vals = (va[:, None] * vb[None, :]).ravel()
    return CSC.from_coo(rows, cols, vals,
                        (A.n_rows * B.n_rows, A.n_cols * B.n_cols),
                        sum_duplicates=False)


def diags(values: np.ndarray, offset: int = 0, shape: tuple | None = None) -> CSC:
    """A (possibly offset) diagonal matrix from a vector."""
    values = np.asarray(values, dtype=np.float64)
    k = values.size
    if shape is None:
        n = k + abs(offset)
        shape = (n, n)
    if offset >= 0:
        rows = np.arange(k)
        cols = rows + offset
    else:
        cols = np.arange(k)
        rows = cols - offset
    keep = (rows < shape[0]) & (cols < shape[1])
    return CSC.from_coo(rows[keep], cols[keep], values[keep], shape)


def random_like(A: CSC, rng: np.random.Generator, scale: float = 1.0) -> CSC:
    """Same pattern as A, fresh random values (refactorization tests)."""
    return CSC(A.n_rows, A.n_cols, A.indptr.copy(), A.indices.copy(),
               scale * rng.standard_normal(A.nnz))
