"""ILU(0): incomplete LU on the original pattern.

The paper motivates Basker via Thornquist et al. (ref. [21]), which
showed preconditioned iterative methods to be ineffective for the Xyce1
circuit class.  To reproduce that claim we need the comparator: ILU(0)
is the standard circuit-simulation preconditioner attempt — an LU
factorization that discards every fill-in entry outside A's own
pattern.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..errors import SingularMatrixError
from ..parallel.ledger import CostLedger
from ..sparse.csc import CSC
from ..sparse.ops import lower_solve, upper_solve

__all__ = ["ilu0", "ILU0Preconditioner"]


def ilu0(A: CSC, ledger: CostLedger | None = None) -> Tuple[CSC, CSC]:
    """Incomplete LU with zero fill (IKJ variant on CSR rows).

    Returns ``(L, U)`` with unit-diagonal L, both restricted to A's
    pattern.  Raises :class:`SingularMatrixError` on a zero pivot (no
    pivoting — the standard ILU(0) limitation).
    """
    n = A.n_cols
    if A.n_rows != n:
        raise ValueError("ILU(0) requires a square matrix")
    led = ledger if ledger is not None else CostLedger()

    # Row-major working copy.
    R = A.transpose()  # columns of R = rows of A
    Rp, Ri = R.indptr, R.indices
    Rx = R.data.copy()

    # Position of the diagonal in each row; column lookup per row.
    diag_pos = np.full(n, -1, dtype=np.int64)
    for i in range(n):
        lo, hi = int(Rp[i]), int(Rp[i + 1])
        k = int(np.searchsorted(Ri[lo:hi], i))
        if k < hi - lo and Ri[lo + k] == i:
            diag_pos[i] = lo + k
    if np.any(diag_pos < 0):
        missing = int(np.flatnonzero(diag_pos < 0)[0])
        raise SingularMatrixError(f"ILU(0): structurally zero diagonal at row {missing}", missing)

    colpos = np.full(n, -1, dtype=np.int64)  # column -> position in current row
    for i in range(1, n):
        lo, hi = int(Rp[i]), int(Rp[i + 1])
        colpos[Ri[lo:hi]] = np.arange(lo, hi)
        for p in range(lo, hi):
            k = int(Ri[p])
            if k >= i:
                break
            ukk = Rx[diag_pos[k]]
            if ukk == 0.0:
                raise SingularMatrixError(f"ILU(0): zero pivot at row {k}", k)
            lik = Rx[p] / ukk
            Rx[p] = lik
            led.sparse_flops += 1
            # Row update restricted to the existing pattern of row i.
            klo, khi = int(diag_pos[k]) + 1, int(Rp[k + 1])
            for q in range(klo, khi):
                j = int(Ri[q])
                pos = int(colpos[j])
                if pos >= 0:
                    Rx[pos] -= lik * Rx[q]
                    led.sparse_flops += 1
        colpos[Ri[lo:hi]] = -1
        led.columns += 1

    # Split back into CSC L (unit diag) and U.
    rows_l, cols_l, vals_l = [], [], []
    rows_u, cols_u, vals_u = [], [], []
    for i in range(n):
        rows_l.append(i)
        cols_l.append(i)
        vals_l.append(1.0)
        for p in range(int(Rp[i]), int(Rp[i + 1])):
            j = int(Ri[p])
            if j < i:
                rows_l.append(i)
                cols_l.append(j)
                vals_l.append(float(Rx[p]))
            else:
                rows_u.append(i)
                cols_u.append(j)
                vals_u.append(float(Rx[p]))
    L = CSC.from_coo(rows_l, cols_l, vals_l, (n, n), sum_duplicates=False)
    U = CSC.from_coo(rows_u, cols_u, vals_u, (n, n), sum_duplicates=False)
    led.mem_words += L.nnz + U.nnz
    return L, U


class ILU0Preconditioner:
    """Callable ``M^{-1} v`` wrapper around the ILU(0) factors."""

    def __init__(self, A: CSC):
        self.ledger = CostLedger()
        self.L, self.U = ilu0(A, self.ledger)

    def apply(self, v: np.ndarray) -> np.ndarray:
        y = lower_solve(self.L, v, unit_diag=True)
        self.ledger.sparse_flops += self.L.nnz + self.U.nnz
        return upper_solve(self.U, y)
