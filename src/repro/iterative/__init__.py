"""Iterative-solver substrate: GMRES + ILU(0) (the paper's ref. [21] comparator)."""

from .gmres import GMRESResult, gmres
from .ilu import ILU0Preconditioner, ilu0

__all__ = ["gmres", "GMRESResult", "ilu0", "ILU0Preconditioner"]
