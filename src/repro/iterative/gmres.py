"""Restarted GMRES with optional (right) preconditioning.

The comparator for the paper's motivation claim: on the Xyce1 circuit
class, GMRES+ILU(0) stalls or costs far more than a direct
factorization, which is why Xyce needed a better *direct* solver in the
first place.  Flops are accounted into a ledger so iterative and direct
costs can be compared on the same machine models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from ..parallel.ledger import CostLedger
from ..sparse.csc import CSC

__all__ = ["GMRESResult", "gmres"]


@dataclass
class GMRESResult:
    x: np.ndarray
    converged: bool
    iterations: int
    residuals: List[float]      # true-residual history per outer iteration
    ledger: CostLedger

    @property
    def final_residual(self) -> float:
        return self.residuals[-1] if self.residuals else float("inf")


def gmres(
    A: CSC,
    b: np.ndarray,
    M: Optional[Callable[[np.ndarray], np.ndarray]] = None,
    x0: Optional[np.ndarray] = None,
    tol: float = 1e-10,
    restart: int = 30,
    maxiter: int = 300,
) -> GMRESResult:
    """Right-preconditioned restarted GMRES(restart).

    ``M`` applies the preconditioner inverse (e.g.
    :meth:`ILU0Preconditioner.apply`).  ``maxiter`` counts total inner
    iterations.  Convergence is declared on the *relative true
    residual* ``||b - A x|| / ||b||``.
    """
    n = A.n_cols
    b = np.asarray(b, dtype=np.float64)
    if b.shape != (n,):
        raise ValueError("dimension mismatch")
    led = CostLedger()
    x = np.zeros(n) if x0 is None else np.array(x0, dtype=np.float64)
    bnorm = float(np.linalg.norm(b))
    if bnorm == 0.0:
        return GMRESResult(x=np.zeros(n), converged=True, iterations=0, residuals=[0.0], ledger=led)

    def matvec(v):
        led.sparse_flops += A.nnz
        return A.matvec(v)

    def precond(v):
        return M(v) if M is not None else v

    residuals: List[float] = []
    total_iters = 0
    while total_iters < maxiter:
        r = b - matvec(x)
        beta = float(np.linalg.norm(r))
        residuals.append(beta / bnorm)
        if beta / bnorm <= tol:
            return GMRESResult(x=x, converged=True, iterations=total_iters,
                               residuals=residuals, ledger=led)
        m = min(restart, maxiter - total_iters)
        V = np.zeros((n, m + 1))
        H = np.zeros((m + 1, m))
        Z = np.zeros((n, m))      # preconditioned directions (right prec.)
        cs = np.zeros(m)
        sn = np.zeros(m)
        g = np.zeros(m + 1)
        V[:, 0] = r / beta
        g[0] = beta
        k_used = 0
        for k in range(m):
            Z[:, k] = precond(V[:, k])
            w = matvec(Z[:, k])
            # Modified Gram-Schmidt.
            for i in range(k + 1):
                H[i, k] = float(w @ V[:, i])
                w -= H[i, k] * V[:, i]
                led.sparse_flops += 2 * n
            H[k + 1, k] = float(np.linalg.norm(w))
            if H[k + 1, k] > 1e-300:
                V[:, k + 1] = w / H[k + 1, k]
            # Apply stored Givens rotations, then a new one.
            for i in range(k):
                t = cs[i] * H[i, k] + sn[i] * H[i + 1, k]
                H[i + 1, k] = -sn[i] * H[i, k] + cs[i] * H[i + 1, k]
                H[i, k] = t
            denom = float(np.hypot(H[k, k], H[k + 1, k]))
            if denom == 0.0:
                cs[k], sn[k] = 1.0, 0.0
            else:
                cs[k], sn[k] = H[k, k] / denom, H[k + 1, k] / denom
            H[k, k] = cs[k] * H[k, k] + sn[k] * H[k + 1, k]
            H[k + 1, k] = 0.0
            g[k + 1] = -sn[k] * g[k]
            g[k] = cs[k] * g[k]
            k_used = k + 1
            total_iters += 1
            if abs(g[k + 1]) / bnorm <= tol:
                break
        # Solve the small triangular system and update x.
        y = np.zeros(k_used)
        for i in range(k_used - 1, -1, -1):
            y[i] = (g[i] - H[i, i + 1 : k_used] @ y[i + 1 : k_used]) / H[i, i]
        x = x + Z[:, :k_used] @ y
        led.sparse_flops += 2 * n * k_used

    r = b - matvec(x)
    residuals.append(float(np.linalg.norm(r)) / bnorm)
    return GMRESResult(
        x=x, converged=residuals[-1] <= tol, iterations=total_iters,
        residuals=residuals, ledger=led,
    )
