"""Index-domain contracts for the static analyzer.

Every integer array in this package lives in one of several *index
spaces* — the stack of reorderings (coarse/fine BTF, ND on the big
irreducible block, per-block AMD, partial-pivoting row permutations)
means a bare ``np.ndarray`` of ints is meaningless until you know which
space its values index.  The :func:`domains` decorator attaches that
information to a function's signature so that
:mod:`repro.analysis.domains` can statically verify index arrays are
used in the space they were produced in.

Vocabulary (see ``docs/API.md`` for the full write-up):

* ``perm[A->B]`` — a permutation following the package-wide *new→old*
  fancy-indexing convention: applying ``p`` to a space-``A`` vector
  produces a space-``B`` vector, ``x_B = x_A[p]`` (the values of ``p``
  are space-``A`` positions).
* ``index[S]`` — an array of positions in space ``S`` (block splits,
  row indices, ...).
* ``vec[S]`` — a data vector laid out in space ``S`` (entry ``i``
  belongs to position ``i`` of ``S``).
* ``matrix[S]`` — a :class:`~repro.sparse.csc.CSC` whose rows/columns
  are numbered in space ``S``.

Spaces are either concrete names — ``global``, ``btf``, ``nd``,
``local:block`` — or single-uppercase-letter *variables* (``A``, ``B``,
``S``, ...) that the checker unifies per call site, so generic helpers
like ``amd_order`` can declare ``A="matrix[S]", returns="perm[S->S]"``.

The decorator is a runtime no-op: it only records the declarations on
the function object (``fn.__domains__``) and in the AST, where the
analyzer reads them.  It deliberately lives at the package root so the
kernel packages can import it without touching ``repro.analysis``.
"""

from __future__ import annotations

__all__ = ["domains", "effects", "shapes"]


def domains(**declarations: str):
    """Declare the index domains of a function's parameters and return.

    Usage::

        @domains(p="perm[global->btf]", rows="index[local:block]",
                 returns="perm[btf->nd]")
        def f(p, rows): ...

    Keyword names must match parameter names (plus the special key
    ``returns``); values are domain expressions.  The decorator returns
    the function unchanged apart from a ``__domains__`` attribute.
    """

    def deco(fn):
        fn.__domains__ = dict(declarations)
        return fn

    return deco


def effects(pure: bool = False, mutates: tuple = ()):
    """Declare a function's side-effect contract for
    :mod:`repro.analysis.effects`.

    Usage::

        @effects(pure=True)          # mutates nothing caller-visible
        def invert(p): ...

        @effects(mutates=("ledger",))   # mutates exactly these params
        def gp_factor(A, ledger=None): ...

    ``pure=True`` is shorthand for an empty ``mutates`` set.  The
    analyzer (finding class E2) verifies every inferred in-place
    mutation of a parameter — direct stores, mutator methods, ``out=``
    targets, and mutations reached transitively through calls — is
    listed in ``mutates``.  Both arguments must be literals (a bool and
    a tuple of parameter-name strings); anything else is reported as a
    malformed declaration (E0).

    Like :func:`domains` this is a runtime no-op: it records the
    declaration on the function object (``fn.__effects__``) and in the
    AST, where the analyzer reads it.
    """

    def deco(fn):
        fn.__effects__ = {"pure": bool(pure), "mutates": tuple(mutates)}
        return fn

    return deco


def shapes(**declarations: str):
    """Declare symbolic shapes/bounds/dtypes for
    :mod:`repro.analysis.shapes`.

    Usage::

        @shapes(A="csc[n,n]", b="f8[n]", returns="f8[n]")
        def lu_solve(A, b): ...

        @shapes(indices="i8[k] sorted unique < n", starts="i8[m+1] sorted")
        def segment(indices, starts): ...

    Each value is a shape expression: a dtype tag (``f8``, ``i8``,
    ``i4``, ``b1``, ``any``) with a bracketed dimension list, the special
    forms ``csc[r,c]`` (a :class:`~repro.sparse.csc.CSC` with ``r`` rows
    and ``c`` columns), ``dim`` (a scalar that *names* a dimension) and
    ``scalar``/``any``, optionally followed by the qualifiers ``sorted``
    (nondecreasing values), ``unique`` (pairwise-distinct values) and
    ``< D`` (integer values in ``[0, D)`` for a dimension expression
    ``D``).  Dimension expressions are integer arithmetic (``+ - *``)
    over literals, named dimensions and the builtin dimension functions
    ``len(p)``, ``nnz(p)``, ``rows(p)``, ``cols(p)`` of another
    parameter ``p``.  Names are unified per call site by the static
    checker and per call by the runtime contract checker.

    Like :func:`domains` this is a runtime no-op: it records the
    declaration on the function object (``fn.__shapes__``) and in the
    AST, where the analyzer reads it.
    """

    def deco(fn):
        fn.__shapes__ = dict(declarations)
        return fn

    return deco
