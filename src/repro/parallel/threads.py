"""Optional real-thread backend for embarrassingly parallel phases.

The fine-BTF numeric factorization is a parallel-for over independent
diagonal blocks (paper, Algorithm 2's numeric counterpart).  This module
runs that loop on a real :class:`~concurrent.futures.ThreadPoolExecutor`
so the code path exists and is tested — with the honest caveat that
CPython's GIL serializes the pure-Python kernels, so wall-clock speedup
is *not* expected here (reproduction band: "GIL blocks threaded
speedups").  The performance results in the benches come from the
simulated scheduler in :mod:`repro.parallel.sim`.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable, List, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")

__all__ = ["parallel_map"]


def parallel_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    n_threads: int = 1,
) -> List[R]:
    """Apply ``fn`` to every item, optionally on a real thread pool.

    With ``n_threads <= 1`` this is a plain loop (the default used by
    the deterministic benches).  Results are returned in input order;
    exceptions propagate.
    """
    if n_threads <= 1 or len(items) <= 1:
        return [fn(x) for x in items]
    with ThreadPoolExecutor(max_workers=n_threads) as pool:
        return list(pool.map(fn, items))
