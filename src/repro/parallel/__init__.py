"""Parallel-execution substrate: cost ledgers, machine models, scheduler."""

from .ledger import CostLedger
from .machine import MachineModel, SANDY_BRIDGE, XEON_PHI
from .sim import Schedule, SimTask, simulate
from .threads import parallel_map

__all__ = [
    "CostLedger",
    "MachineModel",
    "SANDY_BRIDGE",
    "XEON_PHI",
    "SimTask",
    "Schedule",
    "simulate",
    "parallel_map",
]
