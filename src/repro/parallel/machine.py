"""Machine models for the two testbeds of the paper.

The paper evaluates on (a) a two-socket Intel SandyBridge Xeon E5-2670
(16 cores, 20 MB shared L3 per socket) and (b) an Intel Xeon Phi
coprocessor (61 slow in-order cores, 512 KB L2 per core, **no shared
L3**), used at up to 32 cores because Basker needs a power of two.

A :class:`MachineModel` prices a :class:`CostLedger` in seconds.  The
parameters are calibrated to the paper's *relative* observations rather
than to absolute hardware specs:

* KLU (all sparse flops) runs ~8–14x slower serially on Phi than on
  SandyBridge (paper Fig. 6 titles: Power0 0.07 s vs 0.54 s, Xyce3
  32 s vs 443 s).
* Dense (BLAS) flops are much cheaper than scattered sparse flops, and
  the dense:sparse price ratio is *wider* on Phi (vector units are the
  only way to get throughput there) — that is why PMKL looks relatively
  better on Phi (paper §V-D).
* Working sets that spill out of L2 pay a penalty that grows with the
  overflow factor; on SandyBridge the shared L3 absorbs most of it, on
  Phi there is nothing behind L2 (paper's explanation for Fig. 8b's
  divergence at 32 cores and for Basker's weaker high-fill behaviour on
  Phi).
* Synchronization: a full barrier costs per participating core; a
  point-to-point sync is a single cache-line handshake (paper §IV cites
  11 % -> 2.3 % of runtime going from barrier to p2p on G2_Circuit).
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace

import numpy as np

from .ledger import CostLedger

__all__ = ["MachineModel", "SANDY_BRIDGE", "XEON_PHI"]


@dataclass(frozen=True)
class MachineModel:
    name: str
    max_cores: int
    t_sparse_flop: float
    t_dense_flop: float
    t_dfs_step: float
    t_mem_word: float
    t_column: float
    t_barrier_core: float   # per-core cost of a full barrier
    t_p2p: float            # cost of one point-to-point handshake
    l2_bytes: int
    l3_bytes: int           # 0 means no shared last-level cache
    l2_spill_penalty: float  # extra cost fraction per doubling past L2 (absorbed by L3 if present)
    l3_spill_penalty: float  # extra cost fraction per doubling past L3

    def cache_factor(self, working_set_bytes: float) -> float:
        """Multiplier >= 1 modelling locality loss for large working sets."""
        if working_set_bytes <= self.l2_bytes or working_set_bytes <= 0:
            return 1.0
        f = 1.0
        if self.l3_bytes > self.l2_bytes:
            spill_to = min(working_set_bytes, float(self.l3_bytes))
            f += self.l2_spill_penalty * np.log2(spill_to / self.l2_bytes)
            if working_set_bytes > self.l3_bytes:
                f += self.l3_spill_penalty * np.log2(working_set_bytes / self.l3_bytes)
        else:
            f += self.l3_spill_penalty * np.log2(working_set_bytes / self.l2_bytes)
        return float(f)

    def seconds(self, ledger: CostLedger, working_set_bytes: float = 0.0) -> float:
        """Price a ledger on one core of this machine."""
        base = (
            ledger.sparse_flops * self.t_sparse_flop
            + ledger.dense_flops * self.t_dense_flop
            + ledger.dfs_steps * self.t_dfs_step
            + ledger.mem_words * self.t_mem_word
            + ledger.columns * self.t_column
        )
        return base * self.cache_factor(working_set_bytes)

    def barrier_cost(self, n_threads: int) -> float:
        return self.t_barrier_core * n_threads

    def p2p_cost(self) -> float:
        return self.t_p2p

    def validate_threads(self, p: int) -> None:
        if p < 1 or p > self.max_cores:
            raise ValueError(f"{self.name} supports 1..{self.max_cores} cores, got {p}")

    def calibrated(self, name: str | None = None, **coefficients: float) -> "MachineModel":
        """A copy with cost coefficients replaced by fitted values.

        ``coefficients`` maps cost-coefficient field names (``t_*`` or
        the ``l*_spill_penalty`` fractions) to new non-negative values;
        structural fields (``max_cores``, cache sizes) are not
        calibratable and are rejected.  Used by
        :mod:`repro.obs.calibrate` to produce a model whose modeled
        seconds track measured wall seconds on this host.
        """
        calibratable = {
            f.name for f in fields(self)
            if f.name.startswith("t_") or f.name.endswith("_spill_penalty")
        }
        for key, value in coefficients.items():
            if key not in calibratable:
                raise ValueError(
                    f"{key!r} is not a calibratable MachineModel coefficient "
                    f"(expected one of {sorted(calibratable)})")
            v = float(value)
            if not np.isfinite(v) or v < 0.0:
                raise ValueError(f"coefficient {key}={value!r} must be finite and >= 0")
        return replace(
            self,
            name=name if name is not None else f"{self.name}+calibrated",
            **{k: float(v) for k, v in coefficients.items()},
        )


# Calibrated parameter sets.  Absolute scales are arbitrary (simulated
# seconds); ratios encode the architectural contrasts listed above.
SANDY_BRIDGE = MachineModel(
    name="SandyBridge",
    max_cores=16,
    t_sparse_flop=2.0e-9,
    t_dense_flop=2.6e-10,
    t_dfs_step=1.0e-9,
    t_mem_word=7.0e-10,
    t_column=1.8e-8,
    t_barrier_core=4.5e-8,
    t_p2p=6.5e-8,
    l2_bytes=256 * 1024,
    l3_bytes=20 * 1024 * 1024,
    l2_spill_penalty=0.06,
    l3_spill_penalty=0.30,
)

XEON_PHI = MachineModel(
    name="XeonPhi",
    max_cores=32,
    t_sparse_flop=2.1e-8,
    t_dense_flop=1.6e-9,
    t_dfs_step=1.1e-8,
    t_mem_word=6.0e-9,
    t_column=1.5e-7,
    t_barrier_core=3.5e-7,
    t_p2p=3.5e-7,
    l2_bytes=512 * 1024,
    l3_bytes=0,
    l2_spill_penalty=0.0,
    l3_spill_penalty=0.28,
)
