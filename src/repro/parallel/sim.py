"""Deterministic task-graph scheduler: the simulated parallel runtime.

Basker's numeric factorization is expressed as a DAG of tasks — leaf
factorizations, off-diagonal solves, reductions, separator
factorizations — with a static thread mapping (the colours of Figures
2(b)/3 in the paper).  The real code runs this DAG with Kokkos
parallel-for plus point-to-point synchronization; here a list scheduler
replays the same DAG against simulated per-thread clocks and a
:class:`~repro.parallel.machine.MachineModel`, producing the parallel
makespan, per-thread utilization and the sync-overhead split.

Tasks may be *pinned* (``thread`` set — Basker's static mapping) or
free (``thread=None`` — the supernodal baseline's dynamic etree
scheduling), and the two kinds can be mixed in one graph.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..errors import TaskGraphError
from .ledger import CostLedger
from .machine import MachineModel

__all__ = ["SimTask", "Schedule", "simulate"]


@dataclass
class SimTask:
    """One schedulable unit of work.

    ``p2p_syncs`` counts the point-to-point handshakes this task
    performs (per-column synchronizations in the separator phases);
    ``barriers`` counts full barriers the task ends with.  Under
    ``sync_mode='barrier'`` the scheduler prices *all* sync events as
    full barriers — that is the traditional data-parallel baseline the
    paper measures 11 % overhead for.

    ``reads``/``writes`` declare the logical data blocks this task
    touches (opaque hashable keys, e.g. ``("L", b, k, i)``).  They play
    no role in scheduling; :mod:`repro.analysis.hazards` uses them to
    prove the emitted ``deps`` order every conflicting access — the
    correctness condition behind the paper's barrier-free p2p claim.
    """

    tid: int
    ledger: CostLedger
    deps: Sequence[int] = ()
    thread: Optional[int] = None
    working_set: float = 0.0
    p2p_syncs: int = 0
    barriers: int = 0
    label: str = ""
    reads: Sequence[tuple] = ()
    writes: Sequence[tuple] = ()


@dataclass
class Schedule:
    """Result of a simulation run."""

    makespan: float
    n_threads: int
    start: Dict[int, float]
    end: Dict[int, float]
    thread_of: Dict[int, int]
    busy: List[float]
    sync_seconds: float
    compute_seconds: float
    # The simulated tasks themselves, so callers that only hold the
    # schedule (e.g. the parallel solve, which returns ``(x, sched)``)
    # can still run :func:`repro.analysis.hazards.check_hazards` on the
    # declared read/write sets.
    tasks: Optional[List[SimTask]] = None

    @property
    def sync_fraction(self) -> float:
        """Aggregate sync time across threads relative to the makespan.

        This matches the paper's "total time spent for synchronization
        ... of total time" metric (§IV).  Because the numerator sums
        over all threads, pathological barrier-mode runs on tiny
        matrices can exceed 1.
        """
        return self.sync_seconds / self.makespan if self.makespan > 0 else 0.0

    @property
    def parallel_efficiency(self) -> float:
        if self.makespan <= 0:
            return 1.0
        return sum(self.busy) / (self.makespan * self.n_threads)

    def to_chrome_trace(
        self,
        labels: Dict[int, str] | None = None,
        tasks: Optional[Sequence["SimTask"]] = None,
    ) -> dict:
        """Export as a Chrome-tracing (``chrome://tracing`` / Perfetto)
        JSON object: one complete event per task, lanes = threads.

        Timestamps are microseconds of simulated time.  When the run's
        task list is passed as ``tasks``, the export additionally emits
        thread-name metadata events ("ph": "M") so Perfetto names each
        lane, and paired flow events ("ph": "s"/"f") for every
        point-to-point dependency edge so the viewer draws sync arrows;
        without ``tasks`` the event list keeps its original shape.
        """
        events = []
        for tid in sorted(self.start):
            events.append(
                {
                    "name": (labels or {}).get(tid, f"task{tid}"),
                    "ph": "X",
                    "ts": self.start[tid] * 1e6,
                    "dur": (self.end[tid] - self.start[tid]) * 1e6,
                    "pid": 0,
                    "tid": int(self.thread_of[tid]),
                    "args": {"task_id": tid},
                }
            )
        if tasks is not None:
            for th in range(self.n_threads):
                events.append(
                    {
                        "name": "thread_name",
                        "ph": "M",
                        "pid": 0,
                        "tid": th,
                        "args": {"name": f"sim thread {th}"},
                    }
                )
            flow_id = 0
            for t in sorted(tasks, key=lambda t: t.tid):
                if t.tid not in self.start:
                    continue
                for d in sorted(t.deps):
                    if d not in self.end:
                        continue
                    events.append(
                        {
                            "name": "dep",
                            "cat": "p2p",
                            "ph": "s",
                            "id": flow_id,
                            "ts": self.end[d] * 1e6,
                            "pid": 0,
                            "tid": int(self.thread_of[d]),
                            "args": {"from": d, "to": t.tid},
                        }
                    )
                    events.append(
                        {
                            "name": "dep",
                            "cat": "p2p",
                            "ph": "f",
                            "bp": "e",
                            "id": flow_id,
                            "ts": self.start[t.tid] * 1e6,
                            "pid": 0,
                            "tid": int(self.thread_of[t.tid]),
                            "args": {"from": d, "to": t.tid},
                        }
                    )
                    flow_id += 1
        return {"traceEvents": events, "displayTimeUnit": "ns"}

    def gantt(self, labels: Dict[int, str] | None = None) -> str:
        """A text timeline: one fixed-width line per task (ordered by
        start time) with start/end/duration columns, then a per-thread
        utilization footer and a makespan/sync summary line."""
        if not self.start:
            return ""
        lines = []
        for tid in sorted(self.start, key=lambda t: (self.start[t], self.thread_of[t])):
            lab = (labels or {}).get(tid, str(tid))
            s, e = self.start[tid], self.end[tid]
            lines.append(
                f"t{self.thread_of[tid]:>3} [{s:>13.6e} .. {e:>13.6e}] "
                f"dur {e - s:>13.6e} {lab}"
            )
        lines.append("-" * 60)
        for th in range(self.n_threads):
            util = self.busy[th] / self.makespan if self.makespan > 0 else 0.0
            lines.append(
                f"t{th:>3} busy {self.busy[th]:>13.6e} s  util {util * 100:>6.1f}%"
            )
        lines.append(
            f"makespan {self.makespan:>13.6e} s  "
            f"sync {self.sync_fraction * 100:>6.1f}%  "
            f"efficiency {self.parallel_efficiency * 100:>6.1f}%"
        )
        return "\n".join(lines)


def _priorities(tasks: List[SimTask], durations: Dict[int, float]) -> Dict[int, float]:
    """Critical-path priority: task duration + longest downstream path."""
    dependents: Dict[int, List[int]] = {t.tid: [] for t in tasks}
    indeg: Dict[int, int] = {t.tid: 0 for t in tasks}
    for t in tasks:
        for d in t.deps:
            if d not in dependents:
                raise TaskGraphError(
                    f"task {t.tid} ({t.label or 'unlabeled'}) depends on "
                    f"unknown task id {d}; the DAG has no such task"
                )
            dependents[d].append(t.tid)
            indeg[t.tid] += 1
    # Reverse-topological accumulation via Kahn ordering.
    order: List[int] = []
    q = [tid for tid, k in indeg.items() if k == 0]
    indeg_work = dict(indeg)
    while q:
        v = q.pop()
        order.append(v)
        for w in dependents[v]:
            indeg_work[w] -= 1
            if indeg_work[w] == 0:
                q.append(w)
    if len(order) != len(tasks):
        stuck = sorted(tid for tid, k in indeg_work.items() if k > 0)[:8]
        raise TaskGraphError(
            "task graph contains a dependency cycle (would deadlock the "
            f"p2p runtime); {len(tasks) - len(order)} tasks are stuck, "
            f"e.g. ids {stuck}"
        )
    prio = {tid: durations[tid] for tid in durations}
    for v in reversed(order):
        down = max((prio[w] for w in dependents[v]), default=0.0)
        prio[v] = durations[v] + down
    return prio


def simulate(
    tasks: List[SimTask],
    machine: MachineModel,
    n_threads: int,
    sync_mode: str = "p2p",
) -> Schedule:
    """List-schedule a task DAG onto ``n_threads`` simulated cores.

    ``sync_mode`` is ``'p2p'`` (point-to-point handshakes as written in
    the tasks) or ``'barrier'`` (every sync event is priced as a full
    barrier across ``n_threads`` — the ablation baseline of paper §IV).
    """
    machine.validate_threads(n_threads)
    if sync_mode not in ("p2p", "barrier"):
        raise ValueError("sync_mode must be 'p2p' or 'barrier'")

    by_id: Dict[int, SimTask] = {}
    for t in tasks:
        if t.tid in by_id:
            raise TaskGraphError(f"duplicate task id {t.tid}")
        if t.thread is not None and not (0 <= t.thread < n_threads):
            raise ValueError(f"task {t.tid} pinned to thread {t.thread} of {n_threads}")
        by_id[t.tid] = t

    durations: Dict[int, float] = {}
    sync_of: Dict[int, float] = {}
    for t in tasks:
        dur = machine.seconds(t.ledger, t.working_set)
        if sync_mode == "p2p":
            sync = t.p2p_syncs * machine.p2p_cost() + t.barriers * machine.barrier_cost(n_threads)
        else:
            sync = (t.p2p_syncs + t.barriers) * machine.barrier_cost(n_threads)
        durations[t.tid] = dur + sync
        sync_of[t.tid] = sync

    prio = _priorities(tasks, durations)

    dependents: Dict[int, List[int]] = {t.tid: [] for t in tasks}
    remaining: Dict[int, int] = {}
    for t in tasks:
        remaining[t.tid] = len(t.deps)
        for d in t.deps:
            if d not in by_id:
                raise TaskGraphError(
                    f"task {t.tid} ({t.label or 'unlabeled'}) depends on "
                    f"unknown task id {d}"
                )
            dependents[d].append(t.tid)

    thread_clock = [0.0] * n_threads
    start: Dict[int, float] = {}
    end: Dict[int, float] = {}
    thread_of: Dict[int, int] = {}
    ready_time: Dict[int, float] = {}

    # Ready heap keyed by (earliest possible start, -priority, tid).
    heap: List[tuple] = []
    seq = 0

    def push_ready(tid: int, at: float) -> None:
        nonlocal seq
        ready_time[tid] = at
        heapq.heappush(heap, (at, -prio[tid], seq, tid))
        seq += 1

    for t in tasks:
        if remaining[t.tid] == 0:
            push_ready(t.tid, 0.0)

    scheduled = 0
    while heap:
        at, negp, _, tid = heapq.heappop(heap)
        t = by_id[tid]
        if t.thread is not None:
            th = t.thread
        else:
            th = min(range(n_threads), key=lambda i: thread_clock[i])
        s = max(at, thread_clock[th])
        start[tid] = s
        end[tid] = s + durations[tid]
        thread_clock[th] = end[tid]
        thread_of[tid] = th
        scheduled += 1
        for w in dependents[tid]:
            remaining[w] -= 1
            if remaining[w] == 0:
                # Ready at the max end over *all* deps (deps scheduled
                # earlier may still finish later in simulated time).
                push_ready(w, max(end[d] for d in by_id[w].deps))

    if scheduled != len(tasks):
        raise TaskGraphError(
            f"deadlock: only {scheduled} of {len(tasks)} tasks could be "
            "scheduled (dependency cycle)"
        )

    makespan = max(end.values(), default=0.0)
    busy = [0.0] * n_threads
    for tid, th in thread_of.items():
        busy[th] += durations[tid]
    total_sync = sum(sync_of.values())
    total_compute = sum(durations.values()) - total_sync
    return Schedule(
        makespan=makespan,
        n_threads=n_threads,
        start=start,
        end=end,
        thread_of=thread_of,
        busy=busy,
        sync_seconds=total_sync,
        compute_seconds=total_compute,
        tasks=list(tasks),
    )
