"""Cost ledgers: the currency of the performance model.

Real Basker is timed with wall clocks on real cores; a pure-Python
reproduction cannot be (the GIL serializes threads and Python's
interpreter overhead bears no relation to the C++ kernels).  Instead,
every numeric kernel in this package *counts the work it does* —
multiply-adds in sparse and dense kernels, symbolic DFS edge
traversals, words of memory traffic, columns processed — into a
:class:`CostLedger`.  A :class:`~repro.parallel.machine.MachineModel`
then converts a ledger into seconds for a given architecture.

Because the factorizations are executed exactly, the ledgers are exact
operation counts of the algorithms the paper describes, not estimates.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

__all__ = ["CostLedger"]


@dataclass
class CostLedger:
    """Operation counts accumulated by a kernel or a task.

    Attributes
    ----------
    sparse_flops
        Multiply-add operations performed through indexed/scattered
        access (Gilbert–Peierls updates, sparse mat-vec, reductions).
    dense_flops
        Multiply-adds performed in dense panels (supernodal kernels,
        BLAS-able work).  Machine models price these far cheaper per
        op — that asymmetry is what makes supernodal solvers win on
        high fill-in matrices and lose on low fill-in ones.
    dfs_steps
        Symbolic work: edges traversed during reach/DFS pattern
        discovery and ordering.
    mem_words
        Words moved for copies/scatter-gather beyond the flops above
        (factor copies, block assembly).
    columns
        Columns processed (per-column constant overhead: loop setup,
        pivot search bookkeeping).
    """

    sparse_flops: float = 0.0
    dense_flops: float = 0.0
    dfs_steps: float = 0.0
    mem_words: float = 0.0
    columns: float = 0.0

    def add(self, other: "CostLedger") -> "CostLedger":
        if not isinstance(other, CostLedger):
            raise TypeError(
                f"can only add a CostLedger to a CostLedger, not {type(other).__name__}"
            )
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))
        return self

    def __iadd__(self, other: "CostLedger") -> "CostLedger":
        return self.add(other)

    def scaled(self, alpha: float) -> "CostLedger":
        alpha = float(alpha)
        if not (alpha >= 0.0):  # rejects negatives and NaN
            raise ValueError(f"ledger scale factor must be >= 0, got {alpha}")
        return CostLedger(**{f.name: getattr(self, f.name) * alpha for f in fields(self)})

    def copy(self) -> "CostLedger":
        return CostLedger(**{f.name: getattr(self, f.name) for f in fields(self)})

    @property
    def total_flops(self) -> float:
        return self.sparse_flops + self.dense_flops

    def is_empty(self) -> bool:
        return all(getattr(self, f.name) == 0.0 for f in fields(self))

    def __repr__(self) -> str:
        parts = [f"{f.name}={getattr(self, f.name):.3g}" for f in fields(self) if getattr(self, f.name)]
        return f"CostLedger({', '.join(parts)})"
