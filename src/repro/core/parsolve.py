"""Parallel sparse triangular solve with level scheduling.

The paper's point-to-point synchronization story (§IV) builds on Park
et al.'s sparsifying-synchronization triangular solve (ref. [18]); the
solve phase also matters to Basker's users because a transient run does
at least one solve per factorization.  This module implements the
classic level-scheduled parallel triangular solve:

* rows are grouped into *levels* — row ``i``'s level is one more than
  the deepest level among the rows its off-diagonal entries reference —
  so all rows in one level are independent;
* numerically the solve sweeps level by level (row-oriented kernels on
  the transposed factor);
* for the performance model, each level is split into per-thread row
  chunks whose dependency edges are *sparsified*: a chunk depends only
  on the previous-level chunks that actually produced one of its
  operands (the ref. [18] point-to-point structure), not on a full
  barrier.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

# effects: blocks x=x

from ..parallel.ledger import CostLedger
from ..parallel.machine import MachineModel
from ..parallel.sim import Schedule, SimTask, simulate
from ..sparse.csc import CSC

__all__ = ["TriangularLevels", "level_schedule", "parallel_lower_solve", "parallel_upper_solve"]


@dataclass
class TriangularLevels:
    """Level sets of a triangular factor.

    ``levels[k]`` holds the row indices solvable at step ``k``; ``Rp``,
    ``Ri``, ``Rx`` is the factor in row-major (CSR) form used by the
    row-oriented numeric sweep.
    """

    levels: List[np.ndarray]
    Rp: np.ndarray
    Ri: np.ndarray
    Rx: np.ndarray
    lower: bool

    @property
    def n_levels(self) -> int:
        return len(self.levels)

    @property
    def max_parallelism(self) -> float:
        if not self.levels:
            return 1.0
        return max(lv.size for lv in self.levels)

    @property
    def average_parallelism(self) -> float:
        n = sum(lv.size for lv in self.levels)
        return n / max(self.n_levels, 1)


def level_schedule(T: CSC, lower: bool = True) -> TriangularLevels:
    """Compute the level sets of a (unit) triangular CSC factor."""
    n = T.n_cols
    R = T.transpose()  # rows of T as columns of R
    level = np.zeros(n, dtype=np.int64)
    order = range(n) if lower else range(n - 1, -1, -1)
    for i in order:
        deps, _ = R.col(i)
        lv = 0
        for j in deps:
            j = int(j)
            if (lower and j < i) or (not lower and j > i):
                if level[j] + 1 > lv:
                    lv = level[j] + 1
        level[i] = lv
    n_levels = int(level.max()) + 1 if n else 0
    levels = [np.flatnonzero(level == k).astype(np.int64) for k in range(n_levels)]
    return TriangularLevels(levels=levels, Rp=R.indptr, Ri=R.indices, Rx=R.data, lower=lower)


def _solve_with_levels(
    tl: TriangularLevels,
    b: np.ndarray,
    unit_diag: bool,
    n_threads: int,
    machine: Optional[MachineModel],
) -> Tuple[np.ndarray, Optional[Schedule]]:
    n = b.size
    x = np.array(b, dtype=np.float64, copy=True)
    Rp, Ri, Rx = tl.Rp, tl.Ri, tl.Rx

    tasks: List[SimTask] = []
    prev_chunk_of = np.full(n, -1, dtype=np.int64)  # row -> producing task id
    task_keys: List[Tuple[int, int]] = []  # task id -> (level, chunk)
    make_tasks = machine is not None

    for lv, rows in enumerate(tl.levels):
        # Static chunking of the level across threads.
        chunks = np.array_split(rows, min(n_threads, max(rows.size, 1)))
        for ci, chunk in enumerate(chunks):
            if chunk.size == 0:
                continue
            led = CostLedger()
            dep_tasks = set()
            for i in chunk:
                i = int(i)
                lo, hi = int(Rp[i]), int(Rp[i + 1])
                acc = x[i]
                diag = 1.0
                for p in range(lo, hi):
                    j = int(Ri[p])
                    if j == i:
                        diag = Rx[p]
                        continue
                    off = (j < i) if tl.lower else (j > i)
                    if off:
                        acc -= Rx[p] * x[j]
                        if make_tasks and prev_chunk_of[j] >= 0:
                            dep_tasks.add(int(prev_chunk_of[j]))
                led.sparse_flops += hi - lo
                led.columns += 1
                if unit_diag:
                    x[i] = acc
                else:
                    if diag == 0.0:
                        raise ZeroDivisionError(f"zero diagonal at row {i}")
                    x[i] = acc / diag
            if make_tasks:
                tid = len(tasks)
                deps = sorted(dep_tasks)
                # Declared effect sets: this chunk finalizes its own x
                # rows and reads exactly the chunks it synchronizes
                # with — the hazard checker then proves the sparsified
                # point-to-point edges sufficient.
                tasks.append(
                    SimTask(
                        tid=tid,
                        ledger=led,
                        deps=deps,
                        thread=ci % n_threads,
                        p2p_syncs=len(deps),
                        label=f"lv{lv}/c{ci}",
                        reads=[("x",) + task_keys[t] for t in deps],
                        writes=[("x", lv, ci)],
                    )
                )
                task_keys.append((lv, ci))
                prev_chunk_of[chunk] = tid

    sched = simulate(tasks, machine, n_threads) if make_tasks else None
    return x, sched


def parallel_lower_solve(
    L: CSC,
    b: np.ndarray,
    n_threads: int = 1,
    machine: Optional[MachineModel] = None,
    unit_diag: bool = True,
    levels: Optional[TriangularLevels] = None,
) -> Tuple[np.ndarray, Optional[Schedule]]:
    """Level-scheduled solve of ``L x = b``.

    Returns ``(x, schedule)``; the schedule is None unless a machine
    model is supplied.  ``levels`` may be precomputed (the pattern is
    fixed across a refactorization sequence).
    """
    if L.n_rows != L.n_cols or b.shape != (L.n_cols,):
        raise ValueError("dimension mismatch")
    tl = levels if levels is not None else level_schedule(L, lower=True)
    return _solve_with_levels(tl, b, unit_diag, n_threads, machine)


def parallel_upper_solve(
    U: CSC,
    b: np.ndarray,
    n_threads: int = 1,
    machine: Optional[MachineModel] = None,
    levels: Optional[TriangularLevels] = None,
) -> Tuple[np.ndarray, Optional[Schedule]]:
    """Level-scheduled solve of ``U x = b`` (non-unit diagonal)."""
    if U.n_rows != U.n_cols or b.shape != (U.n_cols,):
        raise ValueError("dimension mismatch")
    tl = levels if levels is not None else level_schedule(U, lower=False)
    return _solve_with_levels(tl, b, unit_diag=False, n_threads=n_threads, machine=machine)
