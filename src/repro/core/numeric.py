"""Basker's parallel numeric factorization (Algorithm 4) and kernels.

The fine-ND numeric factorization works on the 2-D block structure of
Figure 3(a).  Following the dependency tree bottom-up:

* **leaf phase** (treelevel −1): every leaf diagonal block factors with
  Gilbert–Peierls (partial pivoting local to the block), then the lower
  off-diagonal blocks of its column sweep ``L_ki = A_ki U_ii^{-1}``;
* **separator passes** (slevel = 1..log2 p): for each separator column
  ``j``, the leaf-level upper blocks solve ``U_ij = L_ii^{-1} P_i
  A_ij``, intermediate separators reduce their column (``Â_mj = A_mj −
  Σ_s L_ms U_sj``) and solve through their own ``L_mm``, the diagonal
  block reduces and factors (the only serial bottleneck at the root),
  and remaining lower blocks ``L_kj = Â_kj U_jj^{-1}`` complete the
  column.

Pivoting scope follows the paper's fill-path argument (§III-C): a
diagonal block's row permutation only touches its own block *row* — the
already-computed ``L_k·`` blocks of other block rows are unaffected.
Concretely, right after node ``t`` factors we apply ``P_t`` to the
stored ``L_{t,s}`` blocks and to the not-yet-consumed ``A_{t,k}``
blocks, so every later operation on block row ``t`` lives in pivoted
space.

The paper executes this column-by-column with point-to-point syncs;
numerically, whole-block processing in dependency order computes the
same factors (within-block columns are sequential on their owning
thread either way), so this module processes blocks whole while
recording *per-column* sync counts on the reduction tasks for the
performance model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

# effects: blocks A=A Lb=L|LU Ub=U|LU
# effects: emitter builder em

from ..contracts import domains, effects
from ..graph.dfs import ReachWorkspace, topo_reach
from ..obs.tracer import NULL_TRACER, tracing
from ..parallel.ledger import CostLedger
from ..parallel.sim import SimTask
from ..sparse.blocks import BlockMatrix
from ..sparse.csc import CSC
from .structure import NDBlockPlan
from ..solvers.dense import DENSE_SEPARATOR_THRESHOLD, dense_lu_factor
from ..solvers.gp import GPResult, gp_factor

__all__ = [
    "TaskBuilder",
    "NDNumericBlock",
    "lower_offdiag_solve",
    "upper_offdiag_solve",
    "block_reduce",
    "factor_nd_block",
]


class TaskBuilder:
    """Accumulates the simulation task DAG during factorization.

    Every task declares its *read-set* and *write-set* of logical block
    keys (``("A", b, r, c)``, ``("LU", b, t)``, ``("L", b, r, c)``,
    ``("U", b, r, c)``, ``("P", b, r, c, s)``, ``("R", b, r, c)``).
    The sets are inert at runtime; :mod:`repro.analysis.hazards`
    cross-checks them against ``deps`` + per-thread program order to
    prove the point-to-point synchronization is sufficient.
    """

    def __init__(self) -> None:
        self.tasks: List[SimTask] = []
        self._by_key: Dict[tuple, int] = {}

    def add(
        self,
        key: tuple,
        ledger: CostLedger,
        deps: List[tuple],
        thread: Optional[int],
        working_set: float = 0.0,
        p2p_syncs: int = 0,
        barriers: int = 0,
        reads: List[tuple] = (),
        writes: List[tuple] = (),
    ) -> int:
        if key in self._by_key:
            raise ValueError(f"duplicate task key {key}")
        tid = len(self.tasks)
        dep_ids = [self._by_key[d] for d in deps if d in self._by_key]
        self.tasks.append(
            SimTask(
                tid=tid,
                ledger=ledger,
                deps=dep_ids,
                thread=thread,
                working_set=working_set,
                p2p_syncs=p2p_syncs,
                barriers=barriers,
                label="/".join(str(k) for k in key),
                reads=tuple(reads),
                writes=tuple(writes),
            )
        )
        self._by_key[key] = tid
        return tid

    def has(self, key: tuple) -> bool:
        return key in self._by_key

    def add_alias(self, key: tuple, target: tuple) -> None:
        """Let ``key`` resolve to an already-added task (pipeline mode:
        a logical block task aliases its final column chunk)."""
        if key in self._by_key:
            raise ValueError(f"alias would shadow existing task {key}")
        self._by_key[key] = self._by_key[target]

    def labels(self) -> Dict[int, str]:
        return {t.tid: t.label for t in self.tasks}


class _PassEmitter:
    """Task emission for one separator-column pass.

    With ``chunk=None`` every logical block task becomes one SimTask
    (block-granular scheduling).  With a chunk size, each task is split
    into per-column-range subtasks whose *internal* dependencies connect
    chunk-to-chunk — the paper's per-column pipeline: while the diagonal
    factorization works on columns [c, c+chunk), the reductions for the
    next chunk proceed on other threads.  Costs are apportioned to
    chunks by the realized nnz of the task's output columns.

    Read/write declarations distinguish four access classes so the
    hazard analysis stays exact under pipelining:

    * ``reads`` — whole blocks from *earlier* passes (every chunk reads
      all of them);
    * ``chunk_reads`` — blocks produced *within this pass*, which are
      column-partitioned: chunk ``k`` only touches columns ``[k*c,
      (k+1)*c)``, so the key is refined with ``("c", k)``;
    * ``writes`` — this task's column-partitioned output (refined per
      chunk the same way);
    * ``final_writes`` — whole-block side effects that happen once the
      logical task completes (the diagonal factorization's pivot
      permutation of its block row); they attach to the last chunk.

    A refined key ``base + ("c", k)`` denotes a sub-resource of
    ``base``: it conflicts with the whole block and with the same chunk
    of it, but not with sibling chunks (disjoint column ranges).
    """

    def __init__(self, builder: TaskBuilder, n_cols: int, chunk: Optional[int]):
        self.builder = builder
        self.n_cols = n_cols
        self.chunk = chunk
        self.recs: List[dict] = []

    def add(
        self,
        key: tuple,
        led: CostLedger,
        thread: int,
        working_set: float,
        internal: List[tuple] = (),
        external: List[tuple] = (),
        sync_per_col: int = 0,
        chain: bool = False,
        out: Optional[CSC] = None,
        reads: List[tuple] = (),
        chunk_reads: List[tuple] = (),
        writes: List[tuple] = (),
        final_writes: List[tuple] = (),
    ) -> None:
        if not self.chunk:
            self.builder.add(
                key, led, deps=list(internal) + list(external), thread=thread,
                working_set=working_set, p2p_syncs=sync_per_col * self.n_cols,
                reads=list(reads) + list(chunk_reads),
                writes=list(writes) + list(final_writes),
            )
            return
        self.recs.append(
            dict(key=key, led=led, thread=thread, ws=working_set,
                 internal=list(internal), external=list(external),
                 sync_per_col=sync_per_col, chain=chain, out=out,
                 reads=list(reads), chunk_reads=list(chunk_reads),
                 writes=list(writes), final_writes=list(final_writes))
        )

    def flush(self) -> None:
        if not self.chunk or not self.recs:
            self.recs = []
            return
        n, c = self.n_cols, self.chunk
        K = max(1, -(-n // c))
        bounds = [(k * c, min((k + 1) * c, n)) for k in range(K)]
        for rec in self.recs:  # insertion order is pass-topological
            out = rec["out"]
            if out is not None and out.n_cols == n and out.nnz > 0:
                weights = [
                    float(out.indptr[hi] - out.indptr[lo]) for lo, hi in bounds
                ]
            else:
                weights = [float(hi - lo) for lo, hi in bounds]
            tot = sum(weights) or float(K)
            weights = [w / tot for w in weights]
            for k, (lo, hi) in enumerate(bounds):
                deps = [d + ("c", k) for d in rec["internal"]] + list(rec["external"])
                if rec["chain"] and k > 0:
                    deps.append(rec["key"] + ("c", k - 1))
                reads = list(rec["reads"]) + [r + ("c", k) for r in rec["chunk_reads"]]
                writes = [w + ("c", k) for w in rec["writes"]]
                if k == K - 1:
                    writes += list(rec["final_writes"])
                self.builder.add(
                    rec["key"] + ("c", k),
                    rec["led"].scaled(weights[k]),
                    deps=deps,
                    thread=rec["thread"],
                    working_set=rec["ws"],
                    p2p_syncs=rec["sync_per_col"] * (hi - lo),
                    reads=reads,
                    writes=writes,
                )
            self.builder.add_alias(rec["key"], rec["key"] + ("c", K - 1))
        self.recs = []


# ----------------------------------------------------------------------
# Numeric kernels
# ----------------------------------------------------------------------


@domains(A_ki="matrix[local:block]", U_ii="matrix[local:block]",
         returns="matrix[local:block]")
@effects(mutates=("ledger",))
def lower_offdiag_solve(A_ki: CSC, U_ii: CSC, ledger: CostLedger) -> CSC:
    """Solve ``X @ U_ii = A_ki`` for the lower off-diagonal block.

    Column sweep: ``X(:,c) = (A(:,c) − Σ_{t<c, U(t,c)≠0} X(:,t) U(t,c))
    / U(c,c)``.  This is the "nonzero pattern discovered by parallel
    sparse matrix-vector multiplication" step of the leaf phase
    (Algorithm 4, line 5).
    """
    m, n = A_ki.shape
    if U_ii.n_cols != n:
        raise ValueError("dimension mismatch")
    work = np.zeros(m, dtype=np.float64)
    mark = np.full(m, -1, dtype=np.int64)
    xcols_rows: List[np.ndarray] = []
    xcols_vals: List[np.ndarray] = []
    indptr = np.zeros(n + 1, dtype=np.int64)
    for c in range(n):
        stamp = c
        pattern: List[int] = []
        arows, avals = A_ki.col(c)
        for t in range(arows.size):
            i = int(arows[t])
            mark[i] = stamp
            work[i] = avals[t]
            pattern.append(i)
        urows, uvals = U_ii.col(c)
        udiag = 0.0
        for t in range(urows.size):
            tt = int(urows[t])
            if tt == c:
                udiag = uvals[t]
                continue
            if tt > c:
                continue
            uv = uvals[t]
            xr = xcols_rows[tt]
            xv = xcols_vals[tt]
            ledger.sparse_flops += xr.size
            for s in range(xr.size):
                i = int(xr[s])
                if mark[i] != stamp:
                    mark[i] = stamp
                    work[i] = 0.0
                    pattern.append(i)
                work[i] -= xv[s] * uv
        if pattern and udiag == 0.0:
            raise ZeroDivisionError(f"zero diagonal U({c},{c}) in lower off-diagonal solve")
        pattern.sort()
        pr = np.asarray(pattern, dtype=np.int64)
        pv = work[pr] / udiag if pattern else np.empty(0, dtype=np.float64)
        ledger.sparse_flops += pr.size
        xcols_rows.append(pr)
        xcols_vals.append(pv)
        indptr[c + 1] = indptr[c] + pr.size
        if pr.size:
            ledger.columns += 1
    indices = np.concatenate(xcols_rows) if xcols_rows else np.empty(0, dtype=np.int64)
    data = np.concatenate(xcols_vals) if xcols_vals else np.empty(0, dtype=np.float64)
    ledger.mem_words += indices.size
    return CSC(m, n, indptr, indices, data)


@domains(L_ii="matrix[local:block]", A_ij="matrix[local:block]",
         returns="matrix[local:block]")
@effects(mutates=("ws", "ledger"))
def upper_offdiag_solve(
    L_ii: CSC, A_ij: CSC, ws: ReachWorkspace, ledger: CostLedger
) -> CSC:
    """Solve ``L_ii @ X = A_ij`` (rows of A already in pivoted order).

    Per-column Gilbert–Peierls backsolve: reach DFS over the completed
    ``L_ii`` graph for the pattern, then the sparse triangular solve in
    topological order (Algorithm 4, lines 14/20).
    """
    n_i = L_ii.n_cols
    m, n = A_ij.shape
    if m != n_i:
        raise ValueError("dimension mismatch")
    x = np.zeros(n_i, dtype=np.float64)
    out_rows: List[np.ndarray] = []
    out_vals: List[np.ndarray] = []
    indptr = np.zeros(n + 1, dtype=np.int64)
    xi = ws.xi
    for c in range(n):
        arows, avals = A_ij.col(c)
        if arows.size == 0:
            indptr[c + 1] = indptr[c]
            continue
        ws.next_stamp()
        top, steps = topo_reach(L_ii.indptr, L_ii.indices, arows, None, ws)
        ledger.dfs_steps += steps + arows.size
        pat = xi[top:n_i]
        x[pat] = 0.0
        x[arows] = avals
        for t in range(top, n_i):
            j = int(xi[t])
            xj = x[j]
            if xj == 0.0:
                continue
            lo, hi = int(L_ii.indptr[j]), int(L_ii.indptr[j + 1])
            rows_view = L_ii.indices[lo + 1 : hi]  # first entry is the unit pivot
            x[rows_view] -= L_ii.data[lo + 1 : hi] * xj
            ledger.sparse_flops += hi - lo - 1
        pat_sorted = np.sort(pat)
        out_rows.append(pat_sorted.copy())
        out_vals.append(x[pat_sorted].copy())
        indptr[c + 1] = indptr[c] + pat_sorted.size
        ledger.columns += 1
    indices = np.concatenate(out_rows) if out_rows else np.empty(0, dtype=np.int64)
    data = np.concatenate(out_vals) if out_vals else np.empty(0, dtype=np.float64)
    ledger.mem_words += indices.size
    return CSC(n_i, n, indptr, indices, data)


@domains(L_ms="matrix[local:block]", U_sj="matrix[local:block]",
         returns="matrix[local:block]")
@effects(mutates=("ledger",))
def sparse_product(L_ms: CSC, U_sj: CSC, ledger: CostLedger) -> CSC:
    """Column-accumulated sparse product ``L_ms @ U_sj``.

    One contributing thread's share of a reduction: the "multiple
    parallel sparse matrix-vector multiplication" phase of Figure 4(d).
    """
    m = L_ms.n_rows
    n = U_sj.n_cols
    work = np.zeros(m, dtype=np.float64)
    mark = np.full(m, -1, dtype=np.int64)
    out_rows: List[np.ndarray] = []
    out_vals: List[np.ndarray] = []
    indptr = np.zeros(n + 1, dtype=np.int64)
    for c in range(n):
        stamp = c
        pattern: List[int] = []
        urows, uvals = U_sj.col(c)
        for t in range(urows.size):
            k = int(urows[t])
            uv = uvals[t]
            if uv == 0.0:
                continue
            lo, hi = int(L_ms.indptr[k]), int(L_ms.indptr[k + 1])
            ledger.sparse_flops += hi - lo
            for s in range(lo, hi):
                i = int(L_ms.indices[s])
                if mark[i] != stamp:
                    mark[i] = stamp
                    work[i] = 0.0
                    pattern.append(i)
                work[i] += L_ms.data[s] * uv
        pattern.sort()
        pr = np.asarray(pattern, dtype=np.int64)
        out_rows.append(pr)
        out_vals.append(work[pr].copy())
        indptr[c + 1] = indptr[c] + pr.size
        if pr.size:
            ledger.columns += 1
    indices = np.concatenate(out_rows) if out_rows else np.empty(0, dtype=np.int64)
    data = np.concatenate(out_vals) if out_vals else np.empty(0, dtype=np.float64)
    ledger.mem_words += indices.size
    return CSC(m, n, indptr, indices, data)


@domains(A_mj="matrix[local:block]", returns="matrix[local:block]")
@effects(mutates=("ledger",))
def subtract_products(A_mj: CSC, prods: List[CSC], ledger: CostLedger) -> CSC:
    """``Â = A − Σ prods``: the combine phase of the reduction.

    Pure scatter-add traffic (no multiplies) — cheap relative to the
    product phase, which is why distributing the products pays off.
    """
    m, n = A_mj.shape
    work = np.zeros(m, dtype=np.float64)
    mark = np.full(m, -1, dtype=np.int64)
    out_rows: List[np.ndarray] = []
    out_vals: List[np.ndarray] = []
    indptr = np.zeros(n + 1, dtype=np.int64)
    for c in range(n):
        stamp = c
        pattern: List[int] = []
        arows, avals = A_mj.col(c)
        for t in range(arows.size):
            i = int(arows[t])
            mark[i] = stamp
            work[i] = avals[t]
            pattern.append(i)
        for P in prods:
            prows, pvals = P.col(c)
            ledger.mem_words += prows.size
            for t in range(prows.size):
                i = int(prows[t])
                if mark[i] != stamp:
                    mark[i] = stamp
                    work[i] = 0.0
                    pattern.append(i)
                work[i] -= pvals[t]
        pattern.sort()
        pr = np.asarray(pattern, dtype=np.int64)
        out_rows.append(pr)
        out_vals.append(work[pr].copy())
        indptr[c + 1] = indptr[c] + pr.size
    indices = np.concatenate(out_rows) if out_rows else np.empty(0, dtype=np.int64)
    data = np.concatenate(out_vals) if out_vals else np.empty(0, dtype=np.float64)
    return CSC(m, n, indptr, indices, data)


@domains(A_mj="matrix[local:block]", returns="matrix[local:block]")
@effects(mutates=("ledger",))
def block_reduce(
    A_mj: CSC,
    contribs: List[Tuple[CSC, CSC]],
    ledger: CostLedger,
) -> CSC:
    """``Â_mj = A_mj − Σ_s L_ms @ U_sj`` (Algorithm 4, lines 18/24).

    ``contribs`` pairs each lower block ``L_ms`` with the matching
    column-of-U block ``U_sj``.  Column-wise sparse accumulation — the
    "multiple parallel sparse matrix-vector multiplication" phase of
    the reduction.
    """
    m, n = A_mj.shape
    work = np.zeros(m, dtype=np.float64)
    mark = np.full(m, -1, dtype=np.int64)
    out_rows: List[np.ndarray] = []
    out_vals: List[np.ndarray] = []
    indptr = np.zeros(n + 1, dtype=np.int64)
    for c in range(n):
        stamp = c
        pattern: List[int] = []
        arows, avals = A_mj.col(c)
        for t in range(arows.size):
            i = int(arows[t])
            mark[i] = stamp
            work[i] = avals[t]
            pattern.append(i)
        for L_ms, U_sj in contribs:
            urows, uvals = U_sj.col(c)
            for t in range(urows.size):
                k = int(urows[t])
                uv = uvals[t]
                if uv == 0.0:
                    continue
                lo, hi = int(L_ms.indptr[k]), int(L_ms.indptr[k + 1])
                ledger.sparse_flops += hi - lo
                for s in range(lo, hi):
                    i = int(L_ms.indices[s])
                    if mark[i] != stamp:
                        mark[i] = stamp
                        work[i] = 0.0
                        pattern.append(i)
                    work[i] -= L_ms.data[s] * uv
        pattern.sort()
        pr = np.asarray(pattern, dtype=np.int64)
        out_rows.append(pr)
        out_vals.append(work[pr].copy())
        indptr[c + 1] = indptr[c] + pr.size
        if pr.size:
            ledger.columns += 1
    indices = np.concatenate(out_rows) if out_rows else np.empty(0, dtype=np.int64)
    data = np.concatenate(out_vals) if out_vals else np.empty(0, dtype=np.float64)
    ledger.mem_words += indices.size
    return CSC(m, n, indptr, indices, data)


# ----------------------------------------------------------------------
# Fine-ND numeric factorization (Algorithm 4)
# ----------------------------------------------------------------------


@dataclass
class NDNumericBlock:
    """Factors of one fine-ND block.

    ``L``/``U`` are the assembled block-local factors satisfying
    ``D[piv][:, :] = L @ U`` where ``D`` is the (already ND-ordered)
    block and ``piv`` the concatenated per-node pivot permutation.
    """

    plan: NDBlockPlan
    L: CSC
    U: CSC
    piv: np.ndarray
    L_blocks: Dict[Tuple[int, int], CSC]
    U_blocks: Dict[Tuple[int, int], CSC]
    node_piv: Dict[int, np.ndarray]
    ledger: CostLedger
    # Work in ``ledger`` that belongs to no task (final factor assembly)
    # — the conservation checker needs it to balance the books:
    # sum(task ledgers) + overhead == ledger.
    overhead: CostLedger = field(default_factory=CostLedger)

    @property
    def factor_nnz(self) -> int:
        # Unit diagonal of L not double counted with U's diagonal.
        return self.L.nnz + self.U.nnz - self.L.n_cols

    def offdiag_nnz(self, key: Tuple[int, int]) -> int:
        blk = self.L_blocks.get(key) or self.U_blocks.get(key)
        return blk.nnz if blk is not None else 0


def _ws_bytes(*mats: CSC) -> float:
    return sum(12.0 * m.nnz + 8.0 * m.n_cols for m in mats if m is not None)


@domains(D="matrix[nd]")
def factor_nd_block(
    D: CSC,
    plan: NDBlockPlan,
    builder: TaskBuilder,
    pivot_tol: float,
    static_perturb: float = 0.0,
    supernodal_separators: bool = False,
    dense_threshold: float = DENSE_SEPARATOR_THRESHOLD,
    pipeline_columns: Optional[int] = None,
) -> NDNumericBlock:
    """Run Algorithm 4 on one ND-ordered block, emitting tasks.

    ``supernodal_separators`` enables the paper's future-work extension
    (§VI): separator diagonal blocks whose reduced fill density exceeds
    ``dense_threshold`` are factored with a dense partial-pivoting
    kernel (cheap ``dense_flops``) instead of Gilbert-Peierls.

    ``pipeline_columns`` switches the separator passes to per-column
    pipelined task emission (chunks of that many columns) — the paper's
    actual execution granularity; ``None`` keeps whole-block tasks.
    """
    part = plan.partition
    b = plan.block_id
    ranges = {t: part.node_range(t) for t in range(part.n_nodes)}
    sizes = {t: ranges[t][1] - ranges[t][0] for t in range(part.n_nodes)}

    # Extract the 2-D blocks (only ancestor-related pairs can be nonzero;
    # the separator property guarantees the rest are empty).
    A: Dict[Tuple[int, int], CSC] = {}
    for t in range(part.n_nodes):
        A[(t, t)] = D.submatrix(*ranges[t], *ranges[t])
        for k in part.ancestors(t):
            A[(k, t)] = D.submatrix(*ranges[k], *ranges[t])
            A[(t, k)] = D.submatrix(*ranges[t], *ranges[k])

    Lb: Dict[Tuple[int, int], CSC] = {}
    Ub: Dict[Tuple[int, int], CSC] = {}
    node_piv: Dict[int, np.ndarray] = {}
    total = CostLedger()
    ws_cache: Dict[int, ReachWorkspace] = {}

    def reach_ws(node: int) -> ReachWorkspace:
        if node not in ws_cache:
            ws_cache[node] = ReachWorkspace(sizes[node])
        return ws_cache[node]

    def subtree_of(j: int) -> List[int]:
        return [s for s in range(part.n_nodes) if j in part.ancestors(s)]

    # ---------------- leaf phase (treelevel -1) ----------------
    for i in part.leaves():
        if sizes[i] == 0:
            node_piv[i] = np.empty(0, dtype=np.int64)
            continue
        led = CostLedger()
        # Span-free: the caller's numeric.gp.nd span carries this
        # block's cost inside nd.ledger, so letting gp_factor emit its
        # panel child span here would double-count it under the tree
        # conservation check.
        with tracing(NULL_TRACER):
            lu = gp_factor(A[(i, i)], pivot_tol=pivot_tol, static_perturb=static_perturb, ledger=led)
        Lb[(i, i)], Ub[(i, i)] = lu.L, lu.U
        node_piv[i] = lu.row_perm
        total.add(led)
        # The leaf task also applies its pivot permutation to block row
        # i (the A_ik below), so those blocks are in its write-set.
        row_i = [("A", b, i, k) for k in part.ancestors(i) if A[(i, k)].nnz]
        builder.add(
            ("leaf", b, i), led, deps=[], thread=plan.owner_thread[i],
            working_set=_ws_bytes(lu.L, lu.U),
            reads=[("A", b, i, i)] + row_i,
            writes=[("LU", b, i)] + row_i,
        )
        # Move block row i into pivoted space for the later U_ik solves.
        for k in part.ancestors(i):
            if A[(i, k)].nnz:
                A[(i, k)] = A[(i, k)].permute(row_perm=lu.row_perm)
        # Lower off-diagonal column sweep (line 5).
        for k in part.ancestors(i):
            if sizes[k] == 0:
                continue
            led2 = CostLedger()
            Lki = lower_offdiag_solve(A[(k, i)], Ub[(i, i)], led2)
            if Lki.nnz:
                Lb[(k, i)] = Lki
            total.add(led2)
            builder.add(
                ("lowoff", b, k, i), led2, deps=[("leaf", b, i)],
                thread=plan.owner_thread[i],
                working_set=_ws_bytes(Lki, Ub[(i, i)]),
                reads=[("A", b, k, i), ("LU", b, i)],
                writes=[("L", b, k, i)],
            )

    # ---------------- separator passes (slevel = 1..log2 p) ----------------
    seps = sorted(
        (t for t in range(part.n_nodes) if not part.nodes[t].is_leaf),
        key=lambda t: (part.nodes[t].height, t),
    )
    for j in seps:
        n_j = sizes[j]
        if n_j == 0:
            node_piv[j] = np.empty(0, dtype=np.int64)
            continue
        T = subtree_of(j)
        T_leaves = [s for s in T if part.nodes[s].is_leaf and sizes[s] > 0]
        T_seps = sorted(
            (s for s in T if not part.nodes[s].is_leaf and sizes[s] > 0),
            key=lambda t: (part.nodes[t].height, t),
        )
        em = _PassEmitter(builder, n_j, pipeline_columns)

        # treelevel 0: leaf-row upper blocks U_ij (line 14).
        for i in T_leaves:
            if A[(i, j)].nnz == 0:
                continue
            led = CostLedger()
            Uij = upper_offdiag_solve(Lb[(i, i)], A[(i, j)], reach_ws(i), led)
            if Uij.nnz:
                Ub[(i, j)] = Uij
            total.add(led)
            em.add(
                ("upoff", b, i, j), led,
                external=[("leaf", b, i)],
                thread=plan.owner_thread[i],
                working_set=_ws_bytes(Uij, Lb[(i, i)]),
                out=Uij,
                reads=[("A", b, i, j), ("LU", b, i)],
                writes=[("U", b, i, j)],
            )

        def contrib_list(row_block: int, col_block: int, members: List[int]):
            """Per-contributor (s, L, U, internal/external deps)."""
            out = []
            for s in members:
                L_rs = Lb.get((row_block, s))
                U_sc = Ub.get((s, col_block))
                if L_rs is not None and U_sc is not None and L_rs.nnz and U_sc.nnz:
                    if part.nodes[s].is_leaf:
                        internal = [("upoff", b, s, col_block)]
                        external = [("lowoff", b, row_block, s)]
                    else:
                        # U_sj is produced in this pass; L_{row,s} in
                        # an earlier pass (column block s).
                        internal = [("usep", b, s, col_block)]
                        external = [("lowsep", b, row_block, s)]
                    out.append((s, L_rs, U_sc, internal, external))
            return out

        def distributed_reduce(row_block: int, col_block: int, members: List[int]):
            """Two-phase reduction per Figure 4(d): each contributing
            thread computes its own L_rs @ U_sc product; the owning
            thread combines with per-column point-to-point syncs.

            Emits the product tasks and the ("reduce", b, row, col)
            combine task; returns the reduced block.

            If ``row_block`` is a separator whose diagonal already
            factored (an earlier pass), its pivot permutation rewrote
            the stored ``L_{row,s}`` blocks and ``A_{row,col}`` — the
            reduction must be ordered after it, so ("diagfac", b,
            row_block) joins the external dependencies.
            """
            contribs = contrib_list(row_block, col_block, members)
            row_done = (
                [("diagfac", b, row_block)]
                if builder.has(("diagfac", b, row_block)) else []
            )
            prods = []
            part_keys = []
            for s, L_rs, U_sc, internal, external in contribs:
                pled = CostLedger()
                P = sparse_product(L_rs, U_sc, pled)
                prods.append(P)
                total.add(pled)
                key = ("rpart", b, row_block, col_block, s)
                em.add(
                    key, pled, internal=internal, external=external + row_done,
                    thread=plan.owner_thread[s],
                    working_set=_ws_bytes(P, L_rs),
                    out=P,
                    reads=[("L", b, row_block, s)],
                    chunk_reads=[("U", b, s, col_block)],
                    writes=[("P", b, row_block, col_block, s)],
                )
                part_keys.append(key)
            cled = CostLedger()
            Ahat = subtract_products(A[(row_block, col_block)], prods, cled)
            total.add(cled)
            em.add(
                ("reduce", b, row_block, col_block), cled,
                internal=part_keys, external=row_done,
                thread=plan.owner_thread[row_block],
                working_set=_ws_bytes(Ahat),
                sync_per_col=2 if contribs else 0,
                out=Ahat,
                reads=[("A", b, row_block, col_block)],
                chunk_reads=[("P", b, row_block, col_block, s) for s, *_ in contribs],
                writes=[("R", b, row_block, col_block)],
            )
            return Ahat

        # treelevel 1..slevel-1: intermediate separators (lines 15-21).
        for m in T_seps:
            if A[(m, j)].nnz == 0 and all(
                Ub.get((s, j)) is None or Lb.get((m, s)) is None for s in subtree_of(m)
            ):
                continue
            Ahat = distributed_reduce(m, j, subtree_of(m))
            if Ahat.nnz == 0:
                continue
            led2 = CostLedger()
            Umj = upper_offdiag_solve(Lb[(m, m)], Ahat, reach_ws(m), led2)
            if Umj.nnz:
                Ub[(m, j)] = Umj
            total.add(led2)
            em.add(
                ("usep", b, m, j), led2,
                internal=[("reduce", b, m, j)],
                external=[("diagfac", b, m)],
                thread=plan.owner_thread[m],
                working_set=_ws_bytes(Umj, Lb[(m, m)]),
                out=Umj,
                reads=[("LU", b, m)],
                chunk_reads=[("R", b, m, j)],
                writes=[("U", b, m, j)],
            )

        # treelevel = slevel: reduce + factor the diagonal (lines 22-26).
        Ahat_jj = distributed_reduce(j, j, T)
        led2 = CostLedger()
        density = Ahat_jj.nnz / max(n_j * n_j, 1)
        if supernodal_separators and density > dense_threshold and n_j > 8:
            lu = dense_lu_factor(Ahat_jj, static_perturb=static_perturb, ledger=led2)
        else:
            # Span-free for the same ledger-conservation reason as the
            # leaf phase: nd.ledger is this block's inclusive leaf.
            with tracing(NULL_TRACER):
                lu = gp_factor(Ahat_jj, pivot_tol=pivot_tol, static_perturb=static_perturb, ledger=led2)
        Lb[(j, j)], Ub[(j, j)] = lu.L, lu.U
        node_piv[j] = lu.row_perm
        total.add(led2)
        # The pivot permutation below rewrites every stored block of
        # block row j, so the diagonal task (a) declares those blocks
        # as writes and (b) must be ordered *after* every earlier-pass
        # task that produced or read them (lowoff/lowsep wrote L_{j,s};
        # reduce-row-j tasks read L_{j,s} and A_{j,·}).  Without these
        # edges a p2p runtime could permute a block another thread is
        # still consuming.
        row_j = [("L", b, j, s) for s in T
                 if Lb.get((j, s)) is not None and Lb[(j, s)].nnz] + \
                [("A", b, j, k) for k in part.ancestors(j) if A[(j, k)].nnz]
        row_readers = [
            (fam, b, j, s) for s in T for fam in ("lowoff", "lowsep", "reduce")
            if builder.has((fam, b, j, s))
        ]
        em.add(
            ("diagfac", b, j), led2,
            internal=[("reduce", b, j, j)],
            external=row_readers,
            thread=plan.owner_thread[j], working_set=_ws_bytes(lu.L, lu.U),
            chain=True,   # left-looking: column chunk c needs chunk c-1
            out=lu.U,
            reads=row_j,
            chunk_reads=[("R", b, j, j)],
            writes=[("LU", b, j)],
            final_writes=row_j,
        )
        # Move block row j into pivoted space: stored L_{j,s} and the
        # unconsumed original blocks A_{j,k}.
        for s in T:
            blk = Lb.get((j, s))
            if blk is not None and blk.nnz:
                Lb[(j, s)] = blk.permute(row_perm=lu.row_perm)
        for k in part.ancestors(j):
            if A[(j, k)].nnz:
                A[(j, k)] = A[(j, k)].permute(row_perm=lu.row_perm)

        # Remaining lower off-diagonal blocks L_kj (line 28).
        threads = plan.subtree_threads[j]
        for idx, k in enumerate(part.ancestors(j)):
            if sizes[k] == 0:
                continue
            contribs = contrib_list(k, j, T)
            if A[(k, j)].nnz == 0 and not contribs:
                continue
            Ahat_kj = distributed_reduce(k, j, T)
            led3 = CostLedger()
            Lkj = lower_offdiag_solve(Ahat_kj, Ub[(j, j)], led3)
            if Lkj.nnz:
                Lb[(k, j)] = Lkj
            total.add(led3)
            em.add(
                ("lowsep", b, k, j), led3,
                internal=[("reduce", b, k, j), ("diagfac", b, j)],
                thread=threads[idx % len(threads)],
                working_set=_ws_bytes(Lkj, Ub[(j, j)]),
                out=Lkj,
                chunk_reads=[("R", b, k, j), ("LU", b, j)],
                writes=[("L", b, k, j)],
            )

        em.flush()

    # ---------------- assembly ----------------
    piv = np.arange(D.n_rows, dtype=np.int64)
    for t in range(part.n_nodes):
        lo, hi = ranges[t]
        if hi > lo:
            piv[lo:hi] = lo + node_piv[t]

    splits = part.splits
    Lbm = BlockMatrix(splits, splits)
    Ubm = BlockMatrix(splits, splits)
    for key, blk in Lb.items():
        if blk.nnz:
            Lbm.set(key[0], key[1], blk)
    for key, blk in Ub.items():
        if blk.nnz:
            Ubm.set(key[0], key[1], blk)
    L = Lbm.assemble()
    U = Ubm.assemble()
    overhead = CostLedger()
    overhead.mem_words += L.nnz + U.nnz
    total.add(overhead)
    return NDNumericBlock(
        plan=plan, L=L, U=U, piv=piv,
        L_blocks=Lb, U_blocks=Ub, node_piv=node_piv, ledger=total,
        overhead=overhead,
    )
