"""The Basker solver: hierarchical parallel sparse LU.

Public entry point of the reproduction.  Mirrors the paper's design:

* coarse BTF (MWCM + SCC) — only diagonal blocks factor;
* small blocks take the embarrassingly parallel fine-BTF path
  (Algorithm 2 symbolic, parallel-for Gilbert–Peierls numeric);
* large irreducible blocks take the fine-ND path (Algorithm 3
  symbolic, Algorithm 4 parallel numeric on the 2-D block hierarchy);
* the numeric factorization emits a task DAG with Basker's static
  thread mapping; :meth:`BaskerNumeric.schedule` replays it on a
  simulated machine to produce the parallel makespan (see DESIGN.md for
  why simulation substitutes for real threads in this reproduction).

Life cycle matches circuit-simulator usage: ``analyze`` once per
pattern, ``factor``/``refactor`` per matrix, ``solve`` per right-hand
side.
"""

from __future__ import annotations

import dataclasses
import functools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

# effects: blocks fine_lu=fineLU row_perm=rowperm
# effects: emitter builder

from ..contracts import domains
from ..errors import SingularMatrixError, StructureError
from ..obs.tracer import NULL_TRACER, get_tracer, tracing
from ..parallel.ledger import CostLedger
from ..resilience.faults import fault_values as _fault_values
from ..parallel.machine import MachineModel, SANDY_BRIDGE
from ..parallel.sim import Schedule, SimTask, simulate
from ..parallel.threads import parallel_map
from ..solvers.gp import GP_DEFAULT_PIVOT_TOL, GPResult, gp_factor, gp_refactor
from ..solvers.triangular import lu_solve_factors
from ..sparse.csc import CSC
from ..sparse.schedule import (
    ScheduleCompileError,
    diagonal_block_gathers,
    permutation_gather,
)
from .numeric import NDNumericBlock, TaskBuilder, factor_nd_block
from .structure import BaskerSymbolic
from .symbolic import DEFAULT_ND_THRESHOLD, analyze as symbolic_analyze

__all__ = ["Basker", "BaskerNumeric"]


def _factor_fine_block(b_idx: int, splits, B: CSC, pivot_tol: float,
                       static_perturb: float):
    """One fine-BTF block's Gilbert–Peierls factorization.

    Module-level (not a closure) so the payload shipped to
    :func:`~repro.parallel.threads.parallel_map` stays picklable for a
    process backend — the effect checker's E3 gate.
    """
    lo, hi = int(splits[b_idx]), int(splits[b_idx + 1])
    blk = B.submatrix(lo, hi, lo, hi)
    led = CostLedger()
    # Span-free: workers only compute.  The main thread records one
    # post-hoc numeric.gp.fine leaf per block carrying ``led``, so any
    # inline span emission here would double-count under the ledger
    # conservation check.
    with tracing(NULL_TRACER):
        lu = gp_factor(
            blk, pivot_tol=pivot_tol, static_perturb=static_perturb, ledger=led
        )
    return b_idx, lo, hi, lu, led


@dataclass
class BaskerNumeric:
    """Factors + task DAG for one matrix."""

    symbolic: BaskerSymbolic
    fine_lu: Dict[int, GPResult]            # coarse block id -> GP factors
    nd_numeric: Dict[int, NDNumericBlock]   # coarse block id -> ND factors
    row_perm: np.ndarray                    # final rows incl. all pivoting
    col_perm: np.ndarray
    M: CSC                                  # A[row_perm][:, col_perm]
    tasks: List[SimTask]
    task_labels: Dict[int, str]
    ledger: CostLedger
    # Work in ``ledger`` not attributed to any task (input block scatter
    # + factor assembly); repro.analysis.conservation balances
    # sum(task ledgers) + overhead_ledger == ledger.
    overhead_ledger: CostLedger = field(default_factory=CostLedger)
    # Value-gather maps + per-block elimination schedules reused by
    # refactor_fast across a fixed-pattern sequence (None until then).
    refactor_cache: Optional[dict] = None

    # ------------------------------------------------------------------
    @property
    def factor_nnz(self) -> int:
        """|L + U| over all factored diagonal blocks (Table I metric)."""
        total = 0
        for lu in self.fine_lu.values():
            total += lu.L.nnz + lu.U.nnz - lu.L.n_cols
        for nd in self.nd_numeric.values():
            total += nd.factor_nnz
        return total

    @property
    def factor_bytes(self) -> int:
        """Approximate bytes held by the factors and the solve-phase
        permuted matrix (16 B per stored entry + column pointers)."""
        total = 0
        for lu in self.fine_lu.values():
            total += 16 * (lu.L.nnz + lu.U.nnz) + 16 * (lu.L.n_cols + 1)
        for nd in self.nd_numeric.values():
            total += 16 * (nd.L.nnz + nd.U.nnz) + 16 * (nd.L.n_cols + 1)
        total += 16 * self.M.nnz + 8 * (self.M.n_cols + 1)
        return total

    def schedule(
        self,
        machine: MachineModel = SANDY_BRIDGE,
        n_threads: Optional[int] = None,
        sync_mode: str = "p2p",
    ) -> Schedule:
        """Replay the numeric task DAG on a simulated machine.

        ``n_threads`` may exceed the plan's thread count (extra cores
        idle) but not undercut it — Basker's thread mapping is static,
        so running with fewer cores requires re-analyzing with that
        thread count (exactly what the paper's scaling studies do).
        """
        p = n_threads if n_threads is not None else self.symbolic.n_threads
        if p < self.symbolic.n_threads:
            raise StructureError(
                f"plan was built for {self.symbolic.n_threads} threads; "
                f"re-run analyze/factor with n_threads={p} instead"
            )
        return simulate(self.tasks, machine, p, sync_mode=sync_mode)

    def factor_seconds(
        self,
        machine: MachineModel = SANDY_BRIDGE,
        n_threads: Optional[int] = None,
        sync_mode: str = "p2p",
    ) -> float:
        return self.schedule(machine, n_threads, sync_mode).makespan

    def block_factors(self, b: int) -> Tuple[CSC, CSC]:
        """(L, U) of coarse block ``b``."""
        if b in self.fine_lu:
            lu = self.fine_lu[b]
            return lu.L, lu.U
        nd = self.nd_numeric[b]
        return nd.L, nd.U


class Basker:
    """Threaded sparse LU via hierarchical parallelism and 2-D layouts."""

    name = "Basker"

    def __init__(
        self,
        n_threads: int = 4,
        pivot_tol: float = GP_DEFAULT_PIVOT_TOL,
        use_btf: bool = True,
        nd_threshold: int = DEFAULT_ND_THRESHOLD,
        static_perturb: float = 0.0,
        nd_leaves: int | None = None,
        supernodal_separators: bool = False,
        pipeline_columns: int | None = None,
        real_threads: bool = False,
    ):
        if n_threads < 1 or (n_threads & (n_threads - 1)) != 0:
            raise StructureError("n_threads must be a power of two (paper §III-C)")
        self.n_threads = n_threads
        self.pivot_tol = float(pivot_tol)
        self.use_btf = use_btf
        self.nd_threshold = int(nd_threshold)
        self.static_perturb = float(static_perturb)
        self.nd_leaves = nd_leaves
        self.supernodal_separators = bool(supernodal_separators)
        self.pipeline_columns = pipeline_columns
        # Run the embarrassingly parallel fine-BTF phase on a real
        # ThreadPoolExecutor.  Results are identical; wall-clock speedup
        # is NOT expected under CPython's GIL (see DESIGN.md) — the
        # option exists to exercise the real code path.
        self.real_threads = bool(real_threads)

    # ------------------------------------------------------------------
    @domains(A="matrix[global]")
    def analyze(self, A: CSC) -> BaskerSymbolic:
        """Symbolic analysis (Algorithms 2 and 3); pattern + values (MWCM)."""
        return symbolic_analyze(
            A,
            self.n_threads,
            nd_threshold=self.nd_threshold,
            use_btf=self.use_btf,
            nd_leaves=self.nd_leaves,
        )

    # ------------------------------------------------------------------
    @domains(A="matrix[global]")
    def factor(self, A: CSC, symbolic: Optional[BaskerSymbolic] = None) -> BaskerNumeric:
        """Parallel numeric factorization (Algorithm 4 + fine BTF)."""
        if symbolic is None:
            symbolic = self.analyze(A)
        tr = get_tracer()
        sp = tr.span("numeric.gp")
        with sp:
            B = A.permute(symbolic.row_perm_pre, symbolic.col_perm)  # domain: matrix[btf]
            splits = symbolic.block_splits  # domain: index[btf]
            builder = TaskBuilder()
            total = CostLedger()
            overhead = CostLedger()
            overhead.mem_words += A.nnz  # block scatter
            total.add(overhead)
            # Own-work cost of this span: just the block scatter — the
            # fine/ND children account for everything else (nd.overhead
            # is contained in nd.ledger, which the ND child spans carry).
            sp.attach_overhead(overhead)

            row_perm = symbolic.row_perm_pre.copy()  # domain: perm[global->btf]
            fine_lu: Dict[int, GPResult] = {}
            nd_numeric: Dict[int, NDNumericBlock] = {}

            # Fine-BTF blocks: embarrassingly parallel Gilbert–Peierls.
            if symbolic.fine_plan is not None:
                plan = symbolic.fine_plan
                results = parallel_map(
                    functools.partial(
                        _factor_fine_block, splits=splits, B=B,
                        pivot_tol=self.pivot_tol,
                        static_perturb=self.static_perturb,
                    ),
                    list(plan.block_ids),
                    n_threads=self.n_threads if self.real_threads else 1,
                )
                for (b_idx, lo, hi, lu, led), thread in zip(results, plan.thread_of):
                    fine_lu[b_idx] = lu
                    row_perm[lo:hi] = row_perm[lo:hi][lu.row_perm]
                    total.add(led)
                    if tr.enabled:
                        # Leaf span per fine block, recorded post hoc on
                        # the main thread (span creation is not
                        # thread-safe; the workers only compute).
                        tr.span("numeric.gp.fine").set(
                            block=b_idx, n=hi - lo, thread=thread
                        ).attach(led)
                    builder.add(
                        ("fine", b_idx), led, deps=[], thread=thread,
                        working_set=12.0 * (lu.L.nnz + lu.U.nnz) + 8.0 * (hi - lo),
                        reads=[("fineA", b_idx)],
                        writes=[("fineLU", b_idx), ("rowperm", "fine", b_idx)],
                    )

            # Fine-ND blocks: Algorithm 4.
            for plan in symbolic.nd_plans:
                lo, hi = plan.offset, plan.offset + plan.size
                Dblk = B.submatrix(lo, hi, lo, hi)  # domain: matrix[nd]
                with tr.span("numeric.gp.nd") as nsp:
                    nd = factor_nd_block(
                        Dblk,
                        plan,
                        builder,
                        pivot_tol=self.pivot_tol,
                        static_perturb=self.static_perturb,
                        supernodal_separators=self.supernodal_separators,
                        pipeline_columns=self.pipeline_columns,
                    )
                    if tr.enabled:
                        nsp.set(block=plan.block_id, n=hi - lo)
                nsp.attach(nd.ledger)
                nd_numeric[plan.block_id] = nd
                row_perm[lo:hi] = row_perm[lo:hi][nd.piv]
                total.add(nd.ledger)
                overhead.add(nd.overhead)

            M = A.permute(row_perm, symbolic.col_perm)
            sp.attach(total)
        return BaskerNumeric(
            symbolic=symbolic,
            fine_lu=fine_lu,
            nd_numeric=nd_numeric,
            row_perm=row_perm,
            col_perm=symbolic.col_perm,
            M=M,
            tasks=builder.tasks,
            task_labels=builder.labels(),
            ledger=total,
            overhead_ledger=overhead,
        )

    # ------------------------------------------------------------------
    @domains(A="matrix[global]")
    def refactor(self, A: CSC, numeric: BaskerNumeric) -> BaskerNumeric:
        """Factor a same-pattern matrix reusing the symbolic analysis.

        The Xyce transient path (paper §V-F): orderings, block
        structure and thread mapping are reused; pivoting is redone for
        the new values.
        """
        return self.factor(A, symbolic=numeric.symbolic)

    # ------------------------------------------------------------------
    @domains(A="matrix[global]")
    def refactor_fast(self, A: CSC, numeric: BaskerNumeric) -> BaskerNumeric:
        """Values-only refactorization on fixed patterns and pivots.

        Replays every coarse block's factors through a cached
        elimination schedule (:mod:`repro.sparse.schedule`) — no reach
        DFS, no pivot search, no per-step permutation rebuild.  Falls
        back to :meth:`refactor` (fresh pivoting) when a reused pivot
        degenerates or the pattern stops matching the cache.

        The result carries *no* task DAG (``tasks == []`` with the whole
        ledger booked as overhead, which keeps the conservation checks
        consistent); modelled parallel times still come from
        :meth:`refactor`.  This is the wall-clock sequence path.
        """
        try:
            return self._refactor_fast(A, numeric)
        except (SingularMatrixError, ScheduleCompileError):
            get_tracer().metrics.incr("basker.refactor.fallback")
            return self.refactor(A, numeric)

    def _refactor_fast(self, A: CSC, numeric: BaskerNumeric) -> BaskerNumeric:
        sym = numeric.symbolic
        splits = sym.block_splits
        n = sym.n
        tr = get_tracer()
        metrics = tr.metrics
        sp = tr.span("refactor.replay")
        with sp:
            cache = numeric.refactor_cache
            if cache is None:
                metrics.incr("basker.refactor.gather.miss")
            elif (
                not np.array_equal(A.indptr, cache["a_indptr"])
                or not np.array_equal(A.indices, cache["a_indices"])
                or not np.array_equal(numeric.row_perm, cache["row_perm"])
            ):
                metrics.incr("basker.refactor.gather.invalidate")
                cache = None
            else:
                metrics.incr("basker.refactor.gather.hit")
            if cache is None:
                m_indptr, m_indices, m_gather = permutation_gather(
                    A, numeric.row_perm, sym.col_perm
                )
                cache = {
                    "a_indptr": A.indptr,
                    "a_indices": A.indices,
                    "row_perm": numeric.row_perm.copy(),
                    "m": (m_indptr, m_indices, m_gather),
                    "blocks": diagonal_block_gathers(m_indptr, m_indices, splits),
                    "sched": {},
                }
                numeric.refactor_cache = cache
            m_indptr, m_indices, m_gather = cache["m"]
            m_data = _fault_values("basker.refactor.values", A.data)[m_gather]
            M = CSC(n, n, m_indptr, m_indices, m_data)
            total = CostLedger()
            total.mem_words += A.nnz

            fine_lu: Dict[int, GPResult] = {}
            nd_numeric: Dict[int, NDNumericBlock] = {}
            for k in range(sym.n_blocks):
                lo, hi = int(splits[k]), int(splits[k + 1])
                if hi == lo:
                    continue
                bptr, brows, bgather = cache["blocks"][k]
                blk = CSC(hi - lo, hi - lo, bptr, brows, m_data[bgather])
                L, U = numeric.block_factors(k)
                led = CostLedger()
                # row_perm already folds in all pivoting: identity order.
                fixed = GPResult(L, U, np.arange(hi - lo, dtype=np.int64), led,
                                 schedule=cache["sched"].get(k))
                lu = gp_refactor(blk, fixed, ledger=led)
                cache["sched"][k] = lu.schedule
                total.add(led)
                if k in numeric.fine_lu:
                    fine_lu[k] = lu
                else:
                    nd = numeric.nd_numeric[k]
                    nd_numeric[k] = dataclasses.replace(
                        nd, L=lu.L, U=lu.U, ledger=led, overhead=CostLedger()
                    )
            sp.attach(total)
        return BaskerNumeric(
            symbolic=sym,
            fine_lu=fine_lu,
            nd_numeric=nd_numeric,
            row_perm=numeric.row_perm.copy(),
            col_perm=sym.col_perm,
            M=M,
            tasks=[],
            task_labels={},
            ledger=total,
            overhead_ledger=total.copy(),
            refactor_cache=cache,
        )

    # ------------------------------------------------------------------
    @domains(b="vec[global]", returns="vec[global]")
    def solve(self, numeric: BaskerNumeric, b: np.ndarray) -> np.ndarray:
        """Solve ``A x = b`` via coarse-BTF block back-substitution."""
        b = np.asarray(b, dtype=np.float64)
        n = numeric.symbolic.n
        if b.shape != (n,):
            raise StructureError("right-hand side has wrong length")
        with get_tracer().span("solve.tri"):
            splits = numeric.symbolic.block_splits
            c = b[numeric.row_perm].copy()
            z = np.zeros(n, dtype=np.float64)
            M = numeric.M
            for k in range(numeric.symbolic.n_blocks - 1, -1, -1):
                lo, hi = int(splits[k]), int(splits[k + 1])
                if hi == lo:
                    continue
                L, U = numeric.block_factors(k)
                z[lo:hi] = lu_solve_factors(L, U, c[lo:hi])
                for j in range(lo, hi):
                    rows, vals = M.col(j)
                    cut = np.searchsorted(rows, lo)
                    if cut:
                        c[rows[:cut]] -= vals[:cut] * z[j]
            x = np.empty(n, dtype=np.float64)
            x[numeric.col_perm] = z
        return x
